"""Capture-avoiding substitution tests."""

from repro.sql.schema import Schema
from repro.usr.predicates import EqPred
from repro.usr.substitute import (
    fresh_name,
    substitute_many,
    substitute_tuple_var,
    subst_value,
)
from repro.usr.terms import Mul, Pred, Rel, Sum, mul
from repro.usr.values import Agg, Attr, ConstVal, TupleCons, TupleVar

S = Schema.of("s", "a", "b")


def test_basic_substitution_in_rel():
    expr = Rel("r", TupleVar("t"))
    assert substitute_tuple_var(expr, "t", TupleVar("u")) == Rel("r", TupleVar("u"))


def test_substitution_in_predicate():
    expr = Pred(EqPred(Attr(TupleVar("t"), "a"), ConstVal(1)))
    out = substitute_tuple_var(expr, "t", TupleVar("u"))
    assert out == Pred(EqPred(Attr(TupleVar("u"), "a"), ConstVal(1)))


def test_bound_variable_not_substituted():
    expr = Sum("t", S, Rel("r", TupleVar("t")))
    assert substitute_tuple_var(expr, "t", TupleVar("u")) == expr


def test_capture_avoidance_renames_binder():
    # Σ_u r(t, u): substituting t := u must not capture.
    body = mul(Rel("r", TupleVar("t")), Rel("s", TupleVar("u")))
    expr = Sum("u", S, body)
    out = substitute_tuple_var(expr, "t", TupleVar("u"))
    assert isinstance(out, Sum)
    assert out.var != "u"
    # The payload u is now free under the renamed binder.
    assert "u" in out.body.free_tuple_vars()


def test_substitution_projects_constructors():
    cons = TupleCons((("a", ConstVal(7)), ("b", ConstVal(8))))
    expr = Pred(EqPred(Attr(TupleVar("t"), "a"), ConstVal(7)))
    out = substitute_tuple_var(expr, "t", cons)
    # ⟨a: 7, b: 8⟩.a reduces to 7, and [7 = 7] is still a predicate node
    # (folding happens during SPNF construction).
    assert out == Pred(EqPred(ConstVal(7), ConstVal(7)))


def test_simultaneous_substitution():
    expr = mul(Rel("r", TupleVar("t")), Rel("s", TupleVar("u")))
    out = substitute_many(expr, {"t": TupleVar("u"), "u": TupleVar("t")})
    assert out == mul(Rel("r", TupleVar("u")), Rel("s", TupleVar("t")))


def test_agg_binder_protected():
    agg = Agg("sum", "x", S, Rel("r", TupleVar("x")))
    out = subst_value(agg, {"x": TupleVar("y")})
    assert out == agg


def test_agg_free_vars_substituted():
    agg = Agg(
        "sum", "x", S,
        Pred(EqPred(Attr(TupleVar("x"), "a"), Attr(TupleVar("t"), "a"))),
    )
    out = subst_value(agg, {"t": TupleVar("u")})
    assert "u" in out.free_tuple_vars()
    assert "t" not in out.free_tuple_vars()


def test_fresh_names_are_unique():
    names = {fresh_name("t") for _ in range(100)}
    assert len(names) == 100


def test_fresh_name_strips_prior_suffix():
    first = fresh_name("t")
    second = fresh_name(first)
    assert second.count("$") == 1
