"""End-to-end tests of the async front door (``FrontDoorServer``).

The front door replaces thread-per-connection with one selectors event
loop, so this suite covers what that architecture promises on top of
the wire contract the threaded server already pins: the same routes and
structured records (round trips, in-order batches, structured 400s),
plus the loop-specific behaviors — hundreds of concurrently open
connections, proving never blocking the accept path, FIFO parking
instead of thread-blocked admission waits, per-client 429s with
``Retry-After``, the slow-loris idle sweep, the ``max_connections``
terse 503, digest-shard affinity onto pool members, and autoscaler
grow/reap.  Verdict identity over the full corpus lives in
``tests/test_differential.py`` (the front door is its sixth path).
"""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.server import FrontDoorServer
from repro.server.pool import SessionPool
from repro.session import (
    Session,
    TacticOutcome,
    _TACTICS,
    register_tactic,
)
from repro.udp.trace import ReasonCode, Verdict

from tests.conftest import RS_PROGRAM

EQ = (
    "SELECT * FROM r x WHERE x.a = 1 AND x.b = 2",
    "SELECT * FROM r x WHERE x.b = 2 AND x.a = 1",
)
NEQ = (
    "SELECT * FROM r x WHERE x.a = 1",
    "SELECT * FROM r x WHERE x.a = 2",
)

if "test-sleep" not in _TACTICS:

    @register_tactic("test-sleep")
    def _tactic_sleep(session, task, config):
        time.sleep(0.4)
        return TacticOutcome(
            verdict=Verdict.NOT_PROVED,
            reason_code=ReasonCode.NO_ISOMORPHISM,
            reason="slept",
            conclusive=True,
        )


def slow_request(n: int) -> dict:
    """A distinct slow pair per ``n`` (distinct so the session memo
    cannot answer from cache; the 'test-sleep' override so the member
    holds its slot for a deterministic 0.4s)."""
    return {
        "id": f"slow-{n}",
        "left": f"SELECT * FROM r x WHERE x.a = {900000 + n}",
        "right": f"SELECT * FROM r x WHERE x.a = {910000 + n}",
        "pipeline": "test-sleep",
    }


@pytest.fixture(scope="module")
def server():
    with FrontDoorServer(
        Session.from_program_text(RS_PROGRAM),
        pool_size=2,
        pool_mode="thread",
        max_inflight=32,
    ) as srv:
        yield srv


def get(server, path, headers=None):
    request = urllib.request.Request(server.url + path, headers=headers or {})
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def post(server, path, body: bytes, headers=None):
    request = urllib.request.Request(
        server.url + path,
        data=body,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read()), dict(
                response.headers
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def post_verify(server, obj, headers=None):
    return post(server, "/verify", json.dumps(obj).encode("utf-8"), headers)


# -- wire contract parity -----------------------------------------------------


def test_healthz_announces_the_front_door(server):
    status, payload = get(server, "/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["frontdoor"] is True
    assert payload["pool_size"] == 2


def test_single_verify_round_trip(server):
    status, record, _ = post_verify(
        server, {"left": EQ[0], "right": EQ[1], "id": "fd-eq"}
    )
    assert status == 200
    assert record["id"] == "fd-eq"
    assert record["verdict"] == "proved"
    status, record, _ = post_verify(
        server, {"left": NEQ[0], "right": NEQ[1], "id": "fd-neq"}
    )
    assert status == 200
    assert record["verdict"] != "proved"


def test_batch_streams_in_input_order_and_isolates_errors(server):
    lines = [
        json.dumps({"left": EQ[0], "right": EQ[1], "id": "fd-b0"}),
        "this is not json",
        json.dumps({"left": NEQ[0], "right": NEQ[1], "id": "fd-b2"}),
    ]
    request = urllib.request.Request(
        server.url + "/verify/batch",
        data=("\n".join(lines) + "\n").encode("utf-8"),
        headers={"Content-Type": "application/x-ndjson"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        assert response.status == 200
        records = [
            json.loads(line)
            for line in response.read().decode("utf-8").splitlines()
        ]
    assert len(records) == 3
    assert records[0]["id"] == "fd-b0"
    assert records[1]["error"]["line"] == 2
    assert records[2]["id"] == "fd-b2"


def test_invalid_json_is_structured_400(server):
    status, record, _ = post(server, "/verify", b"{nope")
    assert status == 400
    assert record["error"]["code"] == "bad-request"


def test_unknown_route_and_method_are_structured(server):
    status, record, _ = post(server, "/nowhere", b"{}")
    assert status == 404
    assert record["error"]["code"] == "not-found"
    with pytest.raises(urllib.error.HTTPError) as caught:
        get(server, "/verify")
    assert caught.value.code == 405


def test_stats_exposes_frontdoor_and_dispatch_sections(server):
    post_verify(server, {"left": EQ[0], "right": EQ[1]})
    status, stats = get(server, "/stats")
    assert status == 200
    front = stats["frontdoor"]
    assert front["accepted"] >= 1
    assert front["connections"] >= 0
    assert front["max_connections"] == server.max_connections
    dispatch = stats["pool"]["dispatch"]
    assert dispatch["sharding"] is True
    assert dispatch["sharded"] >= 1
    assert "admission" in stats and "verdicts" in stats


def test_keep_alive_serves_sequential_requests_on_one_socket(server):
    body = json.dumps({"left": EQ[0], "right": EQ[1], "id": "ka"}).encode()
    head = (
        "POST /verify HTTP/1.1\r\n"
        f"Host: {server.host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "\r\n"
    ).encode("ascii")
    with socket.create_connection(
        (server.host, server.port), timeout=30
    ) as sock:
        reader = sock.makefile("rb")
        for _ in range(2):  # same socket, two request/response cycles
            sock.sendall(head + body)
            status_line = reader.readline()
            assert b" 200 " in status_line
            length = None
            while True:
                line = reader.readline()
                if line in (b"\r\n", b"\n"):
                    break
                if line.lower().startswith(b"content-length:"):
                    length = int(line.split(b":", 1)[1])
            record = json.loads(reader.read(length))
            assert record["id"] == "ka"


def test_truncated_upload_is_structured_400(server):
    """A client that dies mid-upload gets a 400 naming the truncation —
    the front door's LengthDecoder flags EOF-before-done just like the
    threaded server's frame reader."""
    body = json.dumps({"left": EQ[0], "right": EQ[1]}).encode("utf-8")
    with socket.create_connection(
        (server.host, server.port), timeout=30
    ) as sock:
        head = (
            "POST /verify HTTP/1.1\r\n"
            f"Host: {server.host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        sock.sendall(head + body[: len(body) // 2])
        sock.shutdown(socket.SHUT_WR)
        raw = b""
        while True:
            data = sock.recv(65536)
            if not data:
                break
            raw += data
    head_bytes, _, payload = raw.partition(b"\r\n\r\n")
    assert b" 400 " in head_bytes.split(b"\r\n", 1)[0]
    record = json.loads(payload)
    assert record["error"]["code"] == "bad-request"
    assert "truncated" in record["error"]["reason"]


# -- the event loop's own promises --------------------------------------------


def test_proving_never_blocks_the_accept_path():
    """With a single member wedged in a slow prove, /healthz must still
    answer immediately: parsing and accepting live on the loop, proving
    on the pool."""
    with FrontDoorServer(
        Session.from_program_text(RS_PROGRAM),
        pool_size=1,
        pool_mode="thread",
        max_inflight=8,
    ) as srv:
        results = []

        def slow_verify(n):
            results.append(post_verify(srv, slow_request(n)))

        threads = [
            threading.Thread(target=slow_verify, args=(n,)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.1)  # the single member is now busy for ~1.6s
        started = time.monotonic()
        status, payload = get(srv, "/healthz")
        elapsed = time.monotonic() - started
        assert status == 200 and payload["status"] == "ok"
        assert elapsed < 1.0, (
            f"healthz took {elapsed:.2f}s while the pool was proving — "
            "the accept path is blocked on the pool"
        )
        for thread in threads:
            thread.join(timeout=60)
        assert all(status == 200 for status, _, _ in results)


def test_over_capacity_requests_park_fifo_and_complete():
    """Past max_inflight the front door parks requests on the loop (no
    thread blocked, no 503 while the queue has room) and admits them in
    arrival order as slots free."""
    with FrontDoorServer(
        Session.from_program_text(RS_PROGRAM),
        pool_size=1,
        pool_mode="thread",
        max_inflight=1,
        max_queued=8,
        admission_timeout=10.0,
    ) as srv:
        statuses = []

        def client(n):
            status, _, _ = post_verify(srv, slow_request(n))
            statuses.append(status)

        threads = [
            threading.Thread(target=client, args=(n,)) for n in range(3)
        ]
        for thread in threads:
            thread.start()
            time.sleep(0.05)  # deterministic arrival order
        for thread in threads:
            thread.join(timeout=60)
        assert statuses == [200, 200, 200]
        assert srv.parked_peak >= 1, "nothing ever parked"


def test_rate_limited_client_gets_429_with_retry_after():
    with FrontDoorServer(
        Session.from_program_text(RS_PROGRAM),
        pool_size=1,
        pool_mode="thread",
        rate_limit=1.0,
        rate_burst=1.0,
    ) as srv:
        greedy = {"X-Client-Id": "greedy"}
        status, record, _ = post_verify(
            srv, {"left": EQ[0], "right": EQ[1]}, headers=greedy
        )
        assert status == 200
        status, record, headers = post_verify(
            srv, {"left": EQ[0], "right": EQ[1]}, headers=greedy
        )
        assert status == 429
        assert record["error"]["code"] == "rate-limited"
        assert int(headers["Retry-After"]) >= 1
        # Another client has its own bucket and is unaffected.
        status, _, _ = post_verify(
            srv,
            {"left": EQ[0], "right": EQ[1]},
            headers={"X-Client-Id": "patient"},
        )
        assert status == 200
        _, stats = get(srv, "/stats")
        assert stats["rate_limited"] >= 1


def test_slow_loris_connection_is_dropped():
    """A connection dribbling its request head slower than idle_timeout
    is closed by the sweep — it cannot hold a loop slot forever."""
    with FrontDoorServer(
        Session.from_program_text(RS_PROGRAM),
        pool_size=1,
        pool_mode="thread",
        idle_timeout=0.5,
    ) as srv:
        with socket.create_connection(
            (srv.host, srv.port), timeout=30
        ) as sock:
            sock.sendall(b"POST /verify HTTP/1.1\r\n")  # ...and stall
            sock.settimeout(10)
            assert sock.recv(4096) == b"", "server kept the stalled socket"
        deadline = time.monotonic() + 5
        while srv.idle_closed == 0 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert srv.idle_closed >= 1


def test_accepts_past_max_connections_get_terse_503():
    with FrontDoorServer(
        Session.from_program_text(RS_PROGRAM),
        pool_size=1,
        pool_mode="thread",
        max_connections=4,
        idle_timeout=30.0,
    ) as srv:
        held = [
            socket.create_connection((srv.host, srv.port), timeout=30)
            for _ in range(4)
        ]
        try:
            # Nudge the loop so all four registrations are in.
            time.sleep(0.2)
            with socket.create_connection(
                (srv.host, srv.port), timeout=30
            ) as extra:
                extra.settimeout(10)
                raw = b""
                while True:
                    data = extra.recv(4096)
                    if not data:
                        break
                    raw += data
            assert raw.startswith(b"HTTP/1.1 503"), raw[:64]
            assert srv.refused_connections >= 1
        finally:
            for sock in held:
                sock.close()


def test_holds_500_concurrent_connections():
    """The headline scaling claim: 500 sockets open at once, all of
    them still served.  Thread-per-connection dies here; the loop holds
    them with one thread."""
    try:
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        wanted = 2048
        if soft < wanted:
            resource.setrlimit(
                resource.RLIMIT_NOFILE, (min(wanted, hard), hard)
            )
            soft = resource.getrlimit(resource.RLIMIT_NOFILE)[0]
        if soft < 1200:
            pytest.skip(f"RLIMIT_NOFILE too low ({soft})")
    except (ImportError, ValueError, OSError) as err:
        pytest.skip(f"cannot query/raise RLIMIT_NOFILE: {err}")

    with FrontDoorServer(
        Session.from_program_text(RS_PROGRAM),
        pool_size=2,
        pool_mode="thread",
        max_connections=600,
        max_inflight=64,
        idle_timeout=60.0,
    ) as srv:
        conns = []
        try:
            for _ in range(500):
                conns.append(
                    socket.create_connection((srv.host, srv.port), timeout=30)
                )
            deadline = time.monotonic() + 10
            while srv.peak_connections < 500 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert srv.peak_connections >= 500, srv.peak_connections
            # Every 50th held connection still gets a real answer.
            body = json.dumps({"left": EQ[0], "right": EQ[1]}).encode()
            head = (
                "POST /verify HTTP/1.1\r\n"
                f"Host: {srv.host}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("ascii")
            for sock in conns[::50]:
                sock.sendall(head + body)
            for sock in conns[::50]:
                sock.settimeout(60)
                raw = b""
                while b"\r\n\r\n" not in raw:
                    data = sock.recv(65536)
                    if not data:
                        break
                    raw += data
                assert raw.startswith(b"HTTP/1.1 200"), raw[:64]
        finally:
            for sock in conns:
                sock.close()


# -- shard affinity and autoscaling -------------------------------------------


def test_repeat_requests_stick_to_their_shard_member():
    """The same pair re-verified lands on the same member every time
    (its compile LRU and verdict caches are hot for that digest), while
    distinct pairs may spread."""
    with FrontDoorServer(
        Session.from_program_text(RS_PROGRAM),
        pool_size=2,
        pool_mode="thread",
    ) as srv:
        for n in range(6):
            status, _, _ = post_verify(
                srv, {"left": EQ[0], "right": EQ[1], "id": f"rep-{n}"}
            )
            assert status == 200
        spread = sorted(m.requests for m in srv.pool.members)
        assert spread == [0, 6], (
            f"identical requests spread across members: {spread}"
        )
        dispatch = srv.pool.stats()["dispatch"]
        assert dispatch["sharded"] == 6
        assert dispatch["fallbacks"] == 0


def test_autoscaler_grows_under_saturation_and_reaps_idle():
    """Sustained saturation grows the pool toward pool_max; idleness
    reaps it back to the base size."""
    pool = SessionPool(
        1,
        mode="thread",
        session=Session.from_program_text(RS_PROGRAM),
        pool_max=2,
        grow_after=0.2,
        idle_reap=1.0,
        autoscale_interval=0.05,
    )
    with FrontDoorServer(pool=pool, max_inflight=8) as srv:
        threads = [
            threading.Thread(
                target=post_verify, args=(srv, slow_request(n))
            )
            for n in range(4)
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 15
        while pool.stats()["autoscale"]["grown"] == 0:
            assert time.monotonic() < deadline, "pool never grew"
            time.sleep(0.05)
        assert len(pool.members) == 2
        for thread in threads:
            thread.join(timeout=60)
        deadline = time.monotonic() + 15
        while pool.stats()["autoscale"]["reaped"] == 0:
            assert time.monotonic() < deadline, "pool never reaped"
            time.sleep(0.05)
        autoscale = pool.stats()["autoscale"]
        assert autoscale["current_size"] == 1
        assert autoscale["base_size"] == 1
    pool.close()


# -- loop defenses ------------------------------------------------------------


if "test-sleep-long" not in _TACTICS:

    @register_tactic("test-sleep-long")
    def _tactic_sleep_long(session, task, config):
        time.sleep(1.5)
        return TacticOutcome(
            verdict=Verdict.NOT_PROVED,
            reason_code=ReasonCode.NO_ISOMORPHISM,
            reason="slept",
            conclusive=True,
        )


def test_write_stalled_batch_reader_frees_its_admission_slot():
    """A /verify/batch client that sends its upload then never reads a
    byte of the response must not hold a gate slot forever: the sweep
    reclaims the write-stalled socket, so a later /verify still proves.
    Regression for the admission-slot leak (emission stalls at the
    outbuf soft limit, release used to wait on full emission, and the
    sweep skipped dispatched connections)."""
    with FrontDoorServer(
        Session.from_program_text(RS_PROGRAM),
        pool_size=1,
        pool_mode="thread",
        max_inflight=1,
        idle_timeout=1.0,
    ) as srv:
        # Every line malformed: each decides instantly into an error
        # record, but together they emit ~12 MB the client never drains
        # past kernel buffers, so emission stalls at the soft limit.
        lines = b"".join(b"not json %d\n" % n for n in range(100_000))
        stalled = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            stalled.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            stalled.settimeout(30)
            stalled.connect((srv.host, srv.port))
            stalled.sendall(
                b"POST /verify/batch HTTP/1.1\r\n"
                b"Content-Length: %d\r\n\r\n" % len(lines)
                + lines
            )
            time.sleep(0.3)  # the batch owns the single gate slot now
            # Parks behind the stalled batch, then must be admitted once
            # the sweep reclaims the wedged connection (~idle_timeout).
            status, record, _ = post_verify(
                srv, {"left": EQ[0], "right": EQ[1], "id": "after-stall"}
            )
            assert status == 200, record
            deadline = time.monotonic() + 10
            while srv.idle_closed == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert srv.idle_closed >= 1, "write-stalled batch never reclaimed"
        finally:
            stalled.close()


def test_bytes_streamed_during_inflight_request_are_capped():
    """While a request is dispatched, further client bytes are buffered
    for pipelining — but only up to MAX_HEAD_BYTES, after which reads
    pause and TCP backpressure takes over.  Regression for the
    unbounded-inbuf memory DoS."""
    from repro.server.frontdoor import MAX_HEAD_BYTES

    with FrontDoorServer(
        Session.from_program_text(RS_PROGRAM),
        pool_size=1,
        pool_mode="thread",
    ) as srv:
        body = json.dumps(
            {
                "id": "cap-probe",
                "left": "SELECT * FROM r x WHERE x.a = 980001",
                "right": "SELECT * FROM r x WHERE x.a = 980002",
                "pipeline": "test-sleep-long",
            }
        ).encode("utf-8")
        head = (
            b"POST /verify HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: %d\r\n\r\n" % len(body)
        )
        with socket.create_connection((srv.host, srv.port), timeout=30) as sock:
            sock.sendall(head + body)
            time.sleep(0.2)  # dispatched; the member sleeps ~1.5s
            sock.setblocking(False)
            junk = b"X" * 65536
            sent = 0
            deadline = time.monotonic() + 0.8
            while sent < 8 * 1024 * 1024 and time.monotonic() < deadline:
                try:
                    sent += sock.send(junk)
                except (BlockingIOError, InterruptedError):
                    time.sleep(0.01)
            # Measure while the prove is still in flight: whatever the
            # client managed to push, the loop buffered at most one
            # head's worth plus a single recv.
            buffered = [len(conn.inbuf) for conn in srv._conns.values()]
            assert buffered, "connection vanished during the in-flight prove"
            assert max(buffered) <= MAX_HEAD_BYTES + 65536, (
                f"inbuf grew to {max(buffered)} bytes while dispatched "
                f"(client pushed {sent})"
            )


def test_aggressive_pipelining_in_one_segment_is_answered_iteratively(server):
    """Hundreds of pipelined requests arriving in one read must all be
    answered on one live connection.  Regression for the mutually
    recursive parse advance (~5 stack frames per buffered request used
    to hit RecursionError around 200 requests and drop the client)."""
    n = 400
    with socket.create_connection((server.host, server.port), timeout=30) as sock:
        sock.sendall(b"GET /healthz HTTP/1.1\r\n\r\n" * n)
        sock.settimeout(30)
        raw = b""
        while raw.count(b"HTTP/1.1 200") < n:
            data = sock.recv(65536)
            assert data, (
                f"connection dropped after "
                f"{raw.count(b'HTTP/1.1 200')} of {n} responses"
            )
            raw += data
    assert raw.count(b"HTTP/1.1 200") == n


def test_error_with_unread_body_closes_instead_of_desyncing(server):
    """An error answered while announced body bytes sit unread must
    close the connection; keeping it alive used to parse the body as
    the next request head and emit a spurious 400."""
    cases = [
        # POST with a body to an unknown route: 404, then close.
        (
            b"POST /nope HTTP/1.1\r\nContent-Length: 30\r\n\r\n"
            + b"0123456789" * 3,
            b"HTTP/1.1 404",
        ),
        # Unsupported Transfer-Encoding: framing unknowable, 400 + close.
        (
            b"POST /verify HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n"
            + b"0123456789" * 3,
            b"HTTP/1.1 400",
        ),
        # GET with an announced body: answered, then close.
        (
            b"GET /healthz HTTP/1.1\r\nContent-Length: 30\r\n\r\n"
            + b"0123456789" * 3,
            b"HTTP/1.1 200",
        ),
    ]
    for payload, expected_status in cases:
        with socket.create_connection(
            (server.host, server.port), timeout=30
        ) as sock:
            sock.sendall(payload)
            sock.settimeout(10)
            raw = b""
            while True:
                data = sock.recv(65536)
                if not data:
                    break
                raw += data
        assert raw.startswith(expected_status), raw[:64]
        assert b"Connection: close" in raw, raw[:256]
        assert raw.count(b"HTTP/1.1") == 1, (
            f"spurious extra response after {expected_status!r}: {raw!r}"
        )
