"""U-semiring instance tests: every instance satisfies every axiom.

This is the executable counterpart of the paper's trusted axiom base: the
axiom self-check harness exercises all Definition 3.1 identities on sample
elements of each shipped instance, and hypothesis drives the ``N`` instance
with arbitrary naturals.
"""

import pytest
from hypothesis import given, strategies as st

from repro.semirings import (
    BooleanSemiring,
    DiagonalMatrixSemiring,
    ExtendedNaturals,
    INFINITY,
    NaturalsSemiring,
    check_axioms,
)
from repro.semirings.base import AxiomViolation, USemiring
from repro.semirings.matrices import Diag

N = NaturalsSemiring()
B = BooleanSemiring()
NBAR = ExtendedNaturals()
DIAG = DiagonalMatrixSemiring()


def test_naturals_satisfy_all_axioms():
    checked = check_axioms(N, [0, 1, 2, 3, 7])
    assert "squash-self" in checked and "distrib" in checked


def test_booleans_satisfy_all_axioms():
    check_axioms(B, [False, True])


def test_extended_naturals_satisfy_axioms_on_finite_elements():
    check_axioms(NBAR, [0, 1, 2, 5])


def test_extended_naturals_infinity_breaks_eq6():
    """Reproduction note: the paper's N̄ example is subtly inconsistent.

    Sec. 3.1 lists ``N̄ = N ∪ {∞}`` as a U-semiring, but ∞ is multiplicatively
    idempotent (∞² = ∞), so Eq. (6) forces ``‖∞‖ = ∞`` while Eq. (1)
    (``‖1 + x‖ = 1`` with x = ∞) forces ``‖∞‖ = 1``.  No squash can satisfy
    both; our instance follows the standard reading (``‖∞‖ = 1``) and the
    axiom checker correctly flags the Eq. (6) failure at ∞.
    """
    assert NBAR.mul(INFINITY, INFINITY) == INFINITY
    assert NBAR.squash(INFINITY) == 1  # Eq. (1) reading
    with pytest.raises(AxiomViolation):
        check_axioms(NBAR, [0, 1, INFINITY])


def test_diagonal_matrices_satisfy_all_axioms():
    samples = [
        Diag(0, 0), Diag(1, 1), Diag(2, 0), Diag(0, 3), Diag(2, 5),
    ]
    check_axioms(DIAG, samples)


def test_diagonal_matrices_refute_conditional_squash_axiom():
    """Sec. 3.1: ``x ≠ 0 ⇒ ‖x‖ = 1`` must NOT hold in every U-semiring."""
    x = Diag(2, 0)
    assert x != DIAG.zero
    assert DIAG.squash(x) == Diag(1, 0)
    assert DIAG.squash(x) != DIAG.one


def test_infinity_arithmetic():
    assert NBAR.add(3, INFINITY) == INFINITY
    assert NBAR.mul(0, INFINITY) == 0
    assert NBAR.mul(2, INFINITY) == INFINITY
    assert NBAR.squash(INFINITY) == 1
    assert NBAR.not_(INFINITY) == 0


def test_broken_instance_is_caught():
    class Broken(NaturalsSemiring):
        name = "broken"

        def squash(self, value):
            return value  # violates ‖1 + x‖ = 1

    with pytest.raises(AxiomViolation):
        check_axioms(Broken(), [0, 1, 2])


def test_sum_and_product_helpers():
    assert N.sum([1, 2, 3]) == 6
    assert N.product([2, 3, 4]) == 24
    assert N.sum([]) == 0
    assert N.product([]) == 1


def test_from_bool():
    assert N.from_bool(True) == 1
    assert N.from_bool(False) == 0


@given(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=50))
def test_naturals_squash_laws_hypothesis(x, y):
    assert N.mul(N.squash(x), N.squash(y)) == N.squash(N.mul(x, y))
    assert N.squash(N.add(N.squash(x), y)) == N.squash(N.add(x, y))
    assert N.mul(x, N.squash(x)) == x


@given(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=50))
def test_naturals_negation_laws_hypothesis(x, y):
    assert N.not_(N.mul(x, y)) == N.squash(N.add(N.not_(x), N.not_(y)))
    assert N.not_(N.add(x, y)) == N.mul(N.not_(x), N.not_(y))


@given(st.lists(st.integers(min_value=0, max_value=10), max_size=8))
def test_naturals_sum_matches_python_sum(values):
    assert N.sum(values) == sum(values)


@given(
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=0, max_value=9),
)
def test_diag_componentwise_distributivity(a, b, c):
    x, y, z = Diag(a, b), Diag(b, c), Diag(c, a)
    assert DIAG.mul(x, DIAG.add(y, z)) == DIAG.add(DIAG.mul(x, y), DIAG.mul(x, z))
