"""The top-level verdict cache: replay semantics under both backends.

``Session.verify`` consults the installed store's verdict table before
running any tactic.  The contract under test: a warm key replays the
original verdict/reason/tactic attribution with a fresh request id and
near-zero elapsed time, *without* invoking a single tactic; the cache
keys on program × query texts × pipeline knobs × timeout (text tier)
and on denotation fingerprints × constraint digest (structural tier);
negative verdicts honour the store's TTL policy; and the whole feature
is opt-out via ``PipelineConfig.verdict_cache``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.hashcons_store import install_shared_store
from repro.session import PipelineConfig, Session, tactic_invocations
from repro.sql.parser import parse_query
from repro.store import open_store

from tests.conftest import RS_PROGRAM

EQ_PAIR = (
    "SELECT * FROM r x WHERE x.a = 1 AND x.b = 2",
    "SELECT * FROM r x WHERE x.b = 2 AND x.a = 1",
)
NEQ_PAIR = (
    "SELECT * FROM r x WHERE x.a = 1",
    "SELECT * FROM r x WHERE x.a = 2",
)

BACKENDS = ("flock", "sqlite")


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    """An installed shared store of each backend; uninstalled on exit."""
    store = open_store(
        str(tmp_path / f"memo-{request.param}.store"), backend=request.param
    )
    previous = install_shared_store(store)
    yield store
    install_shared_store(previous)
    store.close()


def _session():
    return Session.from_program_text(RS_PROGRAM, PipelineConfig.legacy())


# -- replay semantics ---------------------------------------------------------


def test_second_verify_replays_without_running_tactics(store):
    session = _session()
    first = session.verify(*EQ_PAIR, request_id="cold")
    assert first.proved
    assert session.stats.verdict_cache_hits == 0
    assert session.stats.verdict_cache_misses == 1
    before = tactic_invocations()
    second = session.verify(*EQ_PAIR, request_id="warm")
    assert tactic_invocations() == before, "replay ran a tactic"
    assert session.stats.verdict_cache_hits == 1
    # The replay carries the original conclusion but this request's id
    # and a fresh elapsed time; the axiom trace is not persisted.
    assert second.request_id == "warm"
    assert second.verdict == first.verdict
    assert second.reason_code == first.reason_code
    assert second.tactic == first.tactic
    assert second.tactics_tried == first.tactics_tried
    assert second.trace is None


def test_fresh_session_replays_from_warm_store(store):
    _session().verify(*EQ_PAIR)
    fresh = _session()
    before = tactic_invocations()
    result = fresh.verify(*EQ_PAIR)
    assert result.proved
    assert tactic_invocations() == before
    assert fresh.stats.verdict_cache_hits == 1


def test_unsupported_results_replay_too(store):
    unsupported = (
        "SELECT * FROM r x WHERE x.a IS NULL",
        "SELECT * FROM r x",
    )
    session = _session()
    first = session.verify(*unsupported)
    assert first.verdict.value == "unsupported"
    second = session.verify(*unsupported)
    assert second.verdict == first.verdict
    assert second.reason_code == first.reason_code
    assert session.stats.verdict_cache_hits == 1


# -- key derivation -----------------------------------------------------------


def test_denot_tier_catches_reformatted_query_text(store):
    """Same pair, different whitespace: the text tier misses but the
    structural (denotation-fingerprint) tier replays — and backfills the
    text tier so the third pass answers before parsing."""
    session = _session()
    session.verify(*EQ_PAIR)
    reformatted = (
        "SELECT  *  FROM r x WHERE x.a = 1 AND x.b = 2",
        "SELECT  *  FROM r x WHERE x.b = 2 AND x.a = 1",
    )
    before = tactic_invocations()
    assert session.verify(*reformatted).proved
    assert tactic_invocations() == before
    assert session.stats.verdict_cache_hits == 1
    assert session.verify(*reformatted).proved
    assert session.stats.verdict_cache_hits == 2


def test_ast_inputs_skip_the_text_tier_but_hit_the_denot_tier(store):
    session = _session()
    session.verify(*EQ_PAIR)
    before = tactic_invocations()
    result = session.verify(parse_query(EQ_PAIR[0]), parse_query(EQ_PAIR[1]))
    assert result.proved
    assert tactic_invocations() == before
    assert session.stats.verdict_cache_hits == 1


def test_timeout_budget_scopes_the_key(store):
    """A different per-request timeout is a different key — a verdict
    proved under one budget must not answer for another."""
    session = _session()
    session.verify(*EQ_PAIR)
    session.verify(*EQ_PAIR, timeout_seconds=5.0)
    assert session.stats.verdict_cache_hits == 0
    assert session.stats.verdict_cache_misses == 2


def test_pipeline_knobs_scope_the_key(store):
    """Changing a verdict-affecting config field must miss: a verdict
    from the legacy pipeline cannot answer for the default pipeline."""
    session = _session()
    session.verify(*EQ_PAIR)
    session.verify(*EQ_PAIR, config=PipelineConfig())
    assert session.stats.verdict_cache_hits == 0
    assert session.stats.verdict_cache_misses == 2


# -- TTL policy ---------------------------------------------------------------


def test_negative_verdicts_honour_the_store_ttl(tmp_path):
    """With ``negative_ttl=0`` a ``not_proved`` verdict is never stored,
    so the second verify re-proves from scratch (both backends)."""
    for backend in BACKENDS:
        store = open_store(
            str(tmp_path / f"ttl-{backend}.store"),
            backend=backend,
            negative_ttl=0.0,
        )
        previous = install_shared_store(store)
        try:
            session = _session()
            first = session.verify(*NEQ_PAIR)
            assert first.verdict.value == "not_proved"
            session.verify(*NEQ_PAIR)
            assert session.stats.verdict_cache_hits == 0
            assert session.stats.verdict_cache_misses == 2
        finally:
            install_shared_store(previous)
            store.close()


def test_proofs_survive_where_negatives_expire(tmp_path):
    store = open_store(
        str(tmp_path / "mixed.sqlite"), backend="sqlite", negative_ttl=0.0
    )
    previous = install_shared_store(store)
    try:
        session = _session()
        session.verify(*EQ_PAIR)
        session.verify(*NEQ_PAIR)
        session.verify(*EQ_PAIR)  # replayed: proofs are forever
        session.verify(*NEQ_PAIR)  # re-proved: negative never stored
        assert session.stats.verdict_cache_hits == 1
    finally:
        install_shared_store(previous)
        store.close()


# -- opt-out ------------------------------------------------------------------


def test_config_opt_out_disables_the_cache(store):
    config = dataclasses.replace(PipelineConfig.legacy(), verdict_cache=False)
    session = Session.from_program_text(RS_PROGRAM, config)
    session.verify(*EQ_PAIR)
    session.verify(*EQ_PAIR)
    assert session.stats.verdict_cache_hits == 0
    assert session.stats.verdict_cache_misses == 0


def test_no_store_installed_means_no_cache_traffic():
    session = _session()
    session.verify(*EQ_PAIR)
    session.verify(*EQ_PAIR)
    assert session.stats.verdict_cache_hits == 0
    assert session.stats.verdict_cache_misses == 0
