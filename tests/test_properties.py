"""Property-based tests (hypothesis) over the core pipeline.

Three heavyweight invariants:

1. **Compiler correctness** — for random queries and random databases, the
   compiled U-expression evaluated in the ``N`` semiring equals the bag
   computed by the independent engine.
2. **SPNF preservation** — normalization never changes the value of a random
   U-expression in a finite model.
3. **Decision soundness** — whenever the decision procedure proves a random
   query pair equivalent, the engine agrees on a random database.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Solver
from repro.engine import Database, evaluate_query
from repro.engine.database import bag_of
from repro.semirings import Interpretation, NaturalsSemiring
from repro.semirings.interp import evaluate_denotation, tuple_key
from repro.sql.ast import (
    AndPred,
    BinPred,
    ColumnRef,
    Constant,
    DistinctQuery,
    ExprAs,
    FromItem,
    OrPred,
    Select,
    Star,
    TableRef,
    UnionAll,
)
from repro.sql.desugar import desugar_query
from repro.sql.schema import Schema
from repro.sql.scope import resolve_query
from repro.usr.compile import Compiler
from repro.usr.predicates import AtomPred, EqPred
from repro.usr.spnf import form_to_uexpr, normalize
from repro.usr.terms import (
    Add,
    Mul,
    One,
    Pred,
    Rel,
    Squash,
    Sum,
    Zero,
    not_,
)
from repro.usr.values import Attr, ConstVal, TupleVar

from tests.conftest import make_catalog

# ---------------------------------------------------------------------------
# Random query ASTs over tables r(a, b) and s(c, d) with values {0, 1}.
# ---------------------------------------------------------------------------

TABLES = {"r": ("a", "b"), "s": ("c", "d")}


@st.composite
def predicates(draw, aliases):
    """A random conjunction/disjunction of comparisons over the aliases."""
    columns = [
        ColumnRef(alias, column)
        for alias, table in aliases
        for column in TABLES[table]
    ]
    # Build 1-3 atoms combined with AND/OR.
    count = draw(st.integers(1, 3))
    pred = None
    for _ in range(count):
        left = draw(st.sampled_from(columns))
        use_const = draw(st.booleans())
        right = (
            Constant(draw(st.integers(0, 1)))
            if use_const
            else draw(st.sampled_from(columns))
        )
        op = draw(st.sampled_from(["=", "<>", "<", "<="]))
        this = BinPred(op, left, right)
        if pred is None:
            pred = this
        elif draw(st.booleans()):
            pred = AndPred(pred, this)
        else:
            pred = OrPred(pred, this)
    return pred


@st.composite
def select_queries(draw):
    table_count = draw(st.integers(1, 2))
    aliases = []
    items = []
    for index in range(table_count):
        table = draw(st.sampled_from(["r", "s"]))
        alias = f"x{index}"
        aliases.append((alias, table))
        items.append(FromItem(TableRef(table), alias))
    if draw(st.booleans()):
        where = draw(predicates(aliases))
    else:
        where = None
    if draw(st.booleans()):
        projection = (Star(),)
    else:
        columns = [
            ColumnRef(alias, column)
            for alias, table in aliases
            for column in TABLES[table]
        ]
        chosen = draw(st.lists(st.sampled_from(columns), min_size=1, max_size=2))
        projection = tuple(
            ExprAs(column, f"o{i}") for i, column in enumerate(chosen)
        )
    query = Select(projection, tuple(items), where,
                   distinct=draw(st.booleans()))
    return query


@st.composite
def queries(draw):
    query = draw(select_queries())
    if draw(st.integers(0, 3)) == 0:
        other = draw(select_queries())
        # UNION ALL requires matching arity; reuse the same query shape.
        return UnionAll(query, query)
    return query


@st.composite
def databases(draw):
    catalog = make_catalog(("r", "a", "b"), ("s", "c", "d"))
    database = Database(catalog)
    for table, columns in TABLES.items():
        rows = draw(
            st.lists(
                st.fixed_dictionaries(
                    {column: st.integers(0, 1) for column in columns}
                ),
                max_size=3,
            )
        )
        database.insert_all(table, rows)
    return database


def db_relations(database):
    out = {}
    for table in database.tables():
        multiplicities = {}
        for row in database.rows(table):
            key = tuple_key(row)
            multiplicities[key] = multiplicities.get(key, 0) + 1
        out[table] = multiplicities
    return out


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(query=queries(), database=databases())
def test_compiler_matches_engine(query, database):
    catalog = database.catalog
    resolved, _ = resolve_query(query, catalog)
    desugared = desugar_query(resolved)
    engine_bag = bag_of(evaluate_query(desugared, database))

    denotation = Compiler(catalog).compile_query(desugared)
    interp = Interpretation(
        NaturalsSemiring(), [0, 1], db_relations(database)
    )
    compiled_bag = evaluate_denotation(denotation, interp)
    assert compiled_bag == engine_bag


# ---------------------------------------------------------------------------
# Random U-expressions for SPNF preservation.
# ---------------------------------------------------------------------------

S = Schema.of("s", "a")


def uexprs(max_depth=3):
    leaves = st.sampled_from([
        Zero,
        One,
        Rel("r", TupleVar("t")),
        Rel("q", TupleVar("t")),
        Pred(EqPred(Attr(TupleVar("t"), "a"), ConstVal(1))),
        Pred(AtomPred("<", (Attr(TupleVar("t"), "a"), ConstVal(1)))),
    ])

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda ab: Add(ab)),
            st.tuples(children, children).map(lambda ab: Mul(ab)),
            children.map(Squash),
            children.map(not_),
            children.map(lambda e: Sum("t", S, e)),
        )

    return st.recursive(leaves, extend, max_leaves=8)


@settings(max_examples=80, deadline=None)
@given(expr=uexprs(), rows=st.lists(st.integers(0, 1), max_size=3))
def test_spnf_preserves_meaning(expr, rows):
    table = {}
    for value in rows:
        key = tuple_key({"a": value})
        table[key] = table.get(key, 0) + 1
    interp = Interpretation(
        NaturalsSemiring(), [0, 1], {"r": table, "q": dict(table)}
    )
    env = {"t": {"a": 1}}
    direct = interp.evaluate(expr, env)
    renormalized = interp.evaluate(form_to_uexpr(normalize(expr)), env)
    assert direct == renormalized


# ---------------------------------------------------------------------------
# Parser round trip: every AST's string form re-parses to the same AST.
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(query=queries())
def test_parse_str_round_trip(query):
    from repro.sql.parser import parse_query

    assert parse_query(str(query)) == query


# ---------------------------------------------------------------------------
# Engine algebraic laws on random queries and databases.
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(query=select_queries(), database=databases())
def test_engine_distinct_idempotent(query, database):
    resolved, _ = resolve_query(query, database.catalog)
    desugared = desugar_query(resolved)
    once = evaluate_query(DistinctQuery(desugared), database)
    twice = evaluate_query(DistinctQuery(DistinctQuery(desugared)), database)
    assert bag_of(once) == bag_of(twice)
    keys = [tuple(sorted(row.items())) for row in once]
    assert len(keys) == len(set(keys))  # DISTINCT output has no duplicates


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(query=select_queries(), database=databases())
def test_engine_union_all_counts_add(query, database):
    resolved, _ = resolve_query(query, database.catalog)
    desugared = desugar_query(resolved)
    single = bag_of(evaluate_query(desugared, database))
    doubled = bag_of(evaluate_query(UnionAll(desugared, desugared), database))
    assert doubled == {key: 2 * count for key, count in single.items()}


# ---------------------------------------------------------------------------
# Decision soundness on random pairs.
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(left=queries(), right=queries(), database=databases())
def test_decision_soundness(left, right, database):
    solver = Solver(database.catalog.copy())
    outcome = solver.check(left, right)
    if not outcome.proved:
        return
    resolved_left, _ = resolve_query(left, database.catalog)
    resolved_right, _ = resolve_query(right, database.catalog)
    left_bag = bag_of(evaluate_query(desugar_query(resolved_left), database))
    right_bag = bag_of(evaluate_query(desugar_query(resolved_right), database))
    assert left_bag == right_bag, (
        f"UNSOUND: proved but engine disagrees\n{left}\n{right}"
    )


# ---------------------------------------------------------------------------
# Pipeline-order invariance: tactic permutations agree on the verdict.
# ---------------------------------------------------------------------------

from itertools import permutations

from repro.corpus import all_rules
from repro.corpus.rules import Expectation
from repro.session import DEFAULT_TACTICS, PipelineConfig, Session, VerifyRequest

#: Rules with a definite expected answer (the unsupported ones are rejected
#: by the front end before any tactic runs, so ordering cannot matter).
_DECIDABLE_RULES = [
    rule for rule in all_rules()
    if rule.expectation is not Expectation.UNSUPPORTED
]
_TACTIC_PERMUTATIONS = sorted(permutations(DEFAULT_TACTICS))

#: One warm session per tactic order, shared across examples — permutation
#: invariance is about the pipeline, not about cold caches.
_PERMUTATION_SESSIONS = {}


def _session_for_order(order):
    session = _PERMUTATION_SESSIONS.get(order)
    if session is None:
        session = Session(config=PipelineConfig(tactics=order))
        _PERMUTATION_SESSIONS[order] = session
    return session


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_pipeline_permutations_agree_on_the_verdict(data):
    """Reordering the tactic pipeline never flips EQUIVALENT/NOT_EQUIVALENT.

    Soundness makes every ``proved`` definitive and refutation can never
    flip one, so for corpus rules any permutation of the full tactic set
    must land on the same final verdict — only the *reason* (which tactic
    concluded, and with which code) may differ.
    """
    rule = data.draw(st.sampled_from(_DECIDABLE_RULES))
    order = data.draw(st.sampled_from(_TACTIC_PERMUTATIONS))
    session = _session_for_order(order)
    result = session.verify(VerifyRequest(
        left=rule.left,
        right=rule.right,
        program=rule.program,
        request_id=rule.rule_id,
    ))
    expected_proved = rule.expectation is Expectation.PROVED
    assert result.proved == expected_proved, (
        f"{rule.rule_id} under pipeline {order}: got {result.verdict.value} "
        f"[{result.reason_code.value}], expected "
        f"{'proved' if expected_proved else 'not proved'}"
    )


def test_pipeline_permutations_cover_a_fixed_spot_check():
    """Deterministic companion to the property: every one of the 6 orders
    on one known-equivalent and one known-inequivalent rule."""
    proved = next(r for r in _DECIDABLE_RULES
                  if r.expectation is Expectation.PROVED)
    refuted = next(r for r in _DECIDABLE_RULES
                   if r.expectation is Expectation.NOT_PROVED)
    for rule, expected in ((proved, True), (refuted, False)):
        verdicts = set()
        for order in _TACTIC_PERMUTATIONS:
            result = _session_for_order(order).verify(VerifyRequest(
                left=rule.left, right=rule.right, program=rule.program,
            ))
            verdicts.add(result.proved)
        assert verdicts == {expected}, (
            f"{rule.rule_id}: orders disagree: {verdicts}"
        )
