"""Property tests for the batch-verification substrate.

Three invariant families back the new subsystem:

1. **Normalization idempotence** — re-denoting a normal form and
   normalizing again yields the same normal form (up to canonical binder
   renaming, which is exactly the equivalence the memo layer relies on).
2. **Memo transparency** — across the whole Calcite corpus, the memoized
   and cold paths produce byte-identical canonical normal forms and
   identical verdicts; caching must never change a single answer.
3. **Fingerprint stability** — ``fingerprint()`` survives
   substitute-then-rename round trips, agrees between structurally equal
   nodes, and is independent of ``PYTHONHASHSEED`` (stable across runs),
   which is what qualifies it as a memo/result key.
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro import Solver, clear_caches, set_memoization
from repro.corpus import rules_by_dataset
from repro.hashcons import cache_stats, fingerprint
from repro.sql.schema import Schema
from repro.udp.canonize import canonical_rename_form
from repro.usr.predicates import AtomPred, EqPred
from repro.usr.pretty import pretty_form
from repro.usr.spnf import form_to_uexpr, normalize
from repro.usr.substitute import substitute_tuple_var
from repro.usr.terms import Add, Mul, Pred, Rel, Squash, Sum, not_
from repro.usr.values import Attr, ConstVal, TupleVar


@pytest.fixture(autouse=True)
def _memoization_restored():
    """Each test leaves the memo layer enabled and empty."""
    yield
    set_memoization(True)
    clear_caches()


S = Schema.of("s", "a")


def uexprs():
    leaves = st.sampled_from([
        Rel("r", TupleVar("t")),
        Rel("q", TupleVar("t")),
        Pred(EqPred(Attr(TupleVar("t"), "a"), ConstVal(1))),
        Pred(AtomPred("<", (Attr(TupleVar("t"), "a"), ConstVal(1)))),
    ])

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda ab: Add(ab)),
            st.tuples(children, children).map(lambda ab: Mul(ab)),
            children.map(Squash),
            children.map(not_),
            children.map(lambda e: Sum("t", S, e)),
        )

    return st.recursive(leaves, extend, max_leaves=8)


def canonical_text(form):
    """Binder-name-independent rendering of a normal form."""
    return pretty_form(canonical_rename_form(form))


# ---------------------------------------------------------------------------
# 1. Normalization idempotence
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(expr=uexprs())
def test_normalize_idempotent_after_redenote(expr):
    once = normalize(expr)
    again = normalize(form_to_uexpr(once))
    assert canonical_text(again) == canonical_text(once)


def test_normalize_idempotent_negated_double_squash():
    """Regression: ``not(‖‖Σ_t r(t)‖‖)`` must normalize idempotently.

    The uexpr smart constructor ``not_`` applies not(‖x‖) = not(x), so
    re-denoting a normal form whose negation body is a bare squash used
    to produce a strictly flatter form (different binder depths, hence a
    different canonical digest).  ``make_term`` now applies the same
    absorption at the term level.
    """
    expr = not_(Squash(Squash(Sum("t", S, Rel("r", TupleVar("t"))))))
    once = normalize(expr)
    again = normalize(form_to_uexpr(once))
    assert canonical_text(again) == canonical_text(once)


@settings(max_examples=30, deadline=None)
@given(expr=uexprs())
def test_normalize_memo_hit_returns_same_form(expr):
    from repro.usr.terms import Not

    set_memoization(True)
    clear_caches()
    first = normalize(expr)
    second = normalize(expr)
    if isinstance(expr, (Add, Mul, Sum, Squash, Not)):
        assert second is first  # literal cache hit, not a recomputation
    else:
        assert second == first  # leaves take the uncached fast path


# ---------------------------------------------------------------------------
# 2. Memoized vs cold paths across the Calcite corpus
# ---------------------------------------------------------------------------


def _corpus_forms_and_verdicts():
    """(rule_id → canonical normal-form text pair, rule_id → verdict)."""
    forms = {}
    verdicts = {}
    solvers = {}
    for rule in rules_by_dataset("calcite"):
        solver = solvers.get(rule.program)
        if solver is None:
            solver = Solver.from_program_text(rule.program)
            solvers[rule.program] = solver
        outcome = solver.check(rule.left, rule.right)
        verdicts[rule.rule_id] = outcome.verdict
        try:
            left = solver.compile(rule.left)
            right = solver.compile(rule.right)
        except Exception:
            continue  # unsupported rules carry no forms
        forms[rule.rule_id] = (
            canonical_text(normalize(left.body)),
            canonical_text(normalize(right.body)),
        )
    return forms, verdicts


def test_memoized_and_cold_paths_agree_on_calcite_corpus():
    set_memoization(False)
    clear_caches()
    cold_forms, cold_verdicts = _corpus_forms_and_verdicts()

    set_memoization(True)
    clear_caches()
    warm_forms, warm_verdicts = _corpus_forms_and_verdicts()
    stats = cache_stats()
    # The warm pass decided and normalized every query twice (check +
    # explicit normalize) — the memo layer must actually have been hit.
    assert stats["normalize"]["hits"] > 0

    assert warm_verdicts == cold_verdicts
    assert set(warm_forms) == set(cold_forms)
    for rule_id in cold_forms:
        assert warm_forms[rule_id] == cold_forms[rule_id], rule_id


# ---------------------------------------------------------------------------
# 3. Fingerprint stability
# ---------------------------------------------------------------------------


def sum_free_uexprs():
    """U-expressions with no binders: substitution round-trips exactly."""
    leaves = st.sampled_from([
        Rel("r", TupleVar("t")),
        Rel("q", TupleVar("t")),
        Pred(EqPred(Attr(TupleVar("t"), "a"), ConstVal(1))),
    ])

    def extend(children):
        return st.one_of(
            st.tuples(children, children).map(lambda ab: Add(ab)),
            st.tuples(children, children).map(lambda ab: Mul(ab)),
            children.map(Squash),
            children.map(not_),
        )

    return st.recursive(leaves, extend, max_leaves=8)


@settings(max_examples=60, deadline=None)
@given(expr=sum_free_uexprs())
def test_fingerprint_stable_under_substitute_rename_round_trip(expr):
    original = expr.fingerprint()
    renamed = substitute_tuple_var(expr, "t", TupleVar("u0"))
    restored = substitute_tuple_var(renamed, "u0", TupleVar("t"))
    assert restored == expr
    assert restored.fingerprint() == original
    # The rename itself is visible: `t` occurs free in every leaf.
    assert renamed.fingerprint() != original


@settings(max_examples=40, deadline=None)
@given(expr=uexprs())
def test_fingerprint_round_trip_alpha_stable_with_binders(expr):
    """With Sum binders, capture-avoidance may freshen names — the
    round-tripped expression stays alpha-equivalent (identical canonical
    normal form) even when not syntactically identical."""
    renamed = substitute_tuple_var(expr, "t", TupleVar("u0"))
    restored = substitute_tuple_var(renamed, "u0", TupleVar("t"))
    assert canonical_text(normalize(restored)) == canonical_text(normalize(expr))
    if restored == expr:
        assert restored.fingerprint() == expr.fingerprint()


@settings(max_examples=40, deadline=None)
@given(expr=uexprs())
def test_fingerprint_matches_structural_equality(expr):
    # A structurally equal twin built independently fingerprints equally.
    twin = substitute_tuple_var(expr, "no-such-var", TupleVar("x"))
    assert twin == expr
    assert twin.fingerprint() == expr.fingerprint()
    assert Squash(expr).fingerprint() != expr.fingerprint()


_FINGERPRINT_SNIPPET = """
import sys
sys.path.insert(0, {src!r})
from repro.usr.predicates import EqPred
from repro.usr.terms import Mul, Pred, Rel, Sum
from repro.usr.values import Attr, ConstVal, TupleVar
from repro.sql.schema import Schema

expr = Sum(
    "t", Schema.of("s", "a", "b"),
    Mul((
        Rel("r", TupleVar("t")),
        Pred(EqPred(Attr(TupleVar("t"), "a"), ConstVal(42))),
    )),
)
print(expr.fingerprint())
"""


def test_fingerprint_stable_across_processes_and_hash_seeds():
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    snippet = _FINGERPRINT_SNIPPET.format(src=os.path.abspath(src))
    digests = set()
    for seed in ("0", "1", "424242"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        out = subprocess.run(
            [sys.executable, "-c", snippet],
            env=env, capture_output=True, text=True, check=True,
        )
        digests.add(out.stdout.strip())
    assert len(digests) == 1, f"fingerprint varied across runs: {digests}"
    assert all(digests)


def test_fingerprint_of_forms_and_constraints():
    """Composite fingerprints: normal forms and constraint digests."""
    from repro.constraints.model import ConstraintSet
    from repro.sql.program import ForeignKeyConstraint, KeyConstraint

    form = normalize(Rel("r", TupleVar("t")))
    assert fingerprint(form) == fingerprint(normalize(Rel("r", TupleVar("t"))))

    key = KeyConstraint("r", ("k",))
    fk = ForeignKeyConstraint("s", ("r_k",), "r", ("k",))
    one = ConstraintSet([key], [fk])
    two = ConstraintSet([key], [fk])
    assert one.digest() == two.digest()
    assert one.digest() != ConstraintSet([key], []).digest()
