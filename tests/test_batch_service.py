"""Batch-verification service tests.

Covers the :class:`~repro.service.batch.BatchVerifier` contracts: worker
counts never change results or their order, a timed-out pair cannot poison
its siblings, errors are isolated per pair, the JSONL sink round-trips, and
the ``udp-prove batch`` CLI frontend drives the whole path.
"""

import json

import pytest

from repro import BatchPair, BatchVerifier, Verdict
from repro.frontend.cli import main
from repro.service import pairs_from_jsonl, pairs_from_program
from repro.udp.decide import DecisionOptions

from tests.conftest import EMP_PROGRAM, KEYED_PROGRAM, RS_PROGRAM


def sample_pairs():
    """A mixed workload: proved, not proved, unsupported, multi-program."""
    return [
        BatchPair(
            "eq-commute",
            "SELECT * FROM r x WHERE x.a = 1 AND x.b = 2",
            "SELECT * FROM r x WHERE x.b = 2 AND x.a = 1",
            RS_PROGRAM,
        ),
        BatchPair(
            "not-equal",
            "SELECT * FROM r x WHERE x.a = 1",
            "SELECT * FROM r x WHERE x.a = 2",
            RS_PROGRAM,
        ),
        BatchPair(
            "unsupported",
            "SELECT * FROM r x WHERE x.a IS NULL",
            "SELECT * FROM r x",
            RS_PROGRAM,
        ),
        BatchPair(
            "key-distinct",
            "SELECT * FROM r0 x",
            "SELECT DISTINCT * FROM r0 x",
            KEYED_PROGRAM,
        ),
        BatchPair(
            "emp-selfjoin",
            "SELECT e.ename AS ename FROM emp e, emp e2 WHERE e.empno = e2.empno",
            "SELECT e.ename AS ename FROM emp e",
            EMP_PROGRAM,
        ),
    ]


EXPECTED = {
    "eq-commute": "proved",
    "not-equal": "not_proved",
    "unsupported": "unsupported",
    "key-distinct": "proved",
    "emp-selfjoin": "proved",
}


def test_serial_run_verdicts_and_order():
    records = BatchVerifier(workers=1).run(sample_pairs())
    assert [r.pair_id for r in records] == list(EXPECTED)
    assert {r.pair_id: r.verdict for r in records} == EXPECTED
    assert [r.index for r in records] == list(range(len(EXPECTED)))


def test_one_vs_many_workers_identical_results():
    pairs = sample_pairs()
    serial = BatchVerifier(workers=1).run(pairs)
    # clamp_to_cores=False forces a real multiprocessing pool even on a
    # single-core machine — this must not change results or order.
    pooled = BatchVerifier(workers=3, clamp_to_cores=False).run(pairs)
    assert [(r.index, r.pair_id, r.verdict) for r in serial] == [
        (r.index, r.pair_id, r.verdict) for r in pooled
    ]


def test_timeout_pair_does_not_poison_siblings():
    pairs = sample_pairs()
    # A zero budget trips the engine's first deadline check.
    pairs.insert(
        2,
        BatchPair(
            "doomed",
            "SELECT * FROM r x WHERE x.a = 1",
            "SELECT * FROM r x WHERE 1 = x.a",
            RS_PROGRAM,
            timeout_seconds=0.0,
        ),
    )
    records = BatchVerifier(workers=1).run(pairs)
    by_id = {r.pair_id: r for r in records}
    assert by_id["doomed"].verdict == Verdict.TIMEOUT.value
    for pair_id, expected in EXPECTED.items():
        assert by_id[pair_id].verdict == expected


def test_error_pair_is_isolated():
    pairs = [
        BatchPair("broken", "SELECT", "SELECT", program="not a program !!"),
        *sample_pairs(),
    ]
    records = BatchVerifier(workers=1).run(pairs)
    assert records[0].pair_id == "broken"
    assert records[0].verdict == "error"
    assert records[0].reason  # carries the exception text
    assert {r.pair_id: r.verdict for r in records[1:]} == EXPECTED


def test_jsonl_sink_round_trip(tmp_path):
    out = tmp_path / "results.jsonl"
    records = BatchVerifier(workers=1).run_to_path(sample_pairs(), out)
    lines = out.read_text(encoding="utf-8").splitlines()
    assert len(lines) == len(records)
    parsed = [json.loads(line) for line in lines]
    assert [p["id"] for p in parsed] == list(EXPECTED)
    assert [p["verdict"] for p in parsed] == list(EXPECTED.values())
    assert all(p["elapsed_seconds"] >= 0 for p in parsed)


def test_per_pair_timeout_overrides_default():
    verifier = BatchVerifier(
        workers=1, options=DecisionOptions(timeout_seconds=0.0, collect_trace=False)
    )
    pairs = [
        BatchPair(
            "slow-ok",
            "SELECT * FROM r x WHERE x.a = 1",
            "SELECT * FROM r x WHERE 1 = x.a",
            RS_PROGRAM,
            timeout_seconds=30.0,
        ),
        BatchPair(
            "budgetless",
            "SELECT * FROM r x WHERE x.a = 1",
            "SELECT * FROM r x WHERE 1 = x.a",
            RS_PROGRAM,
        ),
    ]
    records = verifier.run(pairs)
    assert records[0].verdict == "proved"
    assert records[1].verdict == Verdict.TIMEOUT.value


def test_options_and_pipeline_are_mutually_exclusive():
    from repro.session import PipelineConfig

    with pytest.raises(ValueError, match="not both"):
        BatchVerifier(
            options=DecisionOptions(timeout_seconds=5.0),
            pipeline=PipelineConfig(),
        )
    # The legacy options view reflects whichever was given.
    verifier = BatchVerifier(options=DecisionOptions(timeout_seconds=5.0))
    assert verifier.options.timeout_seconds == 5.0


def test_effective_workers_clamped_to_cores():
    import os

    verifier = BatchVerifier(workers=64)
    assert verifier.effective_workers == min(64, os.cpu_count() or 1)
    forced = BatchVerifier(workers=64, clamp_to_cores=False)
    assert forced.effective_workers == 64


# -- streaming input and incremental flushing ---------------------------------


def test_run_accepts_generator_input():
    """Iterator inputs work end to end — nothing requires a Sequence."""
    records = BatchVerifier(workers=1).run(pair for pair in sample_pairs())
    assert {r.pair_id: r.verdict for r in records} == EXPECTED
    assert [r.index for r in records] == list(range(len(EXPECTED)))


def test_run_consumes_input_incrementally():
    """The pair stream is pulled through a bounded window, not slurped."""
    consumed = []

    def stream():
        for pair in sample_pairs():
            consumed.append(pair.pair_id)
            yield pair

    iterator = BatchVerifier(workers=1).run_iter(stream())
    assert consumed == []
    first = next(iterator)
    assert first.pair_id == "eq-commute"
    # At most the window (default 32 > 5 pairs, so all 5 here), but the
    # key property is nothing was consumed before iteration began.
    rest = list(iterator)
    assert [r.pair_id for r in rest] == list(EXPECTED)[1:]


def test_sink_flushes_incrementally():
    """Each record hits the sink as soon as it is decided."""

    class CountingSink:
        def __init__(self):
            self.lines = []

        def write(self, text):
            self.lines.append(text)

    sink = CountingSink()
    iterator = BatchVerifier(workers=1).run_iter(sample_pairs(), sink=sink)
    next(iterator)
    assert len(sink.lines) == 1  # first record flushed before the second runs
    list(iterator)
    assert len(sink.lines) == len(EXPECTED)
    parsed = [json.loads(line) for line in sink.lines]
    assert [p["id"] for p in parsed] == list(EXPECTED)


def test_records_carry_reason_codes():
    records = BatchVerifier(workers=1).run(sample_pairs())
    by_id = {r.pair_id: r for r in records}
    assert by_id["eq-commute"].reason_code == "isomorphic-canonical-forms"
    assert by_id["not-equal"].reason_code == "no-isomorphism"
    for record in records:
        assert record.reason_code  # never empty
        assert json.loads(json.dumps(record.to_json()))["reason_code"] == (
            record.reason_code
        )


def test_pipeline_override_adds_refutation():
    from repro.session import PipelineConfig

    verifier = BatchVerifier(
        workers=1,
        pipeline=PipelineConfig(
            tactics=("udp-prove", "model-check"), collect_trace=False
        ),
    )
    records = verifier.run(sample_pairs())
    by_id = {r.pair_id: r.reason_code for r in records}
    assert by_id["not-equal"] == "counterexample-found"
    # Verdicts are unchanged by the extra tactic.
    assert {r.pair_id: r.verdict for r in records} == EXPECTED


# -- input adapters -----------------------------------------------------------


def test_pairs_from_program_numbers_goals():
    text = RS_PROGRAM + (
        "verify SELECT * FROM r x == SELECT * FROM r y;\n"
        "verify SELECT * FROM r x == SELECT * FROM s y;\n"
    )
    pairs = pairs_from_program(text)
    assert [p.pair_id for p in pairs] == ["goal-1", "goal-2"]
    assert all(p.program == text for p in pairs)
    records = BatchVerifier(workers=1).run(pairs)
    assert [r.verdict for r in records] == ["proved", "not_proved"]


def test_pairs_from_jsonl_parses_fields():
    lines = [
        json.dumps(
            {"id": "a", "left": "L", "right": "R", "program": "P"}
        ),
        "",
        json.dumps({"left": "L2", "right": "R2", "timeout_seconds": 5.0}),
    ]
    pairs = pairs_from_jsonl(lines)
    assert pairs[0] == BatchPair("a", "L", "R", "P")
    assert pairs[1].pair_id == "2"  # positional default (line index)
    assert pairs[1].timeout_seconds == 5.0


# -- CLI ----------------------------------------------------------------------


def test_cli_batch_jsonl_input(tmp_path, capsys):
    source = tmp_path / "pairs.jsonl"
    source.write_text(
        json.dumps(
            {
                "id": "only",
                "left": "SELECT * FROM r x",
                "right": "SELECT * FROM r y",
                "program": RS_PROGRAM,
            }
        )
        + "\n",
        encoding="utf-8",
    )
    out = tmp_path / "out.jsonl"
    assert main(["batch", str(source), "--output", str(out)]) == 0
    record = json.loads(out.read_text(encoding="utf-8"))
    assert record["id"] == "only"
    assert record["verdict"] == "proved"
    assert "batch: 1 pairs" in capsys.readouterr().err


def test_cli_batch_program_input(tmp_path, capsys):
    source = tmp_path / "goals.cos"
    source.write_text(
        RS_PROGRAM + "verify SELECT * FROM r x == SELECT * FROM r y;",
        encoding="utf-8",
    )
    assert main(["batch", str(source)]) == 0
    captured = capsys.readouterr()
    assert '"verdict": "proved"' in captured.out


def test_cli_batch_corpus_smoke(capsys):
    assert main(["batch", "--corpus"]) == 0
    captured = capsys.readouterr()
    assert "batch: 91 pairs" in captured.err


def test_cli_batch_requires_input():
    assert main(["batch"]) == 2


def test_cli_batch_error_exit_code(tmp_path):
    source = tmp_path / "pairs.jsonl"
    source.write_text(
        json.dumps(
            {"id": "bad", "left": "SELECT", "right": "SELECT", "program": "zzz"}
        )
        + "\n",
        encoding="utf-8",
    )
    out = tmp_path / "out.jsonl"
    assert main(["batch", str(source), "--output", str(out)]) == 1
