"""Finite-model interpreter tests, including the equality axioms (12)-(15)."""

import pytest

from repro.errors import EvaluationError
from repro.semirings import (
    BooleanSemiring,
    Interpretation,
    NaturalsSemiring,
)
from repro.semirings.interp import tuple_key
from repro.sql.schema import Schema
from repro.usr.predicates import AtomPred, EqPred, NePred
from repro.usr.terms import One, Pred, Rel, Sum, Zero, add, mul, not_, squash
from repro.usr.values import Agg, Attr, ConcatTuple, ConstVal, Func, TupleCons, TupleVar

S = Schema.of("s", "a")
T = TupleVar("t")
N = NaturalsSemiring()


def model(rows_r=(), universe=(0, 1)):
    table = {}
    for row in rows_r:
        key = tuple_key(row)
        table[key] = table.get(key, 0) + 1
    return Interpretation(N, list(universe), {"r": table})


def test_relation_multiplicity():
    m = model([{"a": 1}, {"a": 1}])
    assert m.evaluate(Rel("r", T), {"t": {"a": 1}}) == 2
    assert m.evaluate(Rel("r", T), {"t": {"a": 0}}) == 0


def test_sum_counts_whole_bag():
    m = model([{"a": 0}, {"a": 1}, {"a": 1}])
    assert m.evaluate(Sum("t", S, Rel("r", T))) == 3


def test_eq14_uniqueness_of_equality():
    """Σ_t [t = e] = 1 in any finite model whose universe covers e."""
    m = model()
    e = TupleCons((("a", ConstVal(1)),))
    expr = Sum("t", S, Pred(EqPred(T, e)))
    assert m.evaluate(expr) == 1


def test_eq15_sum_elimination():
    """Σ_t [t = e] × f(t) = f(e)."""
    m = model([{"a": 1}, {"a": 1}])
    e = TupleCons((("a", ConstVal(1)),))
    lhs = Sum("t", S, mul(Pred(EqPred(T, e)), Rel("r", T)))
    rhs = Rel("r", e)
    assert m.evaluate(lhs) == m.evaluate(rhs) == 2


def test_eq12_excluded_middle():
    m = model()
    left = Attr(T, "a")
    expr = add(Pred(EqPred(left, ConstVal(0))), Pred(NePred(left, ConstVal(0))))
    assert m.evaluate(expr, {"t": {"a": 0}}) == 1
    assert m.evaluate(expr, {"t": {"a": 1}}) == 1


def test_squash_and_not():
    m = model([{"a": 1}])
    body = Sum("t", S, Rel("r", T))
    assert m.evaluate(squash(body)) == 1
    assert m.evaluate(not_(body)) == 0
    empty = model([])
    assert empty.evaluate(squash(body)) == 0
    assert empty.evaluate(not_(body)) == 1


def test_interpreted_comparison_atoms():
    m = model()
    lt = Pred(AtomPred("<", (ConstVal(1), ConstVal(2))))
    assert m.evaluate(lt) == 1
    ge = Pred(AtomPred("<", (ConstVal(2), ConstVal(1))))
    assert m.evaluate(ge) == 0


def test_negated_atom_is_complement():
    m = model()
    atom = Pred(AtomPred("<", (Attr(T, "a"), ConstVal(1))))
    negated = Pred(AtomPred("¬<", (Attr(T, "a"), ConstVal(1))))
    env = {"t": {"a": 0}}
    assert m.evaluate(atom, env) + m.evaluate(negated, env) == 1


def test_unknown_atoms_deterministic():
    m = model()
    atom = Pred(AtomPred("mystery", (ConstVal(3),)))
    assert m.evaluate(atom) == m.evaluate(atom)


def test_func_values_opaque_but_congruent():
    m = model()
    f_of_1 = Func("f", (ConstVal(1),))
    expr = Pred(EqPred(f_of_1, Func("f", (ConstVal(1),))))
    assert m.evaluate(expr) == 1
    expr2 = Pred(EqPred(f_of_1, Func("f", (ConstVal(0),))))
    assert m.evaluate(expr2) == 0


def test_agg_token_depends_on_body_relation():
    rows = [{"a": 1}, {"a": 1}]  # multiplicity 2, so squaring is visible
    m = model(rows)
    agg1 = Agg("sum", "t", S, Rel("r", TupleVar("t")))
    agg2 = Agg("sum", "t", S, mul(Rel("r", TupleVar("t")), Rel("r", TupleVar("t"))))
    v1 = m.eval_value(agg1, {})
    v2 = m.eval_value(agg2, {})
    assert v1[0] == "agg:sum"
    assert v1 != v2  # multiplicity 2 vs 4 in the recorded K-relation
    # Identical bodies give identical tokens.
    assert m.eval_value(agg1, {}) == m.eval_value(agg1, {})


def test_unbound_variable_raises():
    m = model()
    with pytest.raises(EvaluationError):
        m.evaluate(Rel("r", T), {})


def test_generic_schema_rejected():
    m = model()
    generic = Schema.of("g", "a", generic=True)
    with pytest.raises(EvaluationError):
        m.evaluate(Sum("t", generic, One))


def test_concat_tuple_evaluation_dedups_names():
    m = model()
    s2 = Schema.of("x", "a")
    concat = ConcatTuple(((TupleVar("t"), s2), (TupleVar("u"), s2)))
    value = m.eval_value(concat, {"t": {"a": 1}, "u": {"a": 0}})
    assert value == {"a": 1, "a_1": 0}


def test_boolean_semiring_evaluation():
    table = {tuple_key({"a": 1}): True}
    m = Interpretation(BooleanSemiring(), [0, 1], {"r": table})
    assert m.evaluate(Sum("t", S, Rel("r", T))) is True
