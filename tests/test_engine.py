"""Bag-semantics engine tests: database, evaluation, generator."""

import pytest

from repro.engine import Database, DatabaseGenerator, QueryEvaluator, evaluate_query
from repro.engine.database import bag_of, freeze_row
from repro.errors import EvaluationError, SchemaError
from repro.sql.desugar import desugar_query
from repro.sql.parser import parse_query
from repro.sql.scope import resolve_query

from tests.conftest import make_catalog


@pytest.fixture
def catalog():
    return make_catalog(("r", "a", "b"), ("s", "c", "d"))


@pytest.fixture
def db(catalog):
    database = Database(catalog)
    database.insert_all(
        "r",
        [{"a": 0, "b": 0}, {"a": 1, "b": 0}, {"a": 1, "b": 1}, {"a": 1, "b": 1}],
    )
    database.insert_all("s", [{"c": 1, "d": 0}, {"c": 2, "d": 1}])
    return database


def run(db, text):
    resolved, _ = resolve_query(parse_query(text), db.catalog)
    return evaluate_query(desugar_query(resolved), db)


# -- database ------------------------------------------------------------------


def test_insert_validates_schema(catalog):
    database = Database(catalog)
    with pytest.raises(SchemaError):
        database.insert("r", {"a": 1})  # missing b
    with pytest.raises(EvaluationError):
        database.insert("zz", {"a": 1})


def test_rows_are_copies(db):
    rows = db.rows("r")
    rows[0]["a"] = 99
    assert db.rows("r")[0]["a"] != 99


def test_key_violation_detected(catalog):
    catalog.add_key("r", ("a",))
    database = Database(catalog)
    database.insert_all("r", [{"a": 1, "b": 0}, {"a": 1, "b": 2}])
    assert not database.satisfies_constraints()


def test_fk_violation_detected():
    catalog = make_catalog(("dept", "dk"), ("emp", "eid", "dno"))
    catalog.add_key("dept", ("dk",))
    catalog.add_foreign_key("emp", ("dno",), "dept", ("dk",))
    database = Database(catalog)
    database.insert("emp", {"eid": 1, "dno": 7})
    assert any("dangling" in p for p in database.violated_constraints())


# -- evaluation -----------------------------------------------------------------


def test_select_star(db):
    assert len(run(db, "SELECT * FROM r x")) == 4


def test_filter(db):
    rows = run(db, "SELECT * FROM r x WHERE x.a = 1")
    assert len(rows) == 3


def test_projection_renames(db):
    rows = run(db, "SELECT x.a AS out FROM r x WHERE x.b = 1")
    assert rows == [{"out": 1}, {"out": 1}]


def test_join(db):
    rows = run(db, "SELECT x.a AS a, y.d AS d FROM r x, s y WHERE x.a = y.c")
    assert bag_of(rows) == {(("a", 1), ("d", 0)): 3}


def test_distinct(db):
    rows = run(db, "SELECT DISTINCT x.a AS a FROM r x")
    assert sorted(row["a"] for row in rows) == [0, 1]


def test_union_all_concatenates(db):
    rows = run(db, "SELECT * FROM r x UNION ALL SELECT * FROM r y")
    assert len(rows) == 8


def test_except_removes_all_copies(db):
    rows = run(db, "SELECT * FROM r x EXCEPT SELECT * FROM r y WHERE y.b = 1")
    assert bag_of(rows) == bag_of([{"a": 0, "b": 0}, {"a": 1, "b": 0}])


def test_exists_correlated(db):
    rows = run(
        db,
        "SELECT * FROM r x WHERE EXISTS (SELECT * FROM s y WHERE y.c = x.a)",
    )
    assert all(row["a"] == 1 for row in rows)
    assert len(rows) == 3


def test_not_exists(db):
    rows = run(
        db,
        "SELECT * FROM r x WHERE NOT EXISTS (SELECT * FROM s y WHERE y.c = x.a)",
    )
    assert all(row["a"] == 0 for row in rows)


def test_self_join_dedup_columns(db):
    rows = run(db, "SELECT * FROM s x, s y")
    assert set(rows[0].keys()) == {"c", "d", "c_1", "d_1"}


def test_group_by_aggregates(db):
    rows = run(
        db, "SELECT x.a AS a, count(*) AS c FROM r x GROUP BY x.a"
    )
    out = {row["a"]: row["c"] for row in rows}
    assert out == {0: 1, 1: 3}


def test_group_by_sum(db):
    rows = run(db, "SELECT x.a AS a, sum(x.b) AS s FROM r x GROUP BY x.a")
    out = {row["a"]: row["s"] for row in rows}
    assert out == {0: 0, 1: 2}


def test_having_filters_groups(db):
    rows = run(
        db,
        "SELECT x.a AS a, count(*) AS c FROM r x GROUP BY x.a HAVING count(*) > 1",
    )
    assert rows == [{"a": 1, "c": 3}]


def test_arithmetic_functions(db):
    rows = run(db, "SELECT * FROM r x WHERE x.a + 1 = 2")
    assert all(row["a"] == 1 for row in rows)


def test_comparisons(db):
    assert len(run(db, "SELECT * FROM r x WHERE x.a < 1")) == 1
    assert len(run(db, "SELECT * FROM r x WHERE x.a <= 1")) == 4
    assert len(run(db, "SELECT * FROM r x WHERE x.a <> 0")) == 3


# -- generator ------------------------------------------------------------------


def test_generator_respects_keys_and_fks():
    catalog = make_catalog(("dept", "dk"), ("emp", "eid", "dno"))
    catalog.add_key("dept", ("dk",))
    catalog.add_key("emp", ("eid",))
    catalog.add_foreign_key("emp", ("dno",), "dept", ("dk",))
    generator = DatabaseGenerator(catalog, seed=7)
    for database in generator.generate_many(5, max_rows=3):
        assert database.satisfies_constraints()


def test_generator_deterministic_per_seed(catalog):
    first = DatabaseGenerator(catalog, seed=3).generate()
    second = DatabaseGenerator(catalog, seed=3).generate()
    assert first.describe() == second.describe()


def test_exhaustive_small_includes_empty(catalog):
    databases = DatabaseGenerator(catalog).exhaustive_small(1)
    assert any(database.size() == 0 for database in databases)
    assert all(database.satisfies_constraints() for database in databases)
