"""Chaos suite: seeded fault injection against the whole serving stack.

Every test here runs under a deterministic :class:`repro.faults.FaultPlan`
(or a controlled fake), so the failure paths — store circuit breaker,
thread watchdog, crash-respawn, graceful drain, client retries — are
exercised reproducibly instead of hoped-for.  ``UDP_CHAOS_SEED`` picks
the plan seed (CI runs at least two); the schedule is bit-identical per
seed, so a failure reproduces with::

    UDP_CHAOS_SEED=1 python -m pytest tests/test_chaos.py -x -q

The end-to-end gate at the bottom is the PR's acceptance bar: under a
plan combining store write failures, a member crash, and a member hang,
with a SIGTERM landing mid-batch, both front ends must return only
structured records (zero 500s, zero dropped in-flight lines), exit 0
after draining, and a post-recovery replay of the full 91-rule corpus
must be verdict-identical to a fault-free run.
"""

import json
import os
import re
import signal
import socket
import sqlite3
import subprocess
import sys
import threading
import time
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.client import ClientError, RetryPolicy, VerifyClient
from repro.corpus import as_verify_requests
from repro.faults import (
    FaultPlan,
    FaultRule,
    fault_hit,
    install_fault_plan,
    maybe_fail,
)
from repro.server import VerificationServer
from repro.server.stats import jittered_retry_after, service_health
from repro.session import Session
from repro.store import FailoverStore

from tests.conftest import RS_PROGRAM

#: The seed the whole suite runs under; CI exercises at least two.
CHAOS_SEED = int(os.environ.get("UDP_CHAOS_SEED", "0"))


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """Every test starts and ends with fault injection disabled."""
    install_fault_plan(None)
    yield
    install_fault_plan(None)


# -- FaultPlan semantics ------------------------------------------------------


def test_fault_rule_rejects_unknown_point():
    with pytest.raises(ValueError, match="unknown fault point"):
        FaultRule("store.explode")
    with pytest.raises(ValueError, match="probability"):
        FaultRule("store.read", probability=1.5)
    with pytest.raises(ValueError, match="count"):
        FaultRule("store.read", count=0)


def test_fault_spec_parses_full_grammar():
    plan = FaultPlan.from_spec(
        "store.write:after=5;member.crash:after=3,count=1;"
        "member.hang:count=1,delay=2.5;socket.slow:p=0.25",
        seed=CHAOS_SEED,
    )
    points = plan.snapshot()["points"]
    assert points["store.write"]["after"] == 5
    assert points["member.crash"]["count"] == 1
    assert points["member.hang"]["delay"] == 2.5
    assert points["socket.slow"]["probability"] == 0.25


def test_fault_spec_rejects_malformed():
    with pytest.raises(ValueError, match="unknown fault point"):
        FaultPlan.from_spec("store.explode")
    with pytest.raises(ValueError, match="key=value"):
        FaultPlan.from_spec("store.read:after")
    with pytest.raises(ValueError, match="unknown fault parameter"):
        FaultPlan.from_spec("store.read:frequency=2")
    with pytest.raises(ValueError, match="names no points"):
        FaultPlan.from_spec(" ; ")


def test_fault_plan_after_and_count_schedule():
    plan = FaultPlan([FaultRule("store.read", after=2, count=2)])
    fired = [plan.check("store.read") is not None for _ in range(6)]
    assert fired == [False, False, True, True, False, False]
    snap = plan.snapshot()["points"]["store.read"]
    assert snap["hits"] == 6
    assert snap["fired"] == 2


def test_fault_plan_probability_is_deterministic_per_seed():
    def schedule(seed):
        plan = FaultPlan(
            [FaultRule("socket.slow", probability=0.5)], seed=seed
        )
        return [plan.check("socket.slow") is not None for _ in range(64)]

    assert schedule(CHAOS_SEED) == schedule(CHAOS_SEED)
    # Some fire, some don't: it really is probabilistic, not constant.
    assert 0 < sum(schedule(CHAOS_SEED)) < 64


def test_fault_hooks_are_inert_without_a_plan():
    assert fault_hit("store.read") is None
    maybe_fail("store.write")  # must not raise


# -- the store circuit breaker ------------------------------------------------


class _FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


class _FlakyStore:
    """A memo backend whose disk can be switched sick/healthy."""

    backend = "fake"
    supports_verdicts = False
    supports_groups = False

    def __init__(self):
        self.data = {}
        self.sick = False
        self.calls = 0

    def _guard(self):
        self.calls += 1
        if self.sick:
            raise OSError("disk on fire")

    def get(self, key):
        self._guard()
        return self.data.get(key)

    def put(self, key, value, **kwargs):
        self._guard()
        self.data[key] = value

    def clear(self):
        self._guard()
        self.data.clear()

    def stats(self):
        return {"backend": self.backend, "entries": len(self.data)}

    def close(self):
        pass


def test_breaker_trips_shadows_probes_and_replays():
    clock = _FakeClock()
    inner = _FlakyStore()
    store = FailoverStore(inner, trip_after=3, probe_base=0.5, clock=clock)

    store.put("warm", 1)
    assert store.health()["state"] == "ok"

    inner.sick = True
    for i in range(3):
        store.put(f"k{i}", i)  # swallowed; 3rd failure opens the circuit
    health = store.health()
    assert health["state"] == "degraded"
    assert health["trips"] == 1
    assert "disk on fire" in health["last_error"]

    # Degraded: served from the shadow, the sick backend is not touched.
    calls_before = inner.calls
    store.put("shadowed", 42)
    assert store.get("shadowed") == 42
    assert inner.calls == calls_before
    assert store.health()["shadow_serves"] >= 2

    # Probe while still sick: reopens with a doubled backoff.
    clock.now += 0.6
    assert store.get("shadowed") == 42  # the probe itself fails, shadow answers
    assert store.health()["state"] == "degraded"
    assert store.health()["next_probe_in"] == pytest.approx(1.0, abs=0.01)

    # Heal the disk; after the backoff the next op probes and recovers.
    inner.sick = False
    clock.now += 1.1
    store.put("post", 7)
    health = store.health()
    assert health["state"] == "ok"
    assert health["recoveries"] == 1
    # Shadow writes were replayed: nothing proven during the outage lost.
    assert inner.data["shadowed"] == 42
    assert all(f"k{i}" in inner.data for i in range(3))
    assert inner.data["post"] == 7
    assert health["shadow_entries"] == 0


def test_breaker_backoff_is_capped():
    clock = _FakeClock()
    inner = _FlakyStore()
    inner.sick = True
    store = FailoverStore(
        inner, trip_after=1, probe_base=0.5, probe_cap=2.0, clock=clock
    )
    store.put("x", 1)  # trips immediately
    backoffs = []
    for _ in range(4):
        clock.now += 10.0  # always past the probe interval
        store.put("x", 1)  # probe fails, backoff doubles
        backoffs.append(store.health()["next_probe_in"])
    assert backoffs == [
        pytest.approx(1.0),
        pytest.approx(2.0),
        pytest.approx(2.0),
        pytest.approx(2.0),
    ]


def test_store_fault_points_fire_inside_the_wrapper():
    """Injected store faults trip the breaker even on a healthy disk."""
    install_fault_plan(
        FaultPlan([FaultRule("store.write", count=3)], seed=CHAOS_SEED)
    )
    clock = _FakeClock()
    inner = _FlakyStore()
    store = FailoverStore(inner, trip_after=3, probe_base=0.5, clock=clock)
    for i in range(3):
        store.put(f"k{i}", i)
    assert store.health()["state"] == "degraded"
    assert "injected fault" in store.health()["last_error"]
    install_fault_plan(None)
    clock.now += 1.0
    store.put("probe", 1)  # fault budget spent: the probe recovers
    assert store.health()["state"] == "ok"
    assert inner.data["probe"] == 1
    assert all(f"k{i}" in inner.data for i in range(3))


# -- /healthz + service_health ------------------------------------------------


class _FakePool:
    def __init__(self, health=None, wedged=0):
        self._health = health
        self._wedged = wedged

    def store_health(self):
        return self._health

    def degraded_members(self):
        return self._wedged


def test_service_health_reports_ok_degraded_and_draining():
    assert service_health(_FakePool()) == ("ok", [])
    status, problems = service_health(
        _FakePool(health={"state": "degraded"})
    )
    assert status == "degraded"
    assert any("circuit breaker" in p for p in problems)
    status, problems = service_health(_FakePool(wedged=2))
    assert status == "degraded"
    assert any("2 pool members wedged" in p for p in problems)
    status, problems = service_health(_FakePool(), draining=True)
    assert status == "draining"


def test_retry_after_jitter_is_bounded_and_varied():
    values = [jittered_retry_after(8.0) for _ in range(256)]
    assert all(8.0 <= v <= 12.0 for v in values)
    assert len({round(v, 6) for v in values}) > 16


# -- the thread-mode watchdog -------------------------------------------------


def _post_json(url, path, obj, timeout=30):
    request = urllib.request.Request(
        url + path,
        data=json.dumps(obj).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _get_json(url, path, timeout=10):
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return json.loads(response.read())


PAIR = {
    "left": "SELECT * FROM r x WHERE x.a = 1",
    "right": "SELECT * FROM r x WHERE 1 = x.a",
}


def test_thread_watchdog_times_out_marks_degraded_and_recovers():
    session = Session.from_program_text(RS_PROGRAM)
    with VerificationServer(
        session, pool_size=1, pool_mode="thread", member_timeout=0.5
    ) as server:
        # A clean request first, so the hang hits a warm member.
        record = _post_json(server.url, "/verify", PAIR)
        assert record["verdict"] == "proved"

        install_fault_plan(
            FaultPlan(
                [FaultRule("member.hang", count=1, delay=2.0)],
                seed=CHAOS_SEED,
            )
        )
        record = _post_json(server.url, "/verify", dict(PAIR, id="wedge"))
        assert record["verdict"] == "timeout"
        assert record["reason_code"] == "budget-exhausted"
        assert "degraded" in record["reason"]

        # The wedged member is visible everywhere it should be.
        stats = _get_json(server.url, "/stats")
        assert stats["pool"]["degraded_members"] == 1
        health = _get_json(server.url, "/healthz")
        assert health["status"] == "degraded"
        assert any("wedged" in p for p in health["problems"])

        # The hang finishes; the watchdog notices the late return and
        # puts the member back in rotation.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            stats = _get_json(server.url, "/stats")
            if stats["pool"]["degraded_members"] == 0:
                break
            time.sleep(0.1)
        assert stats["pool"]["degraded_members"] == 0
        assert stats["pool"]["watchdog_recoveries"] == 1
        assert _get_json(server.url, "/healthz")["status"] == "ok"

        # And it proves again.
        record = _post_json(server.url, "/verify", dict(PAIR, id="after"))
        assert record["verdict"] == "proved"


def test_healthz_degraded_while_store_breaker_open(tmp_path):
    session = Session.from_program_text(RS_PROGRAM)
    with VerificationServer(
        session,
        pool_size=1,
        pool_mode="thread",
        store_path=str(tmp_path / "memo.db"),
    ) as server:
        assert _get_json(server.url, "/healthz")["status"] == "ok"
        # A sick disk fails reads and writes alike (write-only failures
        # interleaved with healthy reads never look *consecutive* to the
        # breaker, by design).  A few proves trip it — and the service
        # keeps answering verdicts while degraded.
        install_fault_plan(
            FaultPlan(
                [FaultRule("store.read"), FaultRule("store.write")],
                seed=CHAOS_SEED,
            )
        )
        for i in range(4):
            record = _post_json(server.url, "/verify", dict(PAIR, id=f"w{i}"))
            assert record["verdict"] == "proved"
        health = _get_json(server.url, "/healthz")
        assert health["status"] == "degraded"
        assert any("circuit breaker" in p for p in health["problems"])
        stats = _get_json(server.url, "/stats")
        store_health = stats["pool"]["store"]["health"]
        assert store_health["state"] != "ok"
        assert store_health["trips"] >= 1


# -- VerifyClient retries -----------------------------------------------------


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Answers from ``server.script``, a list of (status, headers, body)."""

    def do_POST(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            self.rfile.read(length)
        status, headers, body = self.server.pop_step()
        payload = body.encode("utf-8")
        self.send_response(status)
        for key, value in headers.items():
            self.send_header(key, value)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, *args):
        pass


class _ScriptedServer(ThreadingHTTPServer):
    def __init__(self, script):
        super().__init__(("127.0.0.1", 0), _ScriptedHandler)
        self.script = list(script)
        self._lock = threading.Lock()

    def pop_step(self):
        with self._lock:
            if len(self.script) > 1:
                return self.script.pop(0)
            return self.script[0]

    @property
    def url(self):
        return f"http://127.0.0.1:{self.server_address[1]}"


@pytest.fixture
def scripted_server():
    servers = []

    def make(script):
        server = _ScriptedServer(script)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.shutdown()
        server.server_close()


SHED = json.dumps({"error": {"code": "saturated", "retry_after_seconds": 2.5}})
OK = json.dumps({"id": "x", "verdict": "proved", "reason_code": "ok"})


def test_client_retries_503_honoring_retry_after(scripted_server):
    server = scripted_server([
        (503, {"Retry-After": "3"}, SHED),
        (503, {}, SHED),  # no header: the body hint is used instead
        (200, {}, OK),
    ])
    sleeps = []
    client = VerifyClient(
        server.url,
        policy=RetryPolicy(max_attempts=4, base_delay=0.25, seed=CHAOS_SEED),
        sleep=sleeps.append,
    )
    record = client.verify(PAIR)
    assert record["verdict"] == "proved"
    assert client.retries == 2
    assert sleeps == [pytest.approx(3.0), pytest.approx(2.5)]


def test_client_backs_off_exponentially_without_a_hint(scripted_server):
    server = scripted_server([(503, {}, "not json")])
    sleeps = []
    client = VerifyClient(
        server.url,
        policy=RetryPolicy(
            max_attempts=4, base_delay=1.0, max_delay=16.0,
            jitter=0.0, seed=CHAOS_SEED,
        ),
        sleep=sleeps.append,
    )
    with pytest.raises(ClientError) as excinfo:
        client.verify(PAIR)
    assert excinfo.value.last_status == 503
    assert excinfo.value.attempts == 4
    assert sleeps == [1.0, 2.0, 4.0]  # capped exponential, jitter off


def test_client_does_not_retry_client_errors(scripted_server):
    server = scripted_server([(400, {}, json.dumps({"error": {"code": "bad"}}))])
    client = VerifyClient(server.url, policy=RetryPolicy(max_attempts=4))
    with pytest.raises(ClientError) as excinfo:
        client.verify(PAIR)
    assert excinfo.value.last_status == 400
    assert excinfo.value.attempts == 1
    assert client.retries == 0


def test_client_retries_connection_refused():
    # Bind-then-close gives a port with nothing listening.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    sleeps = []
    client = VerifyClient(
        f"http://127.0.0.1:{port}",
        timeout=2.0,
        policy=RetryPolicy(max_attempts=3, base_delay=0.01, seed=CHAOS_SEED),
        sleep=sleeps.append,
    )
    with pytest.raises(ClientError) as excinfo:
        client.health()
    assert excinfo.value.last_status is None
    assert excinfo.value.attempts == 3
    assert len(sleeps) == 2


def test_client_socket_slow_fault_point_fires(scripted_server):
    server = scripted_server([(200, {}, OK)])
    plan = FaultPlan(
        [FaultRule("socket.slow", count=1, delay=0.05)], seed=CHAOS_SEED
    )
    install_fault_plan(plan)
    client = VerifyClient(server.url)
    started = time.monotonic()
    client.verify(PAIR)
    elapsed = time.monotonic() - started
    assert plan.snapshot()["points"]["socket.slow"]["fired"] == 1
    assert elapsed >= 0.05


# -- crash-during-ingest durability ------------------------------------------


CLUSTER_CORPUS = [
    "SELECT * FROM r x WHERE x.a = 1 AND x.b = 2",
    "SELECT * FROM r x WHERE x.b = 2 AND x.a = 1",
    "SELECT * FROM r x WHERE x.a = 2",
    "SELECT * FROM r y WHERE 2 = y.a",
    "SELECT * FROM (SELECT * FROM r y WHERE y.a = 1) x WHERE x.b = 2",
]

_KILL_CHILD = """
import json, os, signal, sys
from repro.hashcons_store import install_shared_store
from repro.service.clustering import ClusterEngine
from repro.session import Session
from repro.store import open_store

program, store_path, kill_after = sys.argv[1], sys.argv[2], int(sys.argv[3])
queries = json.load(sys.stdin)
store = open_store(store_path, backend="sqlite")
install_shared_store(store)
engine = ClusterEngine(Session.from_program_text(program), store=store)
for index, query in enumerate(queries):
    engine.place(query)
    if index + 1 == kill_after:
        # Die the way a crash does: no flush, no close, no goodbye.
        os.kill(os.getpid(), signal.SIGKILL)
print("survived", file=sys.stderr)
sys.exit(3)
"""

_RESUME_CHILD = """
import json, sys
from repro.hashcons_store import install_shared_store
from repro.service.clustering import ClusterEngine
from repro.session import Session, tactic_invocations
from repro.store import open_store

program, store_path = sys.argv[1], sys.argv[2]
queries = json.load(sys.stdin)
store = open_store(store_path, backend="sqlite")
install_shared_store(store)
engine = ClusterEngine(Session.from_program_text(program), store=store)
records = engine.place_all(queries)
out = {
    "records": records,
    "stats": engine.stats.as_dict(),
    "tactics": tactic_invocations(),
}
install_shared_store(None)
store.close()
print(json.dumps(out))
"""


def _child_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def test_sigkill_mid_ingest_leaves_no_torn_state(tmp_path):
    """SIGKILL mid ``/cluster`` stream: the database recovers intact and
    a restart answers the ingested prefix durably with zero decisions."""
    store_path = str(tmp_path / "groups.db")
    kill_after = 3
    completed = subprocess.run(
        [sys.executable, "-c", _KILL_CHILD, RS_PROGRAM, store_path,
         str(kill_after)],
        input=json.dumps(CLUSTER_CORPUS),
        env=_child_env(),
        capture_output=True,
        text=True,
        timeout=120,
        check=False,
    )
    assert completed.returncode == -signal.SIGKILL, completed.stderr
    assert "survived" not in completed.stderr

    # No torn state: the database passes integrity checks and both the
    # groups and verdicts tables are readable.
    conn = sqlite3.connect(store_path)
    try:
        assert conn.execute("PRAGMA integrity_check").fetchone()[0] == "ok"
        groups = conn.execute("SELECT COUNT(*) FROM groups").fetchone()[0]
        conn.execute("SELECT COUNT(*) FROM verdicts").fetchone()
    finally:
        conn.close()
    # The prefix created two groups (q0+q1 provably equal, q2 alone) and
    # every commit is atomic: the count reflects whole placements only.
    assert groups == 2

    # Restart-resume over the ingested prefix: every placement answered
    # from the durable index, zero decision-procedure invocations.
    resumed = subprocess.run(
        [sys.executable, "-c", _RESUME_CHILD, RS_PROGRAM, store_path],
        input=json.dumps(CLUSTER_CORPUS[:kill_after]),
        env=_child_env(),
        capture_output=True,
        text=True,
        timeout=120,
        check=False,
    )
    assert resumed.returncode == 0, resumed.stderr
    out = json.loads(resumed.stdout.splitlines()[-1])
    assert out["stats"]["decisions"] == 0
    assert out["tactics"] == 0
    groups_seen = {record["group"] for record in out["records"]}
    assert len(groups_seen) == 2


# -- the end-to-end chaos gate ------------------------------------------------


#: Store failure + a member crash + a member hang, all on one schedule.
CHAOS_SPEC = (
    "store.read:after=5;"
    "store.write:after=5;"
    "member.crash:after=3,count=1;"
    "member.hang:after=6,count=1,delay=2"
)

_BANNER = re.compile(r"listening on (http://\S+)")


class _ServeProcess:
    """``udp-prove serve`` as a subprocess, stderr tailed on a thread."""

    def __init__(self, extra_args, tmp_path, tag):
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.frontend.cli", "serve",
             "--port", "0", "--quiet", *extra_args],
            env=_child_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.stderr_lines = []
        self.url = None
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            line = self.proc.stderr.readline()
            if not line:
                break
            self.stderr_lines.append(line)
            match = _BANNER.search(line)
            if match:
                self.url = match.group(1)
                break
        if self.url is None:
            self.proc.kill()
            raise AssertionError(
                f"{tag}: no listening banner; stderr so far: "
                + "".join(self.stderr_lines)
            )
        self._drainer = threading.Thread(target=self._drain_stderr, daemon=True)
        self._drainer.start()

    def _drain_stderr(self):
        for line in self.proc.stderr:
            self.stderr_lines.append(line)

    def stderr_text(self):
        return "".join(self.stderr_lines)

    def terminate_and_wait(self, timeout=90):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


def _corpus_jsonl():
    requests = as_verify_requests(None)
    lines = [json.dumps(request.to_json()) for request in requests]
    return len(lines), ("\n".join(lines) + "\n").encode("utf-8")


def _post_batch(url, body, timeout=120):
    request = urllib.request.Request(
        url + "/verify/batch",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        assert response.status == 200
        return [
            json.loads(line)
            for line in response.read().decode("utf-8").splitlines()
            if line.strip()
        ]


def _verdict_map(records):
    return {
        record["id"]: record["verdict"]
        for record in records
        if "verdict" in record
    }


_BASELINE = {}


def _fault_free_baseline():
    """id → verdict for the 91-rule corpus with no faults, computed once."""
    if not _BASELINE:
        session = Session()
        with VerificationServer(
            session, pool_size=2, pool_mode="thread", max_inflight=8
        ) as server:
            count, body = _corpus_jsonl()
            records = _post_batch(server.url, body)
            assert len(records) == count
        _BASELINE.update(_verdict_map(records))
    return dict(_BASELINE)


@pytest.mark.parametrize("front_end", ["threaded", "frontdoor"])
def test_chaos_gate_end_to_end(front_end, tmp_path):
    """The acceptance bar: faults + SIGTERM mid-batch, only structured
    records, exit 0 after drain, verdict-identical post-recovery replay."""
    store_path = str(tmp_path / f"chaos-{front_end}.db")
    common = [
        "--store", store_path,
        "--pool-size", "2",
        "--pool-mode", "process",
        "--member-timeout", "5",
        "--drain-timeout", "30",
    ]
    if front_end == "frontdoor":
        common.append("--frontdoor")

    count, body = _corpus_jsonl()
    serve = _ServeProcess(
        common + ["--faults", CHAOS_SPEC, "--fault-seed", str(CHAOS_SEED)],
        tmp_path, f"{front_end}-faulted",
    )
    try:
        assert "CHAOS fault plan active" in serve.stderr_text()
        result = {}

        def stream_batch():
            try:
                result["records"] = _post_batch(serve.url, body)
            except Exception as err:  # noqa: BLE001 - surfaced below
                result["error"] = err

        streamer = threading.Thread(target=stream_batch)
        streamer.start()
        time.sleep(0.5)  # let the batch get going, then pull the plug
        exit_code = serve.terminate_and_wait()
        streamer.join(timeout=120)
        assert not streamer.is_alive(), "batch never completed"

        # Zero 500s, zero dropped lines: the in-flight batch finished
        # through the drain and every line is a structured record.
        assert "error" not in result, f"batch failed: {result.get('error')}"
        records = result["records"]
        assert len(records) == count
        for record in records:
            assert "verdict" in record or "error" in record, record

        # The process drained and exited cleanly.
        assert exit_code == 0, serve.stderr_text()
        stderr = serve.stderr_text()
        assert "SIGTERM received, draining" in stderr
        assert "drained, bye" in stderr
    finally:
        serve.kill()

    # Post-recovery: a fault-free server over the same store answers the
    # whole corpus verdict-identically to a never-faulted run.
    replay = _ServeProcess(common, tmp_path, f"{front_end}-recovered")
    try:
        records = _post_batch(replay.url, body)
        assert len(records) == count
        assert _verdict_map(records) == _fault_free_baseline()
        assert replay.terminate_and_wait() == 0
    finally:
        replay.kill()
