"""Model-checker tests: refutation of inequivalent pairs."""

import pytest

from repro.checker import ModelChecker

from tests.conftest import make_catalog


@pytest.fixture
def catalog():
    return make_catalog(("r", "a", "b"), ("s", "c", "d"))


def test_equivalent_pair_has_no_counterexample(catalog):
    checker = ModelChecker(catalog)
    assert checker.find_counterexample(
        "SELECT * FROM r x WHERE x.a = 1 AND x.b = 0",
        "SELECT * FROM r x WHERE x.b = 0 AND x.a = 1",
    ) is None


def test_bag_duplicate_mismatch_found(catalog):
    checker = ModelChecker(catalog)
    witness = checker.find_counterexample(
        "SELECT x.a AS a FROM r x, r y",
        "SELECT x.a AS a FROM r x",
    )
    assert witness is not None
    assert witness.left_bag != witness.right_bag


def test_distinct_difference_found(catalog):
    checker = ModelChecker(catalog)
    witness = checker.find_counterexample(
        "SELECT DISTINCT x.a AS a FROM r x",
        "SELECT x.a AS a FROM r x",
    )
    assert witness is not None


def test_filter_difference_found(catalog):
    checker = ModelChecker(catalog)
    witness = checker.find_counterexample(
        "SELECT * FROM r x WHERE x.a = 0",
        "SELECT * FROM r x WHERE x.a = 1",
    )
    assert witness is not None


def test_count_bug_counterexample():
    catalog = make_catalog(("parts", "pnum", "qoh"), ("supply", "pnum", "shipdate"))
    checker = ModelChecker(catalog)
    witness = checker.find_counterexample(
        """SELECT p.pnum AS pnum FROM parts p
           WHERE p.qoh = count(SELECT s.shipdate AS shipdate FROM supply s
                               WHERE s.pnum = p.pnum AND s.shipdate < 1)""",
        """SELECT p.pnum AS pnum
           FROM parts p,
                (SELECT s.pnum AS pnum, count(s.shipdate) AS ct
                 FROM supply s WHERE s.shipdate < 1 GROUP BY s.pnum) temp
           WHERE p.qoh = temp.ct AND p.pnum = temp.pnum""",
    )
    assert witness is not None
    # The classic witness: a part with qoh = 0 and no matching supply rows.
    assert witness.left_bag and not witness.right_bag


def test_counterexample_respects_constraints():
    catalog = make_catalog(("dept", "dk"), ("emp", "eid", "dno"))
    catalog.add_key("dept", ("dk",))
    catalog.add_foreign_key("emp", ("dno",), "dept", ("dk",))
    checker = ModelChecker(catalog)
    # Under the FK the join elimination is correct: no witness may exist.
    assert checker.find_counterexample(
        "SELECT e.eid AS eid FROM emp e, dept d WHERE e.dno = d.dk",
        "SELECT e.eid AS eid FROM emp e",
        random_attempts=15,
    ) is None


def test_agree_on_random_quick_check(catalog):
    checker = ModelChecker(catalog)
    assert checker.agree_on_random(
        "SELECT * FROM r x WHERE TRUE", "SELECT * FROM r x", attempts=5
    )


def test_describe_is_readable(catalog):
    checker = ModelChecker(catalog)
    witness = checker.find_counterexample(
        "SELECT DISTINCT x.a AS a FROM r x",
        "SELECT x.a AS a FROM r x",
    )
    text = witness.describe()
    assert "counterexample database" in text
    assert "left output bag" in text
