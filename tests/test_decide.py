"""End-to-end decision-procedure tests: equivalences and non-equivalences.

Each positive case is a genuine SQL equivalence the paper's machinery must
prove; each negative case is a genuinely inequivalent pair that soundness
forbids proving.
"""

import pytest

from repro import DecisionOptions, Solver, Verdict
from repro.udp.trace import Verdict

from tests.conftest import EMP_PROGRAM, KEYED_PROGRAM, RS_PROGRAM


def check(solver, left, right):
    return solver.check(left, right)


# -- positives: plain algebra -----------------------------------------------


def test_identity(rs_solver):
    q = "SELECT * FROM r x WHERE x.a = 1"
    assert check(rs_solver, q, q).proved


def test_alias_rename(rs_solver):
    assert check(
        rs_solver,
        "SELECT x.a AS a FROM r x",
        "SELECT y.a AS a FROM r y",
    ).proved


def test_predicate_flip(rs_solver):
    assert check(
        rs_solver,
        "SELECT * FROM r x WHERE x.a >= 3",
        "SELECT * FROM r x WHERE 3 <= x.a",
    ).proved


def test_join_order(rs_solver):
    assert check(
        rs_solver,
        "SELECT x.a AS a, y.c AS c FROM r x, s y",
        "SELECT x.a AS a, y.c AS c FROM s y, r x",
    ).proved


def test_nested_projection_collapse(rs_solver):
    assert check(
        rs_solver,
        "SELECT t.a AS a FROM (SELECT x.a AS a, x.b AS b FROM r x) t",
        "SELECT x.a AS a FROM r x",
    ).proved


def test_where_true(rs_solver):
    assert check(
        rs_solver, "SELECT * FROM r x WHERE TRUE", "SELECT * FROM r x"
    ).proved


def test_where_false_both_empty(rs_solver):
    assert check(
        rs_solver,
        "SELECT * FROM r x WHERE FALSE",
        "SELECT * FROM r x WHERE x.a <> x.a",
    ).proved


def test_transitive_equality_join(rs_solver):
    assert check(
        rs_solver,
        "SELECT x.a AS a FROM r x, s y WHERE x.a = y.c AND y.c = x.b",
        "SELECT x.a AS a FROM r x, s y WHERE x.a = y.c AND x.a = x.b",
    ).proved


def test_or_commutes(rs_solver):
    assert check(
        rs_solver,
        "SELECT * FROM r x WHERE x.a = 1 OR x.b = 2",
        "SELECT * FROM r x WHERE x.b = 2 OR x.a = 1",
    ).proved


def test_union_all_commutes(rs_solver):
    assert check(
        rs_solver,
        "SELECT * FROM r x WHERE x.a = 1 UNION ALL SELECT * FROM r y WHERE y.a = 2",
        "SELECT * FROM r y WHERE y.a = 2 UNION ALL SELECT * FROM r x WHERE x.a = 1",
    ).proved


def test_except_same_shape(rs_solver):
    assert check(
        rs_solver,
        "SELECT * FROM r x EXCEPT SELECT * FROM r y WHERE y.a = 1",
        "SELECT * FROM r z EXCEPT SELECT * FROM r w WHERE w.a = 1",
    ).proved


def test_not_exists_alias_invariance(rs_solver):
    assert check(
        rs_solver,
        "SELECT * FROM r x WHERE NOT EXISTS (SELECT * FROM s y WHERE y.c = x.a)",
        "SELECT * FROM r u WHERE NOT EXISTS (SELECT * FROM s v WHERE v.c = u.a)",
    ).proved


# -- positives: set semantics / DISTINCT -------------------------------------


def test_distinct_idempotent(rs_solver):
    assert check(
        rs_solver,
        "SELECT DISTINCT x.a AS a FROM r x",
        "DISTINCT (SELECT DISTINCT x.a AS a FROM r x)",
    ).proved


def test_distinct_projection_self_join(rs_solver):
    assert check(
        rs_solver,
        "SELECT DISTINCT x.a AS a FROM r x, r y",
        "SELECT DISTINCT x.a AS a FROM r x",
    ).proved


def test_distinct_union_all_absorbs_duplicates(rs_solver):
    assert check(
        rs_solver,
        "DISTINCT (SELECT * FROM r x UNION ALL SELECT * FROM r y)",
        "SELECT DISTINCT * FROM r x",
    ).proved


def test_exists_is_set_semantics(rs_solver):
    assert check(
        rs_solver,
        "SELECT * FROM r x WHERE EXISTS (SELECT * FROM s y, s z)",
        "SELECT * FROM r x WHERE EXISTS (SELECT * FROM s y)",
    ).proved


# -- positives: constraints -----------------------------------------------------


def test_key_distinct_noop(keyed_solver):
    assert check(
        keyed_solver,
        "SELECT * FROM r0 x",
        "SELECT DISTINCT * FROM r0 x",
    ).proved


def test_index_rewrite(keyed_solver):
    assert check(
        keyed_solver,
        "SELECT * FROM r0 t WHERE t.a >= 12",
        "SELECT t2.* FROM i0 t1, r0 t2 WHERE t1.k = t2.k AND t1.a >= 12",
    ).proved


def test_fk_join_elimination(emp_solver):
    assert check(
        emp_solver,
        "SELECT e.empno AS empno FROM emp e, dept d WHERE e.deptno = d.deptno",
        "SELECT e.empno AS empno FROM emp e",
    ).proved


def test_keyed_self_join_collapse(emp_solver):
    assert check(
        emp_solver,
        "SELECT e.sal AS sal FROM emp e, emp f WHERE e.empno = f.empno",
        "SELECT e.sal AS sal FROM emp e",
    ).proved


# -- positives: aggregates ----------------------------------------------------


def test_group_by_alias_invariance(emp_solver):
    assert check(
        emp_solver,
        "SELECT e.deptno AS d, sum(e.sal) AS s FROM emp e GROUP BY e.deptno",
        "SELECT x.deptno AS d, sum(x.sal) AS s FROM emp x GROUP BY x.deptno",
    ).proved


def test_different_aggregate_functions_not_equal(emp_solver):
    outcome = check(
        emp_solver,
        "SELECT e.deptno AS d, sum(e.sal) AS s FROM emp e GROUP BY e.deptno",
        "SELECT e.deptno AS d, min(e.sal) AS s FROM emp e GROUP BY e.deptno",
    )
    assert not outcome.proved


def test_different_aggregate_operands_not_equal(emp_solver):
    outcome = check(
        emp_solver,
        "SELECT e.deptno AS d, sum(e.sal) AS s FROM emp e GROUP BY e.deptno",
        "SELECT e.deptno AS d, sum(e.comm) AS s FROM emp e GROUP BY e.deptno",
    )
    assert not outcome.proved


# -- negatives: soundness ---------------------------------------------------------


def test_bag_self_join_not_collapsed(rs_solver):
    outcome = check(
        rs_solver,
        "SELECT x.a AS a FROM r x, r y",
        "SELECT x.a AS a FROM r x",
    )
    assert not outcome.proved


def test_union_all_not_idempotent(rs_solver):
    outcome = check(
        rs_solver,
        "SELECT * FROM r x UNION ALL SELECT * FROM r y",
        "SELECT * FROM r x",
    )
    assert not outcome.proved


def test_distinct_not_dropped_without_key(rs_solver):
    outcome = check(
        rs_solver,
        "SELECT DISTINCT * FROM r x",
        "SELECT * FROM r x",
    )
    assert not outcome.proved


def test_filter_strengthening_not_equal(rs_solver):
    outcome = check(
        rs_solver,
        "SELECT * FROM r x WHERE x.a = 1",
        "SELECT * FROM r x WHERE x.a = 1 AND x.b = 2",
    )
    assert not outcome.proved


def test_different_tables_not_equal(rs_solver):
    outcome = check(
        rs_solver,
        "SELECT x.a AS v FROM r x",
        "SELECT y.c AS v FROM s y",
    )
    assert not outcome.proved


def test_different_projection_not_equal(rs_solver):
    outcome = check(
        rs_solver,
        "SELECT x.a AS v FROM r x",
        "SELECT x.b AS v FROM r x",
    )
    assert not outcome.proved


def test_exists_vs_plain_join_bag_mismatch(rs_solver):
    # Without DISTINCT the semi-join and join differ in multiplicity.
    outcome = check(
        rs_solver,
        "SELECT x.a AS a FROM r x WHERE EXISTS (SELECT * FROM s y WHERE y.c = x.a)",
        "SELECT x.a AS a FROM r x, s y WHERE y.c = x.a",
    )
    assert not outcome.proved


def test_schema_mismatch_rejected_up_front(rs_solver):
    outcome = check(
        rs_solver,
        "SELECT x.a AS a FROM r x",
        "SELECT x.a AS other FROM r x",
    )
    assert outcome.verdict is Verdict.NOT_PROVED
    assert "schemas differ" in outcome.reason


def test_fk_not_applied_backwards(emp_solver):
    # dept joined to emp is NOT emp (fk points emp → dept).
    outcome = check(
        emp_solver,
        "SELECT d.dname AS dname FROM dept d, emp e WHERE e.deptno = d.deptno",
        "SELECT d.dname AS dname FROM dept d",
    )
    assert not outcome.proved


# -- options ----------------------------------------------------------------------


def test_constraints_can_be_disabled():
    solver = Solver.from_program_text(
        KEYED_PROGRAM, DecisionOptions(use_constraints=False)
    )
    outcome = solver.check(
        "SELECT * FROM r0 x",
        "SELECT DISTINCT * FROM r0 x",
    )
    assert not outcome.proved  # without Def. 4.1 the proof must disappear


def test_minimize_strategy_matches_default():
    solver_min = Solver.from_program_text(
        RS_PROGRAM, DecisionOptions(sdp_strategy="minimize")
    )
    assert solver_min.check(
        "SELECT DISTINCT x.a AS a FROM r x, r y",
        "SELECT DISTINCT x.a AS a FROM r x",
    ).proved


def test_timeout_reported():
    solver = Solver.from_program_text(
        RS_PROGRAM, DecisionOptions(timeout_seconds=0.0)
    )
    outcome = solver.check(
        "SELECT DISTINCT x.a AS a FROM r x, r y",
        "SELECT DISTINCT x.a AS a FROM r x",
    )
    assert outcome.verdict in (Verdict.TIMEOUT, Verdict.PROVED)


def test_proved_outcome_carries_axiom_trace(keyed_solver):
    outcome = keyed_solver.check(
        "SELECT * FROM r0 t WHERE t.a >= 12",
        "SELECT t2.* FROM i0 t1, r0 t2 WHERE t1.k = t2.k AND t1.a >= 12",
    )
    assert outcome.proved
    used = outcome.trace.axioms_used()
    assert "eq-sum-elim" in used
    assert "key" in used
