"""Completeness property tests (Theorems 5.4 / 5.5).

UDP is complete for UCQ under bag semantics and under set semantics.  We
exercise this with a metamorphic property: take a random conjunctive query,
apply a random chain of *equivalence-preserving* transformations (alias
renaming, FROM reordering, conjunct shuffling/duplication, operand flips,
identity-subquery wrapping, transitive-equality rewriting), and require the
decision procedure to prove the pair — with and without an outer DISTINCT.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Solver
from repro.sql.ast import (
    AndPred,
    BinPred,
    ColumnRef,
    Constant,
    DistinctQuery,
    ExprAs,
    FromItem,
    Pred,
    Query,
    Select,
    Star,
    TableRef,
)

from tests.conftest import RS_PROGRAM

TABLES = {"r": ("a", "b"), "s": ("c", "d")}


# -- random conjunctive queries ---------------------------------------------


@st.composite
def conjunctive_queries(draw):
    count = draw(st.integers(1, 3))
    items = []
    aliases = []
    for index in range(count):
        table = draw(st.sampled_from(["r", "s"]))
        alias = f"t{index}"
        items.append(FromItem(TableRef(table), alias))
        aliases.append((alias, table))
    columns = [
        ColumnRef(alias, column)
        for alias, table in aliases
        for column in TABLES[table]
    ]
    conjuncts = []
    for _ in range(draw(st.integers(0, 3))):
        left = draw(st.sampled_from(columns))
        if draw(st.booleans()):
            right = Constant(draw(st.integers(0, 1)))
        else:
            right = draw(st.sampled_from(columns))
        conjuncts.append(BinPred("=", left, right))
    where = None
    for conjunct in conjuncts:
        where = conjunct if where is None else AndPred(where, conjunct)
    projections = tuple(
        ExprAs(draw(st.sampled_from(columns)), f"o{i}")
        for i in range(draw(st.integers(1, 2)))
    )
    return Select(projections, tuple(items), where)


# -- equivalence-preserving transformations ------------------------------------


def _conjuncts(pred):
    if pred is None:
        return []
    if isinstance(pred, AndPred):
        return _conjuncts(pred.left) + _conjuncts(pred.right)
    return [pred]


def _rebuild(conjuncts):
    where = None
    for conjunct in conjuncts:
        where = conjunct if where is None else AndPred(where, conjunct)
    return where


def rename_aliases(query: Select, rng) -> Select:
    mapping = {
        item.alias: f"z{index}" for index, item in enumerate(query.from_items)
    }

    def fix_expr(expr):
        if isinstance(expr, ColumnRef) and expr.table in mapping:
            return ColumnRef(mapping[expr.table], expr.column)
        return expr

    def fix_pred(pred):
        if isinstance(pred, BinPred):
            return BinPred(pred.op, fix_expr(pred.left), fix_expr(pred.right))
        if isinstance(pred, AndPred):
            return AndPred(fix_pred(pred.left), fix_pred(pred.right))
        return pred

    return Select(
        tuple(ExprAs(fix_expr(p.expr), p.alias) for p in query.projections),
        tuple(FromItem(i.query, mapping[i.alias]) for i in query.from_items),
        fix_pred(query.where) if query.where is not None else None,
        distinct=query.distinct,
    )


def shuffle_from(query: Select, rng) -> Select:
    items = list(query.from_items)
    rng.shuffle(items)
    return Select(query.projections, tuple(items), query.where,
                  distinct=query.distinct)


def shuffle_conjuncts(query: Select, rng) -> Select:
    conjuncts = _conjuncts(query.where)
    rng.shuffle(conjuncts)
    return Select(query.projections, query.from_items, _rebuild(conjuncts),
                  distinct=query.distinct)


def duplicate_conjunct(query: Select, rng) -> Select:
    conjuncts = _conjuncts(query.where)
    if not conjuncts:
        return query
    conjuncts.append(rng.choice(conjuncts))
    return Select(query.projections, query.from_items, _rebuild(conjuncts),
                  distinct=query.distinct)


def flip_equalities(query: Select, rng) -> Select:
    conjuncts = [
        BinPred(c.op, c.right, c.left)
        if isinstance(c, BinPred) and c.op == "=" and rng.random() < 0.5
        else c
        for c in _conjuncts(query.where)
    ]
    return Select(query.projections, query.from_items, _rebuild(conjuncts),
                  distinct=query.distinct)


def wrap_identity(query: Select, rng) -> Query:
    names = [p.alias for p in query.projections]
    outer = Select(
        tuple(ExprAs(ColumnRef("w", name), name) for name in names),
        (FromItem(query, "w"),),
        None,
    )
    return outer


TRANSFORMS = [
    rename_aliases,
    shuffle_from,
    shuffle_conjuncts,
    duplicate_conjunct,
    flip_equalities,
    wrap_identity,
]


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    query=conjunctive_queries(),
    seed=st.integers(0, 10_000),
    picks=st.lists(st.integers(0, len(TRANSFORMS) - 1), min_size=1, max_size=4),
)
def test_bag_ucq_completeness(query, seed, picks):
    """Bag-semantics UCQ: transformed queries must prove (Theorem 5.4)."""
    rng = random.Random(seed)
    transformed = query
    for pick in picks:
        transform = TRANSFORMS[pick]
        # Duplicating a conjunct preserves bag semantics ([b]² = [b]); all
        # other transforms are pure refactorings.
        result = transform(transformed, rng) if isinstance(transformed, Select) else transformed
        transformed = result
    solver = Solver.from_program_text(RS_PROGRAM)
    outcome = solver.check(query, transformed)
    assert outcome.proved, (
        f"completeness violation (bag):\nQ1: {query}\nQ2: {transformed}\n"
        f"reason: {outcome.reason}"
    )


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    query=conjunctive_queries(),
    seed=st.integers(0, 10_000),
    picks=st.lists(st.integers(0, len(TRANSFORMS) - 1), min_size=1, max_size=3),
)
def test_set_ucq_completeness(query, seed, picks):
    """Set-semantics UCQ under DISTINCT: must also prove (Theorem 5.5)."""
    rng = random.Random(seed)
    transformed = query
    for pick in picks:
        if isinstance(transformed, Select):
            transformed = TRANSFORMS[pick](transformed, rng)
    solver = Solver.from_program_text(RS_PROGRAM)
    outcome = solver.check(
        DistinctQuery(query), DistinctQuery(transformed)
    )
    assert outcome.proved, (
        f"completeness violation (set):\nQ1: {query}\nQ2: {transformed}\n"
        f"reason: {outcome.reason}"
    )


def test_set_semantics_redundant_join_completeness():
    """A hand-picked Theorem 5.5 case needing a non-injective homomorphism."""
    solver = Solver.from_program_text(RS_PROGRAM)
    outcome = solver.check(
        "SELECT DISTINCT t0.a AS o FROM r t0, r t1, r t2 "
        "WHERE t0.a = t1.a AND t1.b = t2.b AND t1.a = t2.a AND t1.b = t0.b",
        "SELECT DISTINCT t0.a AS o FROM r t0",
    )
    assert outcome.proved
