"""The streaming ``/cluster`` service, end to end.

Four layers under test, all of which must produce the same partition:

* :class:`repro.service.clustering.ClusterEngine` driven directly;
* the historical :func:`repro.frontend.cluster.cluster_queries` shim;
* ``POST /cluster`` over the threaded :class:`VerificationServer`;
* ``POST /cluster`` over the event-loop :class:`FrontDoorServer`.

Plus the two properties the digest index must not break: placement is
invariant (up to group relabeling) under input permutation when every
placement is decision-free, and digest-based placement agrees with the
pure decision procedure (differential, ``search`` kernel).  Durability
gets a real process boundary: a second interpreter over the same store
file must place every query by durable lookup with zero decisions.
"""

import json
import os
import random
import subprocess
import sys
import urllib.error
import urllib.request

import pytest

from repro.server import FrontDoorServer, VerificationServer
from repro.service.clustering import ClusterEngine, ClusterStats
from repro.session import Session

from tests.conftest import RS_PROGRAM

# Alpha-variant-heavy corpus: 3 provable groups + 1 unsupported singleton.
CORPUS = [
    "SELECT * FROM r x WHERE x.a = 1 AND x.b = 2",
    "SELECT * FROM r x WHERE x.b = 2 AND x.a = 1",
    "SELECT * FROM (SELECT * FROM r y WHERE y.a = 1) x WHERE x.b = 2",
    "SELECT * FROM r x WHERE x.a = 2",
    "SELECT * FROM r y WHERE 2 = y.a",
    "SELECT * FROM r x",
    "SELECT * FROM r x WHERE x.a IS NULL",
]

#: The expected partition, as member texts.
EXPECTED = {
    frozenset(CORPUS[0:3]),
    frozenset(CORPUS[3:5]),
    frozenset([CORPUS[5]]),
    frozenset([CORPUS[6]]),
}


def partition_of_groups(groups):
    return {frozenset(group.members) for group in groups}


def partition_of_records(records, queries):
    """Rebuild the partition from placement records + the input order."""
    by_group = {}
    for record, query in zip(records, queries):
        by_group.setdefault(record["group"], []).append(query)
    return {frozenset(members) for members in by_group.values()}


def fresh_engine(**kwargs):
    return ClusterEngine(Session.from_program_text(RS_PROGRAM), **kwargs)


# -- engine direct ------------------------------------------------------------


def test_engine_places_alpha_variants_by_digest():
    engine = fresh_engine()
    records = engine.place_all(CORPUS)
    assert partition_of_groups(engine.groups()) == EXPECTED
    assert partition_of_records(records, CORPUS) == EXPECTED
    # The two alpha-variant twins of query 0 place by digest, free.
    assert records[1]["placed_by"] == "digest"
    assert records[2]["placed_by"] == "digest"
    assert records[1]["digest"] == records[0]["digest"]
    assert records[0]["digest"].startswith("cf:")
    # The unsupported query carries an honest error, no digest.
    assert records[6]["error"] and "digest" not in records[6]
    stats = engine.stats
    assert stats.compiled + stats.unsupported == stats.inputs
    assert stats.unsupported == 1


def test_engine_matches_shim_partition():
    from repro.frontend.cluster import cluster_queries

    queries = [q for q in CORPUS]
    engine = fresh_engine()
    engine.place_all(queries)
    session = Session.from_program_text(RS_PROGRAM)
    shim_groups = cluster_queries(session, queries)
    assert partition_of_groups(engine.groups()) == partition_of_groups(
        shim_groups
    )


def test_partition_invariant_under_permutation():
    """Decision-free placements must not depend on arrival order."""
    base = fresh_engine()
    base.place_all(CORPUS)
    expected = partition_of_groups(base.groups())
    rng = random.Random(20260807)
    for _ in range(4):
        shuffled = list(CORPUS)
        rng.shuffle(shuffled)
        engine = fresh_engine()
        engine.place_all(shuffled)
        assert partition_of_groups(engine.groups()) == expected


def test_digest_placement_agrees_with_search_kernel_decisions():
    """Differential: digest bucketing vs pure decisions on the
    ``search`` kernel must produce the identical partition."""
    from repro.cq.isomorphism import set_kernel_mode

    digest_engine = fresh_engine(digest_buckets=True)
    digest_engine.place_all(CORPUS)
    previous = set_kernel_mode("search")
    try:
        decision_engine = fresh_engine(digest_buckets=False)
        decision_engine.place_all(CORPUS)
    finally:
        set_kernel_mode(previous)
    assert partition_of_groups(digest_engine.groups()) == partition_of_groups(
        decision_engine.groups()
    )
    # And the digest run actually exercised the O(1) path.
    assert digest_engine.stats.digest_hits > 0
    assert digest_engine.stats.comparisons < decision_engine.stats.comparisons


def test_place_stream_reports_malformed_lines_in_stream():
    engine = fresh_engine()
    lines = [
        json.dumps(CORPUS[0]),
        "this is not json",
        json.dumps({"query": CORPUS[1], "id": "q1"}),
        json.dumps({"program": "schema x(a:int);", "query": CORPUS[2]}),
        json.dumps(17),
        json.dumps({"query": 17}),
    ]
    records = list(engine.place_stream(lines))
    assert len(records) == 6
    assert records[0]["placed_by"] == "new"
    assert records[1]["error"]["code"] == "bad-request"
    assert records[1]["error"]["line"] == 2
    assert records[2]["placed_by"] == "digest"
    assert records[2]["id"] == "q1"
    assert records[3]["error"]["code"] == "bad-request"
    assert "program" in records[3]["error"]["reason"]
    assert records[4]["error"]["code"] == "bad-request"
    assert records[5]["error"]["code"] == "bad-request"


# -- durable groups across a real process boundary ---------------------------


_CHILD = """
import json, sys
from repro.hashcons_store import install_shared_store
from repro.service.clustering import ClusterEngine
from repro.session import Session, tactic_invocations
from repro.store import open_store

program, store_path = sys.argv[1], sys.argv[2]
queries = json.load(sys.stdin)
store = open_store(store_path, backend="sqlite")
install_shared_store(store)
session = Session.from_program_text(program)
engine = ClusterEngine(session, store=store)
records = engine.place_all(queries)
out = {
    "records": records,
    "stats": engine.stats.as_dict(),
    "tactics": tactic_invocations(),
}
install_shared_store(None)
store.close()
print(json.dumps(out))
"""


def _spawn_cluster_child(store_path, queries):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD, RS_PROGRAM, store_path],
        input=json.dumps(queries),
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
        check=False,
    )
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout.splitlines()[-1])


def test_restart_resume_places_with_zero_decisions(tmp_path):
    """A second process re-ingesting the same stream answers every
    placement from the durable group index: no decision procedure."""
    store_path = str(tmp_path / "groups.db")
    queries = [q for q in CORPUS if "IS NULL" not in q and q != CORPUS[5]]
    cold = _spawn_cluster_child(store_path, queries)
    warm = _spawn_cluster_child(store_path, queries)
    assert cold["stats"]["new_groups"] == 2
    assert warm["stats"]["decisions"] == 0
    assert warm["tactics"] == 0
    assert warm["stats"]["durable_hits"] == 2
    # Same partition both sides of the restart.
    cold_partition = partition_of_records(cold["records"], queries)
    warm_partition = partition_of_records(warm["records"], queries)
    assert cold_partition == warm_partition
    # Group-materializing placements are flagged as durable resumes.
    durable = [r for r in warm["records"] if r.get("durable")]
    assert len(durable) == 2
    assert all(r["placed_by"] == "digest" for r in warm["records"])


# -- the two HTTP front ends --------------------------------------------------


def _post_ndjson(url, path, body: bytes):
    request = urllib.request.Request(
        url + path,
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        ctype = response.headers.get("Content-Type", "")
        lines = response.read().decode("utf-8").strip().splitlines()
        return response.status, ctype, [json.loads(line) for line in lines]


def _get_json(url, path):
    with urllib.request.urlopen(url + path, timeout=30) as response:
        return response.status, json.loads(response.read())


@pytest.fixture(scope="module", params=["threaded", "frontdoor"])
def server(request):
    cls = (
        VerificationServer
        if request.param == "threaded"
        else FrontDoorServer
    )
    with cls(
        Session.from_program_text(RS_PROGRAM),
        pool_size=2,
        pool_mode="thread",
        max_inflight=32,
    ) as srv:
        yield srv


def test_post_cluster_streams_placements(server):
    body = "\n".join(json.dumps(q) for q in CORPUS).encode("utf-8") + b"\n"
    status, ctype, records = _post_ndjson(server.url, "/cluster", body)
    assert status == 200
    assert "application/x-ndjson" in ctype
    assert len(records) == len(CORPUS)
    assert [r["line"] for r in records] == list(range(1, len(CORPUS) + 1))
    assert partition_of_records(records, CORPUS) == EXPECTED
    # Same engine across requests: re-sending a query joins its group.
    again = json.dumps(CORPUS[0]).encode("utf-8") + b"\n"
    _, _, rerun = _post_ndjson(server.url, "/cluster", again)
    assert rerun[0]["placed_by"] == "digest"
    assert rerun[0]["group"] == records[0]["group"]


def test_cluster_stats_block_appears_after_first_stream(server):
    _, stats = _get_json(server.url, "/stats")
    assert "cluster" in stats
    block = stats["cluster"]
    assert block["groups"] >= 4
    assert block["digest_buckets"] is True
    assert block["compiled"] + block["unsupported"] == block["inputs"]
    assert stats["endpoints"].get("cluster", 0) >= 1


def test_get_cluster_is_405(server):
    try:
        urllib.request.urlopen(server.url + "/cluster", timeout=30)
    except urllib.error.HTTPError as error:
        assert error.code == 405
        payload = json.loads(error.read())
        assert payload["error"]["code"] == "method-not-allowed"
    else:  # pragma: no cover - defensive
        raise AssertionError("GET /cluster must be rejected")


def test_malformed_lines_are_in_stream_errors(server):
    body = (
        json.dumps(CORPUS[0]) + "\n"
        + "not json\n"
        + json.dumps({"query": CORPUS[1], "id": "tail"}) + "\n"
    ).encode("utf-8")
    status, _, records = _post_ndjson(server.url, "/cluster", body)
    assert status == 200
    assert len(records) == 3
    assert records[1]["error"]["code"] == "bad-request"
    assert records[2]["id"] == "tail"
    assert records[2]["group"] == records[0]["group"]
