"""Tests for the Sec. 6.4 extensions: UNION (set), INTERSECT, IN / NOT IN."""

import pytest

from repro.engine import Database, evaluate_query
from repro.engine.database import bag_of
from repro.errors import ResolutionError
from repro.sql.ast import DistinctQuery, Exists, InPred, Intersect, UnionAll
from repro.sql.desugar import desugar_query
from repro.sql.parser import parse_query
from repro.sql.scope import resolve_query

from tests.conftest import make_catalog


@pytest.fixture
def catalog():
    return make_catalog(("r", "a", "b"), ("s", "c", "d"))


@pytest.fixture
def db(catalog):
    database = Database(catalog)
    database.insert_all(
        "r", [{"a": 1, "b": 0}, {"a": 1, "b": 0}, {"a": 0, "b": 1}]
    )
    database.insert_all("s", [{"c": 1, "d": 0}])
    return database


def run(db, text):
    resolved, _ = resolve_query(parse_query(text), db.catalog)
    return evaluate_query(desugar_query(resolved), db)


# -- parsing --------------------------------------------------------------


def test_union_without_all_is_distinct_union_all():
    query = parse_query("SELECT * FROM r x UNION SELECT * FROM r y")
    assert isinstance(query, DistinctQuery)
    assert isinstance(query.query, UnionAll)


def test_intersect_parses():
    query = parse_query("SELECT * FROM r x INTERSECT SELECT * FROM r y")
    assert isinstance(query, Intersect)


def test_in_parses():
    query = parse_query(
        "SELECT * FROM r x WHERE x.a IN (SELECT y.c AS c FROM s y)"
    )
    assert isinstance(query.where, InPred)
    assert not query.where.negated


def test_not_in_parses():
    query = parse_query(
        "SELECT * FROM r x WHERE x.a NOT IN (SELECT y.c AS c FROM s y)"
    )
    assert isinstance(query.where, InPred)
    assert query.where.negated


# -- resolution lowering --------------------------------------------------------


def test_in_lowered_to_exists(catalog):
    query = parse_query(
        "SELECT * FROM r x WHERE x.a IN (SELECT y.c AS c FROM s y)"
    )
    resolved, _ = resolve_query(query, catalog)
    assert isinstance(resolved.where, Exists)


def test_in_requires_single_column(catalog):
    query = parse_query("SELECT * FROM r x WHERE x.a IN (SELECT * FROM s y)")
    with pytest.raises(ResolutionError):
        resolve_query(query, catalog)


# -- engine semantics --------------------------------------------------------------


def test_union_set_deduplicates(db):
    rows = run(db, "SELECT * FROM r x UNION SELECT * FROM r y")
    assert len(rows) == 2  # {(1,0), (0,1)}


def test_intersect_keeps_common_distinct_rows(db):
    rows = run(
        db,
        "SELECT * FROM r x WHERE x.a = 1 INTERSECT SELECT * FROM r y WHERE y.b = 0",
    )
    assert bag_of(rows) == bag_of([{"a": 1, "b": 0}])


def test_intersect_empty_when_disjoint(db):
    rows = run(
        db,
        "SELECT * FROM r x WHERE x.a = 1 INTERSECT SELECT * FROM r y WHERE y.a = 0",
    )
    assert rows == []


def test_in_membership(db):
    rows = run(db, "SELECT * FROM r x WHERE x.a IN (SELECT y.c AS c FROM s y)")
    assert all(row["a"] == 1 for row in rows)
    assert len(rows) == 2


def test_not_in_membership(db):
    rows = run(
        db, "SELECT * FROM r x WHERE x.a NOT IN (SELECT y.c AS c FROM s y)"
    )
    assert all(row["a"] == 0 for row in rows)


# -- prover ---------------------------------------------------------------------


def test_prover_in_vs_exists(rs_solver):
    assert rs_solver.check(
        "SELECT * FROM r x WHERE x.a IN (SELECT y.c AS c FROM s y)",
        "SELECT * FROM r x WHERE EXISTS (SELECT * FROM s y WHERE y.c = x.a)",
    ).proved


def test_prover_intersect_conjunction(rs_solver):
    assert rs_solver.check(
        "SELECT * FROM r x WHERE x.a = 1 INTERSECT SELECT * FROM r y WHERE y.b = 2",
        "SELECT DISTINCT * FROM r x WHERE x.a = 1 AND x.b = 2",
    ).proved


def test_prover_union_set_not_bag(rs_solver):
    outcome = rs_solver.check(
        "SELECT * FROM r x UNION SELECT * FROM r y",
        "SELECT * FROM r x UNION ALL SELECT * FROM r y",
    )
    assert not outcome.proved


def test_ir_handles_intersect(catalog, db):
    from repro.ir import IRInterpreter, translate_query
    from repro.ir.schema_tree import row_to_tree_tuple, tree_of_schema
    from repro.semirings import NaturalsSemiring

    text = "SELECT * FROM r x INTERSECT SELECT * FROM r y WHERE y.a = 1"
    ir = translate_query(text, catalog)
    relations = {}
    for table in db.tables():
        tree = tree_of_schema(catalog.table_schema(table))
        multiplicities = {}
        for row in db.rows(table):
            key = row_to_tree_tuple(tree, row)
            multiplicities[key] = multiplicities.get(key, 0) + 1
        relations[table] = multiplicities
    interp = IRInterpreter(NaturalsSemiring(), [0, 1], relations)
    out = interp.output_relation(ir)
    engine_rows = run(db, text)
    tree = tree_of_schema(catalog.table_schema("r"))
    expected = {}
    for row in engine_rows:
        key = row_to_tree_tuple(tree, row)
        expected[key] = expected.get(key, 0) + 1
    assert out == expected
