"""End-to-end tests of the HTTP verification server.

Each module-scoped fixture boots a real :class:`VerificationServer` on an
ephemeral port in a background thread and talks to it over actual HTTP
(urllib) — no handler mocking.  Covered: single and batch round-trips,
JSON schema stability of the ``VerifyResult`` wire record, structured
400s for malformed input (never a traceback body), in-order error
isolation inside batches, per-request pipeline overrides, the
``POST /corpus`` replay route, ``/healthz``, advancing ``/stats``
counters (including the pool/admission/store sections), and concurrent
clients against the session pool.  Pool-specific concurrency behavior
(multi-member stress, saturation 503s, process members) lives in
``tests/test_pool.py``; body-framing properties in
``tests/test_server_fuzz.py``.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.server import VerificationServer, error_record
from repro.session import Session, VerifyResult

from tests.conftest import KEYED_PROGRAM, RS_PROGRAM

EQ = (
    "SELECT * FROM r x WHERE x.a = 1 AND x.b = 2",
    "SELECT * FROM r x WHERE x.b = 2 AND x.a = 1",
)
NEQ = (
    "SELECT * FROM r x WHERE x.a = 1",
    "SELECT * FROM r x WHERE x.a = 2",
)

#: Every key a VerifyResult wire record must carry — the schema-stability
#: contract API clients build against.
RESULT_KEYS = {
    "id",
    "verdict",
    "reason_code",
    "reason",
    "tactic",
    "tactics_tried",
    "elapsed_seconds",
    "counterexample",
}


@pytest.fixture(scope="module")
def server():
    # max_inflight is raised past the concurrency tests' burst size: this
    # module tests request/response semantics, not backpressure (which
    # tests/test_pool.py covers against a deliberately tight gate).
    with VerificationServer(
        Session.from_program_text(RS_PROGRAM), max_inflight=32
    ) as srv:
        yield srv


def get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=30) as response:
        return response.status, json.loads(response.read())


def post(server, path, body: bytes, parse=True):
    request = urllib.request.Request(
        server.url + path,
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            payload = response.read()
            return response.status, json.loads(payload) if parse else payload
    except urllib.error.HTTPError as error:
        payload = error.read()
        return error.code, json.loads(payload) if parse else payload


def post_verify(server, obj):
    return post(server, "/verify", json.dumps(obj).encode("utf-8"))


# -- liveness and routing -----------------------------------------------------


def test_healthz(server):
    status, payload = get(server, "/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["uptime_seconds"] >= 0
    assert payload["pool_size"] == 1
    assert payload["pool_mode"] in ("thread", "process")


def test_unknown_route_is_structured_404(server):
    status, payload = get_error(server, "/nope")
    assert status == 404
    assert payload["error"]["code"] == "not-found"


def get_error(server, path):
    try:
        return get(server, path)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_get_on_verify_is_structured_405(server):
    status, payload = get_error(server, "/verify")
    assert status == 405
    assert payload["error"]["code"] == "method-not-allowed"


# -- POST /verify -------------------------------------------------------------


def test_single_verify_round_trip(server):
    status, record = post_verify(
        server, {"id": "eq-1", "left": EQ[0], "right": EQ[1]}
    )
    assert status == 200
    assert record["id"] == "eq-1"
    assert record["verdict"] == "proved"
    assert record["reason_code"] == "isomorphic-canonical-forms"
    assert record["tactic"] == "udp-prove"


def test_wire_record_schema_is_stable_and_parses_as_verify_result(server):
    _, record = post_verify(server, {"left": EQ[0], "right": EQ[1]})
    assert set(record) == RESULT_KEYS
    restored = VerifyResult.from_json(record)
    assert restored.proved
    assert restored.to_json() == record  # exact round-trip


def test_verify_with_program_override(server):
    status, record = post_verify(server, {
        "left": "SELECT * FROM r0 x",
        "right": "SELECT DISTINCT * FROM r0 x",
        "program": KEYED_PROGRAM,
    })
    assert status == 200
    assert record["verdict"] == "proved"


def test_per_request_pipeline_override(server):
    _, record = post_verify(server, {
        "left": NEQ[0], "right": NEQ[1], "pipeline": "udp-prove",
    })
    assert record["verdict"] == "not_proved"
    assert record["tactics_tried"] == ["udp-prove"]
    _, record = post_verify(server, {
        "left": NEQ[0], "right": NEQ[1],
        "pipeline": "udp-prove,model-check",
    })
    assert record["verdict"] == "not_proved"
    assert record["reason_code"] == "counterexample-found"
    assert record["counterexample"]


def test_verification_failures_are_results_not_http_errors(server):
    status, record = post_verify(server, {
        "left": "SELECT * FROM r x WHERE x.a IS NULL",
        "right": "SELECT * FROM r x",
    })
    assert status == 200  # the session's never-raises contract holds on the wire
    assert record["verdict"] == "unsupported"


# -- malformed input → structured 400 ----------------------------------------


def test_invalid_json_body_is_structured_400(server):
    status, payload = post(server, "/verify", b"{broken")
    assert status == 400
    assert payload["error"]["code"] == "bad-request"
    assert "invalid JSON" in payload["error"]["reason"]


def test_missing_field_is_structured_400(server):
    status, payload = post_verify(server, {"left": EQ[0]})
    assert status == 400
    assert "right" in payload["error"]["reason"]


def test_unknown_tactic_is_structured_400(server):
    status, payload = post_verify(
        server, {"left": EQ[0], "right": EQ[1], "pipeline": "sorcery"}
    )
    assert status == 400
    assert "sorcery" in payload["error"]["reason"]


def test_non_object_body_is_structured_400(server):
    status, payload = post(server, "/verify", b'["not", "an", "object"]')
    assert status == 400
    assert payload["error"]["code"] == "bad-request"


def test_error_record_shape():
    record = error_record("bad-request", "why", line=3)
    assert record == {"error": {"code": "bad-request", "reason": "why", "line": 3}}


# -- POST /verify/batch -------------------------------------------------------


def batch_lines(server, lines, query=""):
    status, payload = post(
        server, "/verify/batch" + query,
        "\n".join(lines).encode("utf-8") + b"\n",
        parse=False,
    )
    assert status == 200
    return [json.loads(line) for line in payload.decode("utf-8").splitlines()]


def test_batch_round_trip_preserves_order(server):
    records = batch_lines(server, [
        json.dumps({"id": "one", "left": EQ[0], "right": EQ[1]}),
        json.dumps({"id": "two", "left": NEQ[0], "right": NEQ[1]}),
        json.dumps({"id": "three", "left": EQ[0], "right": EQ[0]}),
    ])
    assert [r["id"] for r in records] == ["one", "two", "three"]
    assert [r["verdict"] for r in records] == [
        "proved", "not_proved", "proved",
    ]
    assert all(set(r) == RESULT_KEYS for r in records)


def test_batch_isolates_malformed_lines_in_order(server):
    records = batch_lines(server, [
        json.dumps({"id": "good-1", "left": EQ[0], "right": EQ[1]}),
        "not json at all",
        json.dumps({"left": EQ[0]}),  # missing 'right'
        "",  # blank lines are skipped, not answered
        json.dumps({"id": "good-2", "left": EQ[0], "right": EQ[1]}),
    ])
    assert len(records) == 4
    assert records[0]["id"] == "good-1"
    assert records[1]["error"]["code"] == "bad-request"
    assert records[1]["error"]["line"] == 2
    assert records[2]["error"]["line"] == 3
    assert "right" in records[2]["error"]["reason"]
    assert records[3]["id"] == "good-2"
    assert records[3]["verdict"] == "proved"


def test_batch_hostile_nul_prefixed_id_cannot_swap_records(server):
    """A client id forged to look like the internal bad-line marker must
    come back as a normal result — never swapped with an error record."""
    hostile = "\x00bad-line:2"
    records = batch_lines(server, [
        "definitely not json",  # line 1 -> real bad-line record
        json.dumps({"id": hostile, "left": EQ[0], "right": EQ[1]}),
    ])
    assert records[0]["error"]["line"] == 1
    assert records[1]["id"] == hostile
    assert records[1]["verdict"] == "proved"


def test_batch_pipeline_and_window_query_params(server):
    records = batch_lines(
        server,
        [json.dumps({"id": "neq", "left": NEQ[0], "right": NEQ[1]})],
        query="?pipeline=udp-prove,model-check&window=1",
    )
    assert records[0]["reason_code"] == "counterexample-found"


def test_batch_bad_pipeline_is_structured_400(server):
    status, payload = post(
        server, "/verify/batch?pipeline=sorcery", b"{}\n"
    )
    assert status == 400
    assert "sorcery" in payload["error"]["reason"]


# -- GET /stats ---------------------------------------------------------------


def test_stats_counters_advance(server):
    _, before = get(server, "/stats")
    post_verify(server, {"left": EQ[0], "right": EQ[1]})
    post_verify(server, {"left": EQ[0]})  # structured 400
    _, after = get(server, "/stats")
    assert after["results"] == before["results"] + 1
    assert (
        after["verdicts"]["proved"] == before["verdicts"].get("proved", 0) + 1
    )
    assert (
        after["reason_codes"]["isomorphic-canonical-forms"]
        == before["reason_codes"].get("isomorphic-canonical-forms", 0) + 1
    )
    assert after["bad_requests"] == before["bad_requests"] + 1
    assert after["uptime_seconds"] >= before["uptime_seconds"]
    assert after["endpoints"]["verify"] >= 2


def test_stats_exposes_cache_occupancy(server):
    post_verify(server, {"left": EQ[0], "right": EQ[1]})
    _, stats = get(server, "/stats")
    assert "caches" in stats  # the process-wide memo layers
    assert stats["session"]["compile_cache"]["entries"] >= 2
    assert stats["session"]["requests"] >= 1


def test_stats_exposes_pool_and_admission_sections(server):
    post_verify(server, {"left": EQ[0], "right": EQ[1]})
    _, stats = get(server, "/stats")
    pool = stats["pool"]
    assert pool["size"] == 1 and len(pool["members"]) == 1
    member = pool["members"][0]
    assert member["requests"] >= 1
    assert member["verdicts"].get("proved", 0) >= 1
    # Rolled-up tallies equal the member sums on a 1-member pool.
    assert pool["verdicts"] == member["verdicts"]
    assert pool["reason_codes"] == member["reason_codes"]
    admission = stats["admission"]
    assert admission["max_inflight"] >= 1
    assert admission["admitted"] >= 1
    assert "store" in stats  # installed: false on a thread pool by default
    assert stats["store"]["installed"] in (True, False)


# -- POST /corpus -------------------------------------------------------------


def test_corpus_replay_returns_summary_and_feeds_stats(server):
    _, before = get(server, "/stats")
    status, summary = post(server, "/corpus?dataset=bugs", b"")
    assert status == 200
    assert summary["dataset"] == "bugs"
    assert summary["rules"] == 3
    assert summary["pool_size"] == 1
    assert sum(summary["verdicts"].values()) == 3
    assert summary["verdicts"].get("proved", 0) == 0  # bugs must not prove
    assert summary["elapsed_seconds"] >= 0
    _, after = get(server, "/stats")
    assert after["results"] == before["results"] + 3
    assert after["endpoints"]["corpus"] == before["endpoints"].get("corpus", 0) + 1


def test_corpus_unknown_dataset_is_structured_400(server):
    status, payload = post(server, "/corpus?dataset=figments", b"")
    assert status == 400
    assert "figments" in payload["error"]["reason"]


def test_corpus_get_is_structured_405(server):
    status, payload = get_error(server, "/corpus")
    assert status == 405
    assert payload["error"]["code"] == "method-not-allowed"


# -- the shared session under concurrency ------------------------------------


def test_concurrent_clients_all_get_consistent_answers(server):
    outcomes = []
    errors = []

    def worker(i):
        try:
            status, record = post_verify(
                server, {"id": f"c{i}", "left": EQ[0], "right": EQ[1]}
            )
            outcomes.append((status, record["verdict"], record["id"]))
        except Exception as error:  # pragma: no cover - fail loudly below
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(12)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    assert len(outcomes) == 12
    assert all(status == 200 and verdict == "proved"
               for status, verdict, _ in outcomes)
    assert {rid for _, _, rid in outcomes} == {f"c{i}" for i in range(12)}


def _raw_request_dying_mid_upload(server, path, body: bytes, announce: int):
    """Open a raw socket, announce ``announce`` body bytes, send only
    ``body``, then half-close (the client 'dies' mid-upload).  Returns
    the server's full response bytes."""
    import socket

    with socket.create_connection((server.host, server.port), timeout=30) as sock:
        head = (
            f"POST {path} HTTP/1.1\r\n"
            f"Host: {server.host}:{server.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {announce}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        sock.sendall(head + body)
        sock.shutdown(socket.SHUT_WR)  # EOF before the announced length
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    return b"".join(chunks)


def test_verify_truncated_upload_is_structured_400(server):
    """A client that dies mid-upload on /verify must get a 400 naming
    the truncation — not a silent parse of the prefix (the old server
    fed the short body to json.loads and answered as if it were the
    whole request)."""
    body = json.dumps(
        {"left": EQ[0], "right": EQ[1], "id": "truncated"}
    ).encode("utf-8")
    raw = _raw_request_dying_mid_upload(
        server, "/verify", body[: len(body) // 2], announce=len(body)
    )
    head, _, payload = raw.partition(b"\r\n\r\n")
    assert b" 400 " in head.split(b"\r\n", 1)[0]
    record = json.loads(payload)
    assert record["error"]["code"] == "bad-request"
    assert "truncated" in record["error"]["reason"]


def test_batch_truncated_upload_emits_in_stream_error_record(server):
    """On /verify/batch the response streams before the body is fully
    read, so a mid-upload death cannot become a 400 — it must surface
    as a final in-stream ``truncated-body`` error record with the
    byte counts, never as a silently-complete-looking stream."""
    lines = [
        json.dumps({"left": EQ[0], "right": EQ[1], "id": "b0"}),
        json.dumps({"left": NEQ[0], "right": NEQ[1], "id": "b1"}),
    ]
    body = ("\n".join(lines) + "\n").encode("utf-8")
    announce = len(body) + 512  # die 512 bytes short of the promise
    raw = _raw_request_dying_mid_upload(
        server, "/verify/batch", body, announce=announce
    )
    head, _, payload = raw.partition(b"\r\n\r\n")
    assert b" 200 " in head.split(b"\r\n", 1)[0]
    records = [
        json.loads(line) for line in payload.decode("utf-8").splitlines()
        if line
    ]
    # The complete lines were decided...
    decided = [r for r in records if "verdict" in r]
    assert {r["id"] for r in decided} == {"b0", "b1"}
    # ...and the truncation is announced in-stream, with byte counts.
    errors = [r for r in records if "error" in r]
    assert len(errors) == 1
    error = errors[0]["error"]
    assert error["code"] == "truncated-body"
    assert error["expected_bytes"] == announce
    assert error["received_bytes"] == len(body)


def test_uptime_survives_wall_clock_steps(monkeypatch):
    """Uptime must come from the monotonic clock: an NTP step (or a
    manual clock change) moving ``time.time`` a day backwards may not
    drag ``/healthz`` uptime negative.  ``started_unix`` is wall-clock
    by design — it names the start instant, not a duration."""
    from repro.server import stats as stats_module

    server_stats = stats_module.ServerStats()
    real = stats_module.time

    class SteppedClock:
        @staticmethod
        def monotonic():
            return real.monotonic()

        @staticmethod
        def time():
            return real.time() - 86400.0  # NTP stepped back a day

    monkeypatch.setattr(stats_module, "time", SteppedClock)
    assert 0 <= server_stats.uptime_seconds < 1000
    snapshot = server_stats.snapshot()
    assert 0 <= snapshot["uptime_seconds"] < 1000
