"""Semantic checks of the paper's derived identities and theorems.

Each test evaluates both sides of a derived identity in concrete finite
models of the ``N`` U-semiring (with constraint-satisfying relation
interpretations where a theorem assumes a key), confirming the paper's
Sec. 3–5 derivations hold in the models the library actually uses.
"""

import itertools

import pytest

from repro.semirings import Interpretation, NaturalsSemiring
from repro.semirings.interp import tuple_key
from repro.sql.schema import Schema
from repro.usr.predicates import AtomPred, EqPred, NePred
from repro.usr.terms import One, Pred, Rel, Sum, add, mul, not_, squash
from repro.usr.values import Attr, ConstVal, TupleCons, TupleVar

S = Schema.of("s", "k", "a")
T, U = TupleVar("t"), TupleVar("u")
N = NaturalsSemiring()
UNIVERSE = [0, 1]


def model(rows, keyed=False):
    """An N-model of relation r; ``keyed=True`` deduplicates on k."""
    table = {}
    seen_keys = set()
    for row in rows:
        if keyed:
            if row["k"] in seen_keys:
                continue
            seen_keys.add(row["k"])
            table[tuple_key(row)] = 1
        else:
            key = tuple_key(row)
            table[key] = table.get(key, 0) + 1
    return Interpretation(N, UNIVERSE, {"r": table})


def all_models(keyed=False, max_rows=2):
    """Every small instance of r over the universe (keyed if requested)."""
    candidates = [
        {"k": k, "a": a} for k in UNIVERSE for a in UNIVERSE
    ]
    for size in range(max_rows + 1):
        for combo in itertools.combinations_with_replacement(candidates, size):
            rows = list(combo)
            if keyed:
                keys = [row["k"] for row in rows]
                if len(keys) != len(set(keys)):
                    continue
            yield model(rows, keyed=keyed)


def eq_in_all_models(lhs, rhs, env=None, keyed=False):
    for m in all_models(keyed=keyed):
        assert m.evaluate(lhs, env) == m.evaluate(rhs, env), (
            f"identity fails:\n  {lhs}\n  vs {rhs}"
        )


# -- Eq. (15): Σ_t [t = e] × f(t) = f(e) -------------------------------------


def test_eq15_derived_identity():
    e = TupleCons((("k", ConstVal(1)), ("a", ConstVal(0))))
    lhs = Sum("t", S, mul(Pred(EqPred(T, e)), Rel("r", T)))
    rhs = Rel("r", e)
    eq_in_all_models(lhs, rhs)


# -- Lemma 5.1: ‖a × ‖x‖ + y‖ = ‖a × x + y‖ -------------------------------------


def test_lemma_51():
    a = Rel("r", T)
    x = Sum("u", S, mul(Rel("r", U), Pred(EqPred(Attr(U, "a"), Attr(T, "a")))))
    y = Pred(AtomPred("<", (Attr(T, "a"), ConstVal(1))))
    lhs = squash(add(mul(a, squash(x)), y))
    rhs = squash(add(mul(a, x), y))
    env = {"t": {"k": 0, "a": 1}}
    for m in all_models():
        assert m.evaluate(lhs, env) == m.evaluate(rhs, env)


# -- Def. 4.1 consequences -----------------------------------------------------


def test_key_identity_def_41():
    """[t.k = u.k] × R(t) × R(u) = [t = u] × R(t) in keyed models."""
    lhs = mul(Pred(EqPred(Attr(T, "k"), Attr(U, "k"))), Rel("r", T), Rel("r", U))
    rhs = mul(Pred(EqPred(T, U)), Rel("r", T))
    for m in all_models(keyed=True):
        for t_row in m.tuples_of(S):
            for u_row in m.tuples_of(S):
                env = {"t": t_row, "u": u_row}
                assert m.evaluate(lhs, env) == m.evaluate(rhs, env)


def test_key_implies_multiplicity_idempotence():
    """Theorem 4.2's first half: R(t)² = R(t) under a key."""
    lhs = mul(Rel("r", T), Rel("r", T))
    rhs = Rel("r", T)
    for m in all_models(keyed=True):
        for t_row in m.tuples_of(S):
            env = {"t": t_row}
            assert m.evaluate(lhs, env) == m.evaluate(rhs, env)


def test_key_identity_fails_without_key():
    """Sanity: Def. 4.1 really needs the key — bags break it."""
    lhs = mul(Rel("r", T), Rel("r", T))
    rhs = Rel("r", T)
    m = model([{"k": 0, "a": 0}, {"k": 0, "a": 0}])  # multiplicity 2
    env = {"t": {"k": 0, "a": 0}}
    assert m.evaluate(lhs, env) == 4
    assert m.evaluate(rhs, env) == 2


# -- Theorem 4.3: key-pinned sums are squash-invariant ------------------------------


def test_theorem_43():
    body = mul(
        Pred(AtomPred("<", (ConstVal(0), Attr(T, "a")))),
        Pred(EqPred(Attr(T, "k"), Attr(U, "a"))),
        Rel("r", T),
    )
    summed = Sum("t", S, body)
    for m in all_models(keyed=True):
        for u_row in m.tuples_of(S):
            env = {"u": u_row}
            value = m.evaluate(summed, env)
            squashed = m.evaluate(squash(summed), env)
            assert value == squashed


# -- Def. 4.4: foreign keys ---------------------------------------------------------


def test_fk_identity_def_44():
    """S(u) = S(u) × Σ_t R(t) × [t.k = u.f] in fk-satisfying models."""
    s_schema = Schema.of("s2", "f")
    u = TupleVar("u")
    lhs = Rel("q", u)
    rhs = mul(
        Rel("q", u),
        Sum("t", S, mul(Rel("r", T), Pred(EqPred(Attr(T, "k"), Attr(u, "f"))))),
    )
    # Build fk-satisfying models: q.f values must appear as unique r.k.
    r_rows = [{"k": 0, "a": 1}, {"k": 1, "a": 0}]
    for q_values in ([], [0], [1], [0, 1], [0, 0]):
        table_r = {tuple_key(row): 1 for row in r_rows}
        table_q = {}
        for value in q_values:
            key = tuple_key({"f": value})
            table_q[key] = table_q.get(key, 0) + 1
        m = Interpretation(N, UNIVERSE, {"r": table_r, "q": table_q})
        for u_row in m.tuples_of(s_schema):
            env = {"u": u_row}
            assert m.evaluate(lhs, env) == m.evaluate(rhs, env)


# -- excluded middle (Eq. 12) with summation ------------------------------------------


def test_excluded_middle_splits_sums():
    """Σ_t f = Σ_t [t.a = 0] f + Σ_t [t.a ≠ 0] f (the Ex. 5.2 move)."""
    f = Rel("r", T)
    whole = Sum("t", S, f)
    split = add(
        Sum("t", S, mul(Pred(EqPred(Attr(T, "a"), ConstVal(0))), f)),
        Sum("t", S, mul(Pred(NePred(Attr(T, "a"), ConstVal(0))), f)),
    )
    eq_in_all_models(whole, split)


# -- the Sec. 4.2 incompleteness direction --------------------------------------------


def test_u_equivalence_is_strictly_stronger_than_n_equivalence():
    """Squash distinguishes more than N does in some U-semirings.

    ``‖x‖`` and ``x`` agree on {0, 1} ⊂ N but differ at 2 — a reminder that
    U-equivalence quantifies over all instances, so syntactic 0/1 reasoning
    cannot replace the squash operator.
    """
    x = Rel("r", T)
    m = model([{"k": 0, "a": 0}, {"k": 0, "a": 0}])
    env = {"t": {"k": 0, "a": 0}}
    assert m.evaluate(x, env) == 2
    assert m.evaluate(squash(x), env) == 1
