"""SharedMemoStore mechanics: the size-cap compaction path.

PR 4 left the store append-only: past ``max_bytes`` every publish was
silently dropped, so a long-lived service eventually stopped warming its
pool members.  The store now compacts instead — an LRU-style rewrite
under the exclusive ``flock`` that keeps the newest records (last
occurrence per key) up to half the cap, bumps the epoch so other
processes drop their offset-stale views, and then appends the new
record.  These tests pin that behavior down.
"""

from __future__ import annotations

import os

import pytest

from repro.hashcons_store import _RECORD, SharedMemoStore


def _fill(store: SharedMemoStore, count: int, prefix: str = "k", size: int = 64):
    for n in range(count):
        store.put(f"{prefix}{n}", "v" * size + str(n))


def test_compaction_keeps_appends_flowing(tmp_path):
    path = str(tmp_path / "memo.store")
    store = SharedMemoStore(path, max_bytes=4096)
    try:
        _fill(store, 60)
        stats = store.stats()
        assert stats["compactions"] >= 1, "cap never triggered a compaction"
        assert stats["dropped"] == 0, "compaction must replace dropping"
        assert stats["publishes"] == 60
        # The file stays within the cap and the newest key is durable.
        assert os.path.getsize(path) <= 4096
        assert store.get("k59") == "v" * 64 + "59"
    finally:
        store.close()


def test_compaction_survivors_visible_to_fresh_process_view(tmp_path):
    path = str(tmp_path / "memo.store")
    store = SharedMemoStore(path, max_bytes=4096)
    try:
        _fill(store, 60)
        assert store.stats()["compactions"] >= 1
    finally:
        store.close()
    # A brand-new store over the same file (a later process) must parse
    # the compacted layout and see the newest entries, not the oldest.
    reader = SharedMemoStore(path, max_bytes=4096)
    try:
        assert reader.get("k59") == "v" * 64 + "59"
        assert reader.get("k0") is None, "oldest record survived compaction"
        assert len(reader) > 0
    finally:
        reader.close()


def test_compaction_bumps_epoch_for_other_processes(tmp_path):
    path = str(tmp_path / "memo.store")
    writer = SharedMemoStore(path, max_bytes=4096)
    observer = SharedMemoStore(path, max_bytes=4096)
    try:
        writer.put("shared", "payload")
        assert observer.get("shared") == "payload"
        epoch_before = observer.stats()["epoch"]
        _fill(writer, 60)
        assert writer.stats()["compactions"] >= 1
        # The observer notices the epoch bump on its next access and
        # relearns the surviving entries from the rewritten file.
        assert observer.get("k59") == "v" * 64 + "59"
        assert observer.stats()["epoch"] > epoch_before
    finally:
        writer.close()
        observer.close()


def test_oversized_record_is_dropped_not_compacted(tmp_path):
    path = str(tmp_path / "memo.store")
    store = SharedMemoStore(path, max_bytes=512)
    try:
        store.put("huge", "x" * 4096)
        stats = store.stats()
        assert stats["dropped"] == 1
        assert stats["compactions"] == 0
    finally:
        store.close()
    reader = SharedMemoStore(path, max_bytes=512)
    try:
        assert reader.get("huge") is None
    finally:
        reader.close()


def test_headerless_file_self_heals_on_put(tmp_path):
    """A writer killed at the worst moment (the pool's hard member
    timeout SIGKILLs at arbitrary points) could historically leave a
    truncated, headerless file; the next put must restore the header
    instead of appending a record where the header belongs — which
    would silently poison every reader until an explicit clear."""
    path = str(tmp_path / "memo.store")
    store = SharedMemoStore(path, max_bytes=4096)
    try:
        store.put("before", "payload")
    finally:
        store.close()
    with open(path, "r+b") as handle:
        handle.truncate(0)  # simulate the crash artifact
    healer = SharedMemoStore(path, max_bytes=4096)
    try:
        healer.put("after", "healed")
    finally:
        healer.close()
    reader = SharedMemoStore(path, max_bytes=4096)
    try:
        assert reader.get("after") == "healed"
    finally:
        reader.close()


def test_last_write_wins_across_compaction(tmp_path):
    """Duplicate keys (two processes racing to publish) dedupe to the
    newest occurrence when a compaction rewrites the file."""
    path = str(tmp_path / "memo.store")
    store = SharedMemoStore(path, max_bytes=4096)
    sibling = SharedMemoStore(path, max_bytes=4096)
    try:
        store.put("dup", "old")
        # put() is idempotent per key within one store view; the sibling
        # view plays the second process appending its own record.
        sibling.put("dup", "new")
        _fill(store, 60, prefix="pad")
        assert store.stats()["compactions"] >= 1
    finally:
        store.close()
        sibling.close()
    reader = SharedMemoStore(path, max_bytes=4096)
    try:
        value = reader.get("dup")
        assert value in (None, "new"), "compaction resurrected a stale record"
    finally:
        reader.close()


# -- platforms without fcntl --------------------------------------------------


def test_missing_fcntl_degrades_to_private_store(tmp_path, monkeypatch):
    """No fcntl means no cross-process locking: the store must degrade
    to a warned-about private in-process map (never unlocked file I/O),
    or refuse outright under ``require_locking=True`` — PR 4 silently
    no-opped the locks and kept writing the shared file."""
    import repro.hashcons_store as hs

    monkeypatch.setattr(hs, "fcntl", None)
    path = str(tmp_path / "memo.store")
    with pytest.warns(RuntimeWarning, match="fcntl"):
        store = SharedMemoStore(path)
    try:
        store.put("k", "v")
        assert store.get("k") == "v"
        assert store.stats()["locking"] == "private"
        assert not os.path.exists(path), "private mode must not touch disk"
    finally:
        store.close()


def test_missing_fcntl_with_require_locking_fails_loudly(monkeypatch):
    import repro.hashcons_store as hs

    monkeypatch.setattr(hs, "fcntl", None)
    with pytest.raises(RuntimeError, match="fcntl"):
        SharedMemoStore(require_locking=True)


# -- torn tails ---------------------------------------------------------------


def _append_torn_record(path: str) -> None:
    """Simulate a writer SIGKILLed mid-append: a record header that
    promises more payload bytes than the file holds."""
    key = b"torn-key"
    with open(path, "ab") as handle:
        handle.write(_RECORD.pack(len(key), 4096) + key + b"only-a-few-bytes")


def test_torn_tail_is_ignored_by_readers(tmp_path):
    path = str(tmp_path / "memo.store")
    store = SharedMemoStore(path)
    try:
        store.put("before", "payload")
    finally:
        store.close()
    _append_torn_record(path)
    reader = SharedMemoStore(path)
    try:
        assert reader.get("before") == "payload"
        assert reader.get("torn-key") is None
    finally:
        reader.close()


def test_put_truncates_torn_tail_so_new_records_stay_reachable(tmp_path):
    """Appending after a torn tail would strand the new record — every
    reader stops parsing at the tear.  The next put (under the exclusive
    lock, where a partial record can only be a crash artifact) must
    truncate the tear away first."""
    path = str(tmp_path / "memo.store")
    store = SharedMemoStore(path)
    try:
        store.put("before", "payload")
    finally:
        store.close()
    _append_torn_record(path)
    torn_size = os.path.getsize(path)
    writer = SharedMemoStore(path)
    try:
        writer.put("after", "healed")
        assert writer.stats()["torn_truncations"] == 1
        assert writer.get("before") == "payload"
    finally:
        writer.close()
    assert os.path.getsize(path) != torn_size
    reader = SharedMemoStore(path)
    try:
        assert reader.get("before") == "payload"
        assert reader.get("after") == "healed", "record stranded past a tear"
        assert reader.get("torn-key") is None
    finally:
        reader.close()
