"""Concurrency stress tests of the session pool and its HTTP front end.

The pool's contract has four load-bearing claims, each hammered here
over real HTTP from many client threads:

* **Verdict identity** — answers through an N-member pool (thread *and*
  forked-process members) are verdict- and reason-code-identical to the
  single-session differential baseline (``Session.verify`` /
  ``Solver.check``), per request id.
* **No cross-talk** — every response carries exactly the id, the
  verdict, and the per-request pipeline behavior of *its* request, no
  matter how the scheduler interleaves members.
* **Ordering** — ``/verify/batch`` output equals the single-member
  server's output record-for-record, in input order, malformed lines
  included.
* **Backpressure** — past the admission bound the server answers a
  structured 503 with ``Retry-After`` (and keeps ``/healthz`` alive),
  then recovers; queued requests within the bound wait and succeed.

Plus the pool-only mechanics: forked members that die mid-request are
respawned after answering a structured error record, and process-mode
members warm each other through the shared memo store.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.server import VerificationServer
from repro.server.pool import (
    AdmissionGate,
    SessionPool,
    default_pool_size,
    resolve_pool_mode,
)
from repro.session import (
    PipelineConfig,
    Session,
    TacticOutcome,
    _TACTICS,
    register_tactic,
)
from repro.udp.trace import ReasonCode, Verdict

from tests.conftest import RS_PROGRAM

#: Pool size the stress scenarios run with (the CI ``server-stress`` job
#: exports UDP_POOL_TEST_SIZE=4 to pin the issue's ``--pool-size 4``).
STRESS_POOL_SIZE = max(2, int(os.environ.get("UDP_POOL_TEST_SIZE", "4")))
CLIENT_THREADS = 8

PROCESS_MODE_AVAILABLE = resolve_pool_mode("auto", 2) == "process"
needs_fork = pytest.mark.skipif(
    not PROCESS_MODE_AVAILABLE, reason="fork start method unavailable"
)

# -- test-only tactics (registered before any pool forks) ---------------------

if "test-sleep" not in _TACTICS:

    @register_tactic("test-sleep")
    def _tactic_sleep(session, task, config):
        time.sleep(0.4)
        return TacticOutcome(
            verdict=Verdict.NOT_PROVED,
            reason_code=ReasonCode.NO_ISOMORPHISM,
            reason="slept",
            conclusive=True,
        )


if "test-crash" not in _TACTICS:

    @register_tactic("test-crash")
    def _tactic_crash(session, task, config):
        os._exit(17)  # simulate a member process dying mid-proof


if "test-wedge" not in _TACTICS:

    @register_tactic("test-wedge")
    def _tactic_wedge(session, task, config):
        # A wedged (non-crashing) member: the sleep never reaches the
        # engine's cooperative budget checks, so only the pool's hard
        # recv deadline can get the reader thread back.
        time.sleep(120)
        return TacticOutcome(
            verdict=Verdict.NOT_PROVED,
            reason_code=ReasonCode.NO_ISOMORPHISM,
            reason="woke up",
            conclusive=True,
        )


# -- shared workload ----------------------------------------------------------

#: Ten distinct pairs with known outcomes under the default pipeline.
PAIRS = {}
for n in range(5):
    PAIRS[f"eq-{n}"] = (
        f"SELECT * FROM r x WHERE x.a = {n} AND x.b = {n + 10}",
        f"SELECT * FROM r x WHERE x.b = {n + 10} AND x.a = {n}",
    )
    PAIRS[f"neq-{n}"] = (
        f"SELECT * FROM r x WHERE x.a = {n}",
        f"SELECT * FROM r x WHERE x.a = {n + 100}",
    )


@pytest.fixture(scope="module")
def baseline():
    """request key -> (verdict, reason_code) via one plain Session."""
    session = Session.from_program_text(RS_PROGRAM)
    return {
        key: (result.verdict.value, result.reason_code.value)
        for key, pair in PAIRS.items()
        for result in [session.verify(pair[0], pair[1])]
    }


def post_json(url, obj, timeout=60):
    request = urllib.request.Request(
        url,
        data=json.dumps(obj).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(
                response.headers
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def get_json(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read())


def batch_records(server, lines, query=""):
    request = urllib.request.Request(
        server.url + "/verify/batch" + query,
        data=("\n".join(lines) + "\n").encode("utf-8"),
        headers={"Content-Type": "application/x-ndjson"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        assert response.status == 200
        payload = response.read().decode("utf-8")
    return [json.loads(line) for line in payload.splitlines()]


# -- verdict identity + no cross-talk under thread hammering ------------------


def test_stress_clients_verdict_identity_and_no_crosstalk(baseline):
    """≥8 client threads × mixed pairs: every answer matches its id's
    baseline verdict and reason code — concurrency may reorder work but
    never swap or corrupt answers."""
    rounds = 5
    with VerificationServer(
        Session.from_program_text(RS_PROGRAM),
        pool_size=STRESS_POOL_SIZE,
        pool_mode="thread",
    ) as server:
        results = []
        errors = []

        def client(worker):
            try:
                for round_no in range(rounds):
                    key = list(PAIRS)[(worker + round_no) % len(PAIRS)]
                    left, right = PAIRS[key]
                    request_id = f"{key}#{worker}.{round_no}"
                    status, record, _ = post_json(
                        server.url + "/verify",
                        {"id": request_id, "left": left, "right": right},
                    )
                    results.append((key, request_id, status, record))
            except Exception as error:  # pragma: no cover - fail loudly
                errors.append(error)

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(CLIENT_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert len(results) == CLIENT_THREADS * rounds
        for key, request_id, status, record in results:
            assert status == 200
            assert record["id"] == request_id  # the id echo: no swapped answers
            assert (record["verdict"], record["reason_code"]) == baseline[key], (
                f"{request_id} drifted from the single-session baseline"
            )
        stats = get_json(server.url + "/stats")
        assert stats["results"] == len(results)
        pool = stats["pool"]
        assert pool["size"] == STRESS_POOL_SIZE
        assert sum(m["requests"] for m in pool["members"]) == len(results)
        # The idle queue rotates members, so sequential-ish load still
        # spreads: more than one member must have proved something.
        assert sum(1 for m in pool["members"] if m["requests"] > 0) >= 2


def test_per_request_pipeline_isolation_under_concurrency():
    """Concurrent clients with *different* per-request pipelines on the
    same pair each get their own pipeline's answer — member reuse must
    not leak one request's configuration into another's."""
    neq = ("SELECT * FROM r x WHERE x.a = 1", "SELECT * FROM r x WHERE x.a = 2")
    with VerificationServer(
        Session.from_program_text(RS_PROGRAM),
        pool_size=STRESS_POOL_SIZE,
        pool_mode="thread",
    ) as server:
        outcomes = []
        errors = []

        def client(i):
            try:
                wants_refutation = i % 2 == 0
                payload = {"id": f"c{i}", "left": neq[0], "right": neq[1]}
                if wants_refutation:
                    payload["pipeline"] = "udp-prove,model-check"
                else:
                    payload["pipeline"] = "udp-prove"
                status, record, _ = post_json(server.url + "/verify", payload)
                outcomes.append((wants_refutation, status, record))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(12)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors and len(outcomes) == 12
        for wants_refutation, status, record in outcomes:
            assert status == 200
            assert record["verdict"] == "not_proved"
            if wants_refutation:
                assert record["reason_code"] == "counterexample-found"
                assert record["tactics_tried"] == ["udp-prove", "model-check"]
            else:
                assert record["reason_code"] == "no-isomorphism"
                assert record["tactics_tried"] == ["udp-prove"]


# -- batch ordering -----------------------------------------------------------


def test_pooled_batch_identical_to_single_member_baseline():
    """The same batch through a pool and through one member must produce
    the same records in the same (input) order — including the malformed
    lines — with only the timings differing."""
    lines = []
    for index, (key, (left, right)) in enumerate(sorted(PAIRS.items())):
        lines.append(json.dumps({"id": key, "left": left, "right": right}))
        if index % 3 == 1:
            lines.append(f"malformed line {index}")
        if index % 4 == 2:
            lines.append(json.dumps({"id": f"partial-{index}", "left": left}))
    lines.append("")  # blank: skipped, not answered

    def strip(record):
        record = dict(record)
        record.pop("elapsed_seconds", None)
        return record

    with VerificationServer(
        Session.from_program_text(RS_PROGRAM), pool_size=1, pool_mode="thread"
    ) as single:
        expected = [strip(r) for r in batch_records(single, lines)]
    with VerificationServer(
        Session.from_program_text(RS_PROGRAM),
        pool_size=STRESS_POOL_SIZE,
        pool_mode="thread",
    ) as pooled:
        for window in ("", "?window=2", "?window=64"):
            got = [strip(r) for r in batch_records(pooled, lines, window)]
            assert got == expected, f"batch drift at window {window!r}"


# -- process members ----------------------------------------------------------


@needs_fork
def test_process_pool_verdict_identity_on_corpus_subset():
    """Forked members answer the corpus subset exactly like Solver.check
    (the legacy pipeline) — the acceptance bar for pooled proving."""
    from repro import Solver
    from repro.corpus import all_rules

    rules = [r for r in all_rules() if r.dataset in ("bugs", "literature")][:20]
    expected = {}
    for rule in rules:
        solver = Solver.from_program_text(rule.program)
        outcome = solver.check(rule.left, rule.right)
        expected[rule.rule_id] = (
            outcome.verdict.value,
            outcome.reason_code.value,
        )
    lines = [
        json.dumps(
            {
                "id": rule.rule_id,
                "left": rule.left,
                "right": rule.right,
                "program": rule.program,
            }
        )
        for rule in rules
    ]
    with VerificationServer(
        pipeline=PipelineConfig.legacy(), pool_size=2, pool_mode="process"
    ) as server:
        assert server.pool.mode == "process"
        records = batch_records(server, lines)
    assert [r["id"] for r in records] == [rule.rule_id for rule in rules]
    drift = {
        r["id"]: (expected[r["id"]], (r["verdict"], r["reason_code"]))
        for r in records
        if (r["verdict"], r["reason_code"]) != expected[r["id"]]
    }
    assert not drift, f"process pool drifted from Solver.check: {drift}"


@needs_fork
def test_dead_process_member_answers_error_and_respawns():
    pool = SessionPool(
        1, mode="process", session=Session.from_program_text(RS_PROGRAM)
    )
    try:
        record = pool.verify_json(
            {
                "id": "boom",
                "left": "SELECT * FROM r x",
                "right": "SELECT * FROM r x",
                "pipeline": "test-crash",
            }
        )
        assert record["verdict"] == "error"
        assert record["id"] == "boom"
        assert "died mid-request" in record["reason"]
        # The respawned member keeps serving.
        record = pool.verify_json(
            {
                "id": "after",
                "left": "SELECT * FROM r x",
                "right": "SELECT * FROM r x",
            }
        )
        assert record["verdict"] == "proved"
        assert pool.members[0].restarts == 1
    finally:
        pool.close()


@needs_fork
def test_wedged_member_hard_timeout_kills_and_respawns():
    """A member that is alive but not answering (no crash, no budget
    check reached) must not hold its reader forever: the recv deadline
    kills it, answers a structured timeout record, and respawns."""
    pool = SessionPool(
        1,
        mode="process",
        session=Session.from_program_text(RS_PROGRAM),
        member_timeout=1.0,
        shared_store=False,
    )
    try:
        started = time.monotonic()
        record = pool.verify_json(
            {
                "id": "wedge",
                "left": "SELECT * FROM r x",
                "right": "SELECT * FROM r x",
                "pipeline": "test-wedge",
            }
        )
        elapsed = time.monotonic() - started
        assert record["verdict"] == "timeout"
        assert record["id"] == "wedge"
        assert record["reason_code"] == ReasonCode.BUDGET_EXHAUSTED.value
        assert "killed" in record["reason"]
        assert elapsed < 30, "hard deadline did not fire"
        member = pool.members[0]
        assert member.hard_timeouts == 1
        assert member.restarts == 1
        # The respawned member keeps serving normal work.
        record = pool.verify_json(
            {
                "id": "after",
                "left": "SELECT * FROM r x",
                "right": "SELECT * FROM r x",
            }
        )
        assert record["verdict"] == "proved"
        assert pool.stats()["hard_timeouts"] == 1
    finally:
        pool.close()


def test_hard_deadline_derived_from_pipeline_budgets():
    pool = SessionPool(
        1, mode="thread", session=Session.from_program_text(RS_PROGRAM)
    )
    try:
        derived = pool._hard_deadline({}, None)
        budgets = sum(
            pool.config.budget_for(t) for t in pool.config.tactics
        )
        assert derived == pytest.approx(budgets + 30.0)
        # A per-request override stretches the deadline accordingly.
        longer = pool._hard_deadline({"timeout_seconds": 120.0}, None)
        assert longer > derived
    finally:
        pool.close()
    explicit = SessionPool(
        1,
        mode="thread",
        session=Session.from_program_text(RS_PROGRAM),
        member_timeout=2.5,
    )
    try:
        assert explicit._hard_deadline({}, None) == 2.5
    finally:
        explicit.close()


@needs_fork
def test_shared_store_warms_the_sibling_member():
    """Member 0 proves a never-seen pair; with shard routing disabled the
    LRU rotation hands the identical repeat to member 1, whose private
    caches are cold — it must find member 0's normalize/canonize results
    in the shared store.  (Sharded dispatch would deliberately send the
    repeat back to member 0; cross-member warming is what's under test.)"""
    pool = SessionPool(
        2,
        mode="process",
        session=Session.from_program_text(RS_PROGRAM),
        shard_dispatch=False,
    )
    try:
        assert pool.store is not None
        # Constants nothing else in the suite uses: cold in every cache.
        pair = {
            "left": "SELECT * FROM r x WHERE x.a = 777001 AND x.b = 777002",
            "right": "SELECT * FROM r x WHERE x.b = 777002 AND x.a = 777001",
        }
        first = pool.verify_json(dict(pair, id="warm-0"))
        second = pool.verify_json(dict(pair, id="warm-1"))
        assert first["verdict"] == second["verdict"] == "proved"
        assert first["reason_code"] == second["reason_code"]
        members = {m["id"]: m for m in pool.stats()["members"]}
        assert members[0]["requests"] == 1 and members[1]["requests"] == 1
        assert members[0]["store"]["publishes"] > 0, "member 0 published nothing"
        assert members[1]["store"]["hits"] > 0, (
            "member 1 re-proved cold instead of hitting the shared store: "
            f"{members[1]['store']}"
        )
    finally:
        pool.close()


# -- backpressure -------------------------------------------------------------


SLOW_REQUEST = {
    "left": "SELECT * FROM r x WHERE x.a = 900001",
    "right": "SELECT * FROM r x WHERE x.a = 900002",
    "pipeline": "test-sleep",
}


def test_saturation_returns_structured_503_with_retry_after():
    with VerificationServer(
        Session.from_program_text(RS_PROGRAM),
        pool_size=1,
        pool_mode="thread",
        max_inflight=1,
        max_queued=0,
        admission_timeout=0.0,
        retry_after=7,
    ) as server:
        release = threading.Event()
        slow_status = []

        def slow_client():
            status, _, _ = post_json(
                server.url + "/verify", dict(SLOW_REQUEST, id="slow")
            )
            slow_status.append(status)
            release.set()

        thread = threading.Thread(target=slow_client)
        thread.start()
        time.sleep(0.1)  # the slow request is now holding the only slot
        status, payload, headers = post_json(
            server.url + "/verify", dict(SLOW_REQUEST, id="rejected")
        )
        assert status == 503
        assert payload["error"]["code"] == "saturated"
        # The hint is jittered to de-correlate retry stampedes: at least
        # the configured base, at most 1.5x it (bounded spread).
        retry_hint = payload["error"]["retry_after_seconds"]
        assert 7 <= retry_hint <= 10.5
        assert 7 <= int(headers.get("Retry-After")) <= 11
        # Liveness endpoints stay answerable while proving is saturated.
        assert get_json(server.url + "/healthz")["status"] == "ok"
        release.wait(timeout=30)
        thread.join(timeout=30)
        assert slow_status == [200]
        # Capacity recovered: the next request is served, and /stats
        # remembers the shed load.
        deadline = time.monotonic() + 10
        while True:
            status, record, _ = post_json(
                server.url + "/verify",
                {
                    "id": "recovered",
                    "left": "SELECT * FROM r x",
                    "right": "SELECT * FROM r x",
                },
            )
            if status == 200 or time.monotonic() > deadline:
                break
            time.sleep(0.05)
        assert status == 200 and record["verdict"] == "proved"
        stats = get_json(server.url + "/stats")
        assert stats["saturated"] >= 1
        assert stats["admission"]["rejected"] >= 1
        assert stats["admission"]["max_inflight"] == 1


def test_queued_request_within_bound_waits_and_succeeds():
    with VerificationServer(
        Session.from_program_text(RS_PROGRAM),
        pool_size=1,
        pool_mode="thread",
        max_inflight=1,
        max_queued=1,
        admission_timeout=10.0,
    ) as server:
        statuses = []

        def client(request_id):
            status, _, _ = post_json(
                server.url + "/verify", dict(SLOW_REQUEST, id=request_id)
            )
            statuses.append(status)

        threads = [
            threading.Thread(target=client, args=(f"q{i}",)) for i in range(2)
        ]
        threads[0].start()
        time.sleep(0.1)
        threads[1].start()  # waits in the admission queue, must not 503
        for thread in threads:
            thread.join(timeout=60)
        assert statuses == [200, 200]


def test_admission_gate_unit():
    gate = AdmissionGate(2, max_queued=1, wait_timeout=0.0)
    assert gate.try_enter() and gate.try_enter()
    assert not gate.try_enter()  # full, no waiting allowed
    gate.leave()
    assert gate.try_enter()
    snapshot = gate.snapshot()
    assert snapshot["rejected"] == 1
    assert snapshot["admitted"] == 3
    assert snapshot["peak_inflight"] == 2

    waiter = AdmissionGate(1, max_queued=1, wait_timeout=5.0)
    assert waiter.try_enter()
    admitted = []
    thread = threading.Thread(
        target=lambda: admitted.append(waiter.try_enter())
    )
    thread.start()
    time.sleep(0.1)
    waiter.leave()  # wakes the queued caller within its timeout
    thread.join(timeout=10)
    assert len(admitted) == 1 and admitted[0]


def test_queued_waiter_beats_barging_newcomer():
    """FIFO regression: a freed slot must go to the queued waiter, not to
    a newcomer that arrives at the exact release instant.

    The old gate handed the slot to whichever thread won the lock race —
    a ``wait_timeout=0`` newcomer could barge past a patient waiter and
    starve it through its whole timeout.  The ticketed gate admits in
    arrival order: while anyone queues, an impatient newcomer is refused
    immediately.
    """
    gate = AdmissionGate(1, max_queued=4, wait_timeout=10.0)
    assert gate.try_enter()  # occupy the only slot

    order = []
    started = threading.Event()

    def patient_waiter():
        started.set()
        decision = gate.try_enter()
        order.append(("waiter", bool(decision)))

    thread = threading.Thread(target=patient_waiter)
    thread.start()
    started.wait(timeout=10)
    deadline = time.monotonic() + 5
    while gate.snapshot()["queued"] == 0:  # the waiter holds a ticket
        assert time.monotonic() < deadline, "waiter never queued"
        time.sleep(0.005)

    gate.leave()  # frees the slot with the waiter still queued
    # A barging newcomer (refuses to wait at all) must NOT steal it.
    newcomer = gate.try_enter(wait_timeout=0.0)
    assert not newcomer, "newcomer barged past a queued waiter"

    thread.join(timeout=10)
    assert order == [("waiter", True)]
    gate.leave()


def test_per_client_fairness_band_under_contention():
    """N clients hammering a per-client-capped gate each get admitted;
    no client's concurrency exceeds its cap, and every client makes
    progress (the fairness band: nobody is starved to zero)."""
    clients = [f"client-{i}" for i in range(4)]
    gate = AdmissionGate(
        8, max_queued=64, wait_timeout=5.0, per_client_inflight=2
    )
    progress = {name: 0 for name in clients}
    over_cap = []
    inflight = {name: 0 for name in clients}
    lock = threading.Lock()

    def hammer(name):
        for _ in range(10):
            decision = gate.try_enter(name)
            if not decision:
                continue
            with lock:
                inflight[name] += 1
                if inflight[name] > 2:
                    over_cap.append((name, inflight[name]))
            time.sleep(0.002)
            with lock:
                inflight[name] -= 1
                progress[name] += 1
            gate.leave(name)

    threads = [
        threading.Thread(target=hammer, args=(name,)) for name in clients
        for _ in range(3)  # 3 threads per client fight the per-client cap
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)

    assert not over_cap, f"per-client cap violated: {over_cap}"
    assert all(count > 0 for count in progress.values()), (
        f"a client was starved: {progress}"
    )
    snapshot = gate.snapshot()
    assert snapshot["per_client_inflight"] == 2
    assert set(snapshot["clients"]) == set(clients)


def test_rate_limit_answers_rate_limited_with_retry_after():
    """A client over its token bucket gets a 'rate-limited' decision
    carrying retry_after; a different client is unaffected; the bucket
    refills with time."""
    gate = AdmissionGate(
        8, max_queued=8, wait_timeout=0.0, rate_limit=2.0, rate_burst=2.0
    )
    # Burst capacity (2 tokens) admits the first two...
    assert gate.try_enter("greedy")
    assert gate.try_enter("greedy")
    # ...then the bucket is dry: rate-limited, with a retry hint.
    decision = gate.try_enter("greedy")
    assert not decision
    assert decision.code == "rate-limited"
    assert decision.retry_after is not None and decision.retry_after > 0
    # An unrelated client has its own bucket.
    assert gate.try_enter("patient")
    gate.leave("patient")
    # Refill: at 2 tokens/sec, ~0.6s buys at least one more admission.
    time.sleep(0.6)
    assert gate.try_enter("greedy")
    for _ in range(3):
        gate.leave("greedy")
    snapshot = gate.snapshot()
    assert snapshot["rate_limited"] >= 1
    assert snapshot["rate_limit"] == 2.0


def test_thread_mode_multi_member_pool_warns_about_isolation(caplog):
    """Thread members share the GIL and cannot be hard-killed on a
    wedged prove — a multi-member thread pool must say so loudly at
    construction instead of silently offering less isolation than the
    flags imply."""
    import logging

    with caplog.at_level(logging.WARNING, logger="repro.server.pool"):
        pool = SessionPool(2, mode="thread", program=RS_PROGRAM)
        pool.close()
    assert any(
        "cannot be hard-killed" in record.message for record in caplog.records
    ), caplog.records

    caplog.clear()
    with caplog.at_level(logging.WARNING, logger="repro.server.pool"):
        pool = SessionPool(1, mode="thread", program=RS_PROGRAM)
        pool.close()
    assert not any(
        "cannot be hard-killed" in record.message for record in caplog.records
    ), "a single-member thread pool has no isolation gap to warn about"


# -- mode resolution ----------------------------------------------------------


def test_pool_mode_resolution():
    assert resolve_pool_mode("thread", 8) == "thread"
    assert resolve_pool_mode("auto", 1) == "thread"
    if PROCESS_MODE_AVAILABLE:
        assert resolve_pool_mode("auto", 2) == "process"
    with pytest.raises(ValueError, match="unknown pool mode"):
        resolve_pool_mode("fibers", 2)
    assert default_pool_size() >= 1
