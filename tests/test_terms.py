"""U-expression AST and smart-constructor tests."""

from repro.sql.schema import Schema
from repro.usr.predicates import AtomPred, EqPred, NePred
from repro.usr.terms import (
    Add,
    Mul,
    Not,
    One,
    Pred,
    Rel,
    Squash,
    Sum,
    Zero,
    add,
    big_sum,
    mul,
    not_,
    squash,
)
from repro.usr.values import Attr, ConstVal, Func, TupleCons, TupleVar


S = Schema.of("s", "a", "b")
T = TupleVar("t")
U = TupleVar("u")


def test_add_flattens_and_drops_zero():
    expr = add(Rel("r", T), add(Zero, Rel("s", U)))
    assert isinstance(expr, Add)
    assert len(expr.args) == 2


def test_add_of_nothing_is_zero():
    assert add() is Zero


def test_add_singleton_unwraps():
    assert add(Rel("r", T)) == Rel("r", T)


def test_mul_flattens_and_drops_one():
    expr = mul(Rel("r", T), mul(One, Rel("s", U)))
    assert isinstance(expr, Mul)
    assert len(expr.args) == 2


def test_mul_zero_annihilates():
    assert mul(Rel("r", T), Zero, Rel("s", U)) is Zero


def test_mul_of_nothing_is_one():
    assert mul() is One


def test_squash_smart_constructor():
    assert squash(Zero) is Zero
    assert squash(One) is One
    inner = Squash(Rel("r", T))
    assert squash(inner) == inner  # ‖‖x‖‖ = ‖x‖


def test_not_smart_constructor():
    assert not_(Zero) is One
    # not(‖x‖) = not(x)
    assert not_(Squash(Rel("r", T))) == Not(Rel("r", T))


def test_big_sum_right_nesting():
    expr = big_sum([("t", S), ("u", S)], Rel("r", T))
    assert isinstance(expr, Sum) and expr.var == "t"
    assert isinstance(expr.body, Sum) and expr.body.var == "u"


def test_free_tuple_vars_through_operators():
    expr = mul(Rel("r", T), Pred(EqPred(Attr(T, "a"), Attr(U, "b"))))
    assert expr.free_tuple_vars() == frozenset({"t", "u"})


def test_sum_binds_its_variable():
    expr = Sum("t", S, mul(Rel("r", T), Rel("s", U)))
    assert expr.free_tuple_vars() == frozenset({"u"})


def test_eq_pred_is_symmetric_in_structure():
    assert EqPred(T, U) == EqPred(U, T)
    assert NePred(T, U) == NePred(U, T)


def test_atom_pred_not_symmetric():
    lt_one_way = AtomPred("<", (Attr(T, "a"), ConstVal(5)))
    lt_other_way = AtomPred("<", (ConstVal(5), Attr(T, "a")))
    assert lt_one_way != lt_other_way


def test_tuple_cons_field_lookup():
    cons = TupleCons((("a", ConstVal(1)), ("b", ConstVal(2))))
    assert cons.field("a") == ConstVal(1)
    assert cons.field("zz") is None


def test_value_free_vars():
    value = Func("f", (Attr(T, "a"), ConstVal(3)))
    assert value.free_tuple_vars() == frozenset({"t"})


def test_operator_overloads():
    expr = Rel("r", T) + Rel("s", U)
    assert isinstance(expr, Add)
    expr = Rel("r", T) * Rel("s", U)
    assert isinstance(expr, Mul)


def test_str_rendering_round_trips_key_shapes():
    expr = Sum("t", S, mul(Pred(EqPred(Attr(T, "a"), ConstVal(1))), Rel("r", T)))
    text = str(expr)
    assert "Σ_t" in text and "r(t)" in text
