"""Differential harness: six entry points, one truth.

The repo now has six parallel ways to decide a query pair — the legacy
``Solver.check`` shim, ``Session.verify``, ``BatchVerifier.run``, the
single-member HTTP server, the pooled HTTP server (N members, shared
memo store, forked workers where the platform allows), and the async
front door (the selectors event loop with digest-sharded dispatch) —
and nothing but discipline keeps them agreeing.  This suite makes the discipline
executable: every entry point is driven over the full evaluation corpus
(all 91 rules: literature, Calcite, extensions, and the
``corpus/bugs.py`` negative cases) under the same legacy pipeline, and
the verdict *and* machine-readable ``reason_code`` must be identical for
every rule.  A drift in any one path fails with the rule id and the
disagreeing records named.

The shared baseline is the per-rule ``Solver`` result (its own catalog
per rule, exactly how ``test_corpus.py`` established the Fig. 5
expectations); the other paths run program-routed sessions, so this also
exercises sub-session catalog caching against fresh-catalog behavior —
and, for the pooled path, that fanning rules out across pool members
changes nothing but wall-clock time.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro import BatchVerifier, PipelineConfig, Session, Solver
from repro.corpus import all_rules, as_batch_pairs, as_verify_requests, rules_by_dataset
from repro.corpus.rules import Expectation
from repro.hashcons_store import install_shared_store
from repro.server import FrontDoorServer, VerificationServer
from repro.session import tactic_invocations
from repro.store import open_store

RULES = all_rules()
RULE_IDS = [rule.rule_id for rule in RULES]


def outcome_map_solver():
    """rule_id -> (verdict, reason_code) via the legacy shim, fresh catalogs."""
    out = {}
    for rule in RULES:
        solver = Solver.from_program_text(rule.program)
        outcome = solver.check(rule.left, rule.right)
        out[rule.rule_id] = (outcome.verdict.value, outcome.reason_code.value)
    return out


def outcome_map_session():
    """rule_id -> (verdict, reason_code) via one Session, program routing."""
    session = Session(config=PipelineConfig.legacy())
    return {
        result.request_id: (result.verdict.value, result.reason_code.value)
        for result in session.verify_many(as_verify_requests())
    }


def outcome_map_batch():
    """rule_id -> (verdict, reason_code) via the batch service (in-process)."""
    records = BatchVerifier(workers=1).run(as_batch_pairs())
    return {
        record.pair_id: (record.verdict, record.reason_code)
        for record in records
    }


def _http_batch_outcomes(server):
    payload = "\n".join(
        json.dumps(request.to_json()) for request in as_verify_requests()
    ) + "\n"
    http_request = urllib.request.Request(
        server.url + "/verify/batch",
        data=payload.encode("utf-8"),
        headers={"Content-Type": "application/x-ndjson"},
    )
    with urllib.request.urlopen(http_request, timeout=300) as response:
        assert response.status == 200
        lines = response.read().decode("utf-8").splitlines()
    records = [json.loads(line) for line in lines]
    assert not any("error" in record for record in records)
    return {
        record["id"]: (record["verdict"], record["reason_code"])
        for record in records
    }


def outcome_map_http():
    """rule_id -> (verdict, reason_code) via one streamed HTTP batch."""
    with VerificationServer(pipeline=PipelineConfig.legacy()) as server:
        return _http_batch_outcomes(server)


def outcome_map_pool_http():
    """rule_id -> (verdict, reason_code) via the pooled server (2 warm
    members, forked workers + shared memo store where fork exists)."""
    with VerificationServer(
        pipeline=PipelineConfig.legacy(), pool_size=2, pool_mode="auto"
    ) as server:
        outcomes = _http_batch_outcomes(server)
        spread = [m.requests for m in server.pool.members]
        assert sum(spread) >= len(RULES), spread
        assert all(count > 0 for count in spread), (
            f"pool did not dispatch across members: {spread}"
        )
        return outcomes


def outcome_map_frontdoor():
    """rule_id -> (verdict, reason_code) via the async front door (the
    selectors event loop with digest-sharded dispatch over 2 members)."""
    with FrontDoorServer(
        pipeline=PipelineConfig.legacy(), pool_size=2, pool_mode="auto"
    ) as server:
        outcomes = _http_batch_outcomes(server)
        dispatch = server.pool.stats()["dispatch"]
        assert dispatch["sharding"], dispatch
        assert dispatch["sharded"] + dispatch["fallbacks"] >= len(RULES), (
            f"front door did not shard-dispatch the corpus: {dispatch}"
        )
        return outcomes


@pytest.fixture(scope="module")
def outcomes():
    return {
        "solver": outcome_map_solver(),
        "session": outcome_map_session(),
        "batch": outcome_map_batch(),
        "http": outcome_map_http(),
        "pool_http": outcome_map_pool_http(),
        "frontdoor": outcome_map_frontdoor(),
    }


def test_corpus_is_the_full_91_rules(outcomes):
    assert len(RULES) == 91
    for name, mapping in outcomes.items():
        assert sorted(mapping) == sorted(RULE_IDS), f"{name} missed rules"


@pytest.mark.parametrize(
    "path", ["session", "batch", "http", "pool_http", "frontdoor"]
)
def test_entry_point_matches_solver_verdict_and_reason_code(outcomes, path):
    baseline, candidate = outcomes["solver"], outcomes[path]
    drift = {
        rule_id: (baseline[rule_id], candidate[rule_id])
        for rule_id in RULE_IDS
        if candidate[rule_id] != baseline[rule_id]
    }
    assert not drift, (
        f"{path} drifted from Solver.check on {len(drift)} rule(s): {drift}"
    )


def test_all_entry_points_pairwise_identical(outcomes):
    names = sorted(outcomes)
    for rule_id in RULE_IDS:
        answers = {name: outcomes[name][rule_id] for name in names}
        assert len(set(answers.values())) == 1, (
            f"{rule_id}: entry points disagree: {answers}"
        )


def test_negative_cases_stay_negative_everywhere(outcomes):
    """The bugs dataset must never be 'proved' by any entry point."""
    for rule in rules_by_dataset("bugs"):
        for name, mapping in outcomes.items():
            verdict, _ = mapping[rule.rule_id]
            assert verdict == rule.expectation.value, (
                f"{name} gave {verdict} for {rule.rule_id} "
                f"(expected {rule.expectation.value})"
            )


def test_every_entry_point_meets_the_corpus_expectations(outcomes):
    """Identity is not enough — every path must also be *right* (Fig. 5)."""
    expected = {
        rule.rule_id: rule.expectation.value
        for rule in RULES
        if rule.expectation is not Expectation.UNSUPPORTED
    }
    for name, mapping in outcomes.items():
        wrong = {
            rule_id: mapping[rule_id][0]
            for rule_id, verdict in expected.items()
            if mapping[rule_id][0] != verdict
        }
        assert not wrong, f"{name} missed expectations: {wrong}"


# ---------------------------------------------------------------------------
# Verdict-cache differential: cold vs warm restart, both store backends
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["flock", "sqlite"])
def test_warm_restart_replays_the_full_corpus_without_tactics(
    outcomes, backend, tmp_path
):
    """The durable-store acceptance bar: run the corpus cold with a
    shared store installed, then open a *fresh* store view over the same
    file (a restarted process) and run it again.  The warm pass must
    answer all 91 rules from the verdict cache — zero tactic
    invocations — and be verdict- AND reason-code-identical to the cold
    pass and to the Solver baseline.  Parametrized over both backends:
    durability is not allowed to depend on which store file format the
    deployment picked."""
    path = str(tmp_path / f"verdicts-{backend}.store")
    store = open_store(path, backend=backend)
    previous = install_shared_store(store)
    try:
        cold = outcome_map_session()
    finally:
        install_shared_store(previous)
        store.close()
    assert cold == outcomes["solver"], "cold pass drifted under the store"
    fresh = open_store(path, backend=backend)
    previous = install_shared_store(fresh)
    try:
        session = Session(config=PipelineConfig.legacy())
        before = tactic_invocations()
        warm = {
            result.request_id: (
                result.verdict.value,
                result.reason_code.value,
            )
            for result in session.verify_many(as_verify_requests())
        }
        assert tactic_invocations() == before, (
            "warm restart ran tactics instead of replaying verdicts"
        )
        assert session.stats.verdict_cache_hits == len(RULES)
        assert session.stats.verdict_cache_misses == 0
    finally:
        install_shared_store(previous)
        fresh.close()
    assert warm == cold, "warm replay drifted from the cold pass"


# ---------------------------------------------------------------------------
# Kernel-mode differential: digest fast path vs search vs legacy
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["search", "legacy"])
def test_kernel_modes_verdict_identical_on_corpus(outcomes, mode):
    """The canonical-digest kernel must accept exactly what the plain
    search and the pre-digest legacy kernel accept: every corpus rule,
    cold caches, verdict- AND reason-code-identical."""
    from repro import clear_caches, set_memoization
    from repro.cq.isomorphism import kernel_mode, set_kernel_mode

    previous = set_kernel_mode(mode)
    memo_previous = set_memoization(False)
    clear_caches()
    try:
        candidate = outcome_map_solver()
    finally:
        set_memoization(memo_previous)
        set_kernel_mode(previous)
        clear_caches()
    baseline = outcomes["solver"]
    drift = {
        rule_id: (baseline[rule_id], candidate[rule_id])
        for rule_id in RULE_IDS
        if candidate[rule_id] != baseline[rule_id]
    }
    assert not drift, (
        f"kernel mode {mode!r} drifted from the digest kernel on "
        f"{len(drift)} rule(s): {drift}"
    )
