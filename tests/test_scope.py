"""Name resolution and schema-inference tests."""

import pytest

from repro.errors import ResolutionError
from repro.sql.ast import ColumnRef, Exists, Select
from repro.sql.parser import parse_query
from repro.sql.scope import infer_schema, resolve_query

from tests.conftest import make_catalog


@pytest.fixture
def catalog():
    return make_catalog(("r", "a", "b"), ("s", "c", "d"))


def test_bare_column_qualified(catalog):
    resolved, _ = resolve_query(parse_query("SELECT a FROM r x"), catalog)
    assert resolved.projections[0].expr == ColumnRef("x", "a")


def test_bare_column_unique_across_items(catalog):
    resolved, _ = resolve_query(
        parse_query("SELECT * FROM r x, s y WHERE a = c"), catalog
    )
    assert resolved.where.left == ColumnRef("x", "a")
    assert resolved.where.right == ColumnRef("y", "c")


def test_ambiguous_bare_column_rejected(catalog):
    with pytest.raises(ResolutionError):
        resolve_query(parse_query("SELECT a FROM r x, r y"), catalog)


def test_unknown_column_rejected(catalog):
    with pytest.raises(ResolutionError):
        resolve_query(parse_query("SELECT zz FROM r x"), catalog)


def test_unknown_alias_rejected(catalog):
    with pytest.raises(ResolutionError):
        resolve_query(parse_query("SELECT q.a FROM r x"), catalog)


def test_alias_attribute_checked(catalog):
    with pytest.raises(ResolutionError):
        resolve_query(parse_query("SELECT x.zz FROM r x"), catalog)


def test_correlated_subquery_sees_outer_alias(catalog):
    query = parse_query(
        "SELECT * FROM r x WHERE EXISTS (SELECT * FROM s y WHERE y.c = x.a)"
    )
    resolved, _ = resolve_query(query, catalog)
    exists = resolved.where
    assert isinstance(exists, Exists)
    inner = exists.query
    assert inner.where.right == ColumnRef("x", "a")


def test_inner_alias_shadows_outer(catalog):
    query = parse_query(
        "SELECT * FROM r x WHERE EXISTS (SELECT * FROM s x WHERE x.c = 1)"
    )
    resolved, _ = resolve_query(query, catalog)
    inner = resolved.where.query
    assert inner.where.left == ColumnRef("x", "c")


def test_output_schema_star(catalog):
    schema = infer_schema(parse_query("SELECT * FROM r x, s y"), catalog)
    assert schema.attribute_names() == ("a", "b", "c", "d")


def test_output_schema_self_join_dedup(catalog):
    schema = infer_schema(parse_query("SELECT * FROM r x, r y"), catalog)
    assert schema.attribute_names() == ("a", "b", "a_1", "b_1")


def test_output_schema_expr_alias(catalog):
    schema = infer_schema(parse_query("SELECT x.a AS out FROM r x"), catalog)
    assert schema.attribute_names() == ("out",)


def test_output_schema_bare_column_named_after_column(catalog):
    schema = infer_schema(parse_query("SELECT x.a FROM r x"), catalog)
    assert schema.attribute_names() == ("a",)


def test_union_arity_mismatch_rejected(catalog):
    query = parse_query(
        "SELECT x.a AS a FROM r x UNION ALL SELECT y.c AS c, y.d AS d FROM s y"
    )
    with pytest.raises(ResolutionError):
        resolve_query(query, catalog)


def test_subquery_schema_flows_outward(catalog):
    schema = infer_schema(
        parse_query("SELECT t.a AS z FROM (SELECT x.a AS a FROM r x) t"),
        catalog,
    )
    assert schema.attribute_names() == ("z",)


def test_table_star_schema(catalog):
    schema = infer_schema(parse_query("SELECT y.* FROM r x, s y"), catalog)
    assert schema.attribute_names() == ("c", "d")
