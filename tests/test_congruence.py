"""Union-find and congruence-closure tests."""

from hypothesis import given, strategies as st

from repro.logic.congruence import CongruenceClosure
from repro.logic.unionfind import UnionFind
from repro.usr.values import Attr, ConstVal, Func, TupleCons, TupleVar


# -- union-find -----------------------------------------------------------


def test_union_find_basics():
    uf = UnionFind()
    assert not uf.same("a", "b")
    assert uf.union("a", "b")
    assert uf.same("a", "b")
    assert not uf.union("a", "b")  # already merged


def test_union_find_transitivity():
    uf = UnionFind()
    uf.union("a", "b")
    uf.union("b", "c")
    assert uf.same("a", "c")


def test_union_find_classes():
    uf = UnionFind()
    uf.union("a", "b")
    uf.add("c")
    classes = {frozenset(group) for group in uf.classes()}
    assert frozenset({"a", "b"}) in classes
    assert frozenset({"c"}) in classes


@given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30))
def test_union_find_is_equivalence_relation(pairs):
    uf = UnionFind()
    for a, b in pairs:
        uf.union(a, b)
    elements = list(uf.elements())
    for x in elements:
        assert uf.same(x, x)
        for y in elements:
            assert uf.same(x, y) == uf.same(y, x)


# -- congruence closure ---------------------------------------------------------


A, B, C, D, E = (TupleVar(n) for n in "abcde")


def test_transitive_equalities():
    cc = CongruenceClosure()
    cc.merge(A, B)
    cc.merge(B, C)
    assert cc.equal(A, C)
    assert not cc.equal(A, D)


def test_congruence_through_attributes():
    cc = CongruenceClosure()
    cc.add_term(Attr(A, "x"))
    cc.add_term(Attr(B, "x"))
    cc.merge(A, B)
    assert cc.equal(Attr(A, "x"), Attr(B, "x"))


def test_congruence_through_functions():
    cc = CongruenceClosure()
    fa = Func("f", (A,))
    fb = Func("f", (B,))
    cc.add_term(fa)
    cc.add_term(fb)
    cc.merge(A, B)
    assert cc.equal(fa, fb)
    # Different function symbol stays apart.
    assert not cc.equal(fa, Func("g", (B,)))


def test_paper_congruence_example():
    """Sec. 5.2: {a=b, c=d, b=e, f(a)=g(d)} ⊢ f(e) = g(c) ... up to classes."""
    a, b, c, d, e = (TupleVar(n) for n in "abcde")
    fa, fe = Func("f", (a,)), Func("f", (e,))
    gc, gd = Func("g", (c,)), Func("g", (d,))
    cc = CongruenceClosure()
    for term in (fa, fe, gc, gd):
        cc.add_term(term)
    cc.merge(a, b)
    cc.merge(c, d)
    cc.merge(b, e)
    cc.merge(fa, gd)
    assert cc.equal(fa, fe)       # congruence: a ~ e
    assert cc.equal(gc, gd)       # congruence: c ~ d
    assert cc.equal(fe, gc)       # through f(a) = g(d)


def test_new_terms_added_on_equal_query():
    cc = CongruenceClosure()
    cc.merge(A, B)
    # f(a)/f(b) were never registered; equal() must still see them congruent.
    assert cc.equal(Func("f", (A,)), Func("f", (B,)))


def test_nested_congruence():
    cc = CongruenceClosure()
    cc.merge(A, B)
    deep_a = Func("f", (Func("g", (Attr(A, "x"),)),))
    deep_b = Func("f", (Func("g", (Attr(B, "x"),)),))
    assert cc.equal(deep_a, deep_b)


def test_tuple_constructor_congruence():
    cc = CongruenceClosure()
    cc.merge(A, B)
    cons_a = TupleCons((("k", Attr(A, "k")),))
    cons_b = TupleCons((("k", Attr(B, "k")),))
    assert cc.equal(cons_a, cons_b)
    # Different field names are different constructors.
    cons_c = TupleCons((("j", Attr(A, "k")),))
    assert not cc.equal(cons_a, cons_c)


def test_constants_in_class():
    cc = CongruenceClosure()
    one = ConstVal(1)
    cc.merge(A, one)
    cc.merge(B, A)
    constants = cc.constants_in_class(B)
    assert one in constants


def test_classes_partition_nodes():
    cc = CongruenceClosure()
    cc.merge(A, B)
    cc.add_term(C)
    all_members = [m for group in cc.classes() for m in group]
    assert len(all_members) == len(set(all_members))


def test_copy_preserves_classes():
    cc = CongruenceClosure()
    cc.merge(A, B)
    clone = cc.copy()
    clone.merge(B, C)
    assert clone.equal(A, C)
    assert not cc.equal(A, C)
