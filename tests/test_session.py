"""Unified Session API tests.

Covers the tentpole contracts of the session redesign: structured
``VerifyRequest``/``VerifyResult`` records that round-trip through JSON,
machine-readable reason codes that are stable across the corpus, the
pluggable tactic pipeline (ordering, conclusiveness, budgets, custom
tactics), streaming ``verify_many`` with a bounded window, and — the
acceptance bar — verdict identity between ``Session.verify`` and the
legacy ``Solver.check`` shim across the full evaluation corpus.
"""

import json

import pytest

from repro import (
    PipelineConfig,
    ReasonCode,
    Session,
    Solver,
    Verdict,
    VerifyRequest,
    VerifyResult,
)
from repro.corpus import all_rules, as_verify_requests
from repro.session import (
    DEFAULT_TACTICS,
    LEGACY_TACTICS,
    available_tactics,
    register_tactic,
    _TACTICS,
)

from tests.conftest import KEYED_PROGRAM, RS_PROGRAM

EQ_PAIR = (
    "SELECT * FROM r x WHERE x.a = 1 AND x.b = 2",
    "SELECT * FROM r x WHERE x.b = 2 AND x.a = 1",
)
NEQ_PAIR = (
    "SELECT * FROM r x WHERE x.a = 1",
    "SELECT * FROM r x WHERE x.a = 2",
)
UNSUPPORTED_PAIR = (
    "SELECT * FROM r x WHERE x.a IS NULL",
    "SELECT * FROM r x",
)


@pytest.fixture
def session():
    return Session.from_program_text(RS_PROGRAM)


# -- structured results -------------------------------------------------------


def test_verify_returns_structured_result(session):
    result = session.verify(*EQ_PAIR, request_id="req-1")
    assert result.proved
    assert result.verdict is Verdict.PROVED
    assert result.reason_code is ReasonCode.ISOMORPHIC
    assert result.request_id == "req-1"
    assert result.tactic == "udp-prove"
    assert result.tactics_tried == ("udp-prove",)
    assert result.elapsed_seconds >= 0
    assert result.trace is not None and len(result.trace) > 0


def test_refutation_carries_counterexample(session):
    result = session.verify(*NEQ_PAIR)
    assert result.verdict is Verdict.NOT_PROVED
    assert result.reason_code is ReasonCode.COUNTEREXAMPLE
    assert result.tactic == "model-check"
    assert result.tactics_tried == DEFAULT_TACTICS
    assert "counterexample database" in (result.counterexample or "")


def test_unsupported_reported_not_raised(session):
    result = session.verify(*UNSUPPORTED_PAIR)
    assert result.verdict is Verdict.UNSUPPORTED
    # IS NULL dies in the parser (frontend-error); features that parse
    # but fall outside the Fig. 2 fragment get unsupported-feature.
    assert result.reason_code in (
        ReasonCode.FRONTEND_ERROR, ReasonCode.UNSUPPORTED_FEATURE,
    )
    assert result.tactic == ""  # no tactic ran
    assert result.tactics_tried == ()


def test_broken_program_yields_error_result():
    outer = Session()
    result = outer.verify(
        VerifyRequest("SELECT 1", "SELECT 1", program="not a program !!")
    )
    assert result.verdict is Verdict.ERROR
    assert result.reason_code is ReasonCode.FRONTEND_ERROR
    assert result.reason


def test_schema_mismatch_is_conclusive_and_keeps_its_code(session):
    """A schema mismatch ends the pipeline; no fallback may downgrade or
    relabel the documented ``schema-mismatch`` reason code."""
    mismatch = (
        "SELECT x.a AS a FROM r x",
        "SELECT x.b AS b FROM r x",
    )
    result = session.verify(*mismatch)
    assert result.verdict is Verdict.NOT_PROVED
    assert result.reason_code is ReasonCode.SCHEMA_MISMATCH
    assert result.tactics_tried == ("udp-prove",)  # nothing ran after it
    # Same through a prover-only pipeline.
    only_provers = session.verify(
        *mismatch, config=PipelineConfig(tactics=("udp-prove", "cq-minimize"))
    )
    assert only_provers.reason_code is ReasonCode.SCHEMA_MISMATCH


def test_timeout_is_conclusive(session):
    result = session.verify(*EQ_PAIR, timeout_seconds=0.0)
    assert result.verdict is Verdict.TIMEOUT
    assert result.reason_code is ReasonCode.BUDGET_EXHAUSTED
    # The blown budget ends the pipeline: no fallback tactic runs.
    assert result.tactics_tried == ("udp-prove",)


# -- JSON round-trips ---------------------------------------------------------


def test_verify_result_json_round_trip(session):
    for pair in (EQ_PAIR, NEQ_PAIR, UNSUPPORTED_PAIR):
        result = session.verify(*pair, request_id="rt")
        encoded = json.dumps(result.to_json(), sort_keys=True)
        decoded = VerifyResult.from_json(json.loads(encoded))
        assert decoded.to_json() == result.to_json()
        assert decoded.verdict is result.verdict
        assert decoded.reason_code is result.reason_code
        assert decoded.tactics_tried == result.tactics_tried


def test_verify_result_from_json_tolerates_unknown_future_fields(session):
    """Forward compatibility: a record written by a newer version (extra
    keys this reader does not know) must parse, keep its known fields,
    and carry the unknown ones through an unchanged round-trip."""
    record = session.verify(*EQ_PAIR, request_id="fwd").to_json()
    record["confidence"] = 0.93          # fields a future writer might add
    record["provenance"] = {"node": "worker-7"}
    restored = VerifyResult.from_json(record)
    assert restored.proved
    assert restored.request_id == "fwd"
    assert restored.extras == {
        "confidence": 0.93,
        "provenance": {"node": "worker-7"},
    }
    assert restored.to_json() == record  # unknown fields survive the trip
    # Known fields always win over a stale extra with a colliding key.
    shadowed = VerifyResult.from_json(record)
    shadowed.extras["verdict"] = "tampered"
    assert shadowed.to_json()["verdict"] == "proved"


def test_verify_request_json_round_trip():
    request = VerifyRequest(
        left="SELECT * FROM r x",
        right="SELECT * FROM r y",
        program=RS_PROGRAM,
        request_id="abc",
        timeout_seconds=2.5,
    )
    decoded = VerifyRequest.from_json(
        json.loads(json.dumps(request.to_json()))
    )
    assert decoded == request
    bare = VerifyRequest(left="a", right="b")
    assert VerifyRequest.from_json(json.loads(json.dumps(bare.to_json()))) == bare


def test_reason_code_values_are_frozen():
    """The string values are a compatibility surface — never rename."""
    assert {code.value for code in ReasonCode} == {
        "isomorphic-canonical-forms",
        "minimized-cores-isomorphic",
        "no-isomorphism",
        "schema-mismatch",
        "counterexample-found",
        "no-counterexample",
        "unsupported-feature",
        "frontend-error",
        "budget-exhausted",
        "internal-error",
    }


# -- pipeline configuration ---------------------------------------------------


def test_unknown_tactic_rejected():
    with pytest.raises(ValueError, match="unknown tactic"):
        PipelineConfig(tactics=("udp-prove", "nonsense"))


def test_available_tactics_lists_builtins():
    names = available_tactics()
    assert {"udp-prove", "cq-minimize", "model-check"} <= set(names)


def test_pipeline_order_respected(session):
    config = PipelineConfig(tactics=("udp-prove",))
    result = session.verify(*NEQ_PAIR, config=config)
    assert result.verdict is Verdict.NOT_PROVED
    assert result.reason_code is ReasonCode.NO_ISOMORPHISM
    assert result.tactics_tried == ("udp-prove",)
    assert result.counterexample is None


def test_model_check_never_flips_a_proof(session):
    config = PipelineConfig(tactics=DEFAULT_TACTICS)
    result = session.verify(*EQ_PAIR, config=config)
    assert result.proved and result.tactic == "udp-prove"


def test_no_counterexample_upgrades_reason_code():
    # Inequivalent only on duplicate-bearing instances; a tiny model-check
    # budget cannot find it, so the code reports the search came up empty.
    session = Session.from_program_text(
        RS_PROGRAM,
        PipelineConfig(model_check_attempts=0),
    )
    result = session.verify(
        "SELECT x.a AS a FROM r x",
        "SELECT DISTINCT x.a AS a FROM r x",
    )
    assert result.verdict is Verdict.NOT_PROVED
    assert result.reason_code in (
        ReasonCode.NO_COUNTEREXAMPLE,
        ReasonCode.COUNTEREXAMPLE,
    )


def test_per_tactic_budgets():
    config = PipelineConfig(
        timeout_seconds=30.0, tactic_budgets={"udp-prove": 0.0}
    )
    session = Session.from_program_text(RS_PROGRAM, config)
    result = session.verify(*EQ_PAIR)
    assert result.verdict is Verdict.TIMEOUT
    assert config.budget_for("udp-prove") == 0.0
    assert config.budget_for("cq-minimize") == 30.0


def test_custom_tactic_registration(session):
    from repro.session import TacticOutcome

    name = "always-proved-test-tactic"

    @register_tactic(name)
    def _tactic(sess, task, config):
        return TacticOutcome(
            verdict=Verdict.PROVED,
            reason_code=ReasonCode.ISOMORPHIC,
            reason="by fiat",
            conclusive=True,
        )

    try:
        result = session.verify(
            *NEQ_PAIR, config=PipelineConfig(tactics=(name,))
        )
        assert result.proved and result.tactic == name
        with pytest.raises(ValueError, match="duplicate"):
            register_tactic(name)(_tactic)
    finally:
        del _TACTICS[name]


# -- streaming ----------------------------------------------------------------


def test_verify_many_preserves_order(session):
    requests = [
        VerifyRequest(*EQ_PAIR, request_id="first"),
        VerifyRequest(*NEQ_PAIR, request_id="second"),
        VerifyRequest(*UNSUPPORTED_PAIR, request_id="third"),
    ]
    results = list(session.verify_many(requests))
    assert [r.request_id for r in results] == ["first", "second", "third"]
    assert [r.verdict.value for r in results] == [
        "proved", "not_proved", "unsupported",
    ]


def test_verify_many_accepts_plain_pairs(session):
    results = list(session.verify_many([EQ_PAIR, NEQ_PAIR]))
    assert [r.proved for r in results] == [True, False]


def test_verify_many_bounded_window_is_lazy(session):
    """At most ``window`` requests are pulled ahead of consumption."""
    pulled = []

    def stream():
        for i in range(100):
            pulled.append(i)
            yield VerifyRequest(*EQ_PAIR, request_id=str(i))

    iterator = session.verify_many(stream(), window=3)
    assert pulled == []  # nothing consumed before iteration starts
    first = next(iterator)
    assert first.request_id == "0"
    # window upfront + one refill after the first yield
    assert len(pulled) <= 4
    next(iterator)
    assert len(pulled) <= 5
    iterator.close()


def test_verify_many_routes_programs_to_subsessions(session):
    requests = [
        VerifyRequest(*EQ_PAIR, request_id="own-catalog"),
        VerifyRequest(
            "SELECT * FROM r0 x",
            "SELECT DISTINCT * FROM r0 x",
            program=KEYED_PROGRAM,
            request_id="keyed",
        ),
    ]
    results = list(session.verify_many(requests))
    assert all(r.proved for r in results)


def test_session_stats_aggregate(session):
    session.verify(*EQ_PAIR)
    session.verify(*NEQ_PAIR)
    assert session.stats.requests == 2
    assert session.stats.verdicts == {"proved": 1, "not_proved": 1}
    assert session.stats.concluded_by["udp-prove"] == 1


# -- compile cache ------------------------------------------------------------


def test_compile_cache_evicts_lru_not_newest():
    class TinySession(Session):
        COMPILE_CACHE_SIZE = 2

    session = TinySession.from_program_text(RS_PROGRAM)
    q1, q2, q3 = (
        "SELECT * FROM r x WHERE x.a = 1",
        "SELECT * FROM r x WHERE x.a = 2",
        "SELECT * FROM r x WHERE x.a = 3",
    )
    d1 = session.compile(q1)
    session.compile(q2)
    assert session.compile(q1) is d1  # hit refreshes recency
    session.compile(q3)  # evicts q2 (LRU), keeps the hot q1
    cache = session.__dict__["_compile_cache"]
    assert len(cache) == 2
    assert session.compile(q1) is d1
    hits_before = cache.hits
    session.compile(q2)  # was evicted: a miss, re-cached
    assert cache.hits == hits_before
    assert len(cache) == 2


def test_catalog_rebinding_drops_caches(session):
    session.compile("SELECT * FROM r x")
    assert len(session.__dict__["_compile_cache"]) == 1
    session.catalog = session.catalog  # rebinding resets
    assert len(session.__dict__["_compile_cache"]) == 0


# -- corpus-level acceptance --------------------------------------------------


@pytest.fixture(scope="module")
def corpus_session_results():
    session = Session()
    return {
        result.request_id: result
        for result in session.verify_many(as_verify_requests())
    }


def test_shim_and_session_verdicts_identical_on_full_corpus(
    corpus_session_results,
):
    """The acceptance bar: Session == legacy Solver on all 91 rules."""
    rules = all_rules()
    assert len(rules) == 91
    for rule in rules:
        solver = Solver.from_program_text(rule.program)
        legacy = solver.check(rule.left, rule.right)
        new = corpus_session_results[rule.rule_id]
        assert new.verdict is legacy.verdict, (
            f"{rule.rule_id}: session={new.verdict} legacy={legacy.verdict}"
        )


def test_every_corpus_result_carries_a_stable_reason_code(
    corpus_session_results,
):
    consistent = {
        Verdict.PROVED: {
            ReasonCode.ISOMORPHIC, ReasonCode.MINIMIZED_ISOMORPHIC,
        },
        Verdict.NOT_PROVED: {
            ReasonCode.NO_ISOMORPHISM,
            ReasonCode.NO_COUNTEREXAMPLE,
            ReasonCode.COUNTEREXAMPLE,
            ReasonCode.SCHEMA_MISMATCH,
        },
        Verdict.UNSUPPORTED: {
            ReasonCode.UNSUPPORTED_FEATURE, ReasonCode.FRONTEND_ERROR,
        },
        Verdict.TIMEOUT: {ReasonCode.BUDGET_EXHAUSTED},
    }
    for rule_id, result in corpus_session_results.items():
        assert result.reason_code in consistent[result.verdict], rule_id
        # ... and the code survives a JSON round-trip.
        decoded = VerifyResult.from_json(result.to_json())
        assert decoded.reason_code is result.reason_code, rule_id


def test_reason_codes_stable_across_calcite_reruns(corpus_session_results):
    """Same corpus, fresh session: identical codes (memo state must not
    leak into reason codes)."""
    rerun = Session()
    for result in rerun.verify_many(as_verify_requests("calcite")):
        first = corpus_session_results[result.request_id]
        assert result.reason_code is first.reason_code, result.request_id
        assert result.verdict is first.verdict, result.request_id
