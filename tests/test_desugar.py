"""GROUP BY / HAVING desugaring tests (Sec. 3.2)."""

import pytest

from repro.errors import CompileError
from repro.sql.ast import AggCall, ExprAs, Select
from repro.sql.desugar import desugar_query
from repro.sql.parser import parse_query
from repro.sql.scope import resolve_query

from tests.conftest import make_catalog


@pytest.fixture
def catalog():
    return make_catalog(("emp", "empno", "deptno", "sal"))


def desugared(catalog, text):
    resolved, _ = resolve_query(parse_query(text), catalog)
    return desugar_query(resolved)


def test_group_by_becomes_distinct_select(catalog):
    query = desugared(
        catalog,
        "SELECT e.deptno AS deptno, sum(e.sal) AS s FROM emp e GROUP BY e.deptno",
    )
    assert isinstance(query, Select)
    assert query.distinct
    assert not query.group_by


def test_aggregate_becomes_correlated_subquery(catalog):
    query = desugared(
        catalog,
        "SELECT e.deptno AS deptno, sum(e.sal) AS s FROM emp e GROUP BY e.deptno",
    )
    agg = query.projections[1].expr
    assert isinstance(agg, AggCall)
    inner = agg.query
    assert isinstance(inner, Select)
    # The group subquery projects the operand under the agg_arg alias.
    assert isinstance(inner.projections[0], ExprAs)
    assert inner.projections[0].alias == "agg_arg"
    # And correlates the group key with the renamed outer alias.
    assert inner.where is not None


def test_outer_aliases_are_renamed(catalog):
    query = desugared(
        catalog,
        "SELECT e.deptno AS deptno, sum(e.sal) AS s FROM emp e GROUP BY e.deptno",
    )
    outer_alias = query.from_items[0].alias
    assert outer_alias != "e"


def test_row_filter_appears_inside_and_outside(catalog):
    query = desugared(
        catalog,
        "SELECT e.deptno AS deptno, sum(e.sal) AS s FROM emp e "
        "WHERE e.sal > 10 GROUP BY e.deptno",
    )
    # Outside: the group-defining query keeps the filter.
    assert query.where is not None
    # Inside: the aggregate subquery keeps it too.
    agg = query.projections[1].expr
    assert "sal" in str(agg.query.where)


def test_having_moves_to_outer_where(catalog):
    query = desugared(
        catalog,
        "SELECT e.deptno AS deptno, sum(e.sal) AS s FROM emp e "
        "GROUP BY e.deptno HAVING sum(e.sal) > 100",
    )
    assert query.where is not None
    assert "sum" in str(query.where)
    # The HAVING aggregate must not leak into the group subquery's WHERE.
    agg = query.projections[1].expr
    assert agg.query.where is None or "sum" not in str(agg.query.where)


def test_global_aggregate_desugars(catalog):
    query = desugared(catalog, "SELECT sum(e.sal) AS s FROM emp e")
    assert isinstance(query, Select) and query.distinct
    assert isinstance(query.projections[0].expr, AggCall)


def test_count_star_projects_star_subquery(catalog):
    query = desugared(
        catalog, "SELECT e.deptno AS deptno, count(*) AS c FROM emp e GROUP BY e.deptno"
    )
    agg = query.projections[1].expr
    assert isinstance(agg, AggCall)
    assert str(agg.query).startswith("SELECT *")


def test_non_key_bare_column_in_grouped_select_rejected(catalog):
    with pytest.raises(CompileError):
        desugared(
            catalog,
            "SELECT e.sal AS sal, sum(e.sal) AS s FROM emp e GROUP BY e.deptno",
        )


def test_group_key_can_be_projected_multiple_times(catalog):
    query = desugared(
        catalog,
        "SELECT e.deptno AS d1, e.deptno AS d2 FROM emp e GROUP BY e.deptno",
    )
    names = [p.alias for p in query.projections]
    assert names == ["d1", "d2"]


def test_ungrouped_query_unchanged(catalog):
    text = "SELECT * FROM emp e WHERE e.sal > 10"
    query = desugared(catalog, text)
    assert not query.distinct
    assert query.where is not None


def test_nested_grouped_subquery_desugared(catalog):
    query = desugared(
        catalog,
        "SELECT * FROM (SELECT e.deptno AS deptno, sum(e.sal) AS s "
        "FROM emp e GROUP BY e.deptno) t WHERE t.s > 5",
    )
    inner = query.from_items[0].query
    assert isinstance(inner, Select)
    assert inner.distinct and not inner.group_by
