"""Proof-report renderer and CLI --report tests."""

import pytest

from repro import Solver
from repro.frontend.cli import main
from repro.udp.report import render_proof_report

from tests.conftest import KEYED_PROGRAM, RS_PROGRAM


def test_report_contains_all_stages(keyed_solver):
    report = render_proof_report(
        keyed_solver,
        "SELECT * FROM r0 t WHERE t.a >= 12",
        "SELECT t2.* FROM i0 t1, r0 t2 WHERE t1.k = t2.k AND t1.a >= 12",
    )
    for marker in (
        "U-expression (Sec. 3.2)",
        "SPNF (Theorem 3.4)",
        "canonical form (Algorithm 1)",
        "Verdict: **proved**",
        "`key`",
        "`eq-sum-elim`",
    ):
        assert marker in report


def test_report_on_unproved_pair(rs_solver):
    report = render_proof_report(
        rs_solver,
        "SELECT * FROM r x",
        "SELECT * FROM s y",
    )
    assert "Verdict: **not_proved**" in report


def test_report_on_unsupported_pair(rs_solver):
    report = render_proof_report(
        rs_solver,
        "SELECT * FROM r x WHERE x.a IS NULL",
        "SELECT * FROM r x",
    )
    assert "unsupported" in report


def test_cli_report_flag(tmp_path, capsys):
    path = tmp_path / "goal.cos"
    path.write_text(
        KEYED_PROGRAM
        + "verify SELECT * FROM r0 x == SELECT DISTINCT * FROM r0 x;",
        encoding="utf-8",
    )
    assert main([str(path), "--report"]) == 0
    out = capsys.readouterr().out
    assert "# Equivalence proof report" in out
    assert "Verdict: **proved**" in out


def test_cli_report_failure_exit(tmp_path, capsys):
    path = tmp_path / "goal.cos"
    path.write_text(
        RS_PROGRAM + "verify SELECT * FROM r x == SELECT * FROM s y;",
        encoding="utf-8",
    )
    assert main([str(path), "--report"]) == 1
