"""Query clustering tests."""

import pytest

from repro.frontend.cluster import cluster_queries

from tests.conftest import RS_PROGRAM
from repro import Solver


@pytest.fixture
def solver():
    return Solver.from_program_text(RS_PROGRAM)


def test_equivalent_spellings_cluster_together(solver):
    groups = cluster_queries(solver, [
        "SELECT * FROM r x WHERE x.a = 1 AND x.b = 2",
        "SELECT * FROM r x WHERE x.b = 2 AND x.a = 1",
        "SELECT * FROM (SELECT * FROM r y WHERE y.a = 1) x WHERE x.b = 2",
    ])
    assert len(groups) == 1
    assert len(groups[0]) == 3


def test_inequivalent_queries_split(solver):
    groups = cluster_queries(solver, [
        "SELECT * FROM r x WHERE x.a = 1",
        "SELECT * FROM r x WHERE x.a = 2",
        "SELECT * FROM r x WHERE 1 = x.a",
    ])
    assert sorted(len(g) for g in groups) == [1, 2]


def test_unsupported_query_is_singleton(solver):
    groups = cluster_queries(solver, [
        "SELECT * FROM r x",
        "SELECT * FROM r x WHERE x.a IS NULL",
    ])
    assert len(groups) == 2


def test_empty_input(solver):
    assert cluster_queries(solver, []) == []


def test_representative_is_first_member(solver):
    first = "SELECT * FROM r x"
    groups = cluster_queries(solver, [first, "SELECT * FROM r y"])
    assert groups[0].representative == first
