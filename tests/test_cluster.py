"""Query clustering tests."""

import pytest

from repro.frontend.cluster import ClusterStats, cluster_queries
from repro.hashcons import cache_stats, clear_caches, set_memoization

from tests.conftest import RS_PROGRAM
from repro import Solver


@pytest.fixture
def solver():
    return Solver.from_program_text(RS_PROGRAM)


def test_equivalent_spellings_cluster_together(solver):
    groups = cluster_queries(solver, [
        "SELECT * FROM r x WHERE x.a = 1 AND x.b = 2",
        "SELECT * FROM r x WHERE x.b = 2 AND x.a = 1",
        "SELECT * FROM (SELECT * FROM r y WHERE y.a = 1) x WHERE x.b = 2",
    ])
    assert len(groups) == 1
    assert len(groups[0]) == 3


def test_inequivalent_queries_split(solver):
    groups = cluster_queries(solver, [
        "SELECT * FROM r x WHERE x.a = 1",
        "SELECT * FROM r x WHERE x.a = 2",
        "SELECT * FROM r x WHERE 1 = x.a",
    ])
    assert sorted(len(g) for g in groups) == [1, 2]


def test_unsupported_query_is_singleton(solver):
    groups = cluster_queries(solver, [
        "SELECT * FROM r x",
        "SELECT * FROM r x WHERE x.a IS NULL",
    ])
    assert len(groups) == 2


def test_empty_input(solver):
    assert cluster_queries(solver, []) == []


def test_representative_is_first_member(solver):
    first = "SELECT * FROM r x"
    groups = cluster_queries(solver, [first, "SELECT * FROM r y"])
    assert groups[0].representative == first


# -- transitivity shortcut + cache instrumentation ---------------------------

EQUIVALENT_TRIO = [
    "SELECT * FROM r x WHERE x.a = 1 AND x.b = 2",
    "SELECT * FROM r x WHERE x.b = 2 AND x.a = 1",
    "SELECT * FROM (SELECT * FROM r y WHERE y.a = 1) x WHERE x.b = 2",
]


def test_each_query_decided_against_at_most_one_rep_per_group(solver):
    stats = ClusterStats()
    groups = cluster_queries(solver, EQUIVALENT_TRIO, stats=stats)
    assert len(groups) == 1
    # Transitivity shortcut: queries 2 and 3 each decided once, against
    # the single group's representative only — never against members.
    assert stats.decisions == [(1, 0), (2, 0)]
    assert stats.max_decisions_per_query_group() == 1


def test_mixed_groups_compare_once_per_group(solver):
    stats = ClusterStats()
    queries = [
        "SELECT * FROM r x WHERE x.a = 1",
        "SELECT * FROM r x WHERE x.a = 2",
        "SELECT * FROM r x WHERE 1 = x.a",
        "SELECT * FROM r x WHERE 2 = x.a",
    ]
    groups = cluster_queries(solver, queries, stats=stats)
    assert sorted(len(g) for g in groups) == [2, 2]
    # Every (query, group) pair decided at most once.
    assert stats.max_decisions_per_query_group() == 1
    # Query 2 is decided against group 0 and splits off.  Queries 3 and 4
    # compile to denotations structurally identical to queries 1 and 2
    # (the compiler normalizes predicate orientation), so the fingerprint
    # buckets place them in O(1) with no decision at all.
    assert stats.decisions == [(1, 0)]
    assert stats.bucket_hits == 2


def test_unsupported_queries_never_decided(solver):
    stats = ClusterStats()
    groups = cluster_queries(solver, [
        "SELECT * FROM r x WHERE x.a IS NULL",
        "SELECT * FROM r x",
    ], stats=stats)
    assert len(groups) == 2
    assert stats.unsupported == 1
    # The unsupported singleton is never a comparison target or subject.
    assert stats.decisions == []


def test_exact_duplicates_hit_fingerprint_bucket(solver):
    """Re-submitted queries join their group in O(1), zero decisions."""
    stats = ClusterStats()
    queries = [
        "SELECT * FROM r x WHERE x.a = 1",
        "SELECT * FROM r x WHERE x.a = 2",   # one decision: splits off
        "SELECT * FROM r x WHERE x.a = 1",   # exact duplicate of query 0
        "SELECT * FROM r x WHERE x.a = 2",   # exact duplicate of query 1
        "SELECT * FROM r x WHERE x.a = 1",
    ]
    groups = cluster_queries(solver, queries, stats=stats)
    assert sorted(len(g) for g in groups) == [2, 3]
    assert stats.bucket_hits == 3
    assert stats.decisions == [(1, 0)]


def test_session_frontend_clusters_like_solver(solver):
    from repro import Session

    from tests.conftest import RS_PROGRAM as _RS

    session = Session.from_program_text(_RS)
    for frontend in (solver, session):
        stats = ClusterStats()
        groups = cluster_queries(frontend, EQUIVALENT_TRIO, stats=stats)
        assert len(groups) == 1 and len(groups[0]) == 3


def test_clustering_hits_memoization_caches(solver):
    """A silent memoization regression must fail here, not just slow down."""
    set_memoization(True)
    clear_caches()
    try:
        stats = ClusterStats()
        groups = cluster_queries(solver, EQUIVALENT_TRIO, stats=stats)
        assert len(groups) == 1
        counters = cache_stats()
        # The representative's denotation is re-normalized/canonized per
        # comparison; from the second comparison on those are cache hits.
        assert counters["normalize"]["hits"] > 0
        assert counters["normalize"]["entries"] > 0
        assert counters["canonize"]["hits"] > 0
        total_hits = sum(c["hits"] for c in counters.values())
        assert total_hits > 0
    finally:
        clear_caches()


def test_cluster_report_surfaces_cache_stats(solver):
    from repro.udp.report import render_cache_stats

    set_memoization(True)
    clear_caches()
    try:
        cluster_queries(solver, EQUIVALENT_TRIO)
        block = render_cache_stats()
        assert "## Cache statistics" in block
        assert "`normalize`" in block and "`canonize`" in block
        assert f"hits={cache_stats()['normalize']['hits']}" in block
        assert cache_stats()["normalize"]["hits"] > 0
    finally:
        clear_caches()


# -- contract + isolation regressions (streaming-service era) ----------------


def test_representative_is_members_zero(solver):
    """Pinned contract: a group's representative IS ``members[0]``."""
    groups = cluster_queries(solver, [
        "SELECT * FROM r x WHERE x.a = 1",
        "SELECT * FROM r x WHERE 1 = x.a",
        "SELECT * FROM r x WHERE x.a = 2",
    ])
    for group in groups:
        assert group.members, "a group can never be empty"
        assert group.representative == group.members[0]


def test_compiled_plus_unsupported_equals_inputs(solver):
    """``compiled`` counts successes only; failures land in
    ``unsupported`` — the two always partition the input count."""
    stats = ClusterStats()
    cluster_queries(solver, [
        "SELECT * FROM r x WHERE x.a = 1",
        "SELECT * FROM r x WHERE x.a IS NULL",   # unsupported syntax
        "SELECT * FROM r x WHERE x.a = 1",
        "THIS IS NOT SQL AT ALL",                # parse error
    ], stats=stats)
    assert stats.inputs == 4
    assert stats.compiled == 2
    assert stats.unsupported == 2
    assert stats.compiled + stats.unsupported == stats.inputs


def test_poisoned_query_mid_stream_is_isolated(solver, monkeypatch):
    """A pathological query whose compilation escapes with a
    non-ReproError (e.g. ``RecursionError`` from a deeply nested parse)
    becomes a singleton group with an honest error reason; queries after
    it still cluster normally."""
    from repro.session import Session

    poison = "SELECT * FROM r x WHERE x.a = 666"
    real_compile = Session.compile

    def compile_or_blow(self, query, *args, **kwargs):
        if isinstance(query, str) and query == poison:
            raise RecursionError("maximum recursion depth exceeded")
        return real_compile(self, query, *args, **kwargs)

    monkeypatch.setattr(Session, "compile", compile_or_blow)
    stats = ClusterStats()
    groups = cluster_queries(solver, [
        "SELECT * FROM r x WHERE x.a = 1",
        poison,
        "SELECT * FROM r x WHERE 1 = x.a",
    ], stats=stats)
    by_size = sorted(groups, key=len)
    assert [len(g) for g in by_size] == [1, 2]
    assert by_size[0].representative == poison
    assert by_size[0].error is not None
    assert "RecursionError" in by_size[0].error
    assert by_size[1].error is None
    assert stats.errors == 1
    assert stats.compiled == 2 and stats.unsupported == 1
    assert stats.compiled + stats.unsupported == stats.inputs
    # The poisoned singleton is never a comparison target.
    poison_index = groups.index(by_size[0])
    assert all(g != poison_index for _, g in stats.decisions)
    assert stats.max_decisions_per_query_group() <= 1
