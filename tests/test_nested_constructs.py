"""Corner-case constructs: nested subqueries, views of views, deep nesting."""

import pytest

from repro import Solver


def test_view_of_view_inlines_transitively():
    solver = Solver.from_program_text(
        """
        schema rs(a:int, b:int);
        table r(rs);
        view v1 SELECT * FROM r x WHERE x.a = 1;
        view v2 SELECT * FROM v1 y WHERE y.b = 2;
        """
    )
    assert solver.check(
        "SELECT * FROM v2 z",
        "SELECT * FROM r z WHERE z.a = 1 AND z.b = 2",
    ).proved


def test_view_used_twice_gets_independent_variables():
    solver = Solver.from_program_text(
        """
        schema rs(a:int, b:int);
        table r(rs);
        view v SELECT * FROM r x WHERE x.a = 1;
        """
    )
    assert solver.check(
        "SELECT u.b AS b1, w.b AS b2 FROM v u, v w",
        "SELECT u.b AS b1, w.b AS b2 FROM r u, r w WHERE u.a = 1 AND w.a = 1",
    ).proved


def test_nested_exists_two_levels():
    solver = Solver.from_program_text(
        """
        schema rs(a:int, b:int);
        schema ss(c:int, d:int);
        schema ts(e:int, f:int);
        table r(rs); table s(ss); table t(ts);
        """
    )
    q1 = (
        "SELECT * FROM r x WHERE EXISTS (SELECT * FROM s y WHERE y.c = x.a "
        "AND EXISTS (SELECT * FROM t z WHERE z.e = y.d))"
    )
    q2 = (
        "SELECT * FROM r u WHERE EXISTS (SELECT * FROM s v WHERE v.c = u.a "
        "AND EXISTS (SELECT * FROM t w WHERE w.e = v.d))"
    )
    assert solver.check(q1, q2).proved
    # And the two-level semi-join flattening under DISTINCT:
    q3 = (
        "SELECT DISTINCT x.a AS a FROM r x WHERE EXISTS "
        "(SELECT * FROM s y WHERE y.c = x.a AND EXISTS "
        "(SELECT * FROM t z WHERE z.e = y.d))"
    )
    q4 = "SELECT DISTINCT x.a AS a FROM r x, s y, t z WHERE y.c = x.a AND z.e = y.d"
    assert solver.check(q3, q4).proved


def test_deeply_nested_projection_tower():
    solver = Solver.from_program_text(
        "schema rs(a:int, b:int); table r(rs);"
    )
    tower = "SELECT * FROM r x"
    for level in range(4):
        tower = f"SELECT * FROM ({tower}) l{level}"
    assert solver.check(tower, "SELECT * FROM r x").proved


def test_index_on_multiple_attributes():
    solver = Solver.from_program_text(
        """
        schema rs(k:int, a:int, b:int);
        table r(rs);
        key r(k);
        index i on r(a, b);
        """
    )
    assert solver.check(
        "SELECT * FROM r t WHERE t.a = 1 AND t.b = 2",
        "SELECT t2.* FROM i t1, r t2 "
        "WHERE t1.k = t2.k AND t1.a = 1 AND t1.b = 2",
    ).proved


def test_composite_key_index():
    solver = Solver.from_program_text(
        """
        schema rs(k1:int, k2:int, a:int);
        table r(rs);
        key r(k1, k2);
        index i on r(a);
        """
    )
    assert solver.check(
        "SELECT * FROM r t WHERE t.a >= 5",
        "SELECT t2.* FROM i t1, r t2 "
        "WHERE t1.k1 = t2.k1 AND t1.k2 = t2.k2 AND t1.a >= 5",
    ).proved


def test_except_of_except():
    solver = Solver.from_program_text(
        "schema rs(a:int, b:int); table r(rs);"
    )
    q1 = (
        "(SELECT * FROM r x EXCEPT SELECT * FROM r y WHERE y.a = 1) "
        "EXCEPT SELECT * FROM r z WHERE z.b = 2"
    )
    q2 = (
        "(SELECT * FROM r x EXCEPT SELECT * FROM r z WHERE z.b = 2) "
        "EXCEPT SELECT * FROM r y WHERE y.a = 1"
    )
    assert solver.check(q1, q2).proved


def test_union_all_of_distinct_branches():
    solver = Solver.from_program_text(
        "schema rs(a:int, b:int); table r(rs);"
    )
    assert solver.check(
        "SELECT DISTINCT * FROM r x UNION ALL SELECT DISTINCT * FROM r y",
        "SELECT DISTINCT * FROM r u UNION ALL SELECT DISTINCT * FROM r w",
    ).proved


def test_aggregate_inside_comparison_both_sides():
    solver = Solver.from_program_text(
        """
        schema es(deptno:int, sal:int);
        table emp(es);
        """
    )
    q = (
        "SELECT e.deptno AS d FROM emp e WHERE e.sal = "
        "count(SELECT f.sal AS sal FROM emp f WHERE f.deptno = e.deptno)"
    )
    # The alias-renamed spelling must prove (aggregate bodies are compared
    # as canonized uninterpreted arguments, Sec. 3.2 / Sec. 5.2).
    q_renamed = (
        "SELECT x.deptno AS d FROM emp x WHERE x.sal = "
        "count(SELECT y.sal AS sal FROM emp y WHERE y.deptno = x.deptno)"
    )
    assert solver.check(q, q_renamed).proved
    # A different correlation predicate must NOT prove.
    q_other = (
        "SELECT x.deptno AS d FROM emp x WHERE x.sal = "
        "count(SELECT y.sal AS sal FROM emp y WHERE y.sal = x.sal)"
    )
    assert not solver.check(q, q_other).proved
