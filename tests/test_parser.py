"""Parser tests: queries, predicates, projections, and programs."""

import pytest

from repro.errors import ParseError
from repro.sql.ast import (
    AggCall,
    AndPred,
    BinPred,
    ColumnRef,
    Constant,
    DistinctQuery,
    Except,
    Exists,
    ExprAs,
    FuncCall,
    NotPred,
    OrPred,
    Select,
    Star,
    TableRef,
    TableStar,
    TruePred,
    UnionAll,
)
from repro.sql.parser import parse_program, parse_query
from repro.sql.program import (
    ForeignKeyDecl,
    IndexDecl,
    KeyDecl,
    SchemaDecl,
    TableDecl,
    VerifyStmt,
    ViewDecl,
)


# -- queries -----------------------------------------------------------------


def test_simple_select_star():
    query = parse_query("SELECT * FROM r x")
    assert isinstance(query, Select)
    assert query.projections == (Star(),)
    assert query.from_items[0].alias == "x"
    assert isinstance(query.from_items[0].query, TableRef)


def test_table_alias_defaults_to_table_name():
    query = parse_query("SELECT * FROM r")
    assert query.from_items[0].alias == "r"


def test_select_distinct_flag():
    query = parse_query("SELECT DISTINCT x.a FROM r x")
    assert query.distinct


def test_projection_alias_and_bare_column():
    query = parse_query("SELECT x.a AS out, b FROM r x")
    first, second = query.projections
    assert isinstance(first, ExprAs) and first.alias == "out"
    assert isinstance(second, ExprAs) and second.expr == ColumnRef("", "b")


def test_table_star_projection():
    query = parse_query("SELECT x.*, y.a FROM r x, s y")
    assert isinstance(query.projections[0], TableStar)
    assert query.projections[0].table == "x"


def test_where_comparison_ops():
    for op in ("=", "<>", "<", "<=", ">", ">="):
        query = parse_query(f"SELECT * FROM r x WHERE x.a {op} 5")
        assert isinstance(query.where, BinPred)
        assert query.where.op == op


def test_predicate_precedence_and_binds_tighter_than_or():
    query = parse_query("SELECT * FROM r x WHERE x.a = 1 OR x.a = 2 AND x.b = 3")
    assert isinstance(query.where, OrPred)
    assert isinstance(query.where.right, AndPred)


def test_not_predicate():
    query = parse_query("SELECT * FROM r x WHERE NOT x.a = 1")
    assert isinstance(query.where, NotPred)


def test_parenthesized_predicate():
    query = parse_query("SELECT * FROM r x WHERE (x.a = 1 OR x.b = 2) AND TRUE")
    assert isinstance(query.where, AndPred)
    assert isinstance(query.where.left, OrPred)
    assert isinstance(query.where.right, TruePred)


def test_parenthesized_expression_comparison():
    query = parse_query("SELECT * FROM r x WHERE (x.a) = 1")
    assert isinstance(query.where, BinPred)


def test_exists_subquery():
    query = parse_query(
        "SELECT * FROM r x WHERE EXISTS (SELECT * FROM s y WHERE y.c = x.a)"
    )
    assert isinstance(query.where, Exists)
    assert not query.where.negated


def test_not_exists_subquery():
    query = parse_query(
        "SELECT * FROM r x WHERE NOT EXISTS (SELECT * FROM s y)"
    )
    assert isinstance(query.where, Exists)
    assert query.where.negated


def test_union_all_and_except_left_assoc():
    query = parse_query(
        "SELECT * FROM r a UNION ALL SELECT * FROM r b EXCEPT SELECT * FROM r c"
    )
    assert isinstance(query, Except)
    assert isinstance(query.left, UnionAll)


def test_standalone_distinct_combinator():
    query = parse_query("DISTINCT (SELECT * FROM r x)")
    assert isinstance(query, DistinctQuery)


def test_subquery_in_from_requires_alias():
    with pytest.raises(ParseError):
        parse_query("SELECT * FROM (SELECT * FROM r x)")


def test_subquery_in_from_with_alias():
    query = parse_query("SELECT * FROM (SELECT * FROM r x) t")
    assert query.from_items[0].alias == "t"
    assert isinstance(query.from_items[0].query, Select)


def test_group_by_clause():
    query = parse_query("SELECT x.k AS k, sum(x.a) AS s FROM r x GROUP BY x.k")
    assert query.group_by == (ColumnRef("x", "k"),)


def test_aggregate_over_subquery_parses_as_aggcall():
    query = parse_query(
        "SELECT sum(SELECT x.a AS a FROM r x) AS s FROM s y"
    )
    expr = query.projections[0].expr
    assert isinstance(expr, AggCall)
    assert expr.name == "sum"


def test_count_star():
    query = parse_query("SELECT count(*) AS c FROM r x GROUP BY x.a")
    expr = query.projections[0].expr
    assert isinstance(expr, FuncCall)
    assert expr.args == (ColumnRef("", "*"),)


def test_arithmetic_expression_as_uninterpreted_function():
    query = parse_query("SELECT * FROM r x WHERE x.a + 5 > x.b")
    assert isinstance(query.where.left, FuncCall)
    assert query.where.left.name == "+"


def test_string_and_boolean_constants():
    query = parse_query("SELECT * FROM r x WHERE x.a = 'lo'")
    assert query.where.right == Constant("lo")


def test_trailing_garbage_rejected():
    with pytest.raises(ParseError):
        parse_query("SELECT * FROM r x extra")


def test_missing_from_is_allowed_for_bare_select():
    # The Fig. 2 grammar technically allows SELECT p q with any q; our
    # surface form requires FROM for selects, so this must fail cleanly.
    with pytest.raises(ParseError):
        parse_query("SELECT")


# -- programs -----------------------------------------------------------------


def test_schema_declaration():
    program = parse_program("schema s(a:int, b:string);")
    decl = program.statements[0]
    assert isinstance(decl, SchemaDecl)
    assert decl.schema.attribute_names() == ("a", "b")
    assert decl.schema.attribute("b").type == "string"


def test_generic_schema_declaration():
    program = parse_program("schema s(a:int, ??);")
    assert program.statements[0].schema.generic


def test_table_key_and_index_declarations():
    program = parse_program(
        """
        schema s(k:int, a:int);
        table r(s);
        key r(k);
        index i on r(a);
        """
    )
    assert isinstance(program.statements[1], TableDecl)
    assert isinstance(program.statements[2], KeyDecl)
    assert isinstance(program.statements[3], IndexDecl)


def test_foreign_key_declaration():
    program = parse_program(
        """
        schema s1(k:int); schema s2(f:int);
        table a(s1); table b(s2);
        key a(k);
        foreign key b(f) references a(k);
        """
    )
    fk = [s for s in program.statements if isinstance(s, ForeignKeyDecl)][0]
    assert fk.table == "b" and fk.ref_table == "a"


def test_view_declaration():
    program = parse_program(
        "schema s(a:int); table r(s); view v SELECT * FROM r x WHERE x.a = 1;"
    )
    view = program.statements[-1]
    assert isinstance(view, ViewDecl)
    assert isinstance(view.query, Select)


def test_verify_statement():
    program = parse_program(
        "schema s(a:int); table r(s); "
        "verify SELECT * FROM r x == SELECT * FROM r y;"
    )
    goals = program.verify_goals()
    assert len(goals) == 1
    assert isinstance(goals[0], VerifyStmt)


def test_verify_requires_double_equals():
    with pytest.raises(ParseError):
        parse_program("verify SELECT * FROM r x = SELECT * FROM r y;")


def test_statement_requires_semicolon():
    with pytest.raises(ParseError):
        parse_program("schema s(a:int)")


def test_multiple_statements_build_catalog():
    program = parse_program(
        """
        schema s(k:int, a:int);
        table r(s);
        key r(k);
        """
    )
    catalog = program.build_catalog()
    assert catalog.has_table("r")
    assert catalog.key_of("r") == ("k",)
