"""Composite (multi-attribute) keys and foreign keys through the pipeline."""

import pytest

from repro import Solver
from repro.checker import ModelChecker

PROGRAM = """
schema order_s(custno:int, orderno:int, total:int);
schema line_s(custno:int, orderno:int, lineno:int, qty:int);
table orders(order_s);
table lines(line_s);
key orders(custno, orderno);
key lines(custno, orderno, lineno);
foreign key lines(custno, orderno) references orders(custno, orderno);
"""


@pytest.fixture
def solver():
    return Solver.from_program_text(PROGRAM)


def test_composite_key_distinct_noop(solver):
    assert solver.check(
        "SELECT * FROM orders o",
        "SELECT DISTINCT * FROM orders o",
    ).proved


def test_composite_key_self_join_collapse(solver):
    assert solver.check(
        "SELECT x.total AS total FROM orders x, orders y "
        "WHERE x.custno = y.custno AND x.orderno = y.orderno",
        "SELECT x.total AS total FROM orders x",
    ).proved


def test_partial_key_match_not_collapsed(solver):
    """Matching only half the composite key must NOT merge the atoms."""
    outcome = solver.check(
        "SELECT x.total AS total FROM orders x, orders y "
        "WHERE x.custno = y.custno",
        "SELECT x.total AS total FROM orders x",
    )
    assert not outcome.proved
    witness = ModelChecker(solver.catalog, seed=3).find_counterexample(
        "SELECT x.total AS total FROM orders x, orders y WHERE x.custno = y.custno",
        "SELECT x.total AS total FROM orders x",
    )
    assert witness is not None


def test_composite_fk_join_elimination(solver):
    assert solver.check(
        "SELECT l.qty AS qty FROM lines l, orders o "
        "WHERE l.custno = o.custno AND l.orderno = o.orderno",
        "SELECT l.qty AS qty FROM lines l",
    ).proved


def test_composite_fk_partial_equality_not_eliminated(solver):
    outcome = solver.check(
        "SELECT l.qty AS qty FROM lines l, orders o WHERE l.custno = o.custno",
        "SELECT l.qty AS qty FROM lines l",
    )
    assert not outcome.proved


def test_composite_fk_blocked_when_ref_attribute_used(solver):
    outcome = solver.check(
        "SELECT l.qty AS qty FROM lines l, orders o "
        "WHERE l.custno = o.custno AND l.orderno = o.orderno AND o.total > 0",
        "SELECT l.qty AS qty FROM lines l",
    )
    assert not outcome.proved


def test_composite_key_generator_respects_constraints(solver):
    from repro.engine import DatabaseGenerator

    generator = DatabaseGenerator(solver.catalog, seed=2)
    for database in generator.generate_many(4, max_rows=3):
        assert database.satisfies_constraints()


def test_composite_fk_semijoin_distinct(solver):
    assert solver.check(
        "SELECT DISTINCT l.lineno AS lineno FROM lines l "
        "WHERE EXISTS (SELECT * FROM orders o WHERE o.custno = l.custno "
        "AND o.orderno = l.orderno)",
        "SELECT DISTINCT l.lineno AS lineno FROM lines l",
    ).proved
