"""Canonical-labeling decision kernel: digest invariants and mode identity.

The digest kernel rests on two claims, checked here property-style:

* **Invariance** — permuting binder names, binder order, predicate
  order, and relation-atom order never changes a term's canonical
  digest (the refinement pass sees structure, not spelling).
* **Soundness** — equal digests always mean ``terms_isomorphic`` says
  yes: a digest is the fingerprint of a genuinely renamed term, so
  equality exhibits an actual bijection.  (The converse is deliberately
  not claimed for arbitrary pairs — congruence-level matches are
  invisible to the syntactic digest and fall back to search.)

Plus the kernel-mode differential (``digest`` / ``search`` / ``legacy``
accept exactly the same pairs), the closure-direction regression for
``_atoms_covered``, and the nested-scope capture regression for the
canonical renamer.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints.model import ConstraintSet
from repro.cq import isomorphism
from repro.cq.isomorphism import (
    MatchContext,
    build_closure_from_preds,
    kernel_mode,
    set_kernel_mode,
    terms_isomorphic,
    _atoms_covered,
)
from repro.cq.labeling import (
    canonical_form,
    canonical_term,
    form_digest,
    refined_binder_colors,
    term_digest,
)
from repro.sql.schema import Schema
from repro.udp.decide import DecisionOptions, _Engine
from repro.usr.predicates import AtomPred, EqPred, NePred
from repro.usr.spnf import NormalTerm, make_term, substitute_term
from repro.usr.values import Attr, ConstVal, TupleVar


SCHEMA_R = Schema.of("r", "a:int", "b:int")
SCHEMA_S = Schema.of("s", "a:int", "b:int")


@pytest.fixture(autouse=True)
def _digest_mode_restored():
    previous = kernel_mode()
    yield
    set_kernel_mode(previous)


def fresh_context() -> MatchContext:
    return _Engine(ConstraintSet(), DecisionOptions(), None)._context


# ---------------------------------------------------------------------------
# Term generators
# ---------------------------------------------------------------------------


def _attr(name: str, field: str) -> Attr:
    return Attr(TupleVar(name), field)


@st.composite
def terms(draw, min_vars: int = 0, allow_nested: bool = True):
    """A random well-formed NormalTerm over schema r/s binders."""
    var_count = draw(st.integers(min_value=min_vars, max_value=4))
    names = [f"v{i}" for i in range(var_count)]
    vars_ = tuple(
        (name, draw(st.sampled_from([SCHEMA_R, SCHEMA_S]))) for name in names
    )
    rels = []
    for name, schema in vars_:
        for rel_name in draw(
            st.lists(st.sampled_from(["r", "s"]), min_size=1, max_size=2)
        ):
            rels.append((rel_name, TupleVar(name)))
    preds = []
    operand = st.one_of(
        st.sampled_from(names or ["free"]).flatmap(
            lambda n: st.sampled_from([_attr(n, "a"), _attr(n, "b")])
        ),
        st.integers(min_value=0, max_value=3).map(ConstVal),
    )
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        kind = draw(st.sampled_from(["eq", "ne", "atom"]))
        left, right = draw(operand), draw(operand)
        if kind == "eq":
            preds.append(EqPred(left, right))
        elif kind == "ne":
            preds.append(NePred(left, right))
        else:
            preds.append(AtomPred("<", (left, right)))
    squash_part = None
    neg_part = None
    if allow_nested and draw(st.booleans()):
        inner = draw(terms(min_vars=1, allow_nested=False))
        # Correlate the nested term with an outer binder when one exists.
        if names and inner.vars:
            inner = NormalTerm(
                inner.vars,
                inner.preds
                + (EqPred(_attr(inner.vars[0][0], "a"), _attr(names[0], "a")),),
                inner.rels,
                None,
                None,
            )
        if draw(st.booleans()):
            squash_part = (inner,)
        else:
            neg_part = (inner,)
    term = make_term(vars_, tuple(preds), tuple(rels), squash_part, neg_part)
    return term if term is not None else NormalTerm()


def permuted_alpha_variant(term: NormalTerm, seed: int) -> NormalTerm:
    """Rename binders, permute binder order, shuffle factor lists."""
    rng = random.Random(seed)
    names = [name for name, _ in term.vars]
    fresh = [f"w{seed}x{i}" for i in range(len(names))]
    rng.shuffle(fresh)
    mapping = {name: TupleVar(new) for name, new in zip(names, fresh)}
    schema_of = dict(term.vars)
    new_vars = [(mapping[name].name, schema_of[name]) for name in names]
    rng.shuffle(new_vars)
    shell = NormalTerm(
        tuple(new_vars), term.preds, term.rels, term.squash_part, term.neg_part
    )
    renamed = substitute_term(shell, mapping)
    preds = list(renamed.preds)
    rels = list(renamed.rels)
    rng.shuffle(preds)
    rng.shuffle(rels)
    return NormalTerm(
        renamed.vars,
        tuple(preds),
        tuple(rels),
        renamed.squash_part,
        renamed.neg_part,
    )


# ---------------------------------------------------------------------------
# Digest invariance and soundness
# ---------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(term=terms(), seed=st.integers(min_value=0, max_value=2**16))
def test_digest_invariant_under_alpha_and_factor_order(term, seed):
    variant = permuted_alpha_variant(term, seed)
    assert term_digest(variant) == term_digest(term)
    assert canonical_term(variant) == canonical_term(term)


@settings(max_examples=120, deadline=None)
@given(term=terms(), seed=st.integers(min_value=0, max_value=2**16))
def test_alpha_variants_isomorphic_in_every_mode(term, seed):
    variant = permuted_alpha_variant(term, seed)
    for mode in ("digest", "search", "legacy"):
        set_kernel_mode(mode)
        assert terms_isomorphic(term, variant, fresh_context()), mode


@settings(max_examples=150, deadline=None)
@given(left=terms(), right=terms())
def test_digest_equality_implies_isomorphism(left, right):
    if term_digest(left) == term_digest(right):
        set_kernel_mode("search")  # force the real search, no digest shortcut
        assert terms_isomorphic(left, right, fresh_context())


@settings(max_examples=150, deadline=None)
@given(left=terms(), right=terms())
def test_kernel_modes_accept_identical_pairs(left, right):
    verdicts = {}
    for mode in ("digest", "search", "legacy"):
        set_kernel_mode(mode)
        verdicts[mode] = terms_isomorphic(left, right, fresh_context())
    assert len(set(verdicts.values())) == 1, verdicts


@settings(max_examples=60, deadline=None)
@given(term=terms())
def test_canonical_form_idempotent(term):
    form = (term,)
    once = canonical_form(form)
    assert canonical_form(once) == once


# ---------------------------------------------------------------------------
# compare_canonized: digest multiset matching over unions
# ---------------------------------------------------------------------------


def _chain_term(k: int, names, flip: int = -1) -> NormalTerm:
    rels = tuple(("r", TupleVar(n)) for n in names)
    preds = []
    for i in range(k - 1):
        if i == flip:
            preds.append(EqPred(_attr(names[i], "b"), _attr(names[i + 1], "a")))
        else:
            preds.append(EqPred(_attr(names[i], "a"), _attr(names[i + 1], "b")))
    vars_ = tuple((n, SCHEMA_R) for n in names)
    term = make_term(vars_, tuple(preds), rels, None, None)
    assert term is not None
    return term


def test_union_matching_collapses_to_digest_multiset():
    rng = random.Random(11)
    lefts, rights = [], []
    for j in range(6):
        base = _chain_term(4, [f"t{j}_{i}" for i in range(4)])
        # Tag each union arm with a distinct constant so the arms are
        # pairwise non-isomorphic.
        tagged = NormalTerm(
            base.vars,
            base.preds + (EqPred(_attr(base.vars[0][0], "a"), ConstVal(j)),),
            base.rels,
            None,
            None,
        )
        lefts.append(tagged)
        rights.append(permuted_alpha_variant(tagged, seed=100 + j))
    rng.shuffle(rights)
    engine = _Engine(ConstraintSet(), DecisionOptions(), None)
    assert engine.compare_canonized(tuple(lefts), tuple(rights))
    # Swap one arm for a duplicate of another: the multiset mismatches.
    lopsided = tuple(
        permuted_alpha_variant(term, seed=200 + index)
        for index, term in enumerate(lefts[:-1] + [lefts[0]])
    )
    assert not engine.compare_canonized(tuple(lefts), lopsided)


def test_form_digest_is_order_insensitive():
    terms_ = [_chain_term(3, [f"a{i}" for i in range(3)]),
              _chain_term(4, [f"b{i}" for i in range(4)])]
    assert form_digest(tuple(terms_)) == form_digest(tuple(reversed(terms_)))


# ---------------------------------------------------------------------------
# Satellite regression: _atoms_covered closure direction
# ---------------------------------------------------------------------------


def test_atoms_covered_uses_the_source_side_closure():
    """The witness closure must come from the side whose atom is being
    discharged.  Left knows x = y and asserts beta(x); right only has
    beta(y): covering left's atom in right needs *left's* closure, and
    right's closure (which knows no equalities) must refuse — if the two
    calls in ``_predicates_mutually_entailed`` ever swap their witnesses
    back to one shared closure, this distinguishes them.
    """
    x, y = _attr("t", "a"), _attr("t", "b")
    left = NormalTerm(
        vars=(("t", SCHEMA_R),),
        preds=(AtomPred("beta", (x,)), EqPred(x, y)),
        rels=(("r", TupleVar("t")),),
    )
    right = NormalTerm(
        vars=(("t", SCHEMA_R),),
        preds=(AtomPred("beta", (y,)),),
        rels=(("r", TupleVar("t")),),
    )
    closure_left = build_closure_from_preds(left)
    closure_right = build_closure_from_preds(right)
    # Source = left: its own closure rewrites beta(x) to beta(y).
    assert _atoms_covered(left, right, closure_left)
    # The right side's closure has no equalities and cannot witness it.
    assert not _atoms_covered(left, right, closure_right)
    # Source = right: beta(y) is found in left only through a closure
    # that knows x = y — which right's own closure does not.  The fixed
    # reverse call must therefore reject this pair...
    assert not _atoms_covered(right, left, closure_right)
    # ...which is consistent: the equality parts are not mutually
    # entailed here (left's x = y has no witness in right), so the terms
    # are not isomorphic under any kernel mode.
    for mode in ("digest", "search", "legacy"):
        set_kernel_mode(mode)
        assert not terms_isomorphic(left, right, fresh_context()), mode


def test_mutual_entailment_direction_fix_preserves_verdicts():
    """When the equality parts *are* mutually entailed, both closures
    induce the same congruence, so the direction fix cannot flip any
    in-context verdict: spot-check a congruence-heavy equivalent pair."""
    left = NormalTerm(
        vars=(("t", SCHEMA_R),),
        preds=(
            AtomPred("beta", (_attr("t", "a"),)),
            EqPred(_attr("t", "a"), _attr("t", "b")),
        ),
        rels=(("r", TupleVar("t")),),
    )
    right = NormalTerm(
        vars=(("u", SCHEMA_R),),
        preds=(
            AtomPred("beta", (_attr("u", "b"),)),
            EqPred(_attr("u", "b"), _attr("u", "a")),
        ),
        rels=(("r", TupleVar("u")),),
    )
    for mode in ("digest", "search", "legacy"):
        set_kernel_mode(mode)
        assert terms_isomorphic(left, right, fresh_context()), mode


# ---------------------------------------------------------------------------
# Satellite regression: nested scopes never capture outer references
# ---------------------------------------------------------------------------


def test_canonical_rename_keeps_outer_references_free_in_nested_parts():
    """A squash sub-term that references an outer binder must still
    reference it after canonical renaming: with one flat ``κi`` namespace
    per level (the old renamer) the outer reference could collide with a
    nested binder and be captured, silently conflating distinct terms."""
    inner = NormalTerm(
        vars=(("w", SCHEMA_R),),
        preds=(EqPred(_attr("w", "a"), _attr("v", "a")),),
        rels=(("r", TupleVar("w")),),
    )
    outer = NormalTerm(
        vars=(("v", SCHEMA_R),),
        preds=(),
        rels=(("r", TupleVar("v")),),
        squash_part=(inner,),
    )
    rendered = canonical_term(outer)
    (outer_name, _), = rendered.vars
    (nested,) = rendered.squash_part
    assert nested.free_tuple_vars() == frozenset({outer_name})
    assert nested.vars[0][0] != outer_name
    # The self-referential variant (inner predicate closed over the
    # nested binder instead of the outer one) is a genuinely different
    # term; capture would conflate the two.
    captured = NormalTerm(
        vars=(("v", SCHEMA_R),),
        preds=(),
        rels=(("r", TupleVar("v")),),
        squash_part=(
            NormalTerm(
                vars=(("w", SCHEMA_R),),
                preds=(EqPred(_attr("w", "a"), _attr("w", "b")),),
                rels=(("r", TupleVar("w")),),
            ),
        ),
    )
    assert term_digest(captured) != term_digest(outer)


def test_digest_stable_for_correlated_aggregates():
    """Aggregate bodies are canonicalized into the λ namespace by
    ``_canonical_agg``; the digest renamer's κ names must never collide
    with them, or capture avoidance injects globally fresh ``$N`` names
    into the 'canonical' term — making digests object-identity- and
    process-dependent exactly where shared-store keys need stability."""
    from repro.udp.canonize import canonical_rename_form
    from repro.usr.spnf import make_term
    from repro.usr.terms import Pred, Rel, big_sum, mul
    from repro.usr.values import Agg, ConstVal

    def build():
        # The body form _canonical_agg would produce, renamed through
        # canonical_rename_form (λ namespace), correlated with the
        # outer binder t0 and the lambda variable κλ.
        body_form = canonical_rename_form(
            (
                make_term(
                    vars=(("w", SCHEMA_R),),
                    preds=(EqPred(_attr("w", "a"), _attr("t0", "a")),),
                    rels=(("r", TupleVar("w")),),
                    squash_part=None,
                    neg_part=None,
                ),
            )
        )
        from repro.usr.spnf import form_to_uexpr

        agg = Agg("sum", "κλ", SCHEMA_R, form_to_uexpr(body_form))
        return NormalTerm(
            vars=(("t0", SCHEMA_R),),
            preds=(EqPred(agg, ConstVal(1)),),
            rels=(("r", TupleVar("t0")),),
        )

    first, second = build(), build()
    assert first == second
    assert canonical_term(first) == canonical_term(second)
    assert term_digest(first) == term_digest(second)
    assert "$" not in str(canonical_term(first)), (
        "capture avoidance freshened an aggregate-body binder — the κ/λ "
        "namespaces collided"
    )
    # And the aggregate-body renamer really does use the λ namespace.
    assert "λ0.0" in str(canonical_term(first))


# ---------------------------------------------------------------------------
# Refinement quality: candidate ordering data
# ---------------------------------------------------------------------------


def test_refined_colors_distinguish_chain_positions():
    term = _chain_term(5, [f"c{i}" for i in range(5)])
    colors = refined_binder_colors(term)
    assert len(set(colors.values())) == 5, (
        "color refinement failed to discretize an asymmetric chain"
    )


def test_refined_colors_invariant_under_renaming():
    term = _chain_term(5, [f"c{i}" for i in range(5)])
    variant = permuted_alpha_variant(term, seed=5)
    original = refined_binder_colors(term)
    renamed = refined_binder_colors(variant)
    assert sorted(original.values()) == sorted(renamed.values())
