"""Tests for the paper-named TDP/SDP entry points (Algorithms 3-4)."""

import pytest

from repro.constraints.model import ConstraintSet
from repro.sql.program import KeyConstraint
from repro.sql.schema import Schema
from repro.udp.sdp import sdp
from repro.udp.tdp import tdp
from repro.usr.predicates import EqPred
from repro.usr.spnf import normalize
from repro.usr.terms import Pred, Rel, Sum, mul, squash
from repro.usr.values import Attr, TupleVar

S = Schema.of("s", "k", "a")
T, U, V = TupleVar("t"), TupleVar("u"), TupleVar("v")


def term_of(expr):
    form = normalize(expr)
    assert len(form) == 1
    return form[0]


def test_tdp_renamed_terms():
    left = term_of(Sum("u", S, mul(Rel("r", U), Pred(EqPred(Attr(U, "a"), Attr(T, "a"))))))
    right = term_of(Sum("v", S, mul(Rel("r", V), Pred(EqPred(Attr(V, "a"), Attr(T, "a"))))))
    assert tdp(left, right)


def test_tdp_rejects_distinct_structure():
    left = term_of(Sum("u", S, Rel("r", U)))
    right = term_of(Sum("v", S, mul(Rel("r", V), Rel("r", V))))
    assert not tdp(left, right)


def test_tdp_with_squash_parts():
    left = term_of(mul(Rel("r", T), squash(Sum("u", S, Rel("r", U)))))
    right = term_of(mul(Rel("r", T), squash(Sum("v", S, Rel("r", V)))))
    assert tdp(left, right)


def test_sdp_folds_redundant_term():
    left = normalize(
        Sum("u", S, Sum("v", S, mul(
            Rel("r", U), Rel("r", V),
            Pred(EqPred(Attr(U, "a"), Attr(V, "a"))),
        )))
    )
    right = normalize(Sum("w", S, Rel("r", TupleVar("w"))))
    assert sdp(left, right)
    assert sdp(left, right, strategy="minimize")


def test_sdp_union_containment_both_ways():
    branch_a = Sum("u", S, mul(Rel("r", U), Pred(EqPred(Attr(U, "a"), Attr(U, "k")))))
    branch_b = Sum("v", S, Rel("r", V))
    left = normalize(branch_a) + normalize(branch_b)
    right = normalize(Sum("w", S, Rel("r", TupleVar("w"))))
    # ⋃(a ∪ b) = b since a ⊆ b: the unions are set-equal.
    assert sdp(left, right)


def test_sdp_detects_inequivalence():
    left = normalize(Sum("u", S, Rel("r", U)))
    right = normalize(Sum("v", S, Rel("q", V)))
    assert not sdp(left, right)


def test_sdp_uses_constraints():
    constraints = ConstraintSet(keys=[KeyConstraint("r", ("k",))])
    left = normalize(
        Sum("u", S, Sum("v", S, mul(
            Rel("r", U), Rel("r", V),
            Pred(EqPred(Attr(U, "k"), Attr(V, "k"))),
            Pred(EqPred(Attr(U, "a"), Attr(T, "a"))),
        )))
    )
    right = normalize(
        Sum("w", S, mul(
            Rel("r", TupleVar("w")),
            Pred(EqPred(Attr(TupleVar("w"), "a"), Attr(T, "a"))),
        ))
    )
    assert sdp(left, right, constraints, env={"t": S})
