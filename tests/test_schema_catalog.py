"""Schema and catalog tests."""

import pytest

from repro.errors import ResolutionError, SchemaError
from repro.sql.ast import Select, TableRef
from repro.sql.program import Catalog, KeyConstraint
from repro.sql.schema import Attribute, Schema


# -- Schema --------------------------------------------------------------


def test_schema_of_builder_with_types():
    schema = Schema.of("s", "a:int", "b:string", "c")
    assert schema.attribute_names() == ("a", "b", "c")
    assert schema.attribute("b").type == "string"
    assert schema.attribute("c").type == "int"


def test_duplicate_attribute_rejected():
    with pytest.raises(SchemaError):
        Schema("s", (Attribute("a"), Attribute("a")))


def test_missing_attribute_lookup_raises():
    schema = Schema.of("s", "a")
    with pytest.raises(SchemaError):
        schema.attribute("zz")


def test_generic_schema_is_not_concrete():
    schema = Schema.of("s", "a", generic=True)
    assert not schema.is_concrete()
    assert "??" in str(schema)


def test_concat_renames_duplicates_positionally():
    left = Schema.of("l", "a", "b")
    right = Schema.of("r", "a", "c")
    merged = left.concat(right)
    assert merged.attribute_names() == ("a", "b", "a_1", "c")


def test_concat_propagates_genericity():
    left = Schema.of("l", "a")
    right = Schema.of("r", "b", generic=True)
    assert left.concat(right).generic


# -- Catalog -----------------------------------------------------------------


def test_catalog_table_lookup():
    catalog = Catalog()
    catalog.add_schema(Schema.of("s", "a"))
    catalog.add_table("r", "s")
    assert catalog.has_table("r")
    assert catalog.table_schema("r").attribute_names() == ("a",)


def test_catalog_unknown_schema_rejected():
    catalog = Catalog()
    with pytest.raises(ResolutionError):
        catalog.add_table("r", "nope")


def test_catalog_duplicate_table_rejected():
    catalog = Catalog()
    catalog.add_schema(Schema.of("s", "a"))
    catalog.add_table("r", "s")
    with pytest.raises(SchemaError):
        catalog.add_table("r", "s")


def test_key_attribute_must_exist():
    catalog = Catalog()
    catalog.add_schema(Schema.of("s", "a"))
    catalog.add_table("r", "s")
    with pytest.raises(SchemaError):
        catalog.add_key("r", ("zz",))


def test_foreign_key_implies_referenced_key():
    catalog = Catalog()
    catalog.add_schema(Schema.of("s1", "k"))
    catalog.add_schema(Schema.of("s2", "f"))
    catalog.add_table("a", "s1")
    catalog.add_table("b", "s2")
    catalog.add_foreign_key("b", ("f",), "a", ("k",))
    # Theorem 4.5: the referenced attributes behave as a key of `a`.
    assert KeyConstraint("a", ("k",)) in catalog.keys


def test_foreign_key_arity_mismatch_rejected():
    catalog = Catalog()
    catalog.add_schema(Schema.of("s1", "k", "l"))
    catalog.add_schema(Schema.of("s2", "f"))
    catalog.add_table("a", "s1")
    catalog.add_table("b", "s2")
    with pytest.raises(SchemaError):
        catalog.add_foreign_key("b", ("f",), "a", ("k", "l"))


def test_index_becomes_gmap_view():
    catalog = Catalog()
    catalog.add_schema(Schema.of("s", "k", "a", "b"))
    catalog.add_table("r", "s")
    catalog.add_key("r", ("k",))
    catalog.add_index("i", "r", ("a",))
    assert catalog.has_view("i")
    view = catalog.view_query("i")
    assert isinstance(view, Select)
    # The GMAP view projects the key plus the indexed attribute.
    names = [p.alias for p in view.projections]
    assert names == ["k", "a"]


def test_index_requires_key():
    catalog = Catalog()
    catalog.add_schema(Schema.of("s", "k", "a"))
    catalog.add_table("r", "s")
    with pytest.raises(SchemaError):
        catalog.add_index("i", "r", ("a",))


def test_catalog_copy_is_independent():
    catalog = Catalog()
    catalog.add_schema(Schema.of("s", "k"))
    catalog.add_table("r", "s")
    clone = catalog.copy()
    clone.add_key("r", ("k",))
    assert not catalog.keys and clone.keys


def test_view_and_table_namespace_shared():
    catalog = Catalog()
    catalog.add_schema(Schema.of("s", "a"))
    catalog.add_table("r", "s")
    with pytest.raises(SchemaError):
        catalog.add_view("r", TableRef("r"))
