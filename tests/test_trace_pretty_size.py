"""Proof traces, pretty printers, and size metrics."""

import pytest

from repro.sql.parser import parse_query
from repro.sql.pretty import format_query
from repro.sql.schema import Schema
from repro.udp.trace import DecisionResult, ProofStep, ProofTrace, Verdict
from repro.usr.axioms import AXIOMS, axiom
from repro.usr.predicates import EqPred
from repro.usr.pretty import pretty, pretty_ascii, pretty_form
from repro.usr.size import expr_size, form_size
from repro.usr.spnf import normalize
from repro.usr.terms import Pred, Rel, Sum, mul, squash
from repro.usr.values import Attr, ConstVal, TupleVar

S = Schema.of("s", "a")
T = TupleVar("t")


# -- axiom catalog -----------------------------------------------------------


def test_axiom_catalog_contains_paper_identities():
    for key in ("squash-self", "eq-sum-elim", "key", "fk", "key-squash",
                "squash-flatten", "excluded-middle", "eq-unique"):
        assert key in AXIOMS


def test_axiom_lookup():
    assert axiom("key").source == "Def. 4.1"
    with pytest.raises(KeyError):
        axiom("nonsense")


def test_axioms_have_statements_and_sources():
    for entry in AXIOMS.values():
        assert entry.statement and entry.source


# -- traces -------------------------------------------------------------------


def test_trace_records_steps():
    trace = ProofTrace()
    trace.record("key", "merged r(t) with r(u)")
    trace.record("eq-sum-elim")
    assert len(trace) == 2
    assert trace.axioms_used() == ["key", "eq-sum-elim"]


def test_trace_rejects_unknown_axiom():
    with pytest.raises(ValueError):
        ProofStep("made-up-axiom")


def test_trace_extend():
    first = ProofTrace()
    first.record("key")
    second = ProofTrace()
    second.record("fk")
    first.extend(second)
    assert trace_axioms(first) == ["key", "fk"]


def trace_axioms(trace):
    return [step.axiom for step in trace.steps]


def test_verdict_truthiness():
    assert Verdict.PROVED
    assert not Verdict.NOT_PROVED
    assert not Verdict.UNSUPPORTED


def test_decision_result_str():
    result = DecisionResult(Verdict.PROVED, reason="isomorphic")
    assert "proved" in str(result)
    assert result.proved


# -- pretty printers -----------------------------------------------------------


def test_uexpr_pretty_unicode():
    expr = Sum("t", S, mul(Pred(EqPred(Attr(T, "a"), ConstVal(1))), Rel("r", T)))
    text = pretty(expr)
    assert "Σ_t" in text and "×" in text


def test_uexpr_pretty_ascii_has_no_unicode():
    expr = squash(Sum("t", S, Rel("r", T)))
    text = pretty_ascii(expr)
    assert text.isascii()


def test_pretty_form_of_zero():
    assert pretty_form(()) == "0"


def test_sql_pretty_round_trip():
    text = (
        "SELECT x.a AS a, y.c AS c FROM r x, s y "
        "WHERE x.a = y.c UNION ALL SELECT x.a AS a, y.c AS c FROM r x, s y"
    )
    query = parse_query(text)
    formatted = format_query(query)
    assert parse_query(formatted) == query


def test_sql_pretty_nested_subquery():
    query = parse_query(
        "SELECT t.a AS a FROM (SELECT x.a AS a FROM r x WHERE x.a = 1) t"
    )
    formatted = format_query(query)
    assert parse_query(formatted) == query


# -- sizes -----------------------------------------------------------------------


def test_expr_size_counts_nodes():
    expr = mul(Pred(EqPred(Attr(T, "a"), ConstVal(1))), Rel("r", T))
    assert expr_size(expr) >= 5


def test_form_size_of_zero_is_one():
    assert form_size(()) == 1


def test_spnf_growth_measurable():
    expr = Sum("t", S, mul(Rel("r", T), squash(Rel("q", T))))
    before = expr_size(expr)
    after = form_size(normalize(expr))
    assert before > 0 and after > 0
