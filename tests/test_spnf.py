"""SPNF normalization tests (Theorem 3.4), including semantic preservation.

The key property: for any U-expression E, ``normalize(E)`` reconstructs to an
expression with the same value in the ``N`` U-semiring under every finite
interpretation — SPNF conversion is meaning-preserving.
"""

import pytest

from repro.semirings import Interpretation, NaturalsSemiring
from repro.semirings.interp import tuple_key
from repro.sql.schema import Schema
from repro.usr.predicates import AtomPred, EqPred, NePred
from repro.usr.spnf import (
    NormalTerm,
    flatten_squash,
    form_to_uexpr,
    make_term,
    mul_terms,
    normalize,
)
from repro.usr.terms import (
    Add,
    Mul,
    Not,
    One,
    Pred,
    Rel,
    Squash,
    Sum,
    Zero,
    add,
    mul,
    not_,
    squash,
)
from repro.usr.values import Attr, ConstVal, TupleVar

S = Schema.of("s", "a")
S2 = Schema.of("s2", "a", "b")
T = TupleVar("t")
U = TupleVar("u")


def interp(rel_rows):
    """N-interpretation over universe {0,1} with given relation bags."""
    relations = {}
    for name, rows in rel_rows.items():
        table = {}
        for row in rows:
            key = tuple_key(row)
            table[key] = table.get(key, 0) + 1
        relations[name] = table
    return Interpretation(NaturalsSemiring(), [0, 1], relations)


def assert_preserved(expr, rel_rows, env=None):
    model = interp(rel_rows)
    direct = model.evaluate(expr, env)
    renormalized = model.evaluate(form_to_uexpr(normalize(expr)), env)
    assert direct == renormalized, f"SPNF changed meaning of {expr}"


# -- structure -----------------------------------------------------------------


def test_zero_normalizes_to_empty_form():
    assert normalize(Zero) == ()


def test_one_normalizes_to_single_unit_term():
    form = normalize(One)
    assert len(form) == 1 and form[0].is_one()


def test_add_produces_one_term_per_summand():
    form = normalize(add(Rel("r", T), Rel("s", T)))
    assert len(form) == 2


def test_mul_distributes_over_add():
    expr = mul(Rel("r", T), add(Rel("s", T), Rel("q", T)))
    form = normalize(expr)
    assert len(form) == 2
    assert all(len(term.rels) == 2 for term in form)


def test_sum_pushed_through_add():
    expr = Sum("t", S, add(Rel("r", T), Rel("s", T)))
    form = normalize(expr)
    assert len(form) == 2
    assert all(term.vars == (("t", S),) for term in form)


def test_duplicate_predicates_deduplicated():
    pred = Pred(EqPred(Attr(T, "a"), ConstVal(1)))
    form = normalize(mul(pred, pred, Rel("r", T)))
    assert len(form[0].preds) == 1


def test_duplicate_relation_atoms_kept():
    form = normalize(mul(Rel("r", T), Rel("r", T)))
    assert len(form[0].rels) == 2  # bag semantics: R(t)² ≠ R(t)


def test_false_constant_predicate_kills_term():
    form = normalize(mul(Pred(EqPred(ConstVal(1), ConstVal(2))), Rel("r", T)))
    assert form == ()


def test_true_constant_predicate_dropped():
    form = normalize(mul(Pred(EqPred(ConstVal(1), ConstVal(1))), Rel("r", T)))
    assert form[0].preds == ()


def test_reflexive_inequality_kills_term():
    form = normalize(mul(Pred(NePred(Attr(T, "a"), Attr(T, "a"))), Rel("r", T)))
    assert form == ()


def test_squash_factors_merge():
    expr = mul(squash(Rel("r", T)), squash(Rel("s", T)))
    form = normalize(expr)
    assert len(form) == 1
    term = form[0]
    assert term.squash_part is not None
    assert len(term.squash_part) == 1
    assert len(term.squash_part[0].rels) == 2  # ‖x‖×‖y‖ = ‖xy‖


def test_not_factors_merge_into_sum():
    expr = mul(not_(Rel("r", T)), not_(Rel("s", T)))
    form = normalize(expr)
    term = form[0]
    assert term.neg_part is not None
    assert len(term.neg_part) == 2  # not(x)·not(y) = not(x + y)


def test_squash_of_zero_is_zero():
    assert normalize(squash(mul(Pred(EqPred(ConstVal(0), ConstVal(1)))))) == ()


def test_squash_of_one_plus_x_is_one():
    form = normalize(Squash(add(One, Rel("r", T))))
    assert len(form) == 1 and form[0].is_one()


def test_not_zero_is_one():
    form = normalize(Not(Zero))
    assert len(form) == 1 and form[0].is_one()


def test_nested_squash_flattened():
    inner = squash(Rel("s", U))
    expr = Squash(Sum("t", S, mul(Rel("r", T), inner)))
    form = normalize(expr)
    term = form[0]
    assert term.squash_part is not None
    # Inside the outer squash, no term retains an inner squash factor.
    assert all(sub.squash_part is None for sub in term.squash_part)


def test_binder_collision_freshened_in_product():
    left = Sum("t", S, Rel("r", T))
    right = Sum("t", S, Rel("s", T))
    form = normalize(mul(left, right))
    names = [name for name, _ in form[0].vars]
    assert len(set(names)) == 2


def test_correlated_squash_reference_stays_captured():
    # Σ_t (r(t) × ‖s(t)‖) under an outer squash: flattening must keep the
    # correlation on the same binder (regression for the scope-merge bug).
    expr = Squash(Sum("t", S, mul(Rel("r", T), squash(Rel("s", T)))))
    form = normalize(expr)
    term = form[0].squash_part[0]
    names = {name for name, _ in term.vars}
    rel_vars = set()
    for _, arg in term.rels:
        rel_vars |= arg.free_tuple_vars()
    assert rel_vars <= names


# -- semantics preservation -----------------------------------------------------


ROWS = {
    "r": [{"a": 0}, {"a": 1}, {"a": 1}],
    "s": [{"a": 1}],
}


def test_preservation_simple_product():
    expr = Sum("t", S, mul(Rel("r", T), Rel("s", T)))
    assert_preserved(expr, ROWS)


def test_preservation_distributed_sum():
    expr = Sum("t", S, mul(Rel("r", T), add(Rel("s", T), One)))
    assert_preserved(expr, ROWS)


def test_preservation_squash():
    expr = squash(Sum("t", S, Rel("r", T)))
    assert_preserved(expr, ROWS)


def test_preservation_nested_squash_lemma_51():
    expr = Squash(Sum("t", S, mul(Rel("r", T), squash(Rel("s", T)))))
    assert_preserved(expr, ROWS)


def test_preservation_negation():
    expr = Sum("t", S, mul(Rel("r", T), not_(Rel("s", T))))
    assert_preserved(expr, ROWS)


def test_preservation_predicates():
    expr = Sum(
        "t", S,
        mul(Pred(EqPred(Attr(T, "a"), ConstVal(1))), Rel("r", T)),
    )
    assert_preserved(expr, ROWS)


def test_preservation_free_variable():
    expr = mul(Rel("r", T), squash(Sum("u", S, mul(Rel("s", U),
               Pred(EqPred(Attr(T, "a"), Attr(U, "a")))))))
    assert_preserved(expr, ROWS, env={"t": {"a": 1}})


# -- term algebra ----------------------------------------------------------------


def test_mul_terms_merges_all_parts():
    left = make_term((("t", S),), (), (("r", T),), None, None)
    right = make_term(
        (("u", S),), (EqPred(Attr(U, "a"), ConstVal(0)),), (("s", U),),
        None, None,
    )
    merged = mul_terms(left, right)
    assert len(merged.vars) == 2
    assert len(merged.rels) == 2
    assert len(merged.preds) == 1


def test_flatten_squash_distributes_inner_sum():
    inner_form = normalize(add(Rel("r", T), Rel("s", T)))
    host = make_term((), (), (("q", T),), inner_form, None)
    flat = flatten_squash((host,))
    assert len(flat) == 2
    assert all(term.squash_part is None for term in flat)
