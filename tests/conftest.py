"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Solver
from repro.sql.program import Catalog
from repro.sql.schema import Schema

#: Two plain tables, no constraints.
RS_PROGRAM = """
schema rs(a:int, b:int);
schema ss(c:int, d:int);
table r(rs);
table s(ss);
"""

#: Keyed + indexed relation (Fig. 1 setting).
KEYED_PROGRAM = """
schema ks(k:int, a:int);
table r0(ks);
key r0(k);
index i0 on r0(a);
"""

#: Calcite-style EMP/DEPT with key + foreign key.
EMP_PROGRAM = """
schema emp_s(empno:int, ename:string, deptno:int, sal:int, comm:int);
schema dept_s(deptno:int, dname:string, loc:string);
table emp(emp_s);
table dept(dept_s);
key emp(empno);
key dept(deptno);
foreign key emp(deptno) references dept(deptno);
"""


@pytest.fixture
def rs_solver() -> Solver:
    return Solver.from_program_text(RS_PROGRAM)


@pytest.fixture
def keyed_solver() -> Solver:
    return Solver.from_program_text(KEYED_PROGRAM)


@pytest.fixture
def emp_solver() -> Solver:
    return Solver.from_program_text(EMP_PROGRAM)


@pytest.fixture
def rs_catalog(rs_solver) -> Catalog:
    return rs_solver.catalog


def make_catalog(*tables) -> Catalog:
    """``make_catalog(("r", "a", "b"), ("s", "c"))`` — int-typed helper."""
    catalog = Catalog()
    for spec in tables:
        name, *attrs = spec
        catalog.add_table_with_schema(name, Schema.of(name + "_s", *attrs))
    return catalog
