"""Solver front-end and CLI tests."""

import pytest

from repro import Solver, Verdict
from repro.frontend.cli import main
from repro.frontend.solver import prove

from tests.conftest import KEYED_PROGRAM, RS_PROGRAM


def test_prove_one_shot():
    outcome = prove(
        "SELECT * FROM r x WHERE x.a = 1",
        "SELECT * FROM r x WHERE 1 = x.a",
        program=RS_PROGRAM,
    )
    assert outcome.proved


def test_run_program_checks_each_goal():
    solver = Solver()
    outcomes = solver.run_program(
        RS_PROGRAM
        + """
        verify SELECT * FROM r x == SELECT * FROM r y;
        verify SELECT * FROM r x == SELECT * FROM s y;
        """
    )
    assert [o.proved for o in outcomes] == [True, False]


def test_unsupported_feature_reported_not_raised():
    solver = Solver.from_program_text(RS_PROGRAM)
    outcome = solver.check("SELECT * FROM r x WHERE x.a IS NULL", "SELECT * FROM r x")
    assert outcome.verdict is Verdict.UNSUPPORTED


def test_unknown_table_reported_as_unsupported():
    solver = Solver.from_program_text(RS_PROGRAM)
    outcome = solver.check("SELECT * FROM nope x", "SELECT * FROM r x")
    assert outcome.verdict is Verdict.UNSUPPORTED


def test_compile_returns_denotation():
    solver = Solver.from_program_text(RS_PROGRAM)
    denotation = solver.compile("SELECT * FROM r x")
    assert denotation.schema.attribute_names() == ("a", "b")


def test_outcome_str_mentions_verdict():
    solver = Solver.from_program_text(RS_PROGRAM)
    outcome = solver.check("SELECT * FROM r x", "SELECT * FROM r y")
    assert "proved" in str(outcome)


# -- CLI ----------------------------------------------------------------------


def write_program(tmp_path, text):
    path = tmp_path / "goals.cos"
    path.write_text(text, encoding="utf-8")
    return str(path)


def test_cli_success_exit_code(tmp_path, capsys):
    path = write_program(
        tmp_path,
        RS_PROGRAM + "verify SELECT * FROM r x == SELECT * FROM r y;",
    )
    assert main([path]) == 0
    out = capsys.readouterr().out
    assert "PROVED" in out


def test_cli_failure_exit_code(tmp_path, capsys):
    path = write_program(
        tmp_path,
        RS_PROGRAM + "verify SELECT * FROM r x == SELECT * FROM s y;",
    )
    assert main([path]) == 1
    out = capsys.readouterr().out
    assert "NOT_PROVED" in out


def test_cli_show_trace(tmp_path, capsys):
    path = write_program(
        tmp_path,
        KEYED_PROGRAM
        + "verify SELECT * FROM r0 x == SELECT DISTINCT * FROM r0 x;",
    )
    assert main([path, "--show-trace"]) == 0
    out = capsys.readouterr().out
    assert "key-squash" in out or "key" in out


def test_cli_no_constraints_flag(tmp_path, capsys):
    path = write_program(
        tmp_path,
        KEYED_PROGRAM
        + "verify SELECT * FROM r0 x == SELECT DISTINCT * FROM r0 x;",
    )
    assert main([path, "--no-constraints"]) == 1


def test_cli_empty_program(tmp_path, capsys):
    path = write_program(tmp_path, RS_PROGRAM)
    assert main([path]) == 0
    assert "no verify goals" in capsys.readouterr().out


# -- session-mode flags (--pipeline / --json) ---------------------------------


def test_cli_json_emits_structured_records(tmp_path, capsys):
    import json

    path = write_program(
        tmp_path,
        RS_PROGRAM
        + "verify SELECT * FROM r x == SELECT * FROM r y;\n"
        + "verify SELECT * FROM r x == SELECT * FROM s y;\n",
    )
    assert main([path, "--json"]) == 1  # second goal not proved
    lines = capsys.readouterr().out.strip().splitlines()
    records = [json.loads(line) for line in lines]
    assert [r["id"] for r in records] == ["goal-1", "goal-2"]
    assert [r["verdict"] for r in records] == ["proved", "not_proved"]
    assert records[0]["reason_code"] == "isomorphic-canonical-forms"
    assert records[0]["tactic"] == "udp-prove"


def test_cli_pipeline_flag_enables_refutation(tmp_path, capsys):
    path = write_program(
        tmp_path,
        RS_PROGRAM
        + "verify SELECT * FROM r x WHERE x.a = 1 "
        "== SELECT * FROM r x WHERE x.a = 2;",
    )
    assert main([path, "--pipeline", "udp-prove,model-check"]) == 1
    out = capsys.readouterr().out
    assert "counterexample-found" in out
    assert "counterexample database" in out


def test_cli_rejects_unknown_pipeline(tmp_path, capsys):
    path = write_program(
        tmp_path, RS_PROGRAM + "verify SELECT * FROM r x == SELECT * FROM r y;"
    )
    assert main([path, "--pipeline", "bogus-tactic"]) == 2
    assert "unknown tactic" in capsys.readouterr().err
