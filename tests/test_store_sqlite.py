"""The durable SQLite store: WAL concurrency, epochs, verdicts, pools.

The store's contract is stronger than the flock file's: it must survive
process restarts (durability is the point), serve concurrent writers
from N processes without a single ``database is locked`` escape
(``busy_timeout`` + WAL), and propagate epoch invalidation to every
process's warm view.  The multiprocess tests fork real workers —
thread-level interleaving cannot exercise sqlite's cross-process
locking.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import urllib.request

import pytest

from repro.hashcons_store import install_shared_store
from repro.server import VerificationServer
from repro.server.pool import SessionPool, resolve_pool_mode
from repro.session import PipelineConfig, Session
from repro.store import (
    FailoverStore,
    SQLiteMemoStore,
    SharedMemoStore,
    open_store,
)

needs_fork = pytest.mark.skipif(
    resolve_pool_mode("auto", 2) != "process",
    reason="fork start method unavailable",
)


# -- the basics --------------------------------------------------------------


def test_put_get_roundtrip_and_counters(tmp_path):
    store = SQLiteMemoStore(str(tmp_path / "memo.sqlite"))
    try:
        assert store.get("missing") is None
        store.put("k", {"value": [1, 2, 3]})
        assert store.get("k") == {"value": [1, 2, 3]}
        stats = store.stats()
        assert stats["backend"] == "sqlite"
        assert stats["publishes"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["errors"] == 0
    finally:
        store.close()


def test_open_store_backend_selection(tmp_path):
    sqlite_store = open_store(str(tmp_path / "a.sqlite"))
    flock_store = open_store(str(tmp_path / "b.store"), backend="flock")
    try:
        # Backends come wrapped in the failover circuit breaker by
        # default; the bare backend sits behind ``.inner``.
        assert isinstance(sqlite_store, FailoverStore)
        assert isinstance(sqlite_store.inner, SQLiteMemoStore)
        assert sqlite_store.backend == "sqlite"
        assert isinstance(flock_store, FailoverStore)
        assert isinstance(flock_store.inner, SharedMemoStore)
        assert flock_store.backend == "flock"
    finally:
        sqlite_store.close()
        flock_store.close()
    bare = open_store(str(tmp_path / "c.sqlite"), failover=False)
    try:
        assert isinstance(bare, SQLiteMemoStore)
    finally:
        bare.close()
    with pytest.raises(ValueError):
        open_store(backend="redis")


def test_durability_across_reopen(tmp_path):
    """The whole point: a fresh store over the same file sees old data."""
    path = str(tmp_path / "memo.sqlite")
    store = SQLiteMemoStore(path)
    store.put("persisted", "value")
    store.verdict_put("rule", {"verdict": "proved", "reason_code": "x"})
    store.close()
    fresh = SQLiteMemoStore(path)
    try:
        assert fresh.get("persisted") == "value"
        assert fresh.verdict_get("rule")["verdict"] == "proved"
    finally:
        fresh.close()


def test_temporary_store_unlinks_on_close():
    store = SQLiteMemoStore()
    path = store.path
    store.put("k", "v")
    store.close()
    assert not os.path.exists(path)
    assert not os.path.exists(path + "-wal")


def test_clear_bumps_epoch_and_empties_both_maps(tmp_path):
    path = str(tmp_path / "memo.sqlite")
    store = SQLiteMemoStore(path)
    try:
        store.put("memo-key", "v")
        store.verdict_put("verdict-key", {"verdict": "proved"})
        epoch = store.stats()["epoch"]
        store.clear()
        assert store.stats()["epoch"] == epoch + 1
        assert store.get("memo-key") is None
        assert store.verdict_get("verdict-key") is None
    finally:
        store.close()


def test_clear_in_sibling_view_invalidates_warm_objects(tmp_path):
    """Epoch invalidation across independent store views of one file."""
    path = str(tmp_path / "memo.sqlite")
    writer = SQLiteMemoStore(path)
    observer = SQLiteMemoStore(path)
    try:
        writer.put("shared", "payload")
        assert observer.get("shared") == "payload"  # now warm locally
        writer.clear()
        assert observer.get("shared") is None, (
            "observer served a stale warm value after a sibling clear"
        )
        assert observer.stats()["epoch"] == writer.stats()["epoch"]
    finally:
        writer.close()
        observer.close()


# -- verdict TTLs ------------------------------------------------------------


def test_verdict_ttl_expiry(tmp_path):
    store = SQLiteMemoStore(str(tmp_path / "memo.sqlite"))
    try:
        store.verdict_put("transient", {"verdict": "timeout"}, ttl=0.0)
        assert store.verdict_get("transient") is None
        assert store.expired == 1
        store.verdict_put("durable", {"verdict": "proved"}, ttl=None)
        assert store.verdict_get("durable") == {"verdict": "proved"}
    finally:
        store.close()


def test_verdict_put_replaces_expired_record(tmp_path):
    store = SQLiteMemoStore(str(tmp_path / "memo.sqlite"))
    try:
        store.verdict_put("rule", {"verdict": "not_proved"}, ttl=0.0)
        assert store.verdict_get("rule") is None
        store.verdict_put("rule", {"verdict": "proved"}, ttl=None)
        assert store.verdict_get("rule") == {"verdict": "proved"}
    finally:
        store.close()


def test_verdict_stats_tallies(tmp_path):
    store = SQLiteMemoStore(str(tmp_path / "memo.sqlite"))
    try:
        store.verdict_put("a", {"verdict": "proved", "reason_code": "x"})
        store.verdict_put("b", {"verdict": "not_proved", "reason_code": "y"})
        store.verdict_get("a")
        store.verdict_get("a")
        store.verdict_get("nope")
        stats = store.verdict_stats()
        assert stats["entries"] == 2
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["stores"] == 2
        assert stats["verdicts"] == {"proved": 1, "not_proved": 1}
        assert stats["reason_codes"] == {"x": 1, "y": 1}
        assert 0 < stats["hit_rate"] < 1
    finally:
        store.close()


# -- multiprocess hammering --------------------------------------------------


def _hammer(path, worker, rounds, barrier, failures):
    """One worker process: interleaved puts/gets/verdict writes."""
    store = SQLiteMemoStore(path)
    try:
        barrier.wait(timeout=30)
        for n in range(rounds):
            store.put(f"w{worker}-k{n}", {"worker": worker, "n": n})
            store.verdict_put(
                f"w{worker}-v{n}",
                {"verdict": "proved", "reason_code": "t", "n": n},
            )
            store.get(f"w{(worker + 1) % 4}-k{n}")
            store.verdict_get(f"w{(worker + 1) % 4}-v{n}")
        if store.errors:
            failures.put((worker, "store errors", store.errors))
        if store.dropped:
            failures.put((worker, "dropped writes", store.dropped))
    finally:
        store.close()


@needs_fork
def test_concurrent_writers_never_hit_database_is_locked(tmp_path):
    """N processes hammering put/get/verdict writes under busy_timeout:
    zero sqlite errors may escape (the ``errors`` counter is the store's
    record of swallowed ``database is locked`` and friends), and every
    record written by every worker must be durably visible afterwards."""
    path = str(tmp_path / "hammer.sqlite")
    context = multiprocessing.get_context("fork")
    workers, rounds = 4, 25
    barrier = context.Barrier(workers)
    failures = context.Queue()
    processes = [
        context.Process(
            target=_hammer, args=(path, w, rounds, barrier, failures)
        )
        for w in range(workers)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
        assert process.exitcode == 0
    problems = []
    while not failures.empty():
        problems.append(failures.get())
    assert not problems, f"workers reported store failures: {problems}"
    reader = SQLiteMemoStore(path)
    try:
        assert reader.errors == 0
        for w in range(workers):
            for n in range(rounds):
                assert reader.get(f"w{w}-k{n}") == {"worker": w, "n": n}
                assert reader.verdict_get(f"w{w}-v{n}")["n"] == n
    finally:
        reader.close()


def _epoch_observer(path, cleared, observed, result):
    store = SQLiteMemoStore(path)
    try:
        if store.get("seed") != "payload":  # warm the local view
            result.put(("observer", "missed seed before clear"))
            return
        observed.set()
        if not cleared.wait(timeout=30):
            result.put(("observer", "clear never signalled"))
            return
        # The stale warm view must be dropped on the next access.
        result.put(("observer", store.get("seed"), store.stats()["epoch"]))
    finally:
        store.close()


@needs_fork
def test_epoch_invalidation_reaches_other_processes(tmp_path):
    path = str(tmp_path / "epoch.sqlite")
    context = multiprocessing.get_context("fork")
    cleared = context.Event()
    observed = context.Event()
    result = context.Queue()
    store = SQLiteMemoStore(path)
    try:
        store.put("seed", "payload")
        process = context.Process(
            target=_epoch_observer, args=(path, cleared, observed, result)
        )
        process.start()
        assert observed.wait(timeout=30), "observer never warmed up"
        store.clear()
        cleared.set()
        process.join(timeout=30)
        assert process.exitcode == 0
        who, value, epoch = result.get(timeout=10)
        assert who == "observer"
        assert value is None, "observer served a pre-clear value"
        assert epoch == store.stats()["epoch"]
    finally:
        store.close()


# -- pool and server integration ---------------------------------------------


@needs_fork
def test_process_pool_members_share_one_database(tmp_path):
    path = str(tmp_path / "pool.sqlite")
    pool = SessionPool(
        2,
        mode="process",
        pipeline=PipelineConfig.legacy(),
        store_path=path,
        store_backend="sqlite",
    )
    try:
        assert isinstance(pool.store, FailoverStore)
        assert isinstance(pool.store.inner, SQLiteMemoStore)
        for n in range(6):
            record = pool.verify_json(
                {
                    "id": f"r{n}",
                    "left": "SELECT a FROM r",
                    "right": "SELECT a FROM r",
                    "program": "schema s(a:int); table r(s);",
                }
            )
            assert record["verdict"] == "proved"
        stats = pool.stats()
        assert stats["store"]["installed"]
        assert stats["store"]["backend"] == "sqlite"
        assert stats["store"]["verdict_cache"]["stores"] >= 1
    finally:
        pool.close()
    # No flock file, one database: the path (plus WAL sidecars) is all.
    assert os.path.exists(path)


def test_server_stats_surface_verdict_cache(tmp_path):
    path = str(tmp_path / "server.sqlite")
    with VerificationServer(
        pipeline=PipelineConfig.legacy(),
        store_path=path,
        store_backend="sqlite",
    ) as server:
        payload = json.dumps(
            {
                "id": "pair-1",
                "left": "SELECT a FROM r",
                "right": "SELECT a FROM r",
                "program": "schema s(a:int); table r(s);",
            }
        ).encode("utf-8")
        request = urllib.request.Request(
            server.url + "/verify",
            data=payload,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            assert response.status == 200
        with urllib.request.urlopen(
            server.url + "/stats", timeout=30
        ) as response:
            stats = json.loads(response.read())
    store_stats = stats["pool"]["store"]
    assert store_stats["installed"]
    assert store_stats["backend"] == "sqlite"
    assert store_stats["verdict_cache"]["stores"] >= 1
    assert "verdicts" in store_stats["verdict_cache"]


def test_session_counts_verdict_cache_hits_against_sqlite(tmp_path):
    """Direct Session + installed store: second verify is a cache hit."""
    store = SQLiteMemoStore(str(tmp_path / "session.sqlite"))
    previous = install_shared_store(store)
    try:
        session = Session.from_program_text(
            "schema s(a:int); table r(s);", PipelineConfig.legacy()
        )
        first = session.verify(
            "SELECT a FROM r",
            "SELECT a FROM r",
            request_id="first",
        )
        assert first.verdict.value == "proved"
        assert session.stats.verdict_cache_hits == 0
        second = session.verify(
            "SELECT a FROM r",
            "SELECT a FROM r",
            request_id="second",
        )
        assert second.verdict.value == "proved"
        assert second.request_id == "second"
        assert session.stats.verdict_cache_hits == 1
    finally:
        install_shared_store(previous)
        store.close()
