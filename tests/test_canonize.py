"""Canonizer tests (Algorithm 1): elimination, keys, foreign keys, Thm 4.3."""

import pytest

from repro.constraints.model import ConstraintSet
from repro.semirings import Interpretation, NaturalsSemiring
from repro.semirings.interp import tuple_key
from repro.sql.program import ForeignKeyConstraint, KeyConstraint
from repro.sql.schema import Schema
from repro.udp.canonize import build_closure, canonize_form, canonize_term
from repro.usr.predicates import AtomPred, EqPred, NePred
from repro.usr.spnf import form_to_uexpr, normalize
from repro.usr.terms import Pred, Rel, Sum, mul, squash
from repro.usr.values import Attr, ConstVal, TupleCons, TupleVar

S = Schema.of("s", "k", "a")
T, U, V = TupleVar("t"), TupleVar("u"), TupleVar("v")
EMPTY = ConstraintSet()
KEYED = ConstraintSet(keys=[KeyConstraint("r", ("k",))])


def canon(expr, constraints=EMPTY, env=None):
    return canonize_form(normalize(expr), constraints, env or {})


def test_eq15_whole_variable_elimination():
    # Σ_u [u = t] × r(u)  =  r(t)
    expr = Sum("u", S, mul(Pred(EqPred(U, T)), Rel("r", U)))
    form = canon(expr, env={"t": S})
    assert len(form) == 1
    term = form[0]
    assert term.vars == ()
    assert term.rels == (("r", T),)


def test_eq15_preserves_meaning_in_model():
    expr = Sum("u", S, mul(Pred(EqPred(U, T)), Rel("r", U)))
    form = canon(expr, env={"t": S})
    rows = [{"k": 0, "a": 1}, {"k": 0, "a": 1}]
    table = {}
    for row in rows:
        table[tuple_key(row)] = table.get(tuple_key(row), 0) + 1
    model = Interpretation(NaturalsSemiring(), [0, 1], {"r": table})
    env = {"t": {"k": 0, "a": 1}}
    assert model.evaluate(expr, env) == model.evaluate(
        form_to_uexpr(form), env
    )


def test_tuple_reconstruction_elimination():
    # Σ_u [u.k = t.k] × [u.a = t.a]  with u feeding no atom: u reconstructs.
    expr = Sum(
        "u", S,
        mul(
            Pred(EqPred(Attr(U, "k"), Attr(T, "k"))),
            Pred(EqPred(Attr(U, "a"), Attr(T, "a"))),
            Pred(AtomPred("<", (Attr(U, "a"), ConstVal(9)))),
        ),
    )
    form = canon(expr, env={"t": S})
    assert form[0].vars == ()
    # The surviving atom now constrains t directly.
    assert "t.a" in str(form[0].preds[0])


def test_reconstruction_skipped_when_variable_feeds_relation():
    expr = Sum(
        "u", S,
        mul(
            Pred(EqPred(Attr(U, "k"), Attr(T, "k"))),
            Pred(EqPred(Attr(U, "a"), Attr(T, "a"))),
            Rel("r", U),
        ),
    )
    form = canon(expr, env={"t": S})
    assert len(form[0].vars) == 1  # u must survive as a relation argument


def test_contradictory_inequality_zeroes_term():
    expr = mul(Pred(EqPred(T, U)), Pred(NePred(T, U)), Rel("r", T))
    assert canon(expr, env={"t": S, "u": S}) == ()


def test_distinct_constants_zero_term():
    expr = mul(
        Pred(EqPred(Attr(T, "a"), ConstVal(1))),
        Pred(EqPred(Attr(T, "a"), ConstVal(2))),
        Rel("r", T),
    )
    assert canon(expr, env={"t": S}) == ()


def test_atom_and_negated_atom_zero_term():
    atom = AtomPred("<", (Attr(T, "a"), ConstVal(5)))
    negated = AtomPred("¬<", (Attr(T, "a"), ConstVal(5)))
    expr = mul(Pred(atom), Pred(negated), Rel("r", T))
    assert canon(expr, env={"t": S}) == ()


def test_key_unification_merges_atoms():
    # Σ_u,v [u.k = v.k] r(u) r(v)  --key-->  Σ_u r(u) (v unified into u)
    expr = Sum(
        "u", S,
        Sum(
            "v", S,
            mul(
                Pred(EqPred(Attr(U, "k"), Attr(V, "k"))),
                Rel("r", U),
                Rel("r", V),
            ),
        ),
    )
    form = canonize_form(normalize(expr), KEYED, {})
    assert len(form) == 1
    assert len(form[0].rels) == 1
    assert len(form[0].vars) == 1


def test_key_unification_respects_missing_key_equality():
    # Without the key equality the two atoms must both survive.
    expr = Sum("u", S, Sum("v", S, mul(Rel("r", U), Rel("r", V))))
    form = canonize_form(normalize(expr), KEYED, {})
    assert len(form[0].rels) == 2


def test_duplicate_atom_same_argument_dedups_under_key():
    expr = mul(Rel("r", T), Rel("r", T))
    form = canonize_form(normalize(expr), KEYED, {"t": S})
    # R(t)² = R(t) under a key (Def. 4.1 with t = t').
    squashed_or_not = form[0]
    total_atoms = len(squashed_or_not.rels)
    if squashed_or_not.squash_part is not None:
        total_atoms += sum(len(st.rels) for st in squashed_or_not.squash_part)
    assert total_atoms == 1


def test_fk_elimination_removes_dangling_join():
    fk = ConstraintSet(
        keys=[KeyConstraint("dept", ("dk",))],
        foreign_keys=[ForeignKeyConstraint("emp", ("dno",), "dept", ("dk",))],
    )
    emp_schema = Schema.of("emp_s", "eid", "dno")
    dept_schema = Schema.of("dept_s", "dk", "dname")
    e, d = TupleVar("e"), TupleVar("d")
    expr = Sum(
        "e", emp_schema,
        Sum(
            "d", dept_schema,
            mul(
                Pred(EqPred(Attr(d, "dk"), Attr(e, "dno"))),
                Pred(EqPred(Attr(e, "eid"), Attr(T, "eid"))),
                Rel("emp", e),
                Rel("dept", d),
            ),
        ),
    )
    form = canonize_form(normalize(expr), fk, {"t": Schema.of("o", "eid")})
    names = [name for name, _ in form[0].rels]
    assert names == ["emp"]


def test_fk_elimination_blocked_when_ref_attrs_used():
    fk = ConstraintSet(
        keys=[KeyConstraint("dept", ("dk",))],
        foreign_keys=[ForeignKeyConstraint("emp", ("dno",), "dept", ("dk",))],
    )
    emp_schema = Schema.of("emp_s", "eid", "dno")
    dept_schema = Schema.of("dept_s", "dk", "dname")
    e, d = TupleVar("e"), TupleVar("d")
    expr = Sum(
        "e", emp_schema,
        Sum(
            "d", dept_schema,
            mul(
                Pred(EqPred(Attr(d, "dk"), Attr(e, "dno"))),
                # dname is used, so dept(d) must stay.
                Pred(AtomPred("<", (Attr(d, "dname"), ConstVal(9)))),
                Rel("emp", e),
                Rel("dept", d),
            ),
        ),
    )
    form = canonize_form(normalize(expr), fk, {})
    names = sorted(name for name, _ in form[0].rels)
    assert names == ["dept", "emp"]


def test_squash_invariance_absorbs_keyed_term():
    # [t.k-pinned] r(t) with key: the whole term becomes ‖...‖ (Thm 4.3).
    expr = mul(
        Pred(AtomPred("<", (Attr(T, "a"), ConstVal(9)))),
        Rel("r", T),
        squash(Rel("q", U)),
    )
    constraints = ConstraintSet(
        keys=[KeyConstraint("r", ("k",)), KeyConstraint("q", ("k",))]
    )
    form = canonize_form(normalize(expr), constraints, {"t": S, "u": S})
    term = form[0]
    assert term.rels == () and term.preds == ()
    assert term.squash_part is not None


def test_squash_invariance_blocked_without_keys():
    expr = mul(Rel("r", T), squash(Rel("q", U)))
    form = canonize_form(normalize(expr), EMPTY, {"t": S, "u": S})
    term = form[0]
    assert term.rels != ()  # r(t) must remain outside the squash


def test_squash_invariance_blocked_by_negation():
    from repro.usr.terms import not_

    expr = mul(Rel("r", T), not_(Rel("q", U)), squash(Rel("q", U)))
    form = canonize_form(normalize(expr), KEYED, {"t": S, "u": S})
    assert form[0].neg_part is not None
    assert form[0].rels != ()


def test_build_closure_includes_relation_arguments():
    term = normalize(mul(Pred(EqPred(T, U)), Rel("r", T)))[0]
    closure = build_closure(term)
    assert closure.equal(T, U)
