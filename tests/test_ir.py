"""SQL IR tests: schema trees, paths, translation, Fig. 12 semantics.

The headline check: for a range of queries, the IR denotational semantics
(evaluated in the N U-semiring) produces exactly the bag computed by the
independent engine, and the set computed under B.
"""

import pytest

from repro.engine import Database, evaluate_query
from repro.engine.database import bag_of
from repro.ir import IRInterpreter, translate_query
from repro.ir.denote import ir_schema
from repro.ir.paths import (
    ComposePath,
    LeftPath,
    PairPath,
    RightPath,
    StarPath,
    apply_path,
)
from repro.ir.schema_tree import (
    EmptyTree,
    LeafTree,
    NodeTree,
    flatten_tuple,
    row_to_tree_tuple,
    tree_of_schema,
)
from repro.semirings import BooleanSemiring, NaturalsSemiring
from repro.sql.desugar import desugar_query
from repro.sql.parser import parse_query
from repro.sql.schema import Schema
from repro.sql.scope import resolve_query

from tests.conftest import make_catalog


# -- schema trees -----------------------------------------------------------


def test_tree_of_schema_right_nested():
    tree = tree_of_schema(Schema.of("s", "a", "b", "c"))
    assert isinstance(tree, NodeTree)
    assert isinstance(tree.left, LeafTree) and tree.left.name == "a"
    assert isinstance(tree.right, NodeTree)


def test_tree_of_empty_schema():
    assert tree_of_schema(Schema("s", ())) == EmptyTree()


def test_tuple_enumeration_size():
    tree = tree_of_schema(Schema.of("s", "a", "b"))
    assert len(list(tree.tuples([0, 1, 2]))) == 9


def test_row_round_trip():
    schema = Schema.of("s", "a", "b", "c")
    tree = tree_of_schema(schema)
    row = {"a": 1, "b": 2, "c": 3}
    tree_tuple = row_to_tree_tuple(tree, row)
    assert flatten_tuple(tree, tree_tuple) == [1, 2, 3]


# -- paths ---------------------------------------------------------------------


def _no_expr(expr, g):
    raise AssertionError("no expression leaves expected")


def test_path_star_identity():
    assert apply_path(StarPath(), (1, 2), _no_expr) == (1, 2)


def test_path_left_right():
    value = ((1, 2), 3)
    assert apply_path(LeftPath(), value, _no_expr) == (1, 2)
    assert apply_path(RightPath(), value, _no_expr) == 3


def test_path_compose():
    value = ((1, 2), 3)
    path = ComposePath(LeftPath(), RightPath())
    assert apply_path(path, value, _no_expr) == 2


def test_path_pair():
    path = PairPath(RightPath(), LeftPath())
    assert apply_path(path, (1, 2), _no_expr) == (2, 1)


# -- translation + semantics -----------------------------------------------------


@pytest.fixture
def catalog():
    return make_catalog(("r", "a", "b"), ("s", "c", "d"))


@pytest.fixture
def db(catalog):
    database = Database(catalog)
    database.insert_all(
        "r", [{"a": 0, "b": 1}, {"a": 1, "b": 1}, {"a": 1, "b": 0}]
    )
    database.insert_all("s", [{"c": 1, "d": 0}, {"c": 0, "d": 0}])
    return database


def relations_for(db):
    out = {}
    for table in db.tables():
        tree = tree_of_schema(db.catalog.table_schema(table))
        multiplicities = {}
        for row in db.rows(table):
            key = row_to_tree_tuple(tree, row)
            multiplicities[key] = multiplicities.get(key, 0) + 1
        out[table] = multiplicities
    return out


def engine_bag_as_tree_tuples(db, text):
    resolved, schema = resolve_query(parse_query(text), db.catalog)
    rows = evaluate_query(desugar_query(resolved), db)
    tree = tree_of_schema(schema)
    out = {}
    for row in rows:
        key = row_to_tree_tuple(tree, row)
        out[key] = out.get(key, 0) + 1
    return out


QUERIES = [
    "SELECT * FROM r x",
    "SELECT x.a AS a FROM r x",
    "SELECT * FROM r x WHERE x.a = 1",
    "SELECT x.a AS a, y.d AS d FROM r x, s y WHERE x.a = y.c",
    "SELECT DISTINCT x.b AS b FROM r x",
    "SELECT * FROM r x UNION ALL SELECT * FROM r y",
    "SELECT * FROM r x EXCEPT SELECT * FROM r y WHERE y.a = 1",
    "SELECT * FROM r x WHERE EXISTS (SELECT * FROM s y WHERE y.c = x.a)",
    "SELECT * FROM r x WHERE NOT EXISTS (SELECT * FROM s y WHERE y.c = x.a)",
    "SELECT * FROM r x WHERE x.a = 1 OR x.b = 0",
    "SELECT t.a AS a FROM (SELECT x.a AS a FROM r x WHERE x.b = 1) t",
]


@pytest.mark.parametrize("text", QUERIES)
def test_ir_semantics_matches_engine_in_N(db, text):
    ir = translate_query(text, db.catalog)
    interp = IRInterpreter(NaturalsSemiring(), [0, 1], relations_for(db))
    assert interp.output_relation(ir) == engine_bag_as_tree_tuples(db, text)


@pytest.mark.parametrize("text", QUERIES[:6])
def test_ir_semantics_matches_engine_in_B(db, text):
    """Under B the IR denotation computes the *set* of answers."""
    ir = translate_query(text, db.catalog)
    relations = {
        name: {key: True for key in table}
        for name, table in relations_for(db).items()
    }
    interp = IRInterpreter(BooleanSemiring(), [0, 1], relations)
    expected = set(engine_bag_as_tree_tuples(db, text))
    assert set(interp.output_relation(ir)) == expected


def test_ir_schema_of_join(catalog):
    ir = translate_query("SELECT * FROM r x, s y", catalog)
    tree = ir_schema(ir)
    assert tree.leaf_count() == 4


def test_correlated_exists_uses_left_context(catalog):
    # Smoke test that correlated translation produces evaluable IR.
    db = Database(catalog)
    db.insert("r", {"a": 1, "b": 0})
    db.insert("s", {"c": 1, "d": 1})
    text = "SELECT * FROM r x WHERE EXISTS (SELECT * FROM s y WHERE y.c = x.a)"
    ir = translate_query(text, catalog)
    interp = IRInterpreter(NaturalsSemiring(), [0, 1], relations_for(db))
    assert interp.output_relation(ir) == engine_bag_as_tree_tuples(db, text)
