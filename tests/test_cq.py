"""Isomorphism, homomorphism, and minimization tests (TDP/SDP cores)."""

import pytest

from repro.cq.homomorphism import find_homomorphism
from repro.cq.isomorphism import MatchContext, terms_isomorphic
from repro.cq.minimize import minimize_term
from repro.sql.schema import Schema
from repro.usr.predicates import AtomPred, EqPred, NePred
from repro.usr.spnf import normalize
from repro.usr.terms import Pred, Rel, Sum, mul, not_, squash
from repro.usr.values import Attr, ConstVal, TupleVar

S = Schema.of("s", "k", "a")
S2 = Schema.of("s2", "c")
T, U, V, W = TupleVar("t"), TupleVar("u"), TupleVar("v"), TupleVar("w")

#: A context whose recursive comparators are structural equality — enough
#: for terms without squash/negation parts.
PLAIN = MatchContext(
    squash_equiv=lambda a, b: a == b,
    form_equiv=lambda a, b: a == b,
)


def term_of(expr):
    form = normalize(expr)
    assert len(form) == 1
    return form[0]


# -- isomorphism -----------------------------------------------------------


def test_identical_terms_isomorphic():
    term = term_of(Sum("u", S, mul(Rel("r", U), Pred(EqPred(Attr(U, "a"), ConstVal(1))))))
    assert terms_isomorphic(term, term, PLAIN)


def test_renamed_terms_isomorphic():
    left = term_of(Sum("u", S, Rel("r", U)))
    right = term_of(Sum("v", S, Rel("r", V)))
    assert terms_isomorphic(left, right, PLAIN)


def test_different_relations_not_isomorphic():
    left = term_of(Sum("u", S, Rel("r", U)))
    right = term_of(Sum("v", S, Rel("q", V)))
    assert not terms_isomorphic(left, right, PLAIN)


def test_atom_multiplicity_matters():
    left = term_of(Sum("u", S, mul(Rel("r", U), Rel("r", U))))
    right = term_of(Sum("v", S, Rel("r", V)))
    assert not terms_isomorphic(left, right, PLAIN)


def test_schema_mismatch_blocks_bijection():
    left = term_of(Sum("u", S, Rel("r", U)))
    right = term_of(Sum("v", S2, Rel("r", V)))
    assert not terms_isomorphic(left, right, PLAIN)


def test_predicate_entailment_mutual():
    # [u.k = 1] × [u.a = u.k] vs [u.a = 1] × [u.k = u.a]: closures agree.
    left = term_of(
        Sum("u", S, mul(
            Pred(EqPred(Attr(U, "k"), ConstVal(1))),
            Pred(EqPred(Attr(U, "a"), Attr(U, "k"))),
            Rel("r", U),
        ))
    )
    right = term_of(
        Sum("v", S, mul(
            Pred(EqPred(Attr(V, "a"), ConstVal(1))),
            Pred(EqPred(Attr(V, "k"), Attr(V, "a"))),
            Rel("r", V),
        ))
    )
    assert terms_isomorphic(left, right, PLAIN)


def test_extra_predicate_blocks_isomorphism():
    left = term_of(Sum("u", S, mul(Pred(AtomPred("<", (Attr(U, "a"), ConstVal(5)))), Rel("r", U))))
    right = term_of(Sum("v", S, Rel("r", V)))
    assert not terms_isomorphic(left, right, PLAIN)


def test_inequality_atoms_matched_modulo_congruence():
    left = term_of(Sum("u", S, mul(Pred(NePred(Attr(U, "a"), ConstVal(0))), Rel("r", U))))
    right = term_of(Sum("v", S, mul(Pred(NePred(ConstVal(0), Attr(V, "a"))), Rel("r", V))))
    assert terms_isomorphic(left, right, PLAIN)


def test_two_variable_permutation_search():
    left = term_of(
        Sum("u", S, Sum("v", S, mul(
            Rel("r", U), Rel("q", V),
            Pred(EqPred(Attr(U, "a"), Attr(V, "k"))),
        )))
    )
    right = term_of(
        Sum("x", S, Sum("y", S, mul(
            Rel("q", TupleVar("x")), Rel("r", TupleVar("y")),
            Pred(EqPred(Attr(TupleVar("y"), "a"), Attr(TupleVar("x"), "k"))),
        )))
    )
    assert terms_isomorphic(left, right, PLAIN)


def test_free_variables_must_align():
    left = term_of(mul(Rel("r", T)))
    right = term_of(mul(Rel("r", U)))
    # t vs u free: not isomorphic (free variables are rigid).
    assert not terms_isomorphic(left, right, PLAIN)


# -- homomorphism -----------------------------------------------------------


def test_homomorphism_folds_redundant_atom():
    # Q = Σ_u,v r(u) r(v) [u.a = v.a]  →  P = Σ_w r(w):  u,v ↦ w.
    source = term_of(
        Sum("u", S, Sum("v", S, mul(
            Rel("r", U), Rel("r", V),
            Pred(EqPred(Attr(U, "a"), Attr(V, "a"))),
        )))
    )
    target = term_of(Sum("w", S, Rel("r", W)))
    mapping = find_homomorphism(source, target, PLAIN)
    assert mapping == {"u": "w", "v": "w"}


def test_no_homomorphism_without_matching_atom():
    source = term_of(Sum("u", S, Rel("r", U)))
    target = term_of(Sum("v", S, Rel("q", V)))
    assert find_homomorphism(source, target, PLAIN) is None


def test_homomorphism_respects_predicates():
    source = term_of(
        Sum("u", S, mul(Pred(EqPred(Attr(U, "a"), ConstVal(1))), Rel("r", U)))
    )
    target_without = term_of(Sum("v", S, Rel("r", V)))
    assert find_homomorphism(source, target_without, PLAIN) is None
    target_with = term_of(
        Sum("v", S, mul(Pred(EqPred(Attr(V, "a"), ConstVal(1))), Rel("r", V)))
    )
    assert find_homomorphism(source, target_with, PLAIN) is not None


def test_homomorphism_direction_asymmetric():
    small = term_of(Sum("w", S, Rel("r", W)))
    big = term_of(
        Sum("u", S, mul(Pred(EqPred(Attr(U, "a"), ConstVal(1))), Rel("r", U)))
    )
    # hom(small → big) exists (fold w onto u) ...
    assert find_homomorphism(small, big, PLAIN) is not None
    # ... but hom(big → small) does not (the predicate is not entailed).
    assert find_homomorphism(big, small, PLAIN) is None


def test_homomorphism_free_vars_fixed():
    source = term_of(mul(Rel("r", T)))
    target = term_of(mul(Rel("r", T)))
    assert find_homomorphism(source, target, PLAIN) == {}


# -- minimization --------------------------------------------------------------


def test_minimize_collapses_redundant_self_join():
    term = term_of(
        Sum("u", S, Sum("v", S, mul(
            Rel("r", U), Rel("r", V),
            Pred(EqPred(Attr(U, "a"), Attr(V, "a"))),
        )))
    )
    core = minimize_term(term)
    assert len(core.rels) == 1
    assert len(core.vars) == 1


def test_minimize_keeps_distinct_atoms():
    term = term_of(
        Sum("u", S, Sum("v", S2, mul(Rel("r", U), Rel("q", V))))
    )
    core = minimize_term(term)
    assert len(core.rels) == 2


def test_minimize_fixed_point():
    term = term_of(Sum("u", S, Rel("r", U)))
    assert minimize_term(term) == term


def test_minimize_triangle_to_edge():
    # r(u,v), r(v,w) with u.a = v.k, v.a = w.k and no output constraints:
    # folding w onto u requires r(v, u) to exist — it doesn't, so the chain
    # of length 2 does NOT minimize to a single atom.
    term = term_of(
        Sum("u", S, Sum("v", S, Sum("w", S, mul(
            Rel("r", U), Rel("r", V), Rel("r", W),
            Pred(EqPred(Attr(U, "a"), Attr(V, "k"))),
        ))))
    )
    core = minimize_term(term)
    # w is unconstrained and r(w) folds onto r(u) or r(v).
    assert len(core.rels) == 2
