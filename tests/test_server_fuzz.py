"""Property/fuzz tests of ``/verify/batch`` framing and chunked bodies.

The batch route promises: one output record per non-blank input line, in
exact input order; malformed lines isolated as in-stream error records
carrying their line number; byte-level framing (Content-Length vs
chunked Transfer-Encoding, arbitrary chunk boundaries — including splits
inside a multi-byte UTF-8 sequence) never changes the answer; oversized
lines degrade to one structured bad-line record without desynchronizing
line numbering.  Hypothesis drives interleavings of valid, malformed,
and blank lines against a live pooled server and checks every claim
against a client-side model of the envelope rules plus a single-session
verdict baseline.
"""

from __future__ import annotations

import http.client
import json
import urllib.request

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.server.http as server_http
from repro.server import VerificationServer
from repro.session import PipelineConfig, Session

from tests.conftest import RS_PROGRAM

QUERIES = [f"SELECT * FROM r x WHERE x.a = {n}" for n in range(4)]


@pytest.fixture(scope="module")
def server():
    with VerificationServer(
        Session.from_program_text(RS_PROGRAM, PipelineConfig.legacy()),
        pool_size=2,
        pool_mode="thread",
    ) as srv:
        yield srv


@pytest.fixture(scope="module")
def baseline():
    session = Session.from_program_text(RS_PROGRAM, PipelineConfig.legacy())
    cache = {}

    def lookup(left, right):
        key = (left, right)
        if key not in cache:
            result = session.verify(left, right)
            cache[key] = (result.verdict.value, result.reason_code.value)
        return cache[key]

    return lookup


# -- line strategies ----------------------------------------------------------

_ids = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",), blacklist_characters="\n\r"
    ),
    max_size=12,
)

_valid_lines = st.builds(
    lambda rid, left, right: json.dumps(
        {"id": rid, "left": left, "right": right}
    ),
    _ids,
    st.sampled_from(QUERIES),
    st.sampled_from(QUERIES),
)

_missing_field_lines = st.builds(
    lambda rid, left: json.dumps({"id": rid, "left": left}),
    _ids,
    st.sampled_from(QUERIES),
)

_garbage_lines = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",), blacklist_characters="\n\r"
    ),
    max_size=30,
)

_lines = st.lists(
    st.one_of(_valid_lines, _missing_field_lines, _garbage_lines),
    max_size=10,
)


def expected_answers(lines, baseline):
    """The client-side model: what each input line must come back as."""
    expected = []
    for lineno, raw in enumerate(lines, start=1):
        text = raw.strip()
        if not text:
            continue  # blank lines are skipped, not answered
        try:
            obj = json.loads(text)
            if not isinstance(obj, dict):
                raise ValueError("not an object")
            if "left" not in obj or "right" not in obj:
                raise ValueError("missing field")
            left, right = str(obj["left"]), str(obj["right"])
            float(obj["timeout_seconds"]) if obj.get(
                "timeout_seconds"
            ) is not None else None
        except (TypeError, ValueError):
            expected.append(("error", lineno))
            continue
        verdict, reason = baseline(left, right)
        expected.append(("ok", str(obj.get("id", "")), verdict, reason))
    return expected


def check_records(records, expected):
    assert len(records) == len(expected), (records, expected)
    for record, want in zip(records, expected):
        if want[0] == "error":
            assert record["error"]["code"] == "bad-request", record
            assert record["error"]["line"] == want[1], (record, want)
        else:
            _, rid, verdict, reason = want
            assert record["id"] == rid
            assert record["verdict"] == verdict
            assert record["reason_code"] == reason


# -- transports ---------------------------------------------------------------


def post_with_length(server, payload: bytes, query=""):
    request = urllib.request.Request(
        server.url + "/verify/batch" + query,
        data=payload,
        headers={"Content-Type": "application/x-ndjson"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        assert response.status == 200
        return [
            json.loads(line)
            for line in response.read().decode("utf-8").splitlines()
        ]


def post_chunked(server, payload: bytes, chunk_sizes):
    """POST the payload as chunked Transfer-Encoding, cut at the given
    byte offsets (chunk boundaries deliberately ignore line and UTF-8
    boundaries)."""

    def pieces():
        position = 0
        for size in chunk_sizes:
            if position >= len(payload):
                return
            piece = payload[position : position + max(1, size)]
            position += len(piece)
            yield piece
        if position < len(payload):
            yield payload[position:]

    connection = http.client.HTTPConnection(
        server.host, server.port, timeout=120
    )
    try:
        connection.request(
            "POST",
            "/verify/batch",
            body=pieces(),
            headers={"Transfer-Encoding": "chunked"},
            encode_chunked=True,
        )
        response = connection.getresponse()
        assert response.status == 200
        return [
            json.loads(line)
            for line in response.read().decode("utf-8").splitlines()
        ]
    finally:
        connection.close()


# -- properties ---------------------------------------------------------------


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(lines=_lines, window=st.integers(min_value=1, max_value=8))
def test_interleaved_lines_answered_in_order(server, baseline, lines, window):
    payload = ("\n".join(lines) + "\n").encode("utf-8") if lines else b""
    records = post_with_length(server, payload, query=f"?window={window}")
    check_records(records, expected_answers(lines, baseline))


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    lines=_lines,
    chunk_sizes=st.lists(st.integers(min_value=1, max_value=40), max_size=30),
)
def test_chunked_framing_equals_content_length(
    server, baseline, lines, chunk_sizes
):
    """Chunk boundaries are transport noise: any split of the same bytes
    must produce the same records."""
    payload = ("\n".join(lines) + "\n").encode("utf-8") if lines else b""
    expected = expected_answers(lines, baseline)
    check_records(post_chunked(server, payload, chunk_sizes), expected)


def test_chunk_split_inside_multibyte_utf8(server):
    rid = "λ→😀-id"
    line = json.dumps(
        {"id": rid, "left": QUERIES[0], "right": QUERIES[0]},
        ensure_ascii=False,
    )
    payload = (line + "\n").encode("utf-8")
    # Cut at every byte offset across the emoji's 4-byte encoding.
    offset = payload.index("😀".encode("utf-8"))
    for cut in range(offset, offset + 5):
        records = post_chunked(server, payload, [cut])
        assert len(records) == 1
        assert records[0]["id"] == rid
        assert records[0]["verdict"] == "proved"


def test_oversized_line_becomes_one_error_record(server, monkeypatch):
    monkeypatch.setattr(server_http, "MAX_LINE_BYTES", 256)
    huge = json.dumps(
        {"id": "x" * 600, "left": QUERIES[0], "right": QUERIES[0]}
    )
    assert len(huge) > 256
    lines = [
        json.dumps({"id": "before", "left": QUERIES[0], "right": QUERIES[0]}),
        huge,
        json.dumps({"id": "after", "left": QUERIES[1], "right": QUERIES[1]}),
    ]
    payload = ("\n".join(lines) + "\n").encode("utf-8")
    for records in (
        post_with_length(server, payload),
        post_chunked(server, payload, [100] * 20),
    ):
        assert len(records) == 3
        assert records[0]["id"] == "before"
        assert records[1]["error"]["code"] == "bad-request"
        assert records[1]["error"]["line"] == 2  # numbering stays aligned
        assert records[2]["id"] == "after"
        assert records[2]["verdict"] == "proved"


def test_malformed_chunk_framing_mid_stream_is_isolated(server):
    """A body whose chunk framing breaks mid-stream yields the records
    already decided plus one final structured error record — never a
    traceback, never a hung connection."""
    good = json.dumps({"id": "ok", "left": QUERIES[0], "right": QUERIES[0]})
    connection = http.client.HTTPConnection(
        server.host, server.port, timeout=60
    )
    try:
        connection.putrequest("POST", "/verify/batch")
        connection.putheader("Transfer-Encoding", "chunked")
        connection.endheaders()
        chunk = (good + "\n").encode("utf-8")
        connection.send(b"%x\r\n%s\r\n" % (len(chunk), chunk))
        connection.send(b"ZZZ-not-hex\r\n")  # broken chunk-size line
        response = connection.getresponse()
        assert response.status == 200
        records = [
            json.loads(line)
            for line in response.read().decode("utf-8").splitlines()
        ]
    finally:
        connection.close()
    assert records[0]["id"] == "ok"
    assert records[-1]["error"]["code"] == "bad-request"
    assert "chunk" in records[-1]["error"]["reason"]


def test_lockstep_client_streams_per_record(server):
    """A flow-controlled client that waits for line N's record before
    sending line N+1 must not deadlock: each completed line reaches the
    pool (and its record is flushed) without waiting for more bytes of
    the declared Content-Length."""
    import socket

    line1 = (
        json.dumps({"id": "first", "left": QUERIES[0], "right": QUERIES[0]})
        + "\n"
    ).encode("utf-8")
    line2 = (
        json.dumps({"id": "second", "left": QUERIES[1], "right": QUERIES[1]})
        + "\n"
    ).encode("utf-8")
    sock = socket.create_connection((server.host, server.port), timeout=30)
    try:
        sock.sendall(
            (
                "POST /verify/batch?window=1 HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {len(line1) + len(line2)}\r\n\r\n"
            ).encode("ascii")
            + line1
        )
        sock.settimeout(30)
        buffer = b""
        while b'"first"' not in buffer:  # must arrive before line 2 is sent
            buffer += sock.recv(4096)
        sock.sendall(line2)
        while b'"second"' not in buffer:
            buffer += sock.recv(4096)
    finally:
        sock.close()


def test_chunked_single_verify_round_trip(server):
    """Chunked framing also works on ``POST /verify``."""
    payload = json.dumps(
        {"id": "one", "left": QUERIES[0], "right": QUERIES[0]}
    ).encode("utf-8")
    connection = http.client.HTTPConnection(
        server.host, server.port, timeout=60
    )
    try:
        connection.request(
            "POST",
            "/verify",
            body=iter([payload[:7], payload[7:]]),
            headers={"Transfer-Encoding": "chunked"},
            encode_chunked=True,
        )
        response = connection.getresponse()
        assert response.status == 200
        record = json.loads(response.read())
    finally:
        connection.close()
    assert record["id"] == "one" and record["verdict"] == "proved"
