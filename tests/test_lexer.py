"""Tokenizer tests."""

import pytest

from repro.errors import LexError
from repro.sql.lexer import Token, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)]


def test_keywords_case_insensitive():
    assert values("SELECT select SeLeCt") == ["select", "select", "select"]
    assert all(t.kind == "KEYWORD" for t in tokenize("SELECT select"))


def test_identifiers_preserve_case():
    tokens = tokenize("Emp DEPT x_1")
    assert [t.value for t in tokens] == ["Emp", "DEPT", "x_1"]
    assert all(t.kind == "IDENT" for t in tokens)


def test_integer_literals():
    tokens = tokenize("0 42 1000")
    assert [t.value for t in tokens] == ["0", "42", "1000"]
    assert all(t.kind == "INT" for t in tokens)


def test_string_literals():
    tokens = tokenize("'hello' 'a b c'")
    assert [t.value for t in tokens] == ["hello", "a b c"]
    assert all(t.kind == "STRING" for t in tokens)


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize("'oops")


def test_unterminated_string_at_newline_raises():
    with pytest.raises(LexError):
        tokenize("'oops\nnext'x")


def test_line_comments_are_skipped():
    tokens = tokenize("SELECT -- the projection\n *")
    assert [t.kind for t in tokens] == ["KEYWORD", "STAR"]


def test_comparison_operators():
    assert values("= <> <= >= < > == !=") == [
        "=", "<>", "<=", ">=", "<", ">", "==", "<>",
    ]


def test_generic_schema_marker():
    tokens = tokenize("(a:int, ??)")
    assert "QQ" in [t.kind for t in tokens]


def test_punctuation_kinds():
    assert kinds("( ) , ; . * : + - /") == [
        "LPAREN", "RPAREN", "COMMA", "SEMI", "DOT", "STAR", "COLON",
        "PLUS", "MINUS", "SLASH",
    ]


def test_line_and_column_tracking():
    tokens = tokenize("SELECT\n  x")
    assert tokens[0].line == 1 and tokens[0].column == 1
    assert tokens[1].line == 2 and tokens[1].column == 3


def test_invalid_character_raises_with_position():
    with pytest.raises(LexError) as err:
        tokenize("SELECT @")
    assert err.value.line == 1
    assert err.value.column == 8


def test_token_is_keyword_helper():
    token = tokenize("FROM")[0]
    assert token.is_keyword("from")
    assert not token.is_keyword("select")


def test_qualified_column_tokens():
    assert kinds("x.a") == ["IDENT", "DOT", "IDENT"]


def test_empty_input():
    assert tokenize("") == []


def test_whitespace_only_input():
    assert tokenize("  \t \n ") == []
