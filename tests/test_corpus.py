"""Corpus tests: every rule meets its Fig. 5 expectation, and proved rules
agree with the bag-semantics engine on generated instances (soundness spot
check: prover and executable semantics concur)."""

import pytest

from repro import Solver
from repro.checker import ModelChecker
from repro.corpus import Expectation, all_rules, rules_by_dataset
from repro.corpus.rules import get_rule

RULES = all_rules()


@pytest.mark.parametrize("rule", RULES, ids=[r.rule_id for r in RULES])
def test_rule_meets_expectation(rule):
    solver = Solver.from_program_text(rule.program)
    outcome = solver.check(rule.left, rule.right)
    assert outcome.verdict.value == rule.expectation.value, (
        f"{rule.rule_id} ({rule.name}): got {outcome.verdict.value}, "
        f"expected {rule.expectation.value} — {outcome.reason}"
    )


PROVED_SAMPLE = [r for r in RULES if r.expectation is Expectation.PROVED][::3]


@pytest.mark.parametrize(
    "rule", PROVED_SAMPLE, ids=[r.rule_id for r in PROVED_SAMPLE]
)
def test_proved_rules_agree_on_instances(rule):
    """Soundness cross-check: a proved pair never disagrees on a database."""
    solver = Solver.from_program_text(rule.program)
    checker = ModelChecker(solver.catalog, seed=11)
    witness = checker.find_counterexample(
        rule.left, rule.right, random_attempts=6, max_rows=2, exhaustive_rows=1
    )
    assert witness is None, (
        f"{rule.rule_id} proved but engine disagrees:\n{witness.describe()}"
    )


def test_dataset_sizes_match_paper_shape():
    assert len(rules_by_dataset("literature")) == 29
    assert len(rules_by_dataset("calcite")) == 39
    assert len(rules_by_dataset("bugs")) == 3
    assert len(rules_by_dataset("extensions")) == 20


def test_calcite_unproved_count_matches_paper():
    unproved = [
        r
        for r in rules_by_dataset("calcite")
        if r.expectation is Expectation.NOT_PROVED
    ]
    assert len(unproved) == 6  # Fig. 5: 39 supported, 33 proved


def test_literature_all_proved():
    assert all(
        r.expectation is Expectation.PROVED
        for r in rules_by_dataset("literature")
    )


def test_count_bug_is_refuted_not_proved():
    rule = get_rule("bug-01")
    solver = Solver.from_program_text(rule.program)
    assert not solver.check(rule.left, rule.right).proved
    witness = ModelChecker(solver.catalog).find_counterexample(
        rule.left, rule.right
    )
    assert witness is not None


def test_rule_ids_unique_and_sorted_access():
    ids = [r.rule_id for r in RULES]
    assert len(ids) == len(set(ids))


def test_every_rule_has_category_and_source():
    for rule in RULES:
        assert rule.categories, rule.rule_id
        assert rule.source, rule.rule_id
