PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-server test-frontdoor test-store test-cluster test-chaos test-differential server-stress bench bench-smoke bench-gate bench-kernel bench-store bench-frontdoor bench-cluster batch-corpus serve

test:
	$(PYTHON) -m pytest -x -q

## Server end-to-end suite: boots the HTTP service on an ephemeral port.
test-server:
	$(PYTHON) -m pytest -x -q tests/test_server.py

## Async front-door suite: selectors event loop, 500-connection hold,
## slow-loris sweep, FIFO parking, shard affinity, autoscaler grow/reap.
test-frontdoor:
	$(PYTHON) -m pytest -x -q tests/test_frontdoor.py

## Durable-store suites: SQLite backend mechanics, verdict-cache
## replay semantics (both backends), flock-store hardening.
test-store:
	$(PYTHON) -m pytest -x -q tests/test_store_sqlite.py tests/test_verdict_cache.py tests/test_memo_store.py

## Clustering suites: the offline shim contract plus the streaming
## /cluster service end to end — engine direct, both HTTP front ends,
## durable restart-resume across a real process boundary.
test-cluster:
	$(PYTHON) -m pytest -x -q tests/test_cluster.py tests/test_cluster_service.py

## Chaos suite under two fixed fault-plan seeds: circuit-breaker
## trip/probe/replay, thread watchdog, crash-during-ingest durability,
## client retries, and the end-to-end gate (injected store failure +
## member crash + member hang + SIGTERM mid-batch on both front ends —
## only structured records, exit 0, verdict-identical recovery replay).
test-chaos:
	UDP_CHAOS_SEED=0 $(PYTHON) -m pytest -x -q tests/test_chaos.py
	UDP_CHAOS_SEED=1 $(PYTHON) -m pytest -x -q tests/test_chaos.py

## Differential corpus check: Solver / Session / BatchVerifier / HTTP /
## pooled HTTP must be verdict- and reason-code-identical on all 91 rules.
test-differential:
	$(PYTHON) -m pytest -x -q tests/test_differential.py

## Pool concurrency stress + JSONL/chunked framing fuzz suites, with the
## stress scenarios pinned to a 4-member pool.
server-stress:
	UDP_POOL_TEST_SIZE=4 $(PYTHON) -m pytest -x -q tests/test_pool.py tests/test_server_fuzz.py

## Run the long-lived verification service locally (one member per core).
serve:
	$(PYTHON) -m repro.frontend.cli serve --port 8642

## Full benchmark sweep (pytest-benchmark figures + corpus-pass timing).
bench:
	$(PYTHON) -m pytest -q benchmarks/bench_fig5_summary.py \
		benchmarks/bench_fig6_characterization.py \
		benchmarks/bench_fig7_runtime.py \
		benchmarks/bench_ablations.py \
		benchmarks/bench_bugs_refutation.py \
		benchmarks/bench_scaling.py \
		benchmarks/bench_spnf_growth.py
	$(PYTHON) benchmarks/bench_fig7_runtime.py --workers 4

## CI smoke: the quick corpus-pass mode only.
bench-smoke:
	$(PYTHON) benchmarks/bench_fig7_runtime.py --quick

## CI perf-regression gate: fail when the memoized corpus pass regresses
## more than 2x against the committed baseline, then record pooled-vs-
## single-member server throughput (>= 1.5x enforced on >= 2 cores).
bench-gate: bench-kernel
	$(PYTHON) benchmarks/bench_fig7_runtime.py --gate benchmarks/fig7_baseline.json --workers 4
	$(PYTHON) benchmarks/bench_pool_server.py --gate

## Decision-kernel gate (also a bench-gate prerequisite): the canonical-
## digest kernel must beat the legacy kernel >= 5x on the adversarial
## self-join suite and stay within 1.05x of it on the cold (memo-cleared)
## 91-rule corpus pass.
bench-kernel:
	$(PYTHON) benchmarks/bench_kernel.py --gate benchmarks/fig7_baseline.json

## Warm-restart gate for the durable verdict cache: a fresh process
## over a populated store must replay the full 91-rule corpus >= 5x
## faster than the cold pass, verdict-identical, with zero tactic
## invocations (both backends; report in benchmarks/out/).
bench-store:
	$(PYTHON) benchmarks/bench_store.py --gate

## Front-door gate: digest-sharded dispatch must beat random dispatch
## on compile hit rate over a skewed corpus replay, hold 500 concurrent
## connections, and sweep a slow-loris swarm (report in benchmarks/out/).
bench-frontdoor:
	$(PYTHON) benchmarks/bench_frontdoor.py --gate

## Clustering gate: digest-bucketed placement must beat decision-only
## placement >= 5x on an alpha-variant-heavy corpus, partition-identical
## (report in benchmarks/out/cluster_gate.txt).
bench-cluster:
	$(PYTHON) benchmarks/bench_cluster.py --gate

## One batch-service pass over the built-in corpus, results to stdout.
batch-corpus:
	$(PYTHON) -m repro.frontend.cli batch --corpus --workers 4
