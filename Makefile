PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-gate batch-corpus

test:
	$(PYTHON) -m pytest -x -q

## Full benchmark sweep (pytest-benchmark figures + corpus-pass timing).
bench:
	$(PYTHON) -m pytest -q benchmarks/bench_fig5_summary.py \
		benchmarks/bench_fig6_characterization.py \
		benchmarks/bench_fig7_runtime.py \
		benchmarks/bench_ablations.py \
		benchmarks/bench_bugs_refutation.py \
		benchmarks/bench_scaling.py \
		benchmarks/bench_spnf_growth.py
	$(PYTHON) benchmarks/bench_fig7_runtime.py --workers 4

## CI smoke: the quick corpus-pass mode only.
bench-smoke:
	$(PYTHON) benchmarks/bench_fig7_runtime.py --quick

## CI perf-regression gate: fail when the memoized corpus pass regresses
## more than 2x against the committed baseline.
bench-gate:
	$(PYTHON) benchmarks/bench_fig7_runtime.py --gate benchmarks/fig7_baseline.json --workers 4

## One batch-service pass over the built-in corpus, results to stdout.
batch-corpus:
	$(PYTHON) -m repro.frontend.cli batch --corpus --workers 4
