PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-server test-differential server-stress bench bench-smoke bench-gate batch-corpus serve

test:
	$(PYTHON) -m pytest -x -q

## Server end-to-end suite: boots the HTTP service on an ephemeral port.
test-server:
	$(PYTHON) -m pytest -x -q tests/test_server.py

## Differential corpus check: Solver / Session / BatchVerifier / HTTP /
## pooled HTTP must be verdict- and reason-code-identical on all 91 rules.
test-differential:
	$(PYTHON) -m pytest -x -q tests/test_differential.py

## Pool concurrency stress + JSONL/chunked framing fuzz suites, with the
## stress scenarios pinned to a 4-member pool.
server-stress:
	UDP_POOL_TEST_SIZE=4 $(PYTHON) -m pytest -x -q tests/test_pool.py tests/test_server_fuzz.py

## Run the long-lived verification service locally (one member per core).
serve:
	$(PYTHON) -m repro.frontend.cli serve --port 8642

## Full benchmark sweep (pytest-benchmark figures + corpus-pass timing).
bench:
	$(PYTHON) -m pytest -q benchmarks/bench_fig5_summary.py \
		benchmarks/bench_fig6_characterization.py \
		benchmarks/bench_fig7_runtime.py \
		benchmarks/bench_ablations.py \
		benchmarks/bench_bugs_refutation.py \
		benchmarks/bench_scaling.py \
		benchmarks/bench_spnf_growth.py
	$(PYTHON) benchmarks/bench_fig7_runtime.py --workers 4

## CI smoke: the quick corpus-pass mode only.
bench-smoke:
	$(PYTHON) benchmarks/bench_fig7_runtime.py --quick

## CI perf-regression gate: fail when the memoized corpus pass regresses
## more than 2x against the committed baseline, then record pooled-vs-
## single-member server throughput (>= 1.5x enforced on >= 2 cores).
bench-gate:
	$(PYTHON) benchmarks/bench_fig7_runtime.py --gate benchmarks/fig7_baseline.json --workers 4
	$(PYTHON) benchmarks/bench_pool_server.py --gate

## One batch-service pass over the built-in corpus, results to stdout.
batch-corpus:
	$(PYTHON) -m repro.frontend.cli batch --corpus --workers 4
