"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file exists so
that ``pip install -e .`` works on environments whose setuptools lacks the
PEP 660 editable-wheel path (e.g. offline boxes without the ``wheel``
package, where pip falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
