"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper's
evaluation (Sec. 6).  Results are printed and also appended to
``benchmarks/out/`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

import pytest

from repro import DecisionOptions, Solver
from repro.corpus import (
    Category,
    Expectation,
    RewriteRule,
    all_rules,
    as_batch_pairs,
)
from repro.service import BatchVerifier
from repro.udp.trace import Verdict

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def write_report(name: str, text: str) -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print()
    print(text)


def run_rule(rule: RewriteRule, options: DecisionOptions = None):
    """Check one corpus rule; returns (verdict, elapsed_seconds)."""
    solver = Solver.from_program_text(rule.program, options)
    started = time.monotonic()
    outcome = solver.check(rule.left, rule.right)
    return outcome.verdict, time.monotonic() - started


def run_corpus(options: DecisionOptions = None):
    """Run every corpus rule once; returns {rule_id: (rule, verdict, secs)}."""
    results = {}
    for rule in all_rules():
        verdict, elapsed = run_rule(rule, options)
        results[rule.rule_id] = (rule, verdict, elapsed)
    return results


def run_corpus_batch(workers: int = 1, options: DecisionOptions = None):
    """One corpus pass through the batch service (the service-mode path).

    Returns the same ``{rule_id: (rule, verdict, secs)}`` shape as
    :func:`run_corpus` so the figure harnesses can consume either.
    """
    rules = {rule.rule_id: rule for rule in all_rules()}
    verifier = BatchVerifier(workers=workers, options=options)
    records = verifier.run(as_batch_pairs())
    errored = [r for r in records if r.verdict == "error"]
    assert not errored, "corpus rules errored: " + ", ".join(
        f"{r.pair_id} ({r.reason})" for r in errored
    )
    return {
        record.pair_id: (
            rules[record.pair_id],
            Verdict(record.verdict),
            record.elapsed_seconds,
        )
        for record in records
    }


def format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


@pytest.fixture(scope="session")
def corpus_results():
    """Corpus run shared across benchmark files within a session.

    Routed through the batch service (in-process), the same path the
    ``udp-prove batch --corpus`` frontend takes.
    """
    return run_corpus_batch(workers=1)
