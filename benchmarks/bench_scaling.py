"""Scaling sweep: UDP runtime vs query size (a workload-generator benchmark).

The paper reports that the one unproved Calcite rule involved "two very long
queries" that blew the 30-minute budget — term matching explores variable
bijections, so runtime grows with join width.  This sweep generates chain
joins of increasing width in two equivalent forms (reversed FROM order plus
rotated predicates), times the decision, and checks the growth pattern.

Workload generator: ``chain_pair(n)`` builds

    Q1: SELECT x1.a FROM r x1, ..., r xn WHERE x1.b = x2.a AND ... (chain)
    Q2: the same chain with the FROM list reversed.
"""

from __future__ import annotations

import time

import pytest

from repro import DecisionOptions, Solver
from repro.udp.trace import Verdict

from conftest import format_table, write_report

PROGRAM = """
schema rs(a:int, b:int);
table r(rs);
"""


def chain_pair(width: int):
    """Two equivalent chain-join spellings of the given width."""
    aliases = [f"x{i}" for i in range(width)]
    joins = [
        f"{aliases[i]}.b = {aliases[i + 1]}.a" for i in range(width - 1)
    ]
    where = " AND ".join(joins) if joins else "TRUE"
    froms_fwd = ", ".join(f"r {a}" for a in aliases)
    froms_rev = ", ".join(f"r {a}" for a in reversed(aliases))
    left = f"SELECT x0.a AS a FROM {froms_fwd} WHERE {where}"
    right = f"SELECT x0.a AS a FROM {froms_rev} WHERE {where}"
    return left, right


def decide_width(width: int) -> float:
    solver = Solver.from_program_text(
        PROGRAM, DecisionOptions(timeout_seconds=60.0)
    )
    left, right = chain_pair(width)
    started = time.monotonic()
    outcome = solver.check(left, right)
    elapsed = time.monotonic() - started
    assert outcome.verdict is Verdict.PROVED, f"width {width} failed"
    return elapsed


WIDTHS = (1, 2, 3, 4, 5, 6)


def test_scaling_sweep():
    rows = []
    timings = {}
    for width in WIDTHS:
        elapsed = decide_width(width)
        timings[width] = elapsed
        rows.append([width, f"{elapsed * 1000:.2f}"])
    table = format_table(["join width", "UDP time (ms)"], rows)
    write_report(
        "scaling_sweep.txt",
        "Scaling — chain-join width vs decision time\n" + table,
    )
    # Growth sanity: wider joins are not cheaper than the trivial case.
    assert timings[WIDTHS[-1]] >= timings[WIDTHS[0]] * 0.5


@pytest.mark.parametrize("width", WIDTHS)
def test_scaling_cell(benchmark, width):
    benchmark(lambda: decide_width(width))
