"""Sec. 6.3 statistic: U-expression size growth under SPNF conversion.

The paper: despite worst-case exponential distributivity, sizes grow by only
+4.1% (literature) and +0.7% (Calcite) on average.  We measure node counts of
each corpus query's U-expression before and after normalization and report
the same per-dataset averages.
"""

from __future__ import annotations

import statistics

from repro import Solver
from repro.corpus import rules_by_dataset
from repro.usr.size import expr_size, form_size
from repro.usr.spnf import normalize

from conftest import format_table, write_report

PAPER_GROWTH = {"literature": 4.1, "calcite": 0.7}


def measure_dataset(dataset):
    growths = []
    for rule in rules_by_dataset(dataset):
        solver = Solver.from_program_text(rule.program)
        for text in (rule.left, rule.right):
            try:
                denotation = solver.compile(text)
            except Exception:
                continue  # unsupported-fragment rules are skipped, as in Sec. 6
            before = expr_size(denotation.body)
            after = form_size(normalize(denotation.body))
            growths.append((after - before) / before * 100.0)
    return growths


def test_spnf_growth(benchmark):
    rows = []
    for dataset in ("literature", "calcite"):
        growths = measure_dataset(dataset)
        mean = statistics.mean(growths)
        worst = max(growths)
        rows.append([
            dataset.capitalize(),
            len(growths),
            f"{mean:+.1f}%",
            f"{worst:+.1f}%",
            f"+{PAPER_GROWTH[dataset]:.1f}%",
        ])
        # Shape: growth stays small on real rules (no exponential blowup) —
        # the paper's point, reproduced.
        assert mean < 50.0, f"unexpected SPNF blowup on {dataset}: {mean:.1f}%"
    table = format_table(
        ["Dataset", "Queries", "Mean growth", "Max growth", "Paper mean"],
        rows,
    )
    write_report("spnf_growth.txt", "Sec. 6.3 — SPNF size growth\n" + table)
    benchmark(lambda: measure_dataset("literature"))
