"""Decision-kernel benchmark: the canonical-labeling digest vs the
pre-digest legacy kernel, on an adversarial suite plus the cold corpus.

The adversarial suite targets the regimes where the legacy kernel's
search is factorial — exactly the self-join-heavy shape the paper's
Sec. 6 experiments stress with 30 s budgets:

* **permuted-binder twins** — the same k-way self-join chain with the
  summation binders renamed and reordered; every variable has the same
  coarse signature, so the legacy kernel wades through bijections while
  the digest kernel compares two canonical fingerprints;
* **near-miss non-equivalences** — one chain edge reversed, signatures
  untouched: the legacy kernel must *exhaust* the bijection space
  (rebuilding two congruence closures per leaf) to say no, the new
  search forward-checks branches to death near the root;
* **shuffled unions** — n pairwise-distinct arms, permuted: the O(n!)
  sum matching of Algorithm 2 collapses to a digest multiset compare.

Both kernels must return identical verdicts on every case; the gate
additionally requires the digest kernel to win by ``--min-speedup``
(default 5x, per the PR acceptance bar).

The second gate protects the common case: a cold (memo-cleared,
memoization disabled) pass over the full 91-rule corpus must stay
within ``--max-cold-ratio`` (default 1.05x) of the *legacy kernel
measured in the same run* — same machine, same load, no hardware
dependence — and both numbers are quoted against the committed
``cold_ms`` reference in ``benchmarks/fig7_baseline.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py
    PYTHONPATH=src python benchmarks/bench_kernel.py --gate benchmarks/fig7_baseline.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro import DecisionOptions, Solver, clear_caches, set_memoization
from repro.constraints.model import ConstraintSet
from repro.corpus import all_rules
from repro.cq.isomorphism import set_kernel_mode
from repro.sql.schema import Schema
from repro.udp.decide import udp
from repro.usr.predicates import EqPred
from repro.usr.spnf import normalize
from repro.usr.terms import Pred, Rel, big_sum, mul
from repro.usr.values import Attr, TupleVar

from conftest import write_report

SCHEMA = Schema.of("r", "a:int", "b:int")

#: Search budget per adversarial case — far above anything the suite
#: needs, but a blown budget fails loudly instead of hanging CI.
CASE_TIMEOUT = 300.0


def _chain(k, names, order=None, flip=None, pin=None):
    """Σ over k self-join atoms of ``r`` linked a→b in a chain.

    ``order`` permutes the binder (summation) order; ``flip`` reverses
    one edge's attribute pairing, which breaks equivalence without
    changing any per-variable signature; ``pin`` equates the head's
    ``a`` attribute with a constant (inside the summation scope).
    """
    from repro.usr.values import ConstVal

    factors = [Rel("r", TupleVar(name)) for name in names]
    if pin is not None:
        factors.append(
            Pred(EqPred(Attr(TupleVar(names[0]), "a"), ConstVal(pin)))
        )
    for i in range(k - 1):
        if flip == i:
            factors.append(
                Pred(EqPred(Attr(TupleVar(names[i]), "b"),
                            Attr(TupleVar(names[i + 1]), "a")))
            )
        else:
            factors.append(
                Pred(EqPred(Attr(TupleVar(names[i]), "a"),
                            Attr(TupleVar(names[i + 1]), "b")))
            )
    bindings = [(name, SCHEMA) for name in names]
    if order is not None:
        bindings = [bindings[i] for i in order]
    return big_sum(bindings, mul(*factors))


def _tagged_union(arm_count, k, prefix, seed):
    """A union of ``arm_count`` pairwise non-isomorphic chain arms.

    Each arm is pinned to a distinct constant so no two arms match —
    the sum matcher cannot cheat by pairing any arm with any other.
    """
    from repro.usr.terms import add

    rng = random.Random(seed)
    out = []
    for j in range(arm_count):
        names = [f"{prefix}{j}_{i}" for i in range(k)]
        order = list(range(k))
        rng.shuffle(order)
        out.append(_chain(k, names, order=order, pin=j))
    return add(*out)


def build_suite():
    """(label, left normal form, right normal form, expected verdict)."""
    rng = random.Random(42)
    suite = []
    for k in (6, 7):
        order = list(range(k))
        rng.shuffle(order)
        left = normalize(_chain(k, [f"t{i}" for i in range(k)]))
        right = normalize(
            _chain(k, [f"u{i}" for i in range(k)], order=order)
        )
        suite.append((f"twin k={k}", left, right, True))
    for k in (6, 7):
        order = list(range(k))
        rng.shuffle(order)
        left = normalize(_chain(k, [f"t{i}" for i in range(k)]))
        right = normalize(
            _chain(k, [f"u{i}" for i in range(k)], order=order, flip=k // 2)
        )
        suite.append((f"near-miss k={k}", left, right, False))
    left = normalize(_tagged_union(6, 4, "l", seed=7))
    right = normalize(_tagged_union(6, 4, "r", seed=8))
    suite.append(("union 6x4 twins", left, right, True))
    return suite


def run_suite(suite, mode):
    """Total seconds for the suite under ``mode``; verdicts asserted."""
    previous = set_kernel_mode(mode)
    memo_previous = set_memoization(False)
    clear_caches()
    try:
        rows = []
        total = 0.0
        for label, left, right, expected in suite:
            started = time.monotonic()
            verdict = udp(
                left, right, ConstraintSet(), {},
                DecisionOptions(timeout_seconds=CASE_TIMEOUT),
            )
            elapsed = time.monotonic() - started
            assert verdict == expected, (
                f"kernel mode {mode!r} got {verdict} for {label} "
                f"(expected {expected}) — the benchmark is void"
            )
            rows.append((label, elapsed))
            total += elapsed
        return total, rows
    finally:
        set_memoization(memo_previous)
        set_kernel_mode(previous)
        clear_caches()


def cold_corpus_pass(mode, repeats=3):
    """Best-of-N cold 91-rule corpus pass (memoization off) in seconds."""
    rules = list(all_rules())
    previous = set_kernel_mode(mode)
    best = None
    try:
        for _ in range(repeats):
            memo_previous = set_memoization(False)
            clear_caches()
            try:
                started = time.monotonic()
                for rule in rules:
                    solver = Solver.from_program_text(
                        rule.program, DecisionOptions()
                    )
                    solver.check(rule.left, rule.right)
                elapsed = time.monotonic() - started
            finally:
                set_memoization(memo_previous)
                clear_caches()
            best = elapsed if best is None else min(best, elapsed)
    finally:
        set_kernel_mode(previous)
    return best


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Decision-kernel benchmark: digest vs legacy kernel."
    )
    parser.add_argument(
        "--gate", metavar="BASELINE_JSON",
        help=(
            "gate mode: fail (exit 1) unless the digest kernel beats the "
            "legacy kernel by --min-speedup on the adversarial suite AND "
            "stays within --max-cold-ratio of it on the cold corpus pass"
        ),
    )
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument("--max-cold-ratio", type=float, default=1.05)
    args = parser.parse_args(argv)

    suite = build_suite()
    legacy_total, legacy_rows = run_suite(suite, "legacy")
    digest_total, digest_rows = run_suite(suite, "digest")
    speedup = legacy_total / digest_total if digest_total > 0 else float("inf")

    legacy_cold = cold_corpus_pass("legacy")
    digest_cold = cold_corpus_pass("digest")
    cold_ratio = digest_cold / legacy_cold if legacy_cold > 0 else 1.0

    baseline_note = ""
    if args.gate:
        with open(args.gate, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        committed = baseline.get("cold_ms")
        if committed is not None:
            baseline_note = (
                f"committed cold_ms reference : {committed:8.1f} ms "
                f"({baseline.get('recorded', 'unknown')})"
            )

    lines = ["Decision-kernel benchmark (adversarial suite)", ""]
    for (label, legacy_s), (_, digest_s) in zip(legacy_rows, digest_rows):
        lines.append(
            f"  {label:18s} legacy {legacy_s * 1000:9.1f} ms   "
            f"digest {digest_s * 1000:8.1f} ms   "
            f"({legacy_s / digest_s if digest_s > 0 else float('inf'):7.1f}x)"
        )
    lines += [
        "",
        f"adversarial total  : legacy {legacy_total * 1000:9.1f} ms   "
        f"digest {digest_total * 1000:8.1f} ms",
        f"adversarial speedup: {speedup:8.1f}x  (gate: >= {args.min_speedup:.1f}x)",
        "",
        f"cold 91-rule corpus: legacy {legacy_cold * 1000:9.1f} ms   "
        f"digest {digest_cold * 1000:8.1f} ms",
        f"cold-pass ratio    : {cold_ratio:8.3f}x  "
        f"(gate: <= {args.max_cold_ratio:.2f}x)",
    ]
    if baseline_note:
        lines.append(baseline_note)
    status = "PASS"
    if args.gate:
        if speedup < args.min_speedup or cold_ratio > args.max_cold_ratio:
            status = "FAIL"
        lines += ["", f"gate               : {status}"]
    write_report("kernel_gate.txt", "\n".join(lines))
    return 0 if status == "PASS" else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
