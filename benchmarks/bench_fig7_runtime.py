"""Figure 7: UDP execution time (ms), overall and per category.

Paper's table (authors' testbed, ms)::

    Dataset     Overall  UCQ     Cond    Agg/Having  DISTINCT-sub
    Literature  6594.3   3480.8  9983.9  8628.1      8223.7
    Calcite     4160.4   2704.9  6429.0  6909.4      6427.7

Absolute numbers are not comparable (Lean proof search vs our in-process
Python), but the *shape* is: constraint-, aggregate-, and DISTINCT-bearing
rules must be slower than plain UCQ rewrites.  The shape assertions below
check exactly that, and per-category timings are benchmarked.

Run as a script, this file also measures the corpus *pass* end to end —
the seed-equivalent sequential cold-cache baseline (memoization disabled,
caches cleared, fresh solver per rule) against the batch service with
memoization and N workers — asserting every verdict identical between the
two modes::

    PYTHONPATH=src python benchmarks/bench_fig7_runtime.py --quick
    PYTHONPATH=src python benchmarks/bench_fig7_runtime.py --workers 4
"""

from __future__ import annotations

import statistics

import pytest

from repro.corpus import Category, Expectation, all_rules
from repro.udp.trace import Verdict

from conftest import format_table, run_rule, write_report


def timing_table(results):
    rows = []
    means = {}
    for dataset in ("literature", "calcite"):
        proved = [
            (rule, elapsed)
            for rule, verdict, elapsed in results.values()
            if rule.dataset == dataset and verdict is Verdict.PROVED
        ]
        def mean_ms(filter_category=None):
            selected = [
                elapsed
                for rule, elapsed in proved
                if filter_category is None or filter_category in rule.categories
            ]
            if not selected:
                return 0.0
            return statistics.mean(selected) * 1000
        means[dataset] = {
            "overall": mean_ms(),
            Category.UCQ: mean_ms(Category.UCQ),
            Category.COND: mean_ms(Category.COND),
            Category.AGG: mean_ms(Category.AGG),
            Category.DISTINCT_SUB: mean_ms(Category.DISTINCT_SUB),
        }
        rows.append([
            dataset.capitalize(),
            f"{means[dataset]['overall']:.2f}",
            f"{means[dataset][Category.UCQ]:.2f}",
            f"{means[dataset][Category.COND]:.2f}",
            f"{means[dataset][Category.AGG]:.2f}",
            f"{means[dataset][Category.DISTINCT_SUB]:.2f}",
        ])
    table = format_table(
        ["Dataset", "Overall ms", "UCQ ms", "Cond ms", "Agg ms", "DISTINCT ms"],
        rows,
    )
    return means, table


def test_fig7_runtime_table(benchmark, corpus_results):
    means, table = timing_table(corpus_results)
    benchmark(lambda: timing_table(corpus_results))
    write_report(
        "fig7_runtime.txt",
        "Figure 7 — UDP execution time\n" + table + "\n\n"
        "note: the paper's Cond > UCQ gap comes from Lean proof search over\n"
        "chase-style rewrites; our canonizer applies key/FK identities in\n"
        "microseconds, so at ~2 ms absolute the Cond column is noise-level.\n"
        "The robust Fig. 7 shape — aggregate/HAVING rules are the slowest\n"
        "category — reproduces and is asserted.",
    )
    for dataset in ("literature", "calcite"):
        per = means[dataset]
        # Shape: grouping/aggregate rules are the slowest category, as in
        # the paper's Fig. 7.
        assert per[Category.AGG] > per[Category.UCQ]
        assert per[Category.AGG] >= per["overall"]
    # Sanity: everything is fast in absolute terms on this substrate.
    assert means["literature"]["overall"] < 1000


#: One representative proved rule per (dataset, category) cell for
#: pytest-benchmark's statistical timing.
def _representatives():
    chosen = {}
    for rule in all_rules():
        if rule.expectation is not Expectation.PROVED:
            continue
        for category in rule.categories:
            key = (rule.dataset, category.value)
            chosen.setdefault(key, rule)
    return sorted(chosen.items())


@pytest.mark.parametrize(
    "cell", _representatives(), ids=lambda cell: f"{cell[0][0]}/{cell[0][1]}"
)
def test_fig7_cell_benchmark(benchmark, cell):
    (_, _), rule = cell
    verdict, _ = benchmark(lambda: run_rule(rule))
    assert verdict is Verdict.PROVED


# ---------------------------------------------------------------------------
# Script mode: corpus-pass speedup (sequential cold-cache vs batch service)
# ---------------------------------------------------------------------------


def _sequential_cold_pass(rules):
    """The seed-equivalent baseline: no memo, no reuse, traces collected."""
    import time

    from repro import DecisionOptions, Solver, clear_caches, set_memoization

    previous = set_memoization(False)
    clear_caches()
    try:
        verdicts = {}
        started = time.monotonic()
        for rule in rules:
            solver = Solver.from_program_text(rule.program, DecisionOptions())
            outcome = solver.check(rule.left, rule.right)
            verdicts[rule.rule_id] = outcome.verdict
        elapsed = time.monotonic() - started
    finally:
        set_memoization(previous)
        clear_caches()
    return verdicts, elapsed


def _batch_pass(rules, workers):
    """One service-mode pass: memoization on, N workers, no traces."""
    import time

    from repro.service import BatchPair, BatchVerifier

    pairs = [
        BatchPair(rule.rule_id, rule.left, rule.right, rule.program)
        for rule in rules
    ]
    verifier = BatchVerifier(workers=workers)
    started = time.monotonic()
    records = verifier.run(pairs)
    elapsed = time.monotonic() - started
    errored = [r for r in records if r.verdict == "error"]
    assert not errored, "corpus rules errored: " + ", ".join(
        f"{r.pair_id} ({r.reason})" for r in errored
    )
    return {record.pair_id: Verdict(record.verdict) for record in records}, elapsed


def run_gate(baseline_path, workers, factor=2.0):
    """CI perf-regression gate: memoized corpus pass vs committed baseline.

    Runs the batch service twice (the first pass warms the memo layers,
    the second is the steady-state measurement the baseline records) and
    fails — exit code 1 — when the measured pass is more than ``factor``×
    the committed ``memoized_ms``.  Verdicts are also re-checked against
    the expected corpus outcomes so a "fast because broken" pass cannot
    sneak through the gate.
    """
    import json

    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    budget_ms = float(baseline["memoized_ms"]) * factor

    rules = list(all_rules())
    _batch_pass(rules, workers)  # warm the memo layers
    best = None
    verdicts = None
    for _ in range(3):  # steady state: best of three, robust to CI jitter
        run_verdicts, elapsed = _batch_pass(rules, workers)
        if best is None or elapsed < best:
            best, verdicts = elapsed, run_verdicts
    measured_ms = best * 1000

    expected = {
        rule.rule_id: rule.expectation.value
        for rule in rules
        if rule.expectation is not Expectation.UNSUPPORTED
    }
    wrong = [
        rule_id
        for rule_id, want in expected.items()
        if verdicts[rule_id].value != want
    ]
    status = "PASS" if measured_ms <= budget_ms and not wrong else "FAIL"
    lines = [
        f"Fig. 7 perf gate ({len(rules)} rules, {workers} workers requested)",
        f"baseline memoized pass : {baseline['memoized_ms']:8.1f} ms"
        f"  (recorded {baseline.get('recorded', 'unknown')})",
        f"budget ({factor:.1f}x)          : {budget_ms:8.1f} ms",
        f"measured memoized pass : {measured_ms:8.1f} ms",
        f"verdict check          : "
        + ("ok" if not wrong else f"MISMATCH {wrong}"),
        f"gate                   : {status}",
    ]
    write_report("fig7_perf_gate.txt", "\n".join(lines))
    return 0 if status == "PASS" else 1


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="Corpus-pass timing: sequential cold-cache vs batch service."
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke mode: Calcite UCQ subset only, single worker",
    )
    parser.add_argument(
        "--gate", metavar="BASELINE_JSON",
        help=(
            "perf-regression gate: fail (exit 1) when the memoized corpus "
            "pass exceeds 2x the committed baseline's memoized_ms"
        ),
    )
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args(argv)

    if args.gate:
        return run_gate(args.gate, args.workers)

    rules = list(all_rules())
    workers = args.workers
    if args.quick:
        rules = [
            rule for rule in rules
            if rule.dataset == "calcite" and Category.UCQ in rule.categories
        ]
        workers = 1

    cold_verdicts, cold_elapsed = _sequential_cold_pass(rules)
    warm0_verdicts, first_elapsed = _batch_pass(rules, workers)
    steady_verdicts, steady_elapsed = _batch_pass(rules, workers)

    mismatches = [
        rule.rule_id for rule in rules
        if not (
            cold_verdicts[rule.rule_id]
            == warm0_verdicts[rule.rule_id]
            == steady_verdicts[rule.rule_id]
        )
    ]
    assert not mismatches, f"verdicts diverged between modes: {mismatches}"

    lines = [
        "Fig. 7 corpus-pass timing "
        f"({len(rules)} rules, {workers} workers requested)",
        f"sequential cold-cache pass : {cold_elapsed * 1000:8.1f} ms",
        f"batch first (cold memo)    : {first_elapsed * 1000:8.1f} ms "
        f"({cold_elapsed / first_elapsed:.2f}x)",
        f"batch steady (warm memo)   : {steady_elapsed * 1000:8.1f} ms "
        f"({cold_elapsed / steady_elapsed:.2f}x)",
        "verdicts: identical across all modes",
    ]
    report = "\n".join(lines)
    write_report("fig7_batch_speedup.txt", report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
