"""Figure 5: summary of proved and unproved rewrite rules.

Paper's table::

    Dataset     Rules  Supported  Proved  Unproved
    Literature  29     29         29      0
    Calcite     232    39         33      6
    Bugs        3      1          0       1

Our corpus carries the *supported* subsets (39 of Calcite's 232; the count
bug of the 3 documented bugs), so the regenerated table reports the same
supported/proved/unproved shape.
"""

from __future__ import annotations

from repro.corpus import Expectation, rules_by_dataset
from repro.udp.trace import Verdict

from conftest import format_table, run_corpus, write_report

#: Paper-reported totals before filtering to the supported subset.
PAPER_TOTALS = {"literature": 29, "calcite": 232, "bugs": 3}
PAPER_PROVED = {"literature": 29, "calcite": 33, "bugs": 0}


def summarize(results):
    rows = []
    counts = {}
    for dataset in ("literature", "calcite", "bugs"):
        rules = rules_by_dataset(dataset)
        supported = [
            r for r in rules if r.expectation is not Expectation.UNSUPPORTED
        ]
        proved = [
            rule_id
            for rule_id, (rule, verdict, _) in results.items()
            if rule.dataset == dataset and verdict is Verdict.PROVED
        ]
        unproved = len(supported) - len(proved)
        counts[dataset] = (len(rules), len(supported), len(proved), unproved)
        rows.append([
            dataset.capitalize(),
            PAPER_TOTALS[dataset],
            len(supported),
            len(proved),
            unproved,
            PAPER_PROVED[dataset],
        ])
    table = format_table(
        ["Dataset", "Paper rules", "Supported", "Proved", "Unproved",
         "Paper proved"],
        rows,
    )
    return counts, table


def test_fig5_summary(benchmark, corpus_results):
    counts, table = summarize(corpus_results)
    write_report("fig5_summary.txt", "Figure 5 — proved/unproved summary\n" + table)
    # Shape assertions: who proves what must match the paper.
    assert counts["literature"] == (29, 29, 29, 0)
    assert counts["calcite"] == (39, 39, 33, 6)
    assert counts["bugs"][2] == 0  # no bug may ever be "proved"
    # Benchmark the full corpus decision run.
    benchmark(run_corpus)
