"""Warm-restart benchmark of the durable verdict cache, across processes.

The durability claim is only meaningful across a real process boundary:
an in-process "restart" would inherit every warm LRU and prove nothing.
This harness therefore spawns two *separate* interpreter processes over
one store file:

* **cold** — an empty store; the full 91-rule corpus is proved from
  scratch and every verdict published to the store;
* **warm** — a fresh process over the now-populated store; every rule
  must answer from the verdict cache with **zero tactic invocations**,
  verdict- and reason-code-identical to the cold pass.

Both backends run (``sqlite`` — the durable default — and the legacy
``flock`` file).  Report lands in ``benchmarks/out/store_warm_restart.txt``.
``--gate`` exits 1 unless, for every backend: the warm pass is at least
5x faster than the cold pass, all 91 rules hit the cache, no tactic
runs, and the verdict maps are identical.

Run::

    PYTHONPATH=src python benchmarks/bench_store.py
    PYTHONPATH=src python benchmarks/bench_store.py --gate
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

SPEEDUP_BAR = 5.0
BACKENDS = ("sqlite", "flock")


# ---------------------------------------------------------------------------
# Child mode: one corpus pass in this process, JSON result on stdout
# ---------------------------------------------------------------------------


def run_phase(phase: str, store_path: str, backend: str) -> dict:
    from repro import PipelineConfig, Session
    from repro.corpus import as_verify_requests
    from repro.hashcons_store import install_shared_store
    from repro.session import tactic_invocations
    from repro.store import open_store

    store = open_store(store_path, backend=backend)
    install_shared_store(store)
    session = Session(config=PipelineConfig.legacy())
    started = time.monotonic()
    verdicts = {
        result.request_id: [result.verdict.value, result.reason_code.value]
        for result in session.verify_many(as_verify_requests())
    }
    elapsed_ms = (time.monotonic() - started) * 1000.0
    result = {
        "phase": phase,
        "backend": backend,
        "elapsed_ms": round(elapsed_ms, 3),
        "rules": len(verdicts),
        "cache_hits": session.stats.verdict_cache_hits,
        "cache_misses": session.stats.verdict_cache_misses,
        "tactic_invocations": tactic_invocations(),
        "verdicts": verdicts,
    }
    install_shared_store(None)
    store.close()
    return result


# ---------------------------------------------------------------------------
# Orchestrator: cold child, then warm child, over one store file
# ---------------------------------------------------------------------------


def spawn_phase(phase: str, store_path: str, backend: str) -> dict:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [
            sys.executable,
            os.path.abspath(__file__),
            "--phase",
            phase,
            "--store",
            store_path,
            "--backend",
            backend,
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"{backend}/{phase} child failed "
            f"(rc={completed.returncode}):\n{completed.stderr}"
        )
    return json.loads(completed.stdout.splitlines()[-1])


def bench_backend(backend: str) -> dict:
    with tempfile.TemporaryDirectory(prefix="udp-bench-store-") as tmp:
        store_path = os.path.join(tmp, f"verdicts.{backend}")
        cold = spawn_phase("cold", store_path, backend)
        warm = spawn_phase("warm", store_path, backend)
    speedup = cold["elapsed_ms"] / max(warm["elapsed_ms"], 1e-9)
    return {"cold": cold, "warm": warm, "speedup": speedup}


def check_backend(backend: str, result: dict) -> list:
    cold, warm = result["cold"], result["warm"]
    problems = []
    if warm["verdicts"] != cold["verdicts"]:
        drift = {
            rule_id: (cold["verdicts"][rule_id], warm["verdicts"].get(rule_id))
            for rule_id in cold["verdicts"]
            if warm["verdicts"].get(rule_id) != cold["verdicts"][rule_id]
        }
        problems.append(f"{backend}: warm verdicts drifted: {drift}")
    if warm["cache_hits"] != warm["rules"]:
        problems.append(
            f"{backend}: only {warm['cache_hits']}/{warm['rules']} "
            "rules answered from the verdict cache"
        )
    if warm["tactic_invocations"] != 0:
        problems.append(
            f"{backend}: warm restart ran "
            f"{warm['tactic_invocations']} tactic(s); expected 0"
        )
    if result["speedup"] < SPEEDUP_BAR:
        problems.append(
            f"{backend}: warm speedup {result['speedup']:.1f}x "
            f"misses the {SPEEDUP_BAR:.0f}x bar"
        )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--phase", choices=("cold", "warm"))
    parser.add_argument("--store", help="store path (child mode)")
    parser.add_argument(
        "--backend", choices=BACKENDS, help="store backend (child mode)"
    )
    parser.add_argument(
        "--gate", action="store_true", help="exit 1 on a missed bar"
    )
    args = parser.parse_args()
    if args.phase:
        print(json.dumps(run_phase(args.phase, args.store, args.backend)))
        return 0

    from conftest import format_table, write_report

    results = {backend: bench_backend(backend) for backend in BACKENDS}
    problems = []
    rows = []
    for backend, result in results.items():
        problems.extend(check_backend(backend, result))
        cold, warm = result["cold"], result["warm"]
        rows.append(
            [
                backend,
                f"{cold['elapsed_ms']:.1f}",
                f"{warm['elapsed_ms']:.1f}",
                f"{result['speedup']:.1f}x",
                f"{warm['cache_hits']}/{warm['rules']}",
                str(warm["tactic_invocations"]),
                "identical" if warm["verdicts"] == cold["verdicts"] else "DRIFT",
            ]
        )
    lines = [
        "Warm-restart verdict cache: full 91-rule corpus, two processes",
        f"(bar: warm >= {SPEEDUP_BAR:.0f}x cold, all rules cached, "
        "0 tactics, verdict-identical)",
        "",
        format_table(
            [
                "backend",
                "cold ms",
                "warm ms",
                "speedup",
                "cache hits",
                "tactics",
                "verdicts",
            ],
            rows,
        ),
    ]
    if problems:
        lines.append("")
        lines.extend(f"FAIL: {problem}" for problem in problems)
    else:
        lines.append("")
        lines.append("PASS: every backend met the warm-restart bar")
    write_report("store_warm_restart.txt", "\n".join(lines) + "\n")
    if problems and args.gate:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
