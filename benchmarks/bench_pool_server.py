"""Pooled vs single-member server throughput, end to end over HTTP.

The PR-4 acceptance bar: with ``--pool-size >= 2`` on a >= 2-core
runner, batch throughput must be at least 1.5x the single-session
server, with every verdict and reason code identical.  This script
measures exactly that against a live :class:`VerificationServer` on an
ephemeral port:

* **Workload** — distinct-constant join/DISTINCT pairs (every pair is
  structurally unique, so no memo layer can hide the proving cost: this
  measures parallel proving, not cache luck), plus one full 91-rule
  corpus replay through ``POST /corpus``.
* **Baseline** — ``pool_size=1`` (one warm member: the old single-lock
  server's behavior).
* **Candidate** — ``pool_size=N`` (default: one per core), ``auto``
  mode (forked process members + shared memo store where available).
* **Identity** — the two runs' verdict/reason-code records must match
  pairwise, and the corpus replay's verdict counts must agree.

Report lands in ``benchmarks/out/pool_throughput.txt``.  ``--gate``
exits 1 when a >= 2-core machine misses the 1.5x bar (on one core the
comparison is reported but not enforced — there is no parallelism to
buy); identity failures always exit 1.

Run::

    PYTHONPATH=src python benchmarks/bench_pool_server.py
    PYTHONPATH=src python benchmarks/bench_pool_server.py --gate --pool-size 4
"""

from __future__ import annotations

import argparse
import json
import os
import time
import urllib.request

from conftest import write_report

PROGRAM = """
schema rs(a:int, b:int, c:int);
schema ss(d:int, e:int);
schema ts(f:int, g:int);
table r(rs);
table s(ss);
table t(ts);
"""

SPEEDUP_BAR = 1.5


def make_pair(i: int):
    left = (
        "SELECT DISTINCT x.a AS a, z.g AS g FROM r x, s y, t z "
        f"WHERE x.a = y.d AND y.e = z.f AND x.b = {i} AND z.g = {i + 1}"
    )
    right = (
        "SELECT DISTINCT x.a AS a, z.g AS g FROM r x, s y, t z "
        f"WHERE z.g = {i + 1} AND y.e = z.f AND x.b = {i} AND x.a = y.d"
    )
    return left, right


def batch_payload(base: int, count: int) -> bytes:
    lines = []
    for i in range(count):
        left, right = make_pair(base + i)
        lines.append(
            json.dumps({"id": f"p{i}", "left": left, "right": right})
        )
    return ("\n".join(lines) + "\n").encode("utf-8")


def run_batch(server, payload: bytes):
    request = urllib.request.Request(
        server.url + "/verify/batch",
        data=payload,
        headers={"Content-Type": "application/x-ndjson"},
    )
    started = time.monotonic()
    with urllib.request.urlopen(request, timeout=600) as response:
        records = [
            json.loads(line)
            for line in response.read().decode("utf-8").splitlines()
        ]
    elapsed = time.monotonic() - started
    return records, elapsed


def run_corpus(server):
    request = urllib.request.Request(
        server.url + "/corpus", data=b"", method="POST"
    )
    with urllib.request.urlopen(request, timeout=600) as response:
        return json.loads(response.read())


def outcome_list(records):
    return [(r["id"], r["verdict"], r["reason_code"]) for r in records]


def measure(pool_size: int, pool_mode: str, pairs: int, repeats: int):
    """Boot a server, run the distinct-pair batch ``repeats`` times on
    fresh constant ranges (cold proving every time), plus one corpus
    replay; return (best_elapsed, outcomes, corpus_summary, pool_mode)."""
    from repro.server import VerificationServer
    from repro.session import PipelineConfig, Session

    with VerificationServer(
        Session.from_program_text(PROGRAM, PipelineConfig.legacy()),
        pool_size=pool_size,
        pool_mode=pool_mode,
    ) as server:
        resolved_mode = server.pool.mode
        # Interpreter warmup on a throwaway range (parse paths, first
        # compile); proving work below still uses never-seen constants.
        run_batch(server, batch_payload(90_000_000, min(8, pairs)))
        best = None
        outcomes = None
        for round_no in range(repeats):
            payload = batch_payload((round_no + 1) * 1_000_000, pairs)
            records, elapsed = run_batch(server, payload)
            errored = [r for r in records if r.get("verdict") == "error"]
            assert not errored, f"workload errored: {errored[:2]}"
            if best is None or elapsed < best:
                best = elapsed
                outcomes = outcome_list(records)
        corpus = run_corpus(server)
    return best, outcomes, corpus, resolved_mode


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Pooled vs single-member server throughput over HTTP."
    )
    parser.add_argument(
        "--pool-size", type=int, default=0,
        help="members in the pooled run; 0 = one per core (default)",
    )
    parser.add_argument(
        "--pairs", type=int, default=120,
        help="distinct pairs per batch pass (default 120)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="passes per server; best-of is reported (default 3)",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help=(
            f"fail (exit 1) when a >=2-core machine misses the "
            f"{SPEEDUP_BAR}x pooled speedup bar"
        ),
    )
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    pool_size = args.pool_size or cores

    single_elapsed, single_outcomes, single_corpus, _ = measure(
        1, "thread", args.pairs, args.repeats
    )
    pooled_elapsed, pooled_outcomes, pooled_corpus, pooled_mode = measure(
        pool_size, "auto", args.pairs, args.repeats
    )

    drift = [
        (a, b) for a, b in zip(single_outcomes, pooled_outcomes) if a != b
    ]
    corpus_identical = (
        single_corpus["verdicts"] == pooled_corpus["verdicts"]
        and single_corpus["reason_codes"] == pooled_corpus["reason_codes"]
    )
    speedup = single_elapsed / pooled_elapsed if pooled_elapsed else 0.0
    single_rps = args.pairs / single_elapsed
    pooled_rps = args.pairs / pooled_elapsed

    gate_applies = args.gate and cores >= 2 and pool_size >= 2
    ok = not drift and corpus_identical
    if gate_applies:
        ok = ok and speedup >= SPEEDUP_BAR

    lines = [
        f"Pooled-server throughput ({args.pairs} distinct pairs/pass, "
        f"best of {args.repeats}; {cores} core(s))",
        f"single member  (1 x thread)        : {single_elapsed * 1000:8.1f} ms"
        f"  ({single_rps:7.1f} pairs/s)",
        f"pooled         ({pool_size} x {pooled_mode:<7})      : "
        f"{pooled_elapsed * 1000:8.1f} ms  ({pooled_rps:7.1f} pairs/s)",
        f"speedup                            : {speedup:8.2f}x"
        + (
            f"  (bar: {SPEEDUP_BAR}x)"
            if gate_applies
            else f"  (bar {SPEEDUP_BAR}x applies on >=2 cores with "
            f"pool >= 2; informational here)"
        ),
        "verdict identity (pairs)           : "
        + ("ok" if not drift else f"DRIFT {drift[:3]}"),
        "corpus replay    (91 rules)        : "
        + (
            f"ok ({pooled_corpus['rules']} rules, "
            f"{pooled_corpus['verdicts']})"
            if corpus_identical
            else f"DRIFT single={single_corpus['verdicts']} "
            f"pooled={pooled_corpus['verdicts']}"
        ),
        f"gate                               : "
        + ("PASS" if ok else "FAIL")
        + ("" if gate_applies or not args.gate else " (speedup not enforced)"),
    ]
    write_report("pool_throughput.txt", "\n".join(lines))
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
