"""Front-door benchmark: shard-locality hit rate + accept-path scaling.

Two claims from the front-door PR are measured against a live
:class:`FrontDoorServer` on an ephemeral port:

1. **Digest-sharded dispatch beats random dispatch on cache hit rate**
   on a skewed replay workload.  The workload replays the full 91-rule
   corpus with a 1/rank (Zipf-like) repeat distribution — a few hot
   rules re-verified many times, a long tail seen once or twice — the
   shape a fleet of optimizer clients actually produces.  Two identical
   4-member process pools serve the same replay, one with
   ``shard_dispatch`` on (repeats land on the member whose caches are
   already hot for that digest) and one with it off (the LRU fallback
   spreads repeats round-robin).  The shared memo store is disabled for
   both so cross-member warming cannot mask dispatch locality: what a
   member has not compiled itself, it must compile again.  The metric
   is the *compile hit rate* — the fraction of replayed requests whose
   two queries were already compiled on the member that served them
   (``1 - compiled_entries / (2 * requests)``) — plus wall-clock and
   the duplicate-work factor.  Verdicts must be identical pairwise.

2. **The accept path holds hundreds of connections and never proves.**
   500 idle connections are opened and held (RLIMIT_NOFILE raised when
   the platform allows; the section is skipped with a note otherwise);
   the loop must accept all of them, answer ``/healthz`` promptly while
   holding, and still serve verifies on sampled held connections.  A
   slow-loris swarm (100 stalled uploads against a 1-second
   ``idle_timeout``) must be swept while the server stays answerable.

Report lands in ``benchmarks/out/frontdoor.txt``.  ``--gate`` exits 1
when the sharded hit rate fails to beat random dispatch, when verdicts
drift between the two runs, or when the 500-connection hold fails on a
platform that allows it.

Run::

    PYTHONPATH=src python benchmarks/bench_frontdoor.py
    PYTHONPATH=src python benchmarks/bench_frontdoor.py --gate
"""

from __future__ import annotations

import argparse
import json
import random
import socket
import time
import urllib.request

from conftest import write_report

POOL_SIZE = 4
REPLAY_SEED = 11
HOLD_CONNECTIONS = 500
LORIS_CONNECTIONS = 100


def skewed_replay():
    """The replay schedule: every rule at least once, repeats 1/rank.

    Returns a list of verify-request dicts (ids ``rule@k`` so every
    occurrence is distinct on the wire) in a seeded shuffle — the same
    schedule for both servers, so the comparison is apples to apples.
    """
    from repro.corpus import all_rules

    rules = all_rules()
    schedule = []
    for rank, rule in enumerate(rules, start=1):
        repeats = max(1, round(48 / rank))
        for k in range(repeats):
            schedule.append(
                {
                    "id": f"{rule.rule_id}@{k}",
                    "left": rule.left,
                    "right": rule.right,
                    "program": rule.program,
                }
            )
    random.Random(REPLAY_SEED).shuffle(schedule)
    return schedule


def run_batch(server, schedule, window=8):
    payload = (
        "\n".join(json.dumps(obj) for obj in schedule) + "\n"
    ).encode("utf-8")
    request = urllib.request.Request(
        f"{server.url}/verify/batch?window={window}",
        data=payload,
        headers={"Content-Type": "application/x-ndjson"},
    )
    started = time.monotonic()
    with urllib.request.urlopen(request, timeout=600) as response:
        records = [
            json.loads(line)
            for line in response.read().decode("utf-8").splitlines()
        ]
    elapsed = time.monotonic() - started
    errors = [r for r in records if "error" in r]
    assert not errors, errors[:3]
    return records, elapsed


def compile_entries(pool_stats):
    """Total compiled denotations across the fleet (root + sub-sessions)."""
    total = 0
    for member in pool_stats["members"]:
        session = member["session"]
        total += session["compile_cache"].get("entries", 0)
        total += session["program_compile_entries"]
    return total


def measure_dispatch(schedule, shard: bool):
    """One replay against a fresh 4-member process pool; returns the
    outcome list, elapsed seconds, and the pool's locality counters."""
    from repro.server import FrontDoorServer
    from repro.session import PipelineConfig

    with FrontDoorServer(
        pipeline=PipelineConfig.legacy(),
        pool_size=POOL_SIZE,
        pool_mode="process",
        shared_store=False,
        shard_dispatch=shard,
        max_inflight=32,
    ) as server:
        mode = server.pool.mode
        records, elapsed = run_batch(server, schedule)
        stats = server.pool.stats()
    outcomes = [(r["id"], r["verdict"], r["reason_code"]) for r in records]
    entries = compile_entries(stats)
    hit_rate = 1.0 - entries / (2.0 * len(schedule))
    return {
        "mode": mode,
        "outcomes": outcomes,
        "elapsed": elapsed,
        "entries": entries,
        "hit_rate": hit_rate,
        "dispatch": stats["dispatch"],
        "spread": sorted(m["requests"] for m in stats["members"]),
    }


def measure_hold(report):
    """Open and hold 500 connections; prove the loop still serves."""
    from repro.server import FrontDoorServer
    from repro.session import Session

    try:
        import resource

        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        if soft < HOLD_CONNECTIONS + 300:
            resource.setrlimit(
                resource.RLIMIT_NOFILE,
                (min(HOLD_CONNECTIONS + 700, hard), hard),
            )
            soft = resource.getrlimit(resource.RLIMIT_NOFILE)[0]
        if soft < HOLD_CONNECTIONS + 200:
            report.append(
                f"hold: SKIPPED (RLIMIT_NOFILE {soft} too low to hold "
                f"{HOLD_CONNECTIONS} sockets)"
            )
            return None
    except (ImportError, ValueError, OSError) as err:
        report.append(f"hold: SKIPPED (cannot raise RLIMIT_NOFILE: {err})")
        return None

    program = "schema rs(a:int, b:int);\ntable r(rs);\n"
    pair = {
        "left": "SELECT * FROM r x WHERE x.a = 1 AND x.b = 2",
        "right": "SELECT * FROM r x WHERE x.b = 2 AND x.a = 1",
    }
    with FrontDoorServer(
        Session.from_program_text(program),
        pool_size=2,
        pool_mode="thread",
        max_connections=HOLD_CONNECTIONS + 100,
        max_inflight=64,
        idle_timeout=120.0,
    ) as server:
        conns = []
        try:
            started = time.monotonic()
            for _ in range(HOLD_CONNECTIONS):
                conns.append(
                    socket.create_connection(
                        (server.host, server.port), timeout=30
                    )
                )
            deadline = time.monotonic() + 15
            while (
                server.peak_connections < HOLD_CONNECTIONS
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            connect_elapsed = time.monotonic() - started
            held = server.peak_connections

            probe_started = time.monotonic()
            with urllib.request.urlopen(
                server.url + "/healthz", timeout=30
            ) as response:
                assert json.loads(response.read())["status"] == "ok"
            healthz_latency = time.monotonic() - probe_started

            body = json.dumps(pair).encode("utf-8")
            head = (
                "POST /verify HTTP/1.1\r\n"
                f"Host: {server.host}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            served = 0
            for sock in conns[:: HOLD_CONNECTIONS // 10]:
                sock.sendall(head + body)
                sock.settimeout(60)
                raw = b""
                while b"\r\n\r\n" not in raw:
                    data = sock.recv(65536)
                    if not data:
                        break
                    raw += data
                if raw.startswith(b"HTTP/1.1 200"):
                    served += 1
        finally:
            for sock in conns:
                sock.close()

    report.append(
        f"hold: {held}/{HOLD_CONNECTIONS} connections held "
        f"(connect+accept {connect_elapsed:.2f}s), healthz "
        f"{healthz_latency * 1000:.1f} ms while holding, "
        f"{served}/10 sampled held connections served"
    )
    return held >= HOLD_CONNECTIONS and served == 10


def measure_loris(report):
    """A slow-loris swarm is swept while the server stays answerable."""
    from repro.server import FrontDoorServer
    from repro.session import Session

    program = "schema rs(a:int, b:int);\ntable r(rs);\n"
    with FrontDoorServer(
        Session.from_program_text(program),
        pool_size=1,
        pool_mode="thread",
        idle_timeout=1.0,
        max_connections=LORIS_CONNECTIONS + 50,
    ) as server:
        swarm = []
        try:
            for _ in range(LORIS_CONNECTIONS):
                sock = socket.create_connection(
                    (server.host, server.port), timeout=30
                )
                sock.sendall(b"POST /verify HTTP/1.1\r\n")  # ...stall
                swarm.append(sock)
            started = time.monotonic()
            deadline = started + 30
            while (
                server.idle_closed < LORIS_CONNECTIONS
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            sweep_elapsed = time.monotonic() - started
            with urllib.request.urlopen(
                server.url + "/healthz", timeout=30
            ) as response:
                alive = json.loads(response.read())["status"] == "ok"
            swept = server.idle_closed
        finally:
            for sock in swarm:
                sock.close()
    report.append(
        f"slow-loris: {swept}/{LORIS_CONNECTIONS} stalled connections "
        f"swept in {sweep_elapsed:.2f}s (idle_timeout 1.0s), server "
        f"{'answerable' if alive else 'DEAD'} throughout"
    )
    return swept >= LORIS_CONNECTIONS and alive


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 when sharded dispatch fails to beat random dispatch",
    )
    args = parser.parse_args()

    report = ["front-door benchmark", "===================="]
    schedule = skewed_replay()
    distinct = len({obj["id"].split("@")[0] for obj in schedule})
    report.append(
        f"replay: {len(schedule)} requests over {distinct} rules, "
        f"1/rank skew, seed {REPLAY_SEED}, {POOL_SIZE} members, "
        "shared store off"
    )

    sharded = measure_dispatch(schedule, shard=True)
    randomized = measure_dispatch(schedule, shard=False)
    for name, run in (("sharded", sharded), ("random", randomized)):
        d = run["dispatch"]
        report.append(
            f"{name:>8}: hit rate {run['hit_rate']:.3f} "
            f"({run['entries']} compiled over {len(schedule)} requests), "
            f"{run['elapsed']:.2f}s, spread {run['spread']}, "
            f"dispatch sharded={d['sharded']} fallbacks={d['fallbacks']} "
            f"unsharded={d['unsharded']} [{run['mode']} members]"
        )

    identical = sorted(sharded["outcomes"]) == sorted(randomized["outcomes"])
    locality_win = sharded["hit_rate"] > randomized["hit_rate"]
    report.append(
        f"verdict identity: {'OK' if identical else 'DRIFT'}; "
        f"sharded beats random on hit rate: "
        f"{'YES' if locality_win else 'NO'} "
        f"({sharded['hit_rate']:.3f} vs {randomized['hit_rate']:.3f})"
    )

    hold_ok = measure_hold(report)
    loris_ok = measure_loris(report)

    passed = (
        identical
        and locality_win
        and hold_ok is not False
        and loris_ok is not False
    )
    report.append(f"gate: {'PASS' if passed else 'FAIL'}")
    write_report("frontdoor.txt", "\n".join(report) + "\n")
    if args.gate and not passed:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
