"""Sec. 6.2 "Previously Documented Bugs": the prover must not prove the
count bug, and the complementary model checker must refute it with a concrete
counterexample (the empty-group witness)."""

from __future__ import annotations

from repro import Solver
from repro.checker import ModelChecker
from repro.corpus.rules import get_rule
from repro.udp.trace import Verdict

from conftest import write_report


def refute_count_bug():
    rule = get_rule("bug-01")
    solver = Solver.from_program_text(rule.program)
    outcome = solver.check(rule.left, rule.right)
    checker = ModelChecker(solver.catalog)
    witness = checker.find_counterexample(rule.left, rule.right)
    return outcome, witness


def test_count_bug_refutation(benchmark):
    outcome, witness = refute_count_bug()
    assert outcome.verdict is not Verdict.PROVED
    assert witness is not None
    report = [
        "Sec. 6.2 — documented bugs",
        f"prover verdict on the count bug: {outcome.verdict.value} (must not be proved)",
        "model-checker counterexample:",
        witness.describe(),
    ]
    write_report("bugs_refutation.txt", "\n".join(report))
    benchmark(refute_count_bug)


def test_null_bugs_unsupported():
    for rule_id in ("bug-02", "bug-03"):
        rule = get_rule(rule_id)
        solver = Solver.from_program_text(rule.program)
        outcome = solver.check(rule.left, rule.right)
        assert outcome.verdict is Verdict.UNSUPPORTED
