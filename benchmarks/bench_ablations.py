"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **No constraint identities** (Algorithm 1 without Def. 4.1/4.4/Thm 4.3):
   every Cond-category rule must stop proving, everything else must be
   unaffected — the constraint axioms carry exactly the Cond fragment.
2. **SDP strategy**: mutual-homomorphism containment (default) vs the
   paper's minimize-then-match — both complete for set-semantics UCQ, so
   verdicts must agree across the whole corpus; timings are compared.
"""

from __future__ import annotations

import time

from repro import DecisionOptions
from repro.corpus import Category, Expectation, all_rules
from repro.udp.trace import Verdict

from conftest import format_table, run_corpus, run_rule, write_report


def test_ablation_no_constraints(benchmark):
    baseline = run_corpus()
    ablated = run_corpus(DecisionOptions(use_constraints=False))
    flipped = []
    unaffected = 0
    for rule_id, (rule, verdict, _) in baseline.items():
        ablated_verdict = ablated[rule_id][1]
        if verdict is Verdict.PROVED and ablated_verdict is not Verdict.PROVED:
            flipped.append(rule)
        elif verdict == ablated_verdict:
            unaffected += 1
    # Every flip must be a Cond rule, and every key/FK-dependent Cond rule
    # must flip.  Cond rules whose precondition is a *view or index
    # definition* (lit-23, lit-24, ext-20) survive: views are inlined
    # structurally (Sec. 4.1), not via the Def. 4.1/4.4 identities this
    # ablation removes.
    assert flipped, "removing constraints must lose some proofs"
    assert all(Category.COND in rule.categories for rule in flipped)
    cond_proved = {
        rule.rule_id
        for rule, verdict, _ in baseline.values()
        if verdict is Verdict.PROVED and Category.COND in rule.categories
    }
    survivors = cond_proved - {rule.rule_id for rule in flipped}
    assert survivors == {"lit-23", "lit-24", "ext-20"}
    rows = [[rule.rule_id, rule.name[:48]] for rule in flipped]
    write_report(
        "ablation_no_constraints.txt",
        "Ablation — canonize without key/FK identities\n"
        "rules that stop proving (all Cond, as expected):\n"
        + format_table(["rule", "name"], rows),
    )
    benchmark(lambda: run_corpus(DecisionOptions(use_constraints=False)))


def test_ablation_sdp_strategy(benchmark):
    homomorphism = run_corpus(DecisionOptions(sdp_strategy="homomorphism"))
    minimize = run_corpus(DecisionOptions(sdp_strategy="minimize"))
    disagreements = [
        rule_id
        for rule_id in homomorphism
        if homomorphism[rule_id][1] != minimize[rule_id][1]
    ]
    assert disagreements == [], (
        "the two SDP strategies are both complete for set-UCQ and must agree"
    )
    hom_total = sum(elapsed for _, _, elapsed in homomorphism.values())
    min_total = sum(elapsed for _, _, elapsed in minimize.values())
    write_report(
        "ablation_sdp_strategy.txt",
        "Ablation — SDP strategy\n"
        + format_table(
            ["strategy", "corpus total (ms)"],
            [
                ["homomorphism (default)", f"{hom_total * 1000:.1f}"],
                ["minimize + isomorphism", f"{min_total * 1000:.1f}"],
            ],
        ),
    )
    benchmark(lambda: run_corpus(DecisionOptions(sdp_strategy="minimize")))


def test_ablation_decision_budget():
    """A zero budget must time out, never mis-prove."""
    rule = next(
        r for r in all_rules() if r.expectation is Expectation.PROVED
        and Category.DISTINCT_SUB in r.categories
    )
    verdict, _ = run_rule(rule, DecisionOptions(timeout_seconds=0.0))
    assert verdict in (Verdict.TIMEOUT, Verdict.PROVED)
