"""Digest-bucketed clustering vs decision-only placement.

The streaming ``/cluster`` engine places alpha-variant spellings of the
same query in O(1) by canonical digest; without the digest index every
placement must run the decision procedure against existing group
representatives until one proves.  On a realistic corpus — many base
query shapes, each spelled many equivalent ways (conjunct order,
predicate orientation, alias renames, subquery nesting) — the digest
index should win by a wide margin while producing the *identical*
partition.

This harness builds such a corpus (``SHAPES`` base shapes x
``VARIANTS`` spellings each), runs one :class:`ClusterEngine` with
digest bucketing on and one with it off (exact structural fingerprints
only — the historical offline mode), each over a fresh frontend with
memoization disabled so neither run inherits the other's caches, and
compares wall-clock and partitions.

Report lands in ``benchmarks/out/cluster_gate.txt``.  ``--gate`` exits 1
unless the partitions are identical and the digest run is at least
``--min-speedup`` (default 5x) faster.

Run::

    PYTHONPATH=src python benchmarks/bench_cluster.py
    PYTHONPATH=src python benchmarks/bench_cluster.py --gate
"""

from __future__ import annotations

import argparse
import sys
import time

from conftest import write_report

from repro import Solver
from repro.hashcons import clear_caches, set_memoization
from repro.service.clustering import ClusterEngine, ClusterStats

PROGRAM = """
schema rs(a:int, b:int);
table r(rs);
"""

#: Base shapes: one provably-distinct group per (a, b) constant pair.
SHAPES = 28

#: Equivalent spellings generated per shape.
VARIANTS = 24

SPEEDUP_BAR = 5.0

_ALIASES = ("x", "y", "z", "w")


def spellings(a: int, b: int):
    """Equivalent spellings of ``a = <a> AND b = <b>`` over table r.

    Every template is an alpha-variant / commutativity rewrite the
    canonical digest provably unifies (alias renames, conjunct order,
    predicate orientation, subquery nesting); the engine's decision loop
    is the ground truth that keeps the decision-only partition
    identical.
    """
    out = []
    for v in _ALIASES:
        out.append(f"SELECT * FROM r {v} WHERE {v}.a = {a} AND {v}.b = {b}")
        out.append(f"SELECT * FROM r {v} WHERE {v}.b = {b} AND {v}.a = {a}")
        out.append(f"SELECT * FROM r {v} WHERE {a} = {v}.a AND {v}.b = {b}")
    for outer, inner in zip(_ALIASES, _ALIASES[1:] + _ALIASES[:1]):
        out.append(
            f"SELECT * FROM (SELECT * FROM r {inner} "
            f"WHERE {inner}.a = {a}) {outer} WHERE {outer}.b = {b}"
        )
        out.append(
            f"SELECT * FROM (SELECT * FROM r {inner} "
            f"WHERE {inner}.b = {b}) {outer} WHERE {outer}.a = {a}"
        )
        out.append(
            f"SELECT * FROM (SELECT * FROM r {inner} "
            f"WHERE {a} = {inner}.a) {outer} WHERE {b} = {outer}.b"
        )
    return out


def build_corpus():
    """Interleave shapes so each run keeps revisiting old groups."""
    per_shape = [
        spellings(shape + 1, (shape + 1) * 10)[:VARIANTS]
        for shape in range(SHAPES)
    ]
    corpus = []
    for round_index in range(VARIANTS):
        for shape in range(SHAPES):
            corpus.append(per_shape[shape][round_index])
    return corpus


def run_mode(corpus, digest_buckets: bool) -> dict:
    clear_caches()
    solver = Solver.from_program_text(PROGRAM)
    stats = ClusterStats()
    engine = ClusterEngine(
        solver, stats=stats, digest_buckets=digest_buckets
    )
    started = time.monotonic()
    for query in corpus:
        engine.place(query)
    elapsed_ms = (time.monotonic() - started) * 1000.0
    partition = frozenset(
        frozenset(group.members) for group in engine.groups()
    )
    return {
        "elapsed_ms": elapsed_ms,
        "partition": partition,
        "groups": len(engine.groups()),
        "stats": stats,
    }


def bench() -> dict:
    corpus = build_corpus()
    set_memoization(False)
    try:
        decision = run_mode(corpus, digest_buckets=False)
        digest = run_mode(corpus, digest_buckets=True)
    finally:
        set_memoization(True)
        clear_caches()
    return {
        "corpus": len(corpus),
        "decision": decision,
        "digest": digest,
        "speedup": decision["elapsed_ms"] / max(digest["elapsed_ms"], 1e-9),
    }


def render(result: dict) -> str:
    lines = [
        "cluster placement: digest bucketing vs decision-only",
        f"  corpus: {result['corpus']} queries "
        f"({SHAPES} shapes x {VARIANTS} spellings, memoization off)",
    ]
    for mode in ("decision", "digest"):
        run = result[mode]
        stats = run["stats"]
        lines.append(
            f"  {mode:8s}: {run['elapsed_ms']:9.1f} ms  "
            f"groups={run['groups']}  decisions={stats.comparisons}  "
            f"digest_hits={stats.digest_hits}  "
            f"bucket_hits={stats.bucket_hits}"
        )
    match = result["decision"]["partition"] == result["digest"]["partition"]
    lines.append(
        f"  speedup: {result['speedup']:.1f}x  "
        f"partitions {'identical' if match else 'DIVERGED'}"
    )
    return "\n".join(lines) + "\n"


def check(result: dict, min_speedup: float) -> list:
    failures = []
    if result["decision"]["partition"] != result["digest"]["partition"]:
        failures.append("digest and decision-only partitions diverged")
    if result["decision"]["groups"] != SHAPES:
        failures.append(
            f"expected {SHAPES} groups, decision-only produced "
            f"{result['decision']['groups']}"
        )
    if result["speedup"] < min_speedup:
        failures.append(
            f"speedup {result['speedup']:.1f}x below the "
            f"{min_speedup:.1f}x bar"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--gate", action="store_true",
        help="exit 1 unless partitions match and the speedup bar holds",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=SPEEDUP_BAR,
        help=f"required digest-mode speedup (default {SPEEDUP_BAR}x)",
    )
    args = parser.parse_args(argv)
    result = bench()
    report = render(result)
    failures = check(result, args.min_speedup)
    if failures:
        report += "".join(f"  GATE FAIL: {f}\n" for f in failures)
    else:
        report += "  gate: ok\n"
    write_report("cluster_gate.txt", report)
    if args.gate and failures:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
