"""Figure 6: characterization of proved rewrite rules by SQL feature.

Paper's table (categories not mutually exclusive)::

    Dataset     Proved  UCQ  Cond  Grouping/Agg/Having  DISTINCT-in-subquery
    Literature  29      15   9     2                    4
    Calcite     34*     21   2     11                   1

(*the paper's Fig. 6 prints 34 where Fig. 5 says 33 — a known internal
inconsistency of the paper; we report our measured counts.)
"""

from __future__ import annotations

from repro.corpus import Category
from repro.udp.trace import Verdict

from conftest import format_table, write_report

PAPER = {
    "literature": {"proved": 29, Category.UCQ: 15, Category.COND: 9,
                   Category.AGG: 2, Category.DISTINCT_SUB: 4},
    "calcite": {"proved": 33, Category.UCQ: 21, Category.COND: 2,
                Category.AGG: 11, Category.DISTINCT_SUB: 1},
}


def characterize(results):
    table_rows = []
    measured = {}
    for dataset in ("literature", "calcite"):
        proved_rules = [
            rule
            for rule, verdict, _ in results.values()
            if rule.dataset == dataset and verdict is Verdict.PROVED
        ]
        counts = {
            category: sum(1 for r in proved_rules if category in r.categories)
            for category in Category
        }
        measured[dataset] = (len(proved_rules), counts)
        table_rows.append([
            dataset.capitalize(),
            len(proved_rules),
            counts[Category.UCQ],
            counts[Category.COND],
            counts[Category.AGG],
            counts[Category.DISTINCT_SUB],
        ])
        table_rows.append([
            f"  (paper)",
            PAPER[dataset]["proved"],
            PAPER[dataset][Category.UCQ],
            PAPER[dataset][Category.COND],
            PAPER[dataset][Category.AGG],
            PAPER[dataset][Category.DISTINCT_SUB],
        ])
    table = format_table(
        ["Dataset", "Proved", "UCQ", "Cond", "Agg/Having", "DISTINCT-sub"],
        table_rows,
    )
    return measured, table


def test_fig6_characterization(benchmark, corpus_results):
    measured, table = characterize(corpus_results)
    write_report(
        "fig6_characterization.txt",
        "Figure 6 — characterization of proved rules\n" + table,
    )
    lit_proved, lit_counts = measured["literature"]
    cal_proved, cal_counts = measured["calcite"]
    assert lit_proved == 29
    assert cal_proved == 33
    # Every category of the paper's table is populated on the same side.
    assert lit_counts[Category.UCQ] >= 10
    assert lit_counts[Category.COND] >= 5
    assert cal_counts[Category.AGG] >= 8
    benchmark(lambda: characterize(corpus_results))
