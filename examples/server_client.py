"""Server mode: drive the HTTP verification service over the wire.

Boots a :class:`repro.server.VerificationServer` on an ephemeral port in
a background thread (exactly what ``udp-prove serve`` runs), then talks
to it with :class:`repro.VerifyClient` — the stdlib retry client that
backs off on 503/429 using the server's jittered ``Retry-After`` hint —
covering single verifies, a per-request pipeline override, a streamed
JSONL batch with a deliberately malformed line, and the ``/stats``
counters.  Against an already-running server
(``udp-prove serve --port 8642``), the same requests work as curl::

    curl -s localhost:8642/healthz
    curl -s -d '{"left": "SELECT * FROM r t", "right": "SELECT DISTINCT * FROM r t"}' \
         localhost:8642/verify
    curl -s --data-binary @pairs.jsonl localhost:8642/verify/batch

Run:  python examples/server_client.py
"""

import json

from repro import RetryPolicy, Session, VerifyClient
from repro.server import VerificationServer

DDL = """
schema emp_s(empno:int, ename:string, deptno:int, sal:int);
schema dept_s(deptno:int, dname:string);
table emp(emp_s);
table dept(dept_s);
key emp(empno);
key dept(deptno);
foreign key emp(deptno) references dept(deptno);
"""


def main() -> None:
    session = Session.from_program_text(DDL)  # the pool's warm prototype
    with VerificationServer(session, port=0, pool_size=2) as server:
        print(
            f"server listening on {server.url} "
            f"(pool: {server.pool.size} x {server.pool.mode})\n"
        )
        client = VerifyClient(
            server.url,
            policy=RetryPolicy(max_attempts=4, base_delay=0.25, seed=0),
        )

        # -- one request, one structured result ---------------------------
        record = client.verify({
            "id": "join-elim",
            "left": "SELECT e.empno AS empno FROM emp e, dept d "
                    "WHERE e.deptno = d.deptno",
            "right": "SELECT e.empno AS empno FROM emp e",
        })
        print(f"POST /verify        -> {record['verdict']} "
              f"[{record['reason_code']}] via {record['tactic']}")

        # -- per-request pipeline override: add refutation ----------------
        record = client.verify({
            "id": "self-join",
            "left": "SELECT e.sal AS sal FROM emp e, emp f",
            "right": "SELECT e.sal AS sal FROM emp e",
            "pipeline": "udp-prove,model-check",
        })
        print(f"POST /verify        -> {record['verdict']} "
              f"[{record['reason_code']}] via {record['tactic']}")
        if record["counterexample"]:
            print("  counterexample:", record["counterexample"].splitlines()[0])

        # -- a streamed batch: JSONL in, JSONL out, errors isolated -------
        lines = "\n".join([
            json.dumps({"id": "distinct-free",
                        "left": "SELECT * FROM emp e",
                        "right": "SELECT DISTINCT * FROM emp e"}),
            "this line is not JSON",
            json.dumps({"id": "filter-merge",
                        "left": "SELECT * FROM (SELECT * FROM emp e "
                                "WHERE e.sal > 100) t WHERE t.deptno = 10",
                        "right": "SELECT * FROM emp e "
                                 "WHERE e.sal > 100 AND e.deptno = 10"}),
        ]) + "\n"
        print("\nPOST /verify/batch  (3 lines, one malformed):")
        for record in client.verify_batch(lines):
            if "error" in record:
                print(f"  line {record['error']['line']}: "
                      f"{record['error']['code']}")
            else:
                print(f"  {record['id']}: {record['verdict']} "
                      f"[{record['reason_code']}]")

        # -- replay the built-in corpus as a health benchmark -------------
        summary = client.corpus("bugs")
        print(f"\nPOST /corpus        -> {summary['rules']} rules in "
              f"{summary['elapsed_seconds'] * 1000:.0f} ms, "
              f"verdicts {summary['verdicts']}")

        # -- the service knows how warm and loaded it is ------------------
        stats = client.stats()
        spread = [m["requests"] for m in stats["pool"]["members"]]
        print(f"\nGET /stats          -> {stats['results']} results, "
              f"verdicts {stats['verdicts']}, "
              f"{stats['bad_requests']} bad request(s), "
              f"member load {spread}, "
              f"{stats['admission']['rejected']} shed, "
              f"uptime {stats['uptime_seconds']}s, "
              f"store "
              f"{stats['pool']['store'].get('health', {}).get('state', 'n/a')}")


if __name__ == "__main__":
    main()
