"""The pluggable decision pipeline and streaming verification.

Demonstrates the three pieces the unified Session API adds on top of the
classic prover:

1. **PipelineConfig** — order and budget the decision tactics.  Here the
   bounded model checker runs after the prover, so inequivalent pairs
   come back *refuted with a concrete counterexample database* instead
   of a bare ``not_proved``.
2. **Structured results** — every outcome is a ``VerifyResult`` with a
   stable machine-readable reason code that round-trips through JSON.
3. **verify_many** — a streaming generator over an arbitrary request
   iterable with a bounded in-flight window (feed it a million-line
   corpus reader; nothing materializes).

Run:  python examples/session_pipeline.py
"""

import json

from repro import PipelineConfig, Session, VerifyRequest, VerifyResult

DDL = """
schema parts_s(pnum:int, qoh:int);
schema supply_s(pnum:int, shipdate:int);
table parts(parts_s);
table supply(supply_s);
"""

session = Session.from_program_text(
    DDL,
    PipelineConfig(
        tactics=("udp-prove", "cq-minimize", "model-check"),
        timeout_seconds=10.0,
        model_check_attempts=12,
    ),
)


def request_stream():
    """Any iterable works — here a generator of three requests."""
    yield VerifyRequest(
        left="SELECT p.pnum AS pnum FROM parts p WHERE p.qoh = 1",
        right="SELECT p.pnum AS pnum FROM parts p WHERE 1 = p.qoh",
        request_id="commute-eq",
    )
    yield VerifyRequest(
        left="SELECT p.pnum AS pnum FROM parts p",
        right="SELECT DISTINCT p.pnum AS pnum FROM parts p",
        request_id="bag-vs-set",
    )
    yield VerifyRequest(
        left="SELECT p.pnum AS pnum FROM parts p WHERE p.qoh = 1",
        right="SELECT p.pnum AS pnum FROM parts p WHERE p.qoh = 2",
        request_id="different-filters",
    )


def main() -> None:
    for result in session.verify_many(request_stream(), window=2):
        line = json.dumps(result.to_json(), sort_keys=True)
        # The JSON form round-trips: parse it back into an equal record.
        assert VerifyResult.from_json(json.loads(line)).to_json() == result.to_json()
        print(line)
        if result.counterexample:
            print("  counterexample:")
            for row in result.counterexample.splitlines():
                print(f"    {row}")
    print()
    print(f"concluded by tactic: {session.stats.concluded_by}")


if __name__ == "__main__":
    main()
