"""The Sec. 5.4 Starburst rewrite: mixed set/bag semantics with a key.

A DISTINCT subquery joined on a key collapses into a single DISTINCT join —
the first rewrite the paper formally proves (via Theorem 4.3's squash
invariance).  We prove it, then empirically confirm on random databases that
the two queries agree, and that dropping the key makes them disagree.

Run:  python examples/starburst_distinct.py
"""

from repro import Solver
from repro.checker import ModelChecker

PROGRAM = """
schema price_s(itemno:int, np:int);
schema itm_s(itemno:int, type:int);
table price(price_s);
table itm(itm_s);
key itm(itemno);
"""

Q1 = """
SELECT ip.np AS np, itm.type AS type, itm.itemno AS itemno
FROM (SELECT DISTINCT price.itemno AS itn, price.np AS np
      FROM price price WHERE price.np > 1000) ip, itm itm
WHERE ip.itn = itm.itemno
"""

Q2 = """
SELECT DISTINCT price.np AS np, itm.type AS type, itm.itemno AS itemno
FROM price price, itm itm
WHERE price.np > 1000 AND price.itemno = itm.itemno
"""


def main() -> None:
    solver = Solver.from_program_text(PROGRAM)
    outcome = solver.check(Q1, Q2)
    print("with key itm(itemno):", outcome.verdict.value)
    print("axioms used:", ", ".join(outcome.trace.axioms_used()))
    assert outcome.proved

    checker = ModelChecker(solver.catalog, seed=5)
    print(
        "engine agreement on random keyed databases:",
        checker.agree_on_random(Q1, Q2, attempts=10),
    )

    # Without the key, Q1 can return duplicate rows that Q2 removes.
    unkeyed = Solver.from_program_text(PROGRAM.replace("key itm(itemno);", ""))
    outcome = unkeyed.check(Q1, Q2)
    print("without the key:", outcome.verdict.value)
    assert not outcome.proved
    witness = ModelChecker(unkeyed.catalog, seed=5).find_counterexample(Q1, Q2)
    if witness is not None:
        print("counterexample without the key:")
        print(witness.describe())


if __name__ == "__main__":
    main()
