"""The COUNT bug (Ganski & Wong, SIGMOD'87): prover refuses, checker refutes.

The classic nested-aggregate unnesting silently drops parts with *no*
matching supply rows (COUNT over an empty group is 0, but the join loses the
group entirely).  The paper's system correctly fails to prove it; the
complementary bounded model checker produces the concrete witness.

Run:  python examples/count_bug.py
"""

from repro import Solver
from repro.checker import ModelChecker

PROGRAM = """
schema parts_s(pnum:int, qoh:int);
schema supply_s(pnum:int, shipdate:int);
table parts(parts_s);
table supply(supply_s);
"""

NESTED = """
SELECT p.pnum AS pnum FROM parts p
WHERE p.qoh = count(SELECT s.shipdate AS shipdate FROM supply s
                    WHERE s.pnum = p.pnum AND s.shipdate < 10)
"""

UNNESTED = """
SELECT p.pnum AS pnum
FROM parts p,
     (SELECT s.pnum AS pnum, count(s.shipdate) AS ct
      FROM supply s WHERE s.shipdate < 10 GROUP BY s.pnum) temp
WHERE p.qoh = temp.ct AND p.pnum = temp.pnum
"""


def main() -> None:
    solver = Solver.from_program_text(PROGRAM)
    outcome = solver.check(NESTED, UNNESTED)
    print("prover verdict:", outcome.verdict.value)
    assert not outcome.proved, "soundness: the count bug must never be proved"

    checker = ModelChecker(solver.catalog)
    witness = checker.find_counterexample(NESTED, UNNESTED)
    assert witness is not None
    print()
    print("the rewrite is wrong — witness found by the model checker:")
    print(witness.describe())
    print()
    print(
        "interpretation: the part has qoh = 0 and no supply rows; the nested\n"
        "query keeps it (COUNT of the empty set is 0) while the unnested\n"
        "join drops it (no group to join against)."
    )


if __name__ == "__main__":
    main()
