"""Quickstart: prove SQL query equivalences in a few lines.

The unified :class:`repro.Session` API takes SQL text in and hands back
structured results — a verdict, a stable machine-readable reason code,
the tactic that concluded, and (for refuted pairs) a counterexample.

Migration note: the legacy ``Solver``/``prove`` API keeps working as a
thin shim (``Solver.check(l, r)`` ≡ ``Session.verify(l, r)`` restricted
to the ``udp-prove`` tactic), but new code should prefer ``Session``.

Run:  python examples/quickstart.py
"""

from repro import Session

# Declare the database: schemas, tables, and integrity constraints, using the
# paper's input language (Fig. 2).
session = Session.from_program_text(
    """
    schema emp_s(empno:int, ename:string, deptno:int, sal:int);
    schema dept_s(deptno:int, dname:string);
    table emp(emp_s);
    table dept(dept_s);
    key emp(empno);
    key dept(deptno);
    foreign key emp(deptno) references dept(deptno);
    """
)

PAIRS = [
    (
        "filter merge",
        "SELECT * FROM (SELECT * FROM emp e WHERE e.sal > 100) t WHERE t.deptno = 10",
        "SELECT * FROM emp e WHERE e.sal > 100 AND e.deptno = 10",
    ),
    (
        "foreign-key join elimination",
        "SELECT e.empno AS empno FROM emp e, dept d WHERE e.deptno = d.deptno",
        "SELECT e.empno AS empno FROM emp e",
    ),
    (
        "DISTINCT is free on keyed output",
        "SELECT * FROM emp e",
        "SELECT DISTINCT * FROM emp e",
    ),
    (
        "NOT equivalent: a bag self-join is not the identity",
        "SELECT e.sal AS sal FROM emp e, emp f",
        "SELECT e.sal AS sal FROM emp e",
    ),
]


def main() -> None:
    for name, left, right in PAIRS:
        result = session.verify(left, right)
        status = "EQUIVALENT" if result.proved else "NOT PROVED"
        print(
            f"[{status:10s}] {name}  "
            f"({result.reason_code.value} via {result.tactic}, "
            f"{result.elapsed_seconds * 1000:.1f} ms)"
        )
        print(f"    Q1: {left.strip()}")
        print(f"    Q2: {right.strip()}")
        if result.proved and result.trace is not None:
            print(f"    axioms used: {', '.join(result.trace.axioms_used())}")
        if result.counterexample:
            first_line = result.counterexample.splitlines()[0]
            print(f"    refuted: {first_line}")
        print()
    print(f"session stats: {session.stats}")


if __name__ == "__main__":
    main()
