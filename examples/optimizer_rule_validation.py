"""Validate an optimizer's rewrite-rule corpus, CI-style.

This is the paper's motivating use case (Sec. 1): a query engine like
Apache Calcite ships hundreds of rewrite rules with no formal validation.
The script runs UDP over the bundled corpus (literature + Calcite-shaped +
documented bugs) and prints a Fig. 5-style report; any *proved* bug or any
regression on an expected-proved rule fails the run.

Run:  python examples/optimizer_rule_validation.py
"""

import sys
import time

from repro import Solver
from repro.corpus import Expectation, all_rules
from repro.udp.trace import Verdict


def main() -> int:
    per_dataset = {}
    failures = []
    for rule in all_rules():
        solver = Solver.from_program_text(rule.program)
        started = time.monotonic()
        outcome = solver.check(rule.left, rule.right)
        elapsed_ms = (time.monotonic() - started) * 1000
        stats = per_dataset.setdefault(
            rule.dataset, {"total": 0, "proved": 0, "unproved": 0, "unsupported": 0}
        )
        stats["total"] += 1
        if outcome.verdict is Verdict.PROVED:
            stats["proved"] += 1
        elif outcome.verdict is Verdict.UNSUPPORTED:
            stats["unsupported"] += 1
        else:
            stats["unproved"] += 1
        matches = outcome.verdict.value == rule.expectation.value
        marker = "ok" if matches else "REGRESSION"
        if not matches:
            failures.append(rule.rule_id)
        print(
            f"{marker:10s} {rule.rule_id:8s} {outcome.verdict.value:12s} "
            f"{elapsed_ms:7.1f} ms  {rule.name}"
        )

    print()
    print(f"{'dataset':12s} {'rules':>6s} {'proved':>7s} {'unproved':>9s} "
          f"{'unsupported':>12s}")
    for dataset, stats in sorted(per_dataset.items()):
        print(
            f"{dataset:12s} {stats['total']:6d} {stats['proved']:7d} "
            f"{stats['unproved']:9d} {stats['unsupported']:12d}"
        )
    if failures:
        print(f"\nREGRESSIONS: {failures}")
        return 1
    print("\nall rules behave as the evaluation expects")
    return 0


if __name__ == "__main__":
    sys.exit(main())
