"""The paper's Fig. 1 / Ex. 4.7 walkthrough: proving an index rewrite.

The optimizer replaces a table scan with an index lookup.  Correctness
depends on two integrity constraints: ``k`` is a key of ``r``, and ``i`` is
an index on ``r.a`` (a GMAP view projecting the key and the indexed
attribute).  The script shows every stage of the pipeline: U-expressions,
SPNF, the canonical forms, and the axioms used in the proof.

Run:  python examples/index_rewrite.py
"""

from repro import Solver
from repro.constraints.model import constraints_from_catalog
from repro.udp.canonize import canonize_form
from repro.usr.pretty import pretty_form
from repro.usr.spnf import normalize

PROGRAM = """
schema s(k:int, a:int);
table r(s);
key r(k);
index i on r(a);
"""

Q1 = "SELECT * FROM r t WHERE t.a >= 12"
Q2 = "SELECT t2.* FROM i t1, r t2 WHERE t1.k = t2.k AND t1.a >= 12"


def main() -> None:
    solver = Solver.from_program_text(PROGRAM)

    print("Q1 (scan):  ", Q1)
    print("Q2 (index): ", Q2)
    print()

    left = solver.compile(Q1)
    right = solver.compile(Q2)
    print("-- U-expression of Q1 (λ%s):" % left.var)
    print("  ", left.body)
    print("-- U-expression of Q2 (λ%s), index view inlined:" % right.var)
    print("  ", right.body)
    print()

    constraints = constraints_from_catalog(solver.catalog)
    print("-- SPNF of Q2:")
    form = normalize(right.body)
    print("  ", pretty_form(form))
    print()
    print("-- canonical form of Q2 under", constraints, ":")
    canonical = canonize_form(form, constraints, {right.var: right.schema})
    print("  ", pretty_form(canonical))
    print()

    outcome = solver.check(Q1, Q2)
    print("verdict:", outcome.verdict.value)
    print("axioms used:", ", ".join(outcome.trace.axioms_used()))
    assert outcome.proved


if __name__ == "__main__":
    main()
