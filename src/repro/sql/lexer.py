"""Tokenizer for the SQL fragment and the declaration language.

The lexer is deliberately small: identifiers/keywords, integer and string
literals, punctuation, comparison operators, the generic-schema marker ``??``,
and SQL line comments (``--``).  Keywords are matched case-insensitively, and
the original spelling of identifiers is preserved (SQL identifiers here are
case-sensitive, matching the paper's Cosette input files).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import LexError

#: Keywords of the combined query + declaration language.
KEYWORDS = frozenset(
    {
        "select",
        "distinct",
        "from",
        "where",
        "group",
        "by",
        "union",
        "all",
        "except",
        "exists",
        "not",
        "and",
        "or",
        "true",
        "false",
        "as",
        "schema",
        "table",
        "key",
        "foreign",
        "references",
        "view",
        "index",
        "on",
        "verify",
        "like",
        "having",
        "intersect",
        "in",
    }
)

_PUNCT = {
    "(": "LPAREN",
    ")": "RPAREN",
    ",": "COMMA",
    ";": "SEMI",
    ".": "DOT",
    "*": "STAR",
    ":": "COLON",
    "+": "PLUS",
    "-": "MINUS",
    "/": "SLASH",
}


@dataclass(frozen=True)
class Token:
    """A lexical token.

    Attributes:
        kind: one of ``IDENT``, ``KEYWORD``, ``INT``, ``STRING``, ``OP``,
            ``QQ`` (the ``??`` marker), or a punctuation kind from ``_PUNCT``.
        value: the token text; keywords are lower-cased.
        line: 1-based source line.
        column: 1-based source column.
    """

    kind: str
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "KEYWORD" and self.value == word

    def __str__(self) -> str:
        return f"{self.kind}({self.value!r})"


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; raises :class:`LexError` on invalid input."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(text)
    while i < n:
        ch = text[i]
        # Whitespace and newlines.
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # Line comments: -- to end of line.
        if ch == "-" and i + 1 < n and text[i + 1] == "-":
            while i < n and text[i] != "\n":
                i += 1
            continue
        # String literals in single quotes.
        if ch == "'":
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\n":
                    raise LexError("unterminated string literal", line, col)
                j += 1
            if j >= n:
                raise LexError("unterminated string literal", line, col)
            yield Token("STRING", text[i + 1 : j], line, col)
            col += j - i + 1
            i = j + 1
            continue
        # Integer literals.
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            yield Token("INT", text[i:j], line, col)
            col += j - i
            i = j
            continue
        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.lower() in KEYWORDS:
                yield Token("KEYWORD", word.lower(), line, col)
            else:
                yield Token("IDENT", word, line, col)
            col += j - i
            i = j
            continue
        # Multi-character operators.
        two = text[i : i + 2]
        if two == "??":
            yield Token("QQ", "??", line, col)
            i += 2
            col += 2
            continue
        if two in ("==", "<>", "<=", ">=", "!="):
            value = "<>" if two == "!=" else two
            yield Token("OP", value, line, col)
            i += 2
            col += 2
            continue
        if ch in ("=", "<", ">"):
            yield Token("OP", ch, line, col)
            i += 1
            col += 1
            continue
        if ch in _PUNCT:
            yield Token(_PUNCT[ch], ch, line, col)
            i += 1
            col += 1
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)
