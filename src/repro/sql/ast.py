"""SQL abstract syntax for the fragment of Fig. 2.

The node hierarchy mirrors the paper's grammar:

* queries — table references, ``SELECT``, ``FROM``, ``WHERE``, ``UNION ALL``,
  ``EXCEPT``, ``DISTINCT``, plus surface-level ``GROUP BY`` (desugared before
  compilation, see :mod:`repro.sql.desugar`);
* predicates — equality, the boolean connectives, ``TRUE``/``FALSE``,
  ``EXISTS``, and *uninterpreted* binary comparisons (``<``, ``<=``, …) which
  the decision procedure treats as opaque predicate symbols;
* expressions — attribute references ``x.a``, uninterpreted function
  application ``f(e, …)``, aggregates over subqueries ``agg(q)``, constants;
* projections — ``*``, ``x.*``, ``e AS a``, and comma lists.

All nodes are immutable; derived stages never mutate an AST in place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for scalar expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class ColumnRef(Expr):
    """An attribute reference ``x.a`` (alias ``x`` may be empty pre-scope)."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Constant(Expr):
    """A literal constant (integer, string, or boolean)."""

    value: Union[int, str, bool]

    def __str__(self) -> str:
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class FuncCall(Expr):
    """An uninterpreted scalar function application ``f(e1, ..., en)``."""

    name: str
    args: Tuple[Expr, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class AggCall(Expr):
    """An aggregate applied to a subquery: ``agg(q)``.

    Surface SQL like ``SUM(x.a) ... GROUP BY x.k`` is desugared into this form
    (Sec. 3.2): the aggregate's operand becomes a correlated single-column
    subquery.  The decision procedure treats ``agg`` as an uninterpreted
    function of the (canonized) subquery denotation.
    """

    name: str
    query: "Query"

    def __str__(self) -> str:
        return f"{self.name}({self.query})"


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


class Pred:
    """Base class for predicates."""

    __slots__ = ()


@dataclass(frozen=True)
class BinPred(Pred):
    """A binary comparison ``e1 op e2``.

    ``op`` is one of ``=``, ``<>``, ``<``, ``<=``, ``>``, ``>=``, ``LIKE``.
    Only ``=`` (and its complement ``<>``) receive an interpreted semantics
    (axioms (12)–(14)); the rest are uninterpreted predicate symbols.
    """

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class NotPred(Pred):
    inner: Pred

    def __str__(self) -> str:
        return f"NOT ({self.inner})"


@dataclass(frozen=True)
class AndPred(Pred):
    left: Pred
    right: Pred

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class OrPred(Pred):
    left: Pred
    right: Pred

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class TruePred(Pred):
    def __str__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class FalsePred(Pred):
    def __str__(self) -> str:
        return "FALSE"


@dataclass(frozen=True)
class Exists(Pred):
    """``EXISTS q`` — squash of the subquery denotation."""

    query: "Query"
    negated: bool = False

    def __str__(self) -> str:
        prefix = "NOT EXISTS" if self.negated else "EXISTS"
        return f"{prefix} ({self.query})"


@dataclass(frozen=True)
class InPred(Pred):
    """``e [NOT] IN (q)`` — membership in a single-column subquery.

    An extension beyond the paper's prototype (listed as future work in
    Sec. 6.4): name resolution lowers it to the classical correlated
    ``EXISTS`` form once the subquery's output column is known.
    """

    expr: "Expr"
    query: "Query"
    negated: bool = False

    def __str__(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        return f"{self.expr} {op} ({self.query})"


# ---------------------------------------------------------------------------
# Projections
# ---------------------------------------------------------------------------


class Projection:
    """Base class for projection items."""

    __slots__ = ()


@dataclass(frozen=True)
class Star(Projection):
    """``SELECT *``."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class TableStar(Projection):
    """``SELECT x.*``."""

    table: str

    def __str__(self) -> str:
        return f"{self.table}.*"


@dataclass(frozen=True)
class ExprAs(Projection):
    """``SELECT e AS a``; ``alias`` may be empty for bare column refs."""

    expr: Expr
    alias: str

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.column
        return ""

    def __str__(self) -> str:
        if self.alias:
            return f"{self.expr} AS {self.alias}"
        return str(self.expr)


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


class Query:
    """Base class for queries."""

    __slots__ = ()


@dataclass(frozen=True)
class TableRef(Query):
    """A base table or view reference by name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FromItem:
    """One aliased item in a ``FROM`` clause: ``q AS x``."""

    query: Query
    alias: str

    def __str__(self) -> str:
        if isinstance(self.query, TableRef):
            return f"{self.query} {self.alias}"
        return f"({self.query}) {self.alias}"


@dataclass(frozen=True)
class Select(Query):
    """``SELECT [DISTINCT] p FROM f1, ..., fn [WHERE b] [GROUP BY ...]``.

    This is the surface form produced by the parser.  ``group_by`` and
    aggregate projections are removed by :mod:`repro.sql.desugar` before
    compilation; the core pipeline only sees grouped queries in their
    desugared, correlated-subquery form.
    """

    projections: Tuple[Projection, ...]
    from_items: Tuple[FromItem, ...]
    where: Optional[Pred] = None
    group_by: Tuple[ColumnRef, ...] = field(default=())
    distinct: bool = False

    def __str__(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(str(p) for p in self.projections))
        if self.from_items:
            parts.append("FROM " + ", ".join(str(f) for f in self.from_items))
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(c) for c in self.group_by))
        return " ".join(parts)


@dataclass(frozen=True)
class Where(Query):
    """``q WHERE b`` as a standalone combinator (Fig. 2 allows it)."""

    query: Query
    predicate: Pred

    def __str__(self) -> str:
        return f"({self.query}) WHERE {self.predicate}"


@dataclass(frozen=True)
class UnionAll(Query):
    """``q1 UNION ALL q2`` — bag union (addition in the U-semiring)."""

    left: Query
    right: Query

    def __str__(self) -> str:
        return f"({self.left}) UNION ALL ({self.right})"


@dataclass(frozen=True)
class Except(Query):
    """``q1 EXCEPT q2`` — anti-semijoin semantics per Fig. 12.

    ``⟦q1 EXCEPT q2⟧(t) = ⟦q1⟧(t) × not(⟦q2⟧(t))``: keeps every ``q1``
    occurrence of tuples absent from ``q2``.
    """

    left: Query
    right: Query

    def __str__(self) -> str:
        return f"({self.left}) EXCEPT ({self.right})"


@dataclass(frozen=True)
class Intersect(Query):
    """``q1 INTERSECT q2`` — SQL set intersection.

    Extension beyond the paper's prototype: denotes ``‖⟦q1⟧(t) × ⟦q2⟧(t)‖``
    (the distinct tuples present in both operands).
    """

    left: Query
    right: Query

    def __str__(self) -> str:
        return f"({self.left}) INTERSECT ({self.right})"


@dataclass(frozen=True)
class DistinctQuery(Query):
    """``DISTINCT q`` — duplicate elimination (squash)."""

    query: Query

    def __str__(self) -> str:
        return f"DISTINCT ({self.query})"


@dataclass(frozen=True)
class GroupBy(Query):
    """Explicit grouping combinator retained for pretty-printing round trips.

    The parser produces :class:`Select` with ``group_by`` set; this node only
    appears when building ASTs programmatically.
    """

    query: Query
    keys: Tuple[ColumnRef, ...]

    def __str__(self) -> str:
        return f"({self.query}) GROUP BY " + ", ".join(str(k) for k in self.keys)


#: Aggregate function names recognized by the parser; matched
#: case-insensitively.  All are uninterpreted to the decision procedure.
AGGREGATE_NAMES = ("sum", "count", "avg", "min", "max")


def is_aggregate_name(name: str) -> bool:
    return name.lower() in AGGREGATE_NAMES
