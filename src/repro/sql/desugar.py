"""Syntactic desugaring of surface SQL into the core fragment.

Two rewrites, both from Sec. 3.2 of the paper:

* ``GROUP BY`` elimination — a grouped query becomes a ``SELECT DISTINCT``
  over the group keys, with every aggregate call turned into an ``agg(q)``
  over a correlated subquery that recomputes the group::

      SELECT x.k AS k, sum(x.a) AS s FROM R x GROUP BY x.k
      ==>
      SELECT DISTINCT y.k AS k,
             sum(SELECT x.a AS a FROM R x WHERE x.k = y.k) AS s
      FROM R y

  (The paper's displayed rewrite omits the DISTINCT; we include it, as the
  HoTTSQL/Cosette lineage does, so the desugared query returns one row per
  group under bag semantics.  Since aggregates are uninterpreted, both reads
  compare identically inside the decision procedure.)

* ``HAVING`` attachment — once grouping is gone, a HAVING clause is an extra
  conjunct of the outer WHERE, with its aggregate calls desugared the same
  way.

Desugaring runs *after* name resolution, so every column reference is already
alias-qualified and group keys are unambiguous.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from repro.errors import CompileError
from repro.sql.ast import (
    AggCall,
    AndPred,
    BinPred,
    ColumnRef,
    Constant,
    DistinctQuery,
    Except,
    Exists,
    Expr,
    ExprAs,
    FalsePred,
    FromItem,
    FuncCall,
    Intersect,
    NotPred,
    OrPred,
    Pred,
    Projection,
    Query,
    Select,
    Star,
    TableRef,
    TableStar,
    TruePred,
    UnionAll,
    Where,
    is_aggregate_name,
)

_fresh_counter = itertools.count()


def _fresh_alias(base: str) -> str:
    return f"{base}__g{next(_fresh_counter)}"


def attach_having(query: Query, having: Pred) -> Query:
    """Record a HAVING clause by folding it into the select's WHERE.

    Called by the parser; at that point grouping is still present, so the
    predicate simply joins the WHERE conjunction and is desugared together
    with the aggregates later.
    """
    if not isinstance(query, Select):
        raise CompileError("HAVING requires a SELECT query")
    where = having if query.where is None else AndPred(query.where, having)
    return Select(query.projections, query.from_items, where, query.group_by,
                  distinct=query.distinct)


def desugar_query(query: Query) -> Query:
    """Remove all GROUP BY clauses from ``query`` (recursively)."""
    if isinstance(query, TableRef):
        return query
    if isinstance(query, Select):
        desugared = Select(
            tuple(_desugar_projection(p) for p in query.projections),
            tuple(FromItem(desugar_query(f.query), f.alias) for f in query.from_items),
            _desugar_pred(query.where) if query.where is not None else None,
            query.group_by,
            distinct=query.distinct,
        )
        if desugared.group_by or _projects_aggregate(desugared):
            return _desugar_group_by(desugared)
        return desugared
    if isinstance(query, Where):
        return Where(desugar_query(query.query), _desugar_pred(query.predicate))
    if isinstance(query, UnionAll):
        return UnionAll(desugar_query(query.left), desugar_query(query.right))
    if isinstance(query, Except):
        return Except(desugar_query(query.left), desugar_query(query.right))
    if isinstance(query, Intersect):
        return Intersect(desugar_query(query.left), desugar_query(query.right))
    if isinstance(query, DistinctQuery):
        return DistinctQuery(desugar_query(query.query))
    raise CompileError(f"cannot desugar query node {type(query).__name__}")


def _desugar_projection(proj: Projection) -> Projection:
    if isinstance(proj, ExprAs):
        return ExprAs(_desugar_expr(proj.expr), proj.alias)
    return proj


def _desugar_pred(pred: Pred) -> Pred:
    if isinstance(pred, BinPred):
        return BinPred(pred.op, _desugar_expr(pred.left), _desugar_expr(pred.right))
    if isinstance(pred, NotPred):
        return NotPred(_desugar_pred(pred.inner))
    if isinstance(pred, AndPred):
        return AndPred(_desugar_pred(pred.left), _desugar_pred(pred.right))
    if isinstance(pred, OrPred):
        return OrPred(_desugar_pred(pred.left), _desugar_pred(pred.right))
    if isinstance(pred, Exists):
        return Exists(desugar_query(pred.query), negated=pred.negated)
    return pred


def _desugar_expr(expr: Expr) -> Expr:
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, tuple(_desugar_expr(a) for a in expr.args))
    if isinstance(expr, AggCall):
        return AggCall(expr.name, desugar_query(expr.query))
    return expr


# ---------------------------------------------------------------------------
# GROUP BY elimination
# ---------------------------------------------------------------------------


def _desugar_group_by(query: Select) -> Query:
    """Rewrite one grouped SELECT per the Sec. 3.2 recipe."""
    rename: Dict[str, str] = {
        item.alias: _fresh_alias(item.alias) for item in query.from_items
    }
    outer_items = tuple(
        FromItem(item.query, rename[item.alias]) for item in query.from_items
    )
    group_keys = query.group_by

    def outer_ref(ref: ColumnRef) -> ColumnRef:
        if ref.table not in rename:
            raise CompileError(
                f"group key {ref} does not reference a FROM alias of this query"
            )
        return ColumnRef(rename[ref.table], ref.column)

    # Partition the WHERE into row-level conjuncts (kept inside the group
    # subqueries and, alias-renamed, on the outer query) and HAVING-style
    # aggregate conjuncts (rewritten onto the outer query only).
    row_level: List[Pred] = []
    if query.where is not None:
        every_conjunct: List[Pred] = []
        _flatten_and(query.where, every_conjunct)
        row_level = [c for c in every_conjunct if not _mentions_aggregate(c)]

    def make_group_subquery(operand: Expr) -> Query:
        """The correlated subquery recomputing one group, projecting operand."""
        conjuncts: List[Pred] = []
        for key in group_keys:
            conjuncts.append(BinPred("=", key, outer_ref(key)))
        conjuncts.extend(row_level)
        predicate: Pred = None
        for conjunct in conjuncts:
            predicate = conjunct if predicate is None else AndPred(predicate, conjunct)
        if isinstance(operand, ColumnRef) and operand.column == "*":
            projection: Projection = Star()
        else:
            projection = ExprAs(operand, "agg_arg")
        return Select((projection,), query.from_items, predicate)

    def rewrite_expr(expr: Expr) -> Expr:
        if isinstance(expr, FuncCall):
            if is_aggregate_name(expr.name):
                if len(expr.args) != 1:
                    raise CompileError(
                        f"aggregate {expr.name} expects one operand, got "
                        f"{len(expr.args)}"
                    )
                return AggCall(expr.name, make_group_subquery(expr.args[0]))
            return FuncCall(expr.name, tuple(rewrite_expr(a) for a in expr.args))
        if isinstance(expr, AggCall):
            return expr  # already in agg(q) form
        if isinstance(expr, ColumnRef):
            # A bare column in a grouped SELECT must be a group key.
            if expr in group_keys:
                return outer_ref(expr)
            for key in group_keys:
                if key.table == expr.table and key.column == expr.column:
                    return outer_ref(expr)
            raise CompileError(
                f"column {expr} in grouped SELECT is not a group key or aggregate"
            )
        if isinstance(expr, Constant):
            return expr
        raise CompileError(
            f"unsupported expression {type(expr).__name__} in grouped SELECT"
        )

    def rewrite_pred(pred: Pred) -> Pred:
        if isinstance(pred, BinPred):
            return BinPred(pred.op, rewrite_expr(pred.left), rewrite_expr(pred.right))
        if isinstance(pred, NotPred):
            return NotPred(rewrite_pred(pred.inner))
        if isinstance(pred, AndPred):
            return AndPred(rewrite_pred(pred.left), rewrite_pred(pred.right))
        if isinstance(pred, OrPred):
            return OrPred(rewrite_pred(pred.left), rewrite_pred(pred.right))
        return pred

    projections: List[Projection] = []
    for proj in query.projections:
        if not isinstance(proj, ExprAs):
            raise CompileError("grouped SELECT requires explicit projections")
        projections.append(ExprAs(rewrite_expr(proj.expr), proj.alias))

    # The outer query determines which groups exist: it keeps the row-level
    # WHERE (with outer aliases) and additionally the HAVING-style conjuncts
    # rewritten over aggregate subqueries.
    having_conjuncts = _split_having(query.where, group_keys)
    outer_where: Pred = None
    for conjunct in row_level:
        renamed = _rename_aliases_pred(conjunct, rename)
        outer_where = renamed if outer_where is None else AndPred(outer_where, renamed)
    for conjunct in having_conjuncts:
        rewritten = rewrite_pred(conjunct)
        outer_where = (
            rewritten if outer_where is None else AndPred(outer_where, rewritten)
        )

    return Select(
        tuple(projections), outer_items, outer_where, (), distinct=True
    )


def _rename_aliases_pred(pred: Pred, rename: Dict[str, str]) -> Pred:
    if isinstance(pred, BinPred):
        return BinPred(
            pred.op,
            _rename_aliases_expr(pred.left, rename),
            _rename_aliases_expr(pred.right, rename),
        )
    if isinstance(pred, NotPred):
        return NotPred(_rename_aliases_pred(pred.inner, rename))
    if isinstance(pred, AndPred):
        return AndPred(
            _rename_aliases_pred(pred.left, rename),
            _rename_aliases_pred(pred.right, rename),
        )
    if isinstance(pred, OrPred):
        return OrPred(
            _rename_aliases_pred(pred.left, rename),
            _rename_aliases_pred(pred.right, rename),
        )
    if isinstance(pred, Exists):
        # Correlated EXISTS inside a grouped WHERE references outer aliases;
        # renaming inside arbitrary subqueries is out of the supported
        # fragment for grouping, so reject loudly rather than mis-scope.
        raise CompileError("EXISTS subqueries are not supported inside GROUP BY WHERE")
    return pred


def _rename_aliases_expr(expr: Expr, rename: Dict[str, str]) -> Expr:
    if isinstance(expr, ColumnRef):
        if expr.table in rename:
            return ColumnRef(rename[expr.table], expr.column)
        return expr
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name, tuple(_rename_aliases_expr(a, rename) for a in expr.args)
        )
    return expr


def _split_having(where: Pred, group_keys: Tuple[ColumnRef, ...]) -> List[Pred]:
    """Pull out WHERE conjuncts that mention aggregates (i.e. came from HAVING).

    Plain row-level conjuncts stay inside the group subqueries (handled by
    ``make_group_subquery`` using the full WHERE); only aggregate-bearing
    conjuncts must move to the outer query, since they filter whole groups.
    """
    if where is None:
        return []
    conjuncts: List[Pred] = []
    _flatten_and(where, conjuncts)
    return [c for c in conjuncts if _mentions_aggregate(c)]


def _flatten_and(pred: Pred, out: List[Pred]) -> None:
    if isinstance(pred, AndPred):
        _flatten_and(pred.left, out)
        _flatten_and(pred.right, out)
    else:
        out.append(pred)


def _mentions_aggregate(pred: Pred) -> bool:
    if isinstance(pred, BinPred):
        return _expr_mentions_aggregate(pred.left) or _expr_mentions_aggregate(
            pred.right
        )
    if isinstance(pred, NotPred):
        return _mentions_aggregate(pred.inner)
    if isinstance(pred, (AndPred, OrPred)):
        return _mentions_aggregate(pred.left) or _mentions_aggregate(pred.right)
    return False


def _projects_aggregate(query: Select) -> bool:
    """True when a SELECT without GROUP BY projects a raw aggregate call.

    Global aggregates (``SELECT count(*) FROM R``) are desugared as a
    zero-key grouping.  Note the SQL edge the fragment does not capture: a
    true global aggregate returns one row even on empty input, whereas the
    desugared query returns none — this is the exact blind spot behind the
    "count bug" (Sec. 6.2), which the decision procedure must *not* prove.
    """
    for proj in query.projections:
        if isinstance(proj, ExprAs) and _expr_mentions_aggregate(proj.expr):
            # AggCall means the projection is already in agg(q) form.
            if not isinstance(proj.expr, AggCall):
                return True
    return False


def _expr_mentions_aggregate(expr: Expr) -> bool:
    if isinstance(expr, FuncCall):
        if is_aggregate_name(expr.name):
            return True
        return any(_expr_mentions_aggregate(a) for a in expr.args)
    return isinstance(expr, AggCall)
