"""Schemas, attributes, and the data model of the supported SQL fragment.

A schema is an ordered list of named, typed attributes, optionally *generic*:
a generic schema (declared with a trailing ``??`` in the input language)
contains at least the listed attributes but may contain more.  Generic schemas
let rewrite rules quantify over arbitrary tables, exactly as in the paper's
Cosette input language (Appendix A.1).

Types are nominal tags (``int``, ``bool``, ``string``); the decision procedure
treats all value domains as uninterpreted, so types only drive sanity checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

from repro.errors import SchemaError
from repro.hashcons import cached_structural_hash

#: Types accepted by ``schema`` declarations.  The list mirrors Fig. 8's
#: ``Type ::= int | bool | string | ...``; unknown names are accepted and kept
#: as opaque tags, since the semantics never interprets them.
KNOWN_TYPES = ("int", "bool", "string", "float", "date")


@cached_structural_hash
@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute of a schema."""

    name: str
    type: str = "int"

    def __str__(self) -> str:
        return f"{self.name}:{self.type}"


@cached_structural_hash
@dataclass(frozen=True)
class Schema:
    """An ordered collection of attributes, possibly generic.

    Attributes:
        name: the declared schema name (empty for anonymous derived schemas).
        attributes: the known attributes, in declaration order.
        generic: True when the schema was declared with ``??`` — it may carry
            additional unknown attributes, so tuple equality over it cannot be
            decomposed attribute-by-attribute.
    """

    name: str
    attributes: Tuple[Attribute, ...]
    generic: bool = False

    def __post_init__(self) -> None:
        seen = set()
        for attr in self.attributes:
            if attr.name in seen:
                raise SchemaError(
                    f"duplicate attribute {attr.name!r} in schema {self.name!r}"
                )
            seen.add(attr.name)

    @staticmethod
    def of(name: str, *attrs: str, generic: bool = False) -> "Schema":
        """Build a schema from ``"attr:type"`` strings (type defaults to int).

        >>> Schema.of("emp", "empno:int", "name:string").attribute_names()
        ('empno', 'name')
        """
        parsed = []
        for spec in attrs:
            if ":" in spec:
                attr_name, attr_type = spec.split(":", 1)
            else:
                attr_name, attr_type = spec, "int"
            parsed.append(Attribute(attr_name.strip(), attr_type.strip()))
        return Schema(name, tuple(parsed), generic=generic)

    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(attr.name for attr in self.attributes)

    def has_attribute(self, name: str) -> bool:
        return any(attr.name == name for attr in self.attributes)

    def attribute(self, name: str) -> Attribute:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"schema {self.name!r} has no attribute {name!r}")

    def is_concrete(self) -> bool:
        """True when all attributes are known (no ``??``).

        Only concrete schemas support decomposing a tuple equality
        ``[t1 = t2]`` into the conjunction of attribute equalities, which the
        canonizer needs for the Eq. (15) summation-elimination step.
        """
        return not self.generic

    def concat(self, other: "Schema", name: str = "") -> "Schema":
        """Schema of a cross product; attribute names may repeat positionally.

        Duplicate names are disambiguated with a numeric suffix since product
        schemas are only used for anonymous intermediate results.
        """
        attrs = list(self.attributes)
        names = {attr.name for attr in attrs}
        for attr in other.attributes:
            if attr.name in names:
                index = 1
                candidate = f"{attr.name}_{index}"
                while candidate in names:
                    index += 1
                    candidate = f"{attr.name}_{index}"
                attrs.append(Attribute(candidate, attr.type))
                names.add(candidate)
            else:
                attrs.append(attr)
                names.add(attr.name)
        return Schema(name, tuple(attrs), generic=self.generic or other.generic)

    def __str__(self) -> str:
        inner = ", ".join(str(attr) for attr in self.attributes)
        if self.generic:
            inner = f"{inner}, ??" if inner else "??"
        return f"{self.name}({inner})"


def make_anonymous_schema(attrs: Iterable[Attribute], generic: bool = False) -> Schema:
    """Create an unnamed schema for a derived (subquery) result."""
    return Schema("", tuple(attrs), generic=generic)


@dataclass
class Relation:
    """A declared base table: a name bound to a schema.

    Keys and indexes attach to relations via the catalog
    (:class:`repro.sql.program.Catalog`), not here, to keep declaration order
    flexible in input programs.
    """

    name: str
    schema: Schema


@dataclass
class GenericValue:
    """An opaque constant of unknown type used by the model checker."""

    tag: str
    payload: object = None
    extra: Optional[dict] = field(default=None)
