"""Recursive-descent parser for the Fig. 2 SQL fragment and input programs.

Two entry points:

* :func:`parse_query` — parse a single SQL query;
* :func:`parse_program` — parse a sequence of declaration statements plus
  ``verify q1 == q2;`` goals.

The parser is a classical recursive-descent parser over the token stream from
:mod:`repro.sql.lexer`, with one spot of bounded backtracking to disambiguate
parenthesised predicates from parenthesised expressions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.sql.ast import (
    AggCall,
    AndPred,
    BinPred,
    ColumnRef,
    Constant,
    DistinctQuery,
    Except,
    Exists,
    Expr,
    ExprAs,
    FalsePred,
    FromItem,
    FuncCall,
    InPred,
    Intersect,
    NotPred,
    OrPred,
    Pred,
    Projection,
    Query,
    Select,
    Star,
    TableRef,
    TableStar,
    TruePred,
    UnionAll,
    is_aggregate_name,
)
from repro.sql.lexer import Token, tokenize
from repro.sql.program import (
    ForeignKeyDecl,
    IndexDecl,
    KeyDecl,
    Program,
    SchemaDecl,
    TableDecl,
    VerifyStmt,
    ViewDecl,
)
from repro.sql.schema import Attribute, Schema

#: Comparison operators; ``=``/``<>`` are interpreted, the rest opaque.
COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Optional[Token]:
        index = self._pos + offset
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._pos += 1
        return token

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token is not None and token.is_keyword(word)

    def _at_kind(self, kind: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == kind

    def _accept_keyword(self, word: str) -> bool:
        if self._at_keyword(word):
            self._pos += 1
            return True
        return False

    def _accept_kind(self, kind: str) -> Optional[Token]:
        if self._at_kind(kind):
            return self._advance()
        return None

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if token is None or not token.is_keyword(word):
            raise self._error(f"expected keyword {word.upper()!r}")
        return self._advance()

    def _expect_kind(self, kind: str) -> Token:
        token = self._peek()
        if token is None or token.kind != kind:
            raise self._error(f"expected {kind}")
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        if token is None:
            return ParseError(f"{message}, found end of input")
        return ParseError(
            f"{message}, found {token.kind}({token.value!r})", token.line, token.column
        )

    def at_end(self) -> bool:
        return self._pos >= len(self._tokens)

    # -- programs --------------------------------------------------------

    def parse_program(self) -> Program:
        program = Program()
        while not self.at_end():
            program.statements.append(self._statement())
        return program

    def _statement(self):
        if self._accept_keyword("schema"):
            stmt = self._schema_decl()
        elif self._accept_keyword("table"):
            stmt = self._table_decl()
        elif self._accept_keyword("key"):
            stmt = self._key_decl()
        elif self._accept_keyword("foreign"):
            self._expect_keyword("key")
            stmt = self._foreign_key_decl()
        elif self._accept_keyword("view"):
            stmt = self._view_decl()
        elif self._accept_keyword("index"):
            stmt = self._index_decl()
        elif self._accept_keyword("verify"):
            stmt = self._verify_stmt()
        else:
            raise self._error("expected a statement")
        self._expect_kind("SEMI")
        return stmt

    def _schema_decl(self) -> SchemaDecl:
        name = self._expect_kind("IDENT").value
        self._expect_kind("LPAREN")
        attrs: List[Attribute] = []
        generic = False
        while True:
            if self._accept_kind("QQ"):
                generic = True
            else:
                attr_name = self._expect_kind("IDENT").value
                attr_type = "int"
                if self._accept_kind("COLON"):
                    attr_type = self._type_name()
                attrs.append(Attribute(attr_name, attr_type))
            if not self._accept_kind("COMMA"):
                break
        self._expect_kind("RPAREN")
        return SchemaDecl(Schema(name, tuple(attrs), generic=generic))

    def _type_name(self) -> str:
        token = self._peek()
        if token is not None and token.kind in ("IDENT", "KEYWORD"):
            return self._advance().value
        raise self._error("expected a type name")

    def _table_decl(self) -> TableDecl:
        name = self._expect_kind("IDENT").value
        self._expect_kind("LPAREN")
        schema_name = self._expect_kind("IDENT").value
        self._expect_kind("RPAREN")
        return TableDecl(name, schema_name)

    def _ident_list(self) -> Tuple[str, ...]:
        names = [self._expect_kind("IDENT").value]
        while self._accept_kind("COMMA"):
            names.append(self._expect_kind("IDENT").value)
        return tuple(names)

    def _key_decl(self) -> KeyDecl:
        table = self._expect_kind("IDENT").value
        self._expect_kind("LPAREN")
        attrs = self._ident_list()
        self._expect_kind("RPAREN")
        return KeyDecl(table, attrs)

    def _foreign_key_decl(self) -> ForeignKeyDecl:
        table = self._expect_kind("IDENT").value
        self._expect_kind("LPAREN")
        attrs = self._ident_list()
        self._expect_kind("RPAREN")
        self._expect_keyword("references")
        ref_table = self._expect_kind("IDENT").value
        self._expect_kind("LPAREN")
        ref_attrs = self._ident_list()
        self._expect_kind("RPAREN")
        return ForeignKeyDecl(table, attrs, ref_table, ref_attrs)

    def _view_decl(self) -> ViewDecl:
        name = self._expect_kind("IDENT").value
        query = self.parse_query()
        return ViewDecl(name, query)

    def _index_decl(self) -> IndexDecl:
        name = self._expect_kind("IDENT").value
        self._expect_keyword("on")
        table = self._expect_kind("IDENT").value
        self._expect_kind("LPAREN")
        attrs = self._ident_list()
        self._expect_kind("RPAREN")
        return IndexDecl(name, table, attrs)

    def _verify_stmt(self) -> VerifyStmt:
        left = self.parse_query()
        token = self._peek()
        if token is None or token.kind != "OP" or token.value != "==":
            raise self._error("expected '==' between the two verify queries")
        self._advance()
        right = self.parse_query()
        return VerifyStmt(left, right)

    # -- queries -----------------------------------------------------------

    def parse_query(self) -> Query:
        query = self._query_primary()
        while True:
            if self._at_keyword("union"):
                self._advance()
                if self._accept_keyword("all"):
                    right = self._query_primary()
                    query = UnionAll(query, right)
                else:
                    # Set-semantics UNION is sugar for DISTINCT(UNION ALL)
                    # (the Sec. 6.4 syntactic rewrite, implemented).
                    right = self._query_primary()
                    query = DistinctQuery(UnionAll(query, right))
            elif self._at_keyword("except"):
                self._advance()
                right = self._query_primary()
                query = Except(query, right)
            elif self._at_keyword("intersect"):
                self._advance()
                right = self._query_primary()
                query = Intersect(query, right)
            else:
                return query

    def _query_primary(self) -> Query:
        if self._accept_keyword("distinct"):
            # Standalone DISTINCT q combinator (Fig. 2).
            return DistinctQuery(self._query_primary())
        if self._at_keyword("select"):
            return self._select()
        if self._accept_kind("LPAREN"):
            query = self.parse_query()
            self._expect_kind("RPAREN")
            return query
        token = self._accept_kind("IDENT")
        if token is not None:
            return TableRef(token.value)
        raise self._error("expected a query")

    def _select(self) -> Query:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")
        projections = self._projection_list()
        from_items: Tuple[FromItem, ...] = ()
        if self._accept_keyword("from"):
            from_items = self._from_items()
        where = None
        if self._accept_keyword("where"):
            where = self._predicate()
        group_by: Tuple[ColumnRef, ...] = ()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by = self._column_ref_list()
        having = None
        if self._accept_keyword("having"):
            having = self._predicate()
        query: Query = Select(
            projections, from_items, where, group_by, distinct=distinct
        )
        if having is not None:
            # HAVING is a filter over the grouped result; desugaring resolves
            # aggregate references, so we wrap in an outer SELECT * ... WHERE.
            from repro.sql.desugar import attach_having

            query = attach_having(query, having)
        return query

    def _column_ref_list(self) -> Tuple[ColumnRef, ...]:
        refs = [self._column_ref()]
        while self._accept_kind("COMMA"):
            refs.append(self._column_ref())
        return tuple(refs)

    def _column_ref(self) -> ColumnRef:
        first = self._expect_kind("IDENT").value
        if self._accept_kind("DOT"):
            second = self._expect_kind("IDENT").value
            return ColumnRef(first, second)
        return ColumnRef("", first)

    def _projection_list(self) -> Tuple[Projection, ...]:
        items = [self._projection()]
        while self._accept_kind("COMMA"):
            items.append(self._projection())
        return tuple(items)

    def _projection(self) -> Projection:
        if self._accept_kind("STAR"):
            return Star()
        # x.* form: IDENT DOT STAR
        token = self._peek()
        dot = self._peek(1)
        star = self._peek(2)
        if (
            token is not None
            and token.kind == "IDENT"
            and dot is not None
            and dot.kind == "DOT"
            and star is not None
            and star.kind == "STAR"
        ):
            self._pos += 3
            return TableStar(token.value)
        expr = self._expression()
        alias = ""
        if self._accept_keyword("as"):
            alias = self._expect_kind("IDENT").value
        return ExprAs(expr, alias)

    def _from_items(self) -> Tuple[FromItem, ...]:
        items = [self._from_item()]
        while self._accept_kind("COMMA"):
            items.append(self._from_item())
        return tuple(items)

    def _from_item(self) -> FromItem:
        if self._accept_kind("LPAREN"):
            query = self.parse_query()
            self._expect_kind("RPAREN")
        else:
            name = self._expect_kind("IDENT").value
            query = TableRef(name)
        self._accept_keyword("as")
        alias_token = self._accept_kind("IDENT")
        if alias_token is not None:
            alias = alias_token.value
        elif isinstance(query, TableRef):
            alias = query.name
        else:
            raise self._error("subquery in FROM requires an alias")
        return FromItem(query, alias)

    # -- predicates ----------------------------------------------------------

    def _predicate(self) -> Pred:
        return self._or_pred()

    def _or_pred(self) -> Pred:
        left = self._and_pred()
        while self._accept_keyword("or"):
            right = self._and_pred()
            left = OrPred(left, right)
        return left

    def _and_pred(self) -> Pred:
        left = self._not_pred()
        while self._accept_keyword("and"):
            right = self._not_pred()
            left = AndPred(left, right)
        return left

    def _not_pred(self) -> Pred:
        if self._at_keyword("not"):
            # NOT EXISTS gets a dedicated node so it compiles to not(·).
            next_token = self._peek(1)
            if next_token is not None and next_token.is_keyword("exists"):
                self._pos += 2
                self._expect_kind("LPAREN")
                query = self.parse_query()
                self._expect_kind("RPAREN")
                return Exists(query, negated=True)
            self._advance()
            return NotPred(self._not_pred())
        return self._atom_pred()

    def _atom_pred(self) -> Pred:
        if self._accept_keyword("true"):
            return TruePred()
        if self._accept_keyword("false"):
            return FalsePred()
        if self._accept_keyword("exists"):
            self._expect_kind("LPAREN")
            query = self.parse_query()
            self._expect_kind("RPAREN")
            return Exists(query)
        if self._at_kind("LPAREN"):
            # Could be a parenthesised predicate or the left expression of a
            # comparison; try the predicate reading first and fall back.
            saved = self._pos
            self._advance()
            try:
                inner = self._predicate()
                self._expect_kind("RPAREN")
            except ParseError:
                self._pos = saved
            else:
                token = self._peek()
                is_comparison = (
                    token is not None
                    and (
                        (token.kind == "OP" and token.value in COMPARISON_OPS)
                        or token.is_keyword("like")
                    )
                )
                if not is_comparison:
                    return inner
                self._pos = saved
        return self._comparison()

    def _comparison(self) -> Pred:
        left = self._expression()
        token = self._peek()
        # e [NOT] IN (query)
        if token is not None and token.is_keyword("not"):
            follower = self._peek(1)
            if follower is not None and follower.is_keyword("in"):
                self._pos += 2
                self._expect_kind("LPAREN")
                query = self.parse_query()
                self._expect_kind("RPAREN")
                return InPred(left, query, negated=True)
        if token is not None and token.is_keyword("in"):
            self._advance()
            self._expect_kind("LPAREN")
            query = self.parse_query()
            self._expect_kind("RPAREN")
            return InPred(left, query)
        if token is not None and token.kind == "OP" and token.value in COMPARISON_OPS:
            op = self._advance().value
            right = self._expression()
            return BinPred(op, left, right)
        if token is not None and token.is_keyword("like"):
            self._advance()
            right = self._expression()
            return BinPred("LIKE", left, right)
        raise self._error("expected a comparison operator")

    # -- expressions ---------------------------------------------------------

    def _expression(self) -> Expr:
        left = self._atom_expr()
        while True:
            token = self._peek()
            if token is None:
                return left
            if token.kind in ("PLUS", "MINUS", "SLASH"):
                op = self._advance().value
                right = self._atom_expr()
                left = FuncCall(op, (left, right))
            elif token.kind == "STAR":
                # '*' only binds as multiplication when an operand follows;
                # a bare trailing '*' belongs to an enclosing projection.
                follower = self._peek(1)
                if follower is not None and follower.kind in (
                    "IDENT",
                    "INT",
                    "STRING",
                    "LPAREN",
                ):
                    self._advance()
                    right = self._atom_expr()
                    left = FuncCall("*", (left, right))
                else:
                    return left
            else:
                return left

    def _atom_expr(self) -> Expr:
        token = self._peek()
        if token is None:
            raise self._error("expected an expression")
        if token.kind == "INT":
            self._advance()
            return Constant(int(token.value))
        if token.kind == "STRING":
            self._advance()
            return Constant(token.value)
        if token.is_keyword("true"):
            self._advance()
            return Constant(True)
        if token.is_keyword("false"):
            self._advance()
            return Constant(False)
        if token.kind == "LPAREN":
            self._advance()
            expr = self._expression()
            self._expect_kind("RPAREN")
            return expr
        if token.kind == "IDENT":
            self._advance()
            next_token = self._peek()
            if next_token is not None and next_token.kind == "LPAREN":
                return self._call(token.value)
            if next_token is not None and next_token.kind == "DOT":
                self._advance()
                column = self._expect_kind("IDENT").value
                return ColumnRef(token.value, column)
            return ColumnRef("", token.value)
        raise self._error("expected an expression")

    def _call(self, name: str) -> Expr:
        """Parse ``name(...)`` — either agg(query), agg(expr), or f(args)."""
        self._expect_kind("LPAREN")
        if self._at_keyword("select") or self._at_keyword("distinct"):
            query = self.parse_query()
            self._expect_kind("RPAREN")
            return AggCall(name, query)
        # COUNT(*) — model the star operand as a distinguished column ref.
        if is_aggregate_name(name) and self._at_kind("STAR"):
            self._advance()
            self._expect_kind("RPAREN")
            return FuncCall(name.lower(), (ColumnRef("", "*"),))
        args: List[Expr] = []
        if not self._at_kind("RPAREN"):
            args.append(self._expression())
            while self._accept_kind("COMMA"):
                args.append(self._expression())
        self._expect_kind("RPAREN")
        if is_aggregate_name(name):
            return FuncCall(name.lower(), tuple(args))
        return FuncCall(name, tuple(args))


def parse_query(text: str) -> Query:
    """Parse a single SQL query from ``text``."""
    parser = _Parser(tokenize(text))
    query = parser.parse_query()
    if not parser.at_end():
        raise parser._error("trailing input after query")
    return query


def parse_program(text: str) -> Program:
    """Parse a full input program (declarations + verify goals)."""
    parser = _Parser(tokenize(text))
    return parser.parse_program()
