"""Pretty-printer for SQL ASTs.

The AST nodes' ``__str__`` methods produce compact single-line SQL; this
module adds an indented multi-line formatter used by the CLI and examples.
The output re-parses to an equal AST (round-trip tested).
"""

from __future__ import annotations

from typing import List

from repro.sql.ast import (
    DistinctQuery,
    Except,
    FromItem,
    Query,
    Select,
    TableRef,
    UnionAll,
    Where,
)

_INDENT = "  "


def format_query(query: Query, level: int = 0) -> str:
    """Format ``query`` as indented multi-line SQL."""
    pad = _INDENT * level
    if isinstance(query, TableRef):
        return f"{pad}{query.name}"
    if isinstance(query, Select):
        lines: List[str] = []
        head = "SELECT DISTINCT" if query.distinct else "SELECT"
        lines.append(f"{pad}{head} " + ", ".join(str(p) for p in query.projections))
        if query.from_items:
            lines.append(f"{pad}FROM " + ", ".join(_format_from(f) for f in query.from_items))
        if query.where is not None:
            lines.append(f"{pad}WHERE {query.where}")
        if query.group_by:
            lines.append(f"{pad}GROUP BY " + ", ".join(str(c) for c in query.group_by))
        return "\n".join(lines)
    if isinstance(query, Where):
        return f"{format_query(query.query, level)}\n{pad}WHERE {query.predicate}"
    if isinstance(query, UnionAll):
        return (
            f"{format_query(query.left, level)}\n{pad}UNION ALL\n"
            f"{format_query(query.right, level)}"
        )
    if isinstance(query, Except):
        return (
            f"{format_query(query.left, level)}\n{pad}EXCEPT\n"
            f"{format_query(query.right, level)}"
        )
    if isinstance(query, DistinctQuery):
        return f"{pad}DISTINCT (\n{format_query(query.query, level + 1)}\n{pad})"
    return f"{pad}{query}"


def _format_from(item: FromItem) -> str:
    if isinstance(item.query, TableRef):
        return f"{item.query.name} {item.alias}"
    return f"({item.query}) {item.alias}"
