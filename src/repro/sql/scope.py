"""Name resolution and output-schema inference for parsed queries.

Resolution rewrites every bare column reference ``c`` into a qualified
``alias.c`` by searching the in-scope ``FROM`` aliases (innermost scope first,
so correlated subqueries see their enclosing query's aliases, as SQL
prescribes).  It simultaneously infers the output schema of every query, which
later stages need for:

* ``SELECT *`` / ``x.*`` expansion,
* tuple-equality decomposition during canonization (Eq. (15) reasoning needs
  to know the full attribute list of intermediate tuples),
* the bag-semantics evaluator.

Views are inlined here: a :class:`TableRef` naming a view is replaced by the
(resolved) view body, per Sec. 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ResolutionError
from repro.sql.ast import (
    AggCall,
    AndPred,
    BinPred,
    ColumnRef,
    Constant,
    DistinctQuery,
    Except,
    Exists,
    Expr,
    ExprAs,
    FalsePred,
    FromItem,
    FuncCall,
    InPred,
    Intersect,
    NotPred,
    OrPred,
    Pred,
    Projection,
    Query,
    Select,
    Star,
    TableRef,
    TableStar,
    TruePred,
    UnionAll,
    Where,
)
from repro.sql.program import Catalog
from repro.sql.schema import Attribute, Schema, make_anonymous_schema


@dataclass(frozen=True)
class Frame:
    """One scope level: the aliased items of a single FROM clause."""

    entries: Tuple[Tuple[str, Schema], ...]

    def lookup_alias(self, alias: str) -> Optional[Schema]:
        for name, schema in self.entries:
            if name == alias:
                return schema
        return None

    def aliases_with_attribute(self, column: str) -> List[str]:
        return [name for name, schema in self.entries if schema.has_attribute(column)]


class Environment:
    """A chain of frames, innermost last."""

    def __init__(self, frames: Optional[List[Frame]] = None) -> None:
        self._frames: List[Frame] = frames or []

    def push(self, frame: Frame) -> "Environment":
        return Environment(self._frames + [frame])

    def resolve_column(self, ref: ColumnRef) -> ColumnRef:
        """Qualify ``ref``; raises :class:`ResolutionError` if ambiguous."""
        if ref.table:
            for frame in reversed(self._frames):
                schema = frame.lookup_alias(ref.table)
                if schema is not None:
                    if not schema.has_attribute(ref.column) and schema.is_concrete():
                        raise ResolutionError(
                            f"alias {ref.table!r} has no attribute {ref.column!r}"
                        )
                    return ref
            raise ResolutionError(f"unknown table alias {ref.table!r}")
        for frame in reversed(self._frames):
            candidates = frame.aliases_with_attribute(ref.column)
            if len(candidates) == 1:
                return ColumnRef(candidates[0], ref.column)
            if len(candidates) > 1:
                raise ResolutionError(
                    f"ambiguous column {ref.column!r}: {sorted(candidates)}"
                )
        raise ResolutionError(f"cannot resolve column {ref.column!r}")

    def alias_schema(self, alias: str) -> Schema:
        for frame in reversed(self._frames):
            schema = frame.lookup_alias(alias)
            if schema is not None:
                return schema
        raise ResolutionError(f"unknown table alias {alias!r}")


def resolve_query(
    query: Query, catalog: Catalog, env: Optional[Environment] = None
) -> Tuple[Query, Schema]:
    """Resolve names in ``query``; return the rewritten query and its schema."""
    env = env or Environment()
    return _resolve(query, catalog, env)


def _resolve(query: Query, catalog: Catalog, env: Environment) -> Tuple[Query, Schema]:
    if isinstance(query, TableRef):
        if catalog.has_view(query.name):
            return _resolve(catalog.view_query(query.name), catalog, env)
        return query, catalog.table_schema(query.name)
    if isinstance(query, Select):
        return _resolve_select(query, catalog, env)
    if isinstance(query, Where):
        inner, schema = _resolve(query.query, catalog, env)
        frame = Frame((("", schema),))
        predicate = _resolve_pred(query.predicate, catalog, env.push(frame))
        return Where(inner, predicate), schema
    if isinstance(query, UnionAll):
        left, left_schema = _resolve(query.left, catalog, env)
        right, right_schema = _resolve(query.right, catalog, env)
        _check_union_compatible(left_schema, right_schema)
        return UnionAll(left, right), left_schema
    if isinstance(query, Intersect):
        left, left_schema = _resolve(query.left, catalog, env)
        right, right_schema = _resolve(query.right, catalog, env)
        _check_union_compatible(left_schema, right_schema)
        return Intersect(left, right), left_schema
    if isinstance(query, Except):
        left, left_schema = _resolve(query.left, catalog, env)
        right, right_schema = _resolve(query.right, catalog, env)
        _check_union_compatible(left_schema, right_schema)
        return Except(left, right), left_schema
    if isinstance(query, DistinctQuery):
        inner, schema = _resolve(query.query, catalog, env)
        return DistinctQuery(inner), schema
    raise ResolutionError(f"cannot resolve query node {type(query).__name__}")


def _check_union_compatible(left: Schema, right: Schema) -> None:
    if left.is_concrete() and right.is_concrete():
        if len(left.attributes) != len(right.attributes):
            raise ResolutionError(
                "UNION ALL operands have different attribute counts: "
                f"{len(left.attributes)} vs {len(right.attributes)}"
            )


def _resolve_select(
    query: Select, catalog: Catalog, env: Environment
) -> Tuple[Query, Schema]:
    items: List[FromItem] = []
    entries: List[Tuple[str, Schema]] = []
    for item in query.from_items:
        sub, sub_schema = _resolve(item.query, catalog, env)
        items.append(FromItem(sub, item.alias))
        entries.append((item.alias, sub_schema))
    frame = Frame(tuple(entries))
    inner_env = env.push(frame)

    projections: List[Projection] = []
    position = 0
    for proj in query.projections:
        if isinstance(proj, (Star, TableStar)):
            projections.append(proj)
        elif isinstance(proj, ExprAs):
            expr = _resolve_expr(proj.expr, catalog, inner_env)
            name = proj.alias or _default_output_name(expr, position)
            projections.append(ExprAs(expr, name))
        else:
            raise ResolutionError(f"unknown projection {type(proj).__name__}")
        position += 1

    where = None
    if query.where is not None:
        where = _resolve_pred(query.where, catalog, inner_env)
    group_by = tuple(inner_env.resolve_column(ref) for ref in query.group_by)

    resolved = Select(tuple(projections), tuple(items), where, group_by,
                      distinct=query.distinct)
    return resolved, projection_output_schema(entries, tuple(projections))


def projection_output_schema(
    entries: List[Tuple[str, Schema]], projections: Tuple[Projection, ...]
) -> Schema:
    """Output schema of a SELECT given its (alias, schema) FROM entries.

    Shared between name resolution and U-expression compilation so both
    stages agree on attribute names — duplicate names are de-duplicated
    positionally with a ``_n`` suffix (``SELECT *`` over a self join).
    """
    out_attrs: List[Attribute] = []
    generic_out = False

    def alias_schema(alias: str) -> Schema:
        for name, schema in entries:
            if name == alias:
                return schema
        raise ResolutionError(f"unknown table alias {alias!r} in projection")

    def expr_attr_type(expr) -> str:
        if isinstance(expr, ColumnRef):
            try:
                schema = alias_schema(expr.table)
            except ResolutionError:
                return "int"
            if schema.has_attribute(expr.column):
                return schema.attribute(expr.column).type
        if isinstance(expr, Constant):
            if isinstance(expr.value, bool):
                return "bool"
            if isinstance(expr.value, str):
                return "string"
        return "int"

    for position, proj in enumerate(projections):
        if isinstance(proj, Star):
            for _, schema in entries:
                out_attrs.extend(schema.attributes)
                generic_out = generic_out or schema.generic
        elif isinstance(proj, TableStar):
            schema = alias_schema(proj.table)
            out_attrs.extend(schema.attributes)
            generic_out = generic_out or schema.generic
        elif isinstance(proj, ExprAs):
            name = proj.alias or _default_output_name(proj.expr, position)
            out_attrs.append(Attribute(name, expr_attr_type(proj.expr)))
        else:
            raise ResolutionError(f"unknown projection {type(proj).__name__}")

    # De-duplicate output attribute names positionally (SELECT * over a self
    # join produces repeated names; keep them apart for later stages).
    seen: dict = {}
    deduped: List[Attribute] = []
    for attr in out_attrs:
        count = seen.get(attr.name, 0)
        seen[attr.name] = count + 1
        if count == 0:
            deduped.append(attr)
        else:
            deduped.append(Attribute(f"{attr.name}_{count}", attr.type))
    return make_anonymous_schema(deduped, generic=generic_out)


def _default_output_name(expr: Expr, position: int) -> str:
    if isinstance(expr, ColumnRef):
        return expr.column
    return f"col{position}"


def _expr_type(expr: Expr, env: Environment) -> str:
    if isinstance(expr, ColumnRef):
        try:
            schema = env.alias_schema(expr.table)
        except ResolutionError:
            return "int"
        if schema.has_attribute(expr.column):
            return schema.attribute(expr.column).type
        return "int"
    if isinstance(expr, Constant):
        if isinstance(expr.value, bool):
            return "bool"
        if isinstance(expr.value, str):
            return "string"
        return "int"
    return "int"


def _resolve_pred(pred: Pred, catalog: Catalog, env: Environment) -> Pred:
    if isinstance(pred, BinPred):
        return BinPred(
            pred.op,
            _resolve_expr(pred.left, catalog, env),
            _resolve_expr(pred.right, catalog, env),
        )
    if isinstance(pred, NotPred):
        return NotPred(_resolve_pred(pred.inner, catalog, env))
    if isinstance(pred, AndPred):
        return AndPred(
            _resolve_pred(pred.left, catalog, env),
            _resolve_pred(pred.right, catalog, env),
        )
    if isinstance(pred, OrPred):
        return OrPred(
            _resolve_pred(pred.left, catalog, env),
            _resolve_pred(pred.right, catalog, env),
        )
    if isinstance(pred, (TruePred, FalsePred)):
        return pred
    if isinstance(pred, Exists):
        inner, _ = _resolve(pred.query, catalog, env)
        return Exists(inner, negated=pred.negated)
    if isinstance(pred, InPred):
        return _lower_in_pred(pred, catalog, env)
    raise ResolutionError(f"unknown predicate {type(pred).__name__}")


_in_counter = [0]


def _lower_in_pred(pred: InPred, catalog: Catalog, env: Environment) -> Pred:
    """Lower ``e [NOT] IN (q)`` to the classical correlated EXISTS form.

    Requires ``q`` to have a single (known) output column ``c``; the result
    is ``[NOT] EXISTS (SELECT * FROM (q) sub WHERE sub.c = e)``.
    """
    from repro.sql.ast import BinPred, FromItem, Select, Star

    expr = _resolve_expr(pred.expr, catalog, env)
    inner, schema = _resolve(pred.query, catalog, env)
    if schema.generic or len(schema.attributes) != 1:
        raise ResolutionError(
            "IN requires a subquery with exactly one known output column, "
            f"got {schema}"
        )
    column = schema.attributes[0].name
    _in_counter[0] += 1
    alias = f"__in{_in_counter[0]}"
    membership = Select(
        (Star(),),
        (FromItem(inner, alias),),
        BinPred("=", ColumnRef(alias, column), expr),
    )
    return Exists(membership, negated=pred.negated)


def _resolve_expr(expr: Expr, catalog: Catalog, env: Environment) -> Expr:
    if isinstance(expr, ColumnRef):
        if expr.column == "*":
            return expr  # COUNT(*) operand; resolved during desugaring
        return env.resolve_column(expr)
    if isinstance(expr, Constant):
        return expr
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name, tuple(_resolve_expr(a, catalog, env) for a in expr.args)
        )
    if isinstance(expr, AggCall):
        inner, _ = _resolve(expr.query, catalog, env)
        return AggCall(expr.name, inner)
    raise ResolutionError(f"unknown expression {type(expr).__name__}")


def infer_schema(query: Query, catalog: Catalog) -> Schema:
    """Infer the output schema of an already-resolved (or fresh) query."""
    _, schema = resolve_query(query, catalog)
    return schema
