"""Input programs: declarations plus ``verify`` goals, and the catalog.

An input program (Fig. 2, top) is a sequence of statements::

    schema s(a:int, b:int, ??);
    table r(s);
    key r(a);
    foreign key r2(fk) references r(a);
    view v SELECT ...;
    index i on r(b);
    verify SELECT ... == SELECT ...;

The :class:`Catalog` aggregates the declarations and is the single source of
truth for schema lookup, view inlining, and integrity constraints during
compilation and canonization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ResolutionError, SchemaError
from repro.sql.ast import Query
from repro.sql.schema import Attribute, Schema


@dataclass(frozen=True)
class SchemaDecl:
    """``schema name(a:int, ..., ??);``"""

    schema: Schema


@dataclass(frozen=True)
class TableDecl:
    """``table name(schema_name);``"""

    name: str
    schema_name: str


@dataclass(frozen=True)
class KeyDecl:
    """``key table(a1, ..., an);`` — Def. 4.1 identity for these attributes."""

    table: str
    attributes: Tuple[str, ...]


@dataclass(frozen=True)
class ForeignKeyDecl:
    """``foreign key t1(b...) references t2(a...);`` — Def. 4.4 identity."""

    table: str
    attributes: Tuple[str, ...]
    ref_table: str
    ref_attributes: Tuple[str, ...]


@dataclass(frozen=True)
class ViewDecl:
    """``view v <query>;`` — inlined wherever ``v`` is referenced."""

    name: str
    query: Query


@dataclass(frozen=True)
class IndexDecl:
    """``index i on r(a1, ..., an);``

    Following the GMAP treatment (Sec. 4.1), an index is the view
    ``SELECT key..., a1..., ... FROM r`` and is inlined like any view.
    """

    name: str
    table: str
    attributes: Tuple[str, ...]


@dataclass(frozen=True)
class VerifyStmt:
    """``verify q1 == q2;`` — the proof goal."""

    left: Query
    right: Query


Statement = object  # union of the declaration dataclasses above


@dataclass
class Program:
    """A parsed input program: declarations in order plus verify goals."""

    statements: List[Statement] = field(default_factory=list)

    def verify_goals(self) -> List[VerifyStmt]:
        return [s for s in self.statements if isinstance(s, VerifyStmt)]

    def build_catalog(self) -> "Catalog":
        """Fold the declaration statements into a catalog."""
        catalog = Catalog()
        for stmt in self.statements:
            if isinstance(stmt, SchemaDecl):
                catalog.add_schema(stmt.schema)
            elif isinstance(stmt, TableDecl):
                catalog.add_table(stmt.name, stmt.schema_name)
            elif isinstance(stmt, KeyDecl):
                catalog.add_key(stmt.table, stmt.attributes)
            elif isinstance(stmt, ForeignKeyDecl):
                catalog.add_foreign_key(
                    stmt.table, stmt.attributes, stmt.ref_table, stmt.ref_attributes
                )
            elif isinstance(stmt, ViewDecl):
                catalog.add_view(stmt.name, stmt.query)
            elif isinstance(stmt, IndexDecl):
                catalog.add_index(stmt.name, stmt.table, stmt.attributes)
        return catalog


@dataclass(frozen=True)
class KeyConstraint:
    """A key on ``table`` over ``attributes`` (Def. 4.1)."""

    table: str
    attributes: Tuple[str, ...]


@dataclass(frozen=True)
class ForeignKeyConstraint:
    """A foreign key ``table.attributes -> ref_table.ref_attributes``.

    Def. 4.4; the paper notes the referenced attributes behave as a key of the
    referenced table, so catalogs register that implied key too.
    """

    table: str
    attributes: Tuple[str, ...]
    ref_table: str
    ref_attributes: Tuple[str, ...]


class Catalog:
    """All declared schemas, tables, views, indexes, and constraints."""

    def __init__(self) -> None:
        self._schemas: Dict[str, Schema] = {}
        self._tables: Dict[str, Schema] = {}
        self._views: Dict[str, Query] = {}
        self._indexes: Dict[str, IndexDecl] = {}
        self.keys: List[KeyConstraint] = []
        self.foreign_keys: List[ForeignKeyConstraint] = []

    # -- declaration -------------------------------------------------------

    def add_schema(self, schema: Schema) -> None:
        if schema.name in self._schemas:
            raise SchemaError(f"schema {schema.name!r} declared twice")
        self._schemas[schema.name] = schema

    def add_table(self, name: str, schema_name: str) -> None:
        if name in self._tables or name in self._views:
            raise SchemaError(f"table or view {name!r} declared twice")
        if schema_name not in self._schemas:
            raise ResolutionError(f"unknown schema {schema_name!r} for table {name!r}")
        self._tables[name] = self._schemas[schema_name]

    def add_table_with_schema(self, name: str, schema: Schema) -> None:
        """Convenience for programmatic construction (tests, corpus)."""
        if schema.name and schema.name not in self._schemas:
            self._schemas[schema.name] = schema
        if name in self._tables:
            raise SchemaError(f"table {name!r} declared twice")
        self._tables[name] = schema

    def add_key(self, table: str, attributes: Tuple[str, ...]) -> None:
        schema = self.table_schema(table)
        for attr in attributes:
            if not schema.has_attribute(attr):
                raise SchemaError(f"key attribute {attr!r} not in table {table!r}")
        self.keys.append(KeyConstraint(table, tuple(attributes)))

    def add_foreign_key(
        self,
        table: str,
        attributes: Tuple[str, ...],
        ref_table: str,
        ref_attributes: Tuple[str, ...],
    ) -> None:
        if len(attributes) != len(ref_attributes):
            raise SchemaError("foreign key attribute lists differ in length")
        schema = self.table_schema(table)
        ref_schema = self.table_schema(ref_table)
        for attr in attributes:
            if not schema.has_attribute(attr):
                raise SchemaError(f"fk attribute {attr!r} not in table {table!r}")
        for attr in ref_attributes:
            if not ref_schema.has_attribute(attr):
                raise SchemaError(f"fk target {attr!r} not in table {ref_table!r}")
        constraint = ForeignKeyConstraint(
            table, tuple(attributes), ref_table, tuple(ref_attributes)
        )
        self.foreign_keys.append(constraint)
        # Def. 4.4 implies the referenced attributes form a key of ref_table
        # (Theorem 4.5); register it so canonize can exploit it.
        implied = KeyConstraint(ref_table, tuple(ref_attributes))
        if implied not in self.keys:
            self.keys.append(implied)

    def add_view(self, name: str, query: Query) -> None:
        if name in self._views or name in self._tables:
            raise SchemaError(f"table or view {name!r} declared twice")
        self._views[name] = query

    def add_index(self, name: str, table: str, attributes: Tuple[str, ...]) -> None:
        """Register an index as its GMAP view (key attrs + indexed attrs)."""
        from repro.sql.ast import ColumnRef, ExprAs, FromItem, Select, TableRef

        schema = self.table_schema(table)
        for attr in attributes:
            if not schema.has_attribute(attr):
                raise SchemaError(f"index attribute {attr!r} not in table {table!r}")
        key_attrs = self.key_of(table)
        if key_attrs is None:
            raise SchemaError(
                f"index {name!r} requires a key on table {table!r} (GMAP view)"
            )
        seen: List[str] = []
        for attr in tuple(key_attrs) + tuple(attributes):
            if attr not in seen:
                seen.append(attr)
        alias = "__ix"
        projections = tuple(ExprAs(ColumnRef(alias, a), a) for a in seen)
        view_query = Select(projections, (FromItem(TableRef(table), alias),))
        self._indexes[name] = IndexDecl(name, table, tuple(attributes))
        self._views[name] = view_query

    # -- lookup ------------------------------------------------------------

    def schema(self, name: str) -> Schema:
        if name not in self._schemas:
            raise ResolutionError(f"unknown schema {name!r}")
        return self._schemas[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def has_view(self, name: str) -> bool:
        return name in self._views

    def table_schema(self, name: str) -> Schema:
        if name not in self._tables:
            raise ResolutionError(f"unknown table {name!r}")
        return self._tables[name]

    def view_query(self, name: str) -> Query:
        if name not in self._views:
            raise ResolutionError(f"unknown view {name!r}")
        return self._views[name]

    def tables(self) -> Dict[str, Schema]:
        return dict(self._tables)

    def views(self) -> Dict[str, Query]:
        return dict(self._views)

    def indexes(self) -> Dict[str, IndexDecl]:
        return dict(self._indexes)

    def key_of(self, table: str) -> Optional[Tuple[str, ...]]:
        """The first declared key of ``table``, or None."""
        for constraint in self.keys:
            if constraint.table == table:
                return constraint.attributes
        return None

    def keys_of(self, table: str) -> List[Tuple[str, ...]]:
        return [c.attributes for c in self.keys if c.table == table]

    def copy(self) -> "Catalog":
        clone = Catalog()
        clone._schemas = dict(self._schemas)
        clone._tables = dict(self._tables)
        clone._views = dict(self._views)
        clone._indexes = dict(self._indexes)
        clone.keys = list(self.keys)
        clone.foreign_keys = list(self.foreign_keys)
        return clone
