"""Retrying HTTP client for the verification service.

The servers answer load shedding with structured 503/429 records that
carry a ``Retry-After`` hint (jittered server-side so a fleet of
clients does not stampede back in lockstep).  :class:`VerifyClient`
closes the loop on the client side: it retries those statuses — and
transient connection failures — with capped exponential backoff plus
jitter, preferring the server's ``Retry-After`` hint when one is
present.

The client is stdlib-only (``urllib``) and deliberately boring: one
request at a time, explicit timeouts, and a deterministic
:class:`RetryPolicy` whose jitter source is seedable so tests can pin
the schedule.  The ``socket.slow`` fault-injection point from
:mod:`repro.faults` fires before every send, which lets the chaos suite
simulate a slow network without monkeypatching sockets.

    >>> client = VerifyClient("http://localhost:8642")
    >>> client.verify({"left": "SELECT * FROM r t",
    ...                "right": "SELECT DISTINCT * FROM r t"})["verdict"]
    'NOT_EQUIVALENT'
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Union

from repro.faults import fault_hit

__all__ = ["ClientError", "RetryPolicy", "VerifyClient"]

#: HTTP statuses that signal transient overload worth retrying.
RETRYABLE_STATUSES = frozenset({429, 503})


class ClientError(RuntimeError):
    """Raised when a request fails after exhausting every retry.

    ``last_status`` is the final HTTP status (``None`` when the failure
    was a connection error), ``attempts`` the number of tries made.
    """

    def __init__(self, message: str, *, last_status: Optional[int] = None,
                 attempts: int = 0) -> None:
        super().__init__(message)
        self.last_status = last_status
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with full jitter.

    Delay for attempt *n* (0-based) is ``min(max_delay, base_delay *
    2**n)`` scaled by a uniform jitter factor in ``[1 - jitter, 1]``.
    When the server sends a ``Retry-After`` hint, the hint wins (capped
    at ``max_delay``) — the server already jittered it.
    """

    max_attempts: int = 4
    base_delay: float = 0.25
    max_delay: float = 10.0
    jitter: float = 0.5
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def delay_for(self, attempt: int, rng: random.Random,
                  retry_after: Optional[float] = None) -> float:
        if retry_after is not None and retry_after >= 0:
            return min(float(retry_after), self.max_delay)
        backoff = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        scale = 1.0 - self.jitter * rng.random()
        return backoff * scale


class VerifyClient:
    """Talks to a running verification front end, retrying overload.

    Works identically against the threaded server and the async front
    door — both speak the same protocol.  ``sleep`` is injectable so
    tests can assert the backoff schedule without wall-clock waits.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        policy: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)
        self.policy = policy or RetryPolicy()
        self._sleep = sleep
        self._rng = random.Random(self.policy.seed)
        self.requests = 0
        self.retries = 0

    # -- public API ---------------------------------------------------

    def verify(self, obj: Mapping[str, Any]) -> Dict[str, Any]:
        """POST one pair to ``/verify``; returns the structured record."""
        body = json.dumps(obj).encode("utf-8")
        return json.loads(self._request("POST", "/verify", body))

    def verify_batch(
        self, items: Union[str, bytes, Iterable[Mapping[str, Any]]]
    ) -> List[Dict[str, Any]]:
        """POST a JSONL batch to ``/verify/batch``; returns the records.

        ``items`` may be pre-encoded JSONL (str/bytes) or an iterable of
        dicts which is serialised one object per line.
        """
        if isinstance(items, bytes):
            body = items
        elif isinstance(items, str):
            body = items.encode("utf-8")
        else:
            body = ("\n".join(json.dumps(obj) for obj in items) + "\n").encode(
                "utf-8"
            )
        raw = self._request("POST", "/verify/batch", body)
        return [json.loads(line) for line in raw.splitlines() if line.strip()]

    def corpus(self, dataset: str = "bugs") -> Dict[str, Any]:
        """Replay a built-in corpus; returns the summary record."""
        return json.loads(
            self._request("POST", f"/corpus?dataset={dataset}", b"")
        )

    def health(self) -> Dict[str, Any]:
        return json.loads(self._request("GET", "/healthz", None))

    def stats(self) -> Dict[str, Any]:
        return json.loads(self._request("GET", "/stats", None))

    # -- transport ----------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[bytes]) -> str:
        url = self.base_url + path
        last_status: Optional[int] = None
        last_error = "request failed"
        attempts = 0
        for attempt in range(self.policy.max_attempts):
            attempts = attempt + 1
            rule = fault_hit("socket.slow")
            if rule is not None and rule.delay > 0:
                time.sleep(rule.delay)
            retry_after: Optional[float] = None
            try:
                request = urllib.request.Request(
                    url, data=body, method=method,
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    self.requests += 1
                    return response.read().decode("utf-8")
            except urllib.error.HTTPError as exc:
                self.requests += 1
                last_status = exc.code
                payload = exc.read().decode("utf-8", "replace")
                if exc.code not in RETRYABLE_STATUSES:
                    raise ClientError(
                        f"{method} {path} failed with HTTP {exc.code}: "
                        f"{payload[:200]}",
                        last_status=exc.code, attempts=attempts,
                    ) from exc
                last_error = f"HTTP {exc.code}"
                retry_after = _retry_after_hint(exc, payload)
            except (urllib.error.URLError, ConnectionError, OSError) as exc:
                last_status = None
                last_error = str(exc)
            if attempt + 1 >= self.policy.max_attempts:
                break
            self.retries += 1
            self._sleep(self.policy.delay_for(attempt, self._rng, retry_after))
        raise ClientError(
            f"{method} {path} failed after {attempts} attempt(s): "
            f"{last_error}",
            last_status=last_status, attempts=attempts,
        )


def _retry_after_hint(exc: urllib.error.HTTPError,
                      payload: str) -> Optional[float]:
    """Extract the server's retry hint: header first, then the body."""
    header = exc.headers.get("Retry-After") if exc.headers else None
    if header:
        try:
            return float(header)
        except ValueError:
            pass
    try:
        record = json.loads(payload)
        hint = record.get("error", {}).get("retry_after_seconds")
        if hint is not None:
            return float(hint)
    except (ValueError, AttributeError):
        pass
    return None
