"""SQL IR abstract syntax (Fig. 10).

The unnamed counterpart of :mod:`repro.sql.ast`: attribute references have
become path expressions, table aliases are gone, and ``FROM`` builds nested
pairs.  Every node carries the schema *trees* needed to type its tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.ir.paths import Path
from repro.ir.schema_tree import SchemaTree


class IRQuery:
    """Base class of IR queries.  Every query knows its output schema tree."""

    __slots__ = ()


class IRPred:
    """Base class of IR predicates."""

    __slots__ = ()


class IRExpr:
    """Base class of IR expressions."""

    __slots__ = ()


# -- queries -------------------------------------------------------------


@dataclass(frozen=True)
class TableIR(IRQuery):
    """A base table with its schema tree."""

    name: str
    schema: SchemaTree

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class SelectIR(IRQuery):
    """``SELECT p q`` — project each output tuple through path ``p``."""

    projection: Path
    query: IRQuery
    schema: SchemaTree  # output schema tree

    def __str__(self) -> str:
        return f"SELECT {self.projection} ({self.query})"


@dataclass(frozen=True)
class FromIR(IRQuery):
    """``FROM q1, q2`` — the product; output tuples are pairs."""

    left: IRQuery
    right: IRQuery

    def __str__(self) -> str:
        return f"FROM ({self.left}), ({self.right})"


@dataclass(frozen=True)
class WhereIR(IRQuery):
    """``q WHERE b`` — ``b`` sees ``node Γ σ`` (context, current tuple)."""

    query: IRQuery
    predicate: IRPred

    def __str__(self) -> str:
        return f"({self.query}) WHERE {self.predicate}"


@dataclass(frozen=True)
class UnionAllIR(IRQuery):
    left: IRQuery
    right: IRQuery

    def __str__(self) -> str:
        return f"({self.left}) UNION ALL ({self.right})"


@dataclass(frozen=True)
class ExceptIR(IRQuery):
    left: IRQuery
    right: IRQuery

    def __str__(self) -> str:
        return f"({self.left}) EXCEPT ({self.right})"


@dataclass(frozen=True)
class IntersectIR(IRQuery):
    """Set intersection: ``⟦q1 INTERSECT q2⟧ g t = ‖⟦q1⟧ g t × ⟦q2⟧ g t‖``."""

    left: IRQuery
    right: IRQuery

    def __str__(self) -> str:
        return f"({self.left}) INTERSECT ({self.right})"


@dataclass(frozen=True)
class DistinctIR(IRQuery):
    query: IRQuery

    def __str__(self) -> str:
        return f"DISTINCT ({self.query})"


# -- predicates ------------------------------------------------------------


@dataclass(frozen=True)
class EqIR(IRPred):
    left: IRExpr
    right: IRExpr

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class NotIR(IRPred):
    inner: IRPred

    def __str__(self) -> str:
        return f"NOT ({self.inner})"


@dataclass(frozen=True)
class AndIR(IRPred):
    left: IRPred
    right: IRPred

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class OrIR(IRPred):
    left: IRPred
    right: IRPred

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class TrueIR(IRPred):
    def __str__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class FalseIR(IRPred):
    def __str__(self) -> str:
        return "FALSE"


@dataclass(frozen=True)
class CastPredIR(IRPred):
    """``CASTPRED p b`` — evaluate ``b`` in the context reached by ``p``.

    This is Fig. 11's device for embedding an uninterpreted predicate β over
    re-based arguments; ``name`` identifies β and ``args`` are the argument
    paths.
    """

    name: str
    args: Tuple[Path, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"CASTPRED {self.name}({inner})"


@dataclass(frozen=True)
class ExistsIR(IRPred):
    query: IRQuery

    def __str__(self) -> str:
        return f"EXISTS ({self.query})"


# -- expressions -------------------------------------------------------------


@dataclass(frozen=True)
class P2EIR(IRExpr):
    """``P2E p`` — the (single-leaf) value reached by path ``p``."""

    path: Path

    def __str__(self) -> str:
        return f"P2E({self.path})"


@dataclass(frozen=True)
class ConstIR(IRExpr):
    value: object

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class FuncIR(IRExpr):
    name: str
    args: Tuple[IRExpr, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class AggIR(IRExpr):
    """``agg(q)`` — an uninterpreted aggregate of a subquery."""

    name: str
    query: IRQuery

    def __str__(self) -> str:
        return f"{self.name}({self.query})"
