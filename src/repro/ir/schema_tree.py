"""Binary schema trees (Fig. 8).

``Schema ::= empty | leaf τ | node σ1 σ2`` — schemas are types organized in
a binary tree, and tuples are the dependent interpretation::

    Tuple empty          = Unit
    Tuple (leaf τ)       = ⟦τ⟧
    Tuple (node σ1 σ2)   = Tuple σ1 × Tuple σ2

Concrete tuples of a tree schema are represented as nested Python pairs:
``()`` for empty, a scalar for a leaf, and a 2-tuple for a node.  Leaves keep
the source attribute name purely as debugging metadata — the IR itself is
unnamed, all access is positional (Fig. 9's discussion of why trees rather
than lists: products of generic schemas still reduce).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple, Union

from repro.sql.schema import Schema


class SchemaTree:
    """Base class of schema trees."""

    __slots__ = ()

    def leaf_count(self) -> int:
        raise NotImplementedError

    def tuples(self, universe: Sequence[object]) -> Iterator[object]:
        """Enumerate all tuples of this schema over a finite universe."""
        raise NotImplementedError


@dataclass(frozen=True)
class EmptyTree(SchemaTree):
    """``empty`` — only the unit tuple ``()`` inhabits it."""

    def leaf_count(self) -> int:
        return 0

    def tuples(self, universe: Sequence[object]) -> Iterator[object]:
        yield ()

    def __str__(self) -> str:
        return "empty"


@dataclass(frozen=True)
class LeafTree(SchemaTree):
    """``leaf τ`` — tuples are scalars of type τ."""

    type: str = "int"
    name: str = ""

    def leaf_count(self) -> int:
        return 1

    def tuples(self, universe: Sequence[object]) -> Iterator[object]:
        yield from universe

    def __str__(self) -> str:
        label = self.name or self.type
        return f"leaf {label}"


@dataclass(frozen=True)
class NodeTree(SchemaTree):
    """``node σ1 σ2`` — tuples are pairs."""

    left: SchemaTree
    right: SchemaTree

    def leaf_count(self) -> int:
        return self.left.leaf_count() + self.right.leaf_count()

    def tuples(self, universe: Sequence[object]) -> Iterator[object]:
        for left_tuple in self.left.tuples(universe):
            for right_tuple in self.right.tuples(universe):
                yield (left_tuple, right_tuple)

    def __str__(self) -> str:
        return f"node ({self.left}) ({self.right})"


def tree_of_schema(schema: Schema) -> SchemaTree:
    """Right-nested tree of a flat (concrete) schema.

    ``(a, b, c)`` becomes ``node (leaf a) (node (leaf b) (leaf c))``; the
    empty schema becomes ``empty``.
    """
    attrs = schema.attributes
    if not attrs:
        return EmptyTree()
    tree: SchemaTree = LeafTree(attrs[-1].type, attrs[-1].name)
    for attr in reversed(attrs[:-1]):
        tree = NodeTree(LeafTree(attr.type, attr.name), tree)
    return tree


def flatten_tuple(tree: SchemaTree, value: object) -> List[object]:
    """The leaf scalars of a tree tuple, left to right."""
    if isinstance(tree, EmptyTree):
        return []
    if isinstance(tree, LeafTree):
        return [value]
    if isinstance(tree, NodeTree):
        left_value, right_value = value
        return flatten_tuple(tree.left, left_value) + flatten_tuple(
            tree.right, right_value
        )
    raise TypeError(f"unknown schema tree {type(tree).__name__}")


def row_to_tree_tuple(tree: SchemaTree, row: dict) -> object:
    """Convert a named row into the tree-shaped tuple of ``tree``.

    Leaves must carry attribute names (trees built by
    :func:`tree_of_schema`).
    """
    if isinstance(tree, EmptyTree):
        return ()
    if isinstance(tree, LeafTree):
        return row[tree.name]
    if isinstance(tree, NodeTree):
        return (
            row_to_tree_tuple(tree.left, row),
            row_to_tree_tuple(tree.right, row),
        )
    raise TypeError(f"unknown schema tree {type(tree).__name__}")
