"""SQL IR — the appendix's unnamed intermediate representation.

The paper's implementation translates SQL in two stages (Appendix A-C):

1. **SQL → SQL IR** (Fig. 11): the *named* surface syntax becomes an
   *unnamed* calculus where attribute references are path expressions over
   binary schema trees (Fig. 8-10);
2. **SQL IR → U-expressions** (Fig. 12): a denotational semantics
   ``⟦Γ ⊢ q : σ⟧ : Tuple Γ → Tuple σ → U``.

This package implements both stages.  Stage 2 is realized as a
semiring-generic *interpreter*: the Fig. 12 equations are evaluated directly
in any :class:`~repro.semirings.base.USemiring` instance over finite
domains, which lets the tests cross-validate the appendix semantics against
the main (named) compilation pipeline and the bag-semantics engine.
"""

from repro.ir.schema_tree import EmptyTree, LeafTree, NodeTree, SchemaTree, tree_of_schema
from repro.ir.paths import (
    ComposePath,
    E2PPath,
    EmptyPath,
    LeftPath,
    PairPath,
    Path,
    RightPath,
    StarPath,
)
from repro.ir.ast import (
    CastPredIR,
    DistinctIR,
    EqIR,
    ExceptIR,
    ExistsIR,
    FromIR,
    IRQuery,
    NotIR,
    AndIR,
    OrIR,
    P2EIR,
    SelectIR,
    TableIR,
    TrueIR,
    FalseIR,
    UnionAllIR,
    WhereIR,
)
from repro.ir.translate import translate_query
from repro.ir.denote import IRInterpreter

__all__ = [
    "AndIR",
    "CastPredIR",
    "ComposePath",
    "DistinctIR",
    "E2PPath",
    "EmptyPath",
    "EmptyTree",
    "EqIR",
    "ExceptIR",
    "ExistsIR",
    "FalseIR",
    "FromIR",
    "IRInterpreter",
    "IRQuery",
    "LeafTree",
    "LeftPath",
    "NodeTree",
    "NotIR",
    "OrIR",
    "P2EIR",
    "PairPath",
    "Path",
    "RightPath",
    "SchemaTree",
    "SelectIR",
    "StarPath",
    "TableIR",
    "TrueIR",
    "UnionAllIR",
    "WhereIR",
    "translate_query",
    "tree_of_schema",
]
