"""Denotational semantics of SQL IR (Fig. 12), evaluated in any U-semiring.

``IRInterpreter`` implements the equations of Fig. 12 *literally*::

    ⟦table⟧ g t             = ⟦table⟧ t
    ⟦SELECT p q⟧ g t        = Σ_{t'} [⟦p⟧(g,t') = t] × ⟦q⟧ g t'
    ⟦FROM q1, q2⟧ g t       = ⟦q1⟧ g t.1 × ⟦q2⟧ g t.2
    ⟦q WHERE b⟧ g t         = ⟦q⟧ g t × ⟦b⟧ (g, t)
    ⟦q1 UNION ALL q2⟧ g t   = ⟦q1⟧ g t + ⟦q2⟧ g t
    ⟦q1 EXCEPT q2⟧ g t      = ⟦q1⟧ g t × not(⟦q2⟧ g t)
    ⟦DISTINCT q⟧ g t        = ‖⟦q⟧ g t‖

parameterized by the U-semiring instance — summation domains are finite
tuple enumerations over a given universe.  This is the library's second,
independent implementation of the paper's semantics; the tests cross-check
it against the named compilation pipeline and the bag engine.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.errors import EvaluationError
from repro.ir.ast import (
    AggIR,
    AndIR,
    CastPredIR,
    ConstIR,
    DistinctIR,
    EqIR,
    ExceptIR,
    ExistsIR,
    FalseIR,
    FromIR,
    FuncIR,
    IntersectIR,
    IRExpr,
    IRPred,
    IRQuery,
    NotIR,
    OrIR,
    P2EIR,
    SelectIR,
    TableIR,
    TrueIR,
    UnionAllIR,
    WhereIR,
)
from repro.ir.paths import apply_path
from repro.ir.schema_tree import NodeTree, SchemaTree
from repro.semirings.base import USemiring
from repro.semirings.interp import default_atom_oracle


def ir_schema(query: IRQuery) -> SchemaTree:
    """Output schema tree of an IR query."""
    if isinstance(query, TableIR):
        return query.schema
    if isinstance(query, SelectIR):
        return query.schema
    if isinstance(query, FromIR):
        return NodeTree(ir_schema(query.left), ir_schema(query.right))
    if isinstance(query, (WhereIR, DistinctIR)):
        return ir_schema(query.query)
    if isinstance(query, (UnionAllIR, ExceptIR, IntersectIR)):
        return ir_schema(query.left)
    raise EvaluationError(f"cannot infer IR schema of {type(query).__name__}")


class IRInterpreter:
    """Evaluates Fig. 12 in a concrete U-semiring over a finite universe."""

    def __init__(
        self,
        semiring: USemiring,
        universe: Sequence[object],
        relations: Dict[str, Dict[object, object]],
        atom_oracle: Optional[Callable[[str, Sequence[object]], bool]] = None,
    ) -> None:
        """``relations`` maps table names to {tree-tuple: multiplicity}."""
        self.semiring = semiring
        self.universe = list(universe)
        self.relations = relations
        self.atom_oracle = atom_oracle or default_atom_oracle

    # -- queries -----------------------------------------------------------

    def query(self, query: IRQuery, g: object, t: object):
        """``⟦q⟧ g t`` — the multiplicity of ``t`` in the result."""
        semiring = self.semiring
        if isinstance(query, TableIR):
            return self.relations.get(query.name, {}).get(t, semiring.zero)
        if isinstance(query, SelectIR):
            input_tree = ir_schema(query.query)

            def branches():
                for candidate in input_tree.tuples(self.universe):
                    projected = apply_path(
                        query.projection, (g, candidate), self._eval_expr_on
                    )
                    matches = semiring.from_bool(projected == t)
                    yield semiring.mul(matches, self.query(query.query, g, candidate))

            return semiring.sum(branches())
        if isinstance(query, FromIR):
            if not isinstance(t, tuple) or len(t) != 2:
                raise EvaluationError(f"FROM tuple is not a pair: {t!r}")
            return semiring.mul(
                self.query(query.left, g, t[0]), self.query(query.right, g, t[1])
            )
        if isinstance(query, WhereIR):
            return semiring.mul(
                self.query(query.query, g, t),
                self.predicate(query.predicate, (g, t)),
            )
        if isinstance(query, UnionAllIR):
            return semiring.add(
                self.query(query.left, g, t), self.query(query.right, g, t)
            )
        if isinstance(query, ExceptIR):
            return semiring.mul(
                self.query(query.left, g, t),
                semiring.not_(self.query(query.right, g, t)),
            )
        if isinstance(query, IntersectIR):
            return semiring.squash(
                semiring.mul(
                    self.query(query.left, g, t),
                    self.query(query.right, g, t),
                )
            )
        if isinstance(query, DistinctIR):
            return semiring.squash(self.query(query.query, g, t))
        raise EvaluationError(f"cannot evaluate IR query {type(query).__name__}")

    # -- predicates ----------------------------------------------------------

    def predicate(self, pred: IRPred, g: object):
        semiring = self.semiring
        if isinstance(pred, TrueIR):
            return semiring.one
        if isinstance(pred, FalseIR):
            return semiring.zero
        if isinstance(pred, EqIR):
            return semiring.from_bool(
                self.expr(pred.left, g) == self.expr(pred.right, g)
            )
        if isinstance(pred, AndIR):
            return semiring.mul(
                self.predicate(pred.left, g), self.predicate(pred.right, g)
            )
        if isinstance(pred, OrIR):
            return semiring.squash(
                semiring.add(
                    self.predicate(pred.left, g), self.predicate(pred.right, g)
                )
            )
        if isinstance(pred, NotIR):
            return semiring.not_(self.predicate(pred.inner, g))
        if isinstance(pred, ExistsIR):
            tree = ir_schema(pred.query)

            def branches():
                for candidate in tree.tuples(self.universe):
                    yield self.query(pred.query, g, candidate)

            return semiring.squash(semiring.sum(branches()))
        if isinstance(pred, CastPredIR):
            args = [apply_path(path, g, self._eval_expr_on) for path in pred.args]
            return semiring.from_bool(self.atom_oracle(pred.name, args))
        raise EvaluationError(f"cannot evaluate IR predicate {type(pred).__name__}")

    # -- expressions ---------------------------------------------------------

    def _eval_expr_on(self, expr: IRExpr, g: object):
        return self.expr(expr, g)

    def expr(self, expr: IRExpr, g: object):
        if isinstance(expr, P2EIR):
            return apply_path(expr.path, g, self._eval_expr_on)
        if isinstance(expr, ConstIR):
            return expr.value
        if isinstance(expr, FuncIR):
            return (
                "fn:" + expr.name,
                tuple(repr(self.expr(a, g)) for a in expr.args),
            )
        if isinstance(expr, AggIR):
            tree = ir_schema(expr.query)
            support = []
            for candidate in tree.tuples(self.universe):
                value = self.query(expr.query, g, candidate)
                if value != self.semiring.zero:
                    support.append((repr(candidate), repr(value)))
            support.sort()
            return ("agg:" + expr.name, tuple(support))
        raise EvaluationError(f"cannot evaluate IR expression {type(expr).__name__}")

    # -- top level -----------------------------------------------------------

    def output_relation(self, query: IRQuery) -> Dict[object, object]:
        """The closed query's output K-relation over the universe."""
        tree = ir_schema(query)
        out: Dict[object, object] = {}
        for candidate in tree.tuples(self.universe):
            value = self.query(query, (), candidate)
            if value != self.semiring.zero:
                out[candidate] = value
        return out
