"""Path expressions (the Projection grammar of Fig. 10).

A path denotes a function between tuple types::

    ⟦* : Γ ⇒ Γ⟧ g               = g
    ⟦Left : node Γ0 Γ1 ⇒ Γ0⟧ g  = g.1
    ⟦Right : node Γ0 Γ1 ⇒ Γ1⟧ g = g.2
    ⟦Empty : Γ ⇒ empty⟧ g       = ()
    ⟦p1.p2⟧ g                   = ⟦p2⟧ (⟦p1⟧ g)
    ⟦p1, p2⟧ g                  = (⟦p1⟧ g, ⟦p2⟧ g)
    ⟦E2P e⟧ g                   = ⟦e⟧ g

(Fig. 12's last block.)  ``apply_path`` evaluates a path on the nested-pair
representation of tuples; expression leaves (``E2P``) are evaluated by a
callback supplied by the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from repro.errors import EvaluationError


class Path:
    """Base class of path expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class StarPath(Path):
    """``*`` — the identity path."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class LeftPath(Path):
    """``Left`` — first component of a node tuple."""

    def __str__(self) -> str:
        return "Left"


@dataclass(frozen=True)
class RightPath(Path):
    """``Right`` — second component of a node tuple."""

    def __str__(self) -> str:
        return "Right"


@dataclass(frozen=True)
class EmptyPath(Path):
    """``Empty`` — the unique map into the unit type."""

    def __str__(self) -> str:
        return "Empty"


@dataclass(frozen=True)
class ComposePath(Path):
    """``p1 . p2`` — apply ``p1`` first, then ``p2``."""

    first: Path
    second: Path

    def __str__(self) -> str:
        return f"{self.first}.{self.second}"


@dataclass(frozen=True)
class PairPath(Path):
    """``p1, p2`` — build a node tuple from two paths."""

    left: Path
    right: Path

    def __str__(self) -> str:
        return f"({self.left}, {self.right})"


@dataclass(frozen=True)
class E2PPath(Path):
    """``E2P e`` — a one-leaf projection computed by an expression."""

    expr: object  # an repro.ir.ast expression node

    def __str__(self) -> str:
        return f"E2P({self.expr})"


def apply_path(
    path: Path, value: object, eval_expr: Callable[[object, object], object]
) -> object:
    """Evaluate ``path`` on a nested-pair tuple ``value``.

    ``eval_expr(expr, g)`` evaluates an embedded ``E2P`` expression with the
    current tuple as the environment.
    """
    if isinstance(path, StarPath):
        return value
    if isinstance(path, LeftPath):
        if not isinstance(value, tuple) or len(value) != 2:
            raise EvaluationError(f"Left applied to non-pair {value!r}")
        return value[0]
    if isinstance(path, RightPath):
        if not isinstance(value, tuple) or len(value) != 2:
            raise EvaluationError(f"Right applied to non-pair {value!r}")
        return value[1]
    if isinstance(path, EmptyPath):
        return ()
    if isinstance(path, ComposePath):
        return apply_path(
            path.second, apply_path(path.first, value, eval_expr), eval_expr
        )
    if isinstance(path, PairPath):
        return (
            apply_path(path.left, value, eval_expr),
            apply_path(path.right, value, eval_expr),
        )
    if isinstance(path, E2PPath):
        return eval_expr(path.expr, value)
    raise EvaluationError(f"unknown path {type(path).__name__}")


def left_spine(depth: int) -> Path:
    """``Left.Left...`` composed ``depth`` times (0 = ``*``)."""
    path: Path = StarPath()
    for _ in range(depth):
        path = ComposePath(path, LeftPath())
    return path
