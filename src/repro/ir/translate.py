"""SQL → SQL IR translation (Fig. 11).

The named surface syntax is rebased onto contexts: a context ``Γ`` is a
stack of FROM frames, each frame a right-nested tree of aliased schemas.  A
column reference ``x.a`` becomes ``topath(Γ, x)`` composed with the position
of ``a`` inside ``x``'s schema tree; correlated references reach outer
frames through ``Left`` (Fig. 12 evaluates a ``WHERE`` predicate in context
``node Γ σ``, so the enclosing context is the left component).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import CompileError, ResolutionError
from repro.ir.ast import (
    AggIR,
    AndIR,
    CastPredIR,
    ConstIR,
    DistinctIR,
    EqIR,
    ExceptIR,
    ExistsIR,
    FalseIR,
    FromIR,
    FuncIR,
    IntersectIR,
    IRExpr,
    IRPred,
    IRQuery,
    NotIR,
    OrIR,
    P2EIR,
    SelectIR,
    TableIR,
    TrueIR,
    UnionAllIR,
    WhereIR,
)
from repro.ir.paths import (
    ComposePath,
    E2PPath,
    LeftPath,
    PairPath,
    Path,
    RightPath,
    StarPath,
)
from repro.ir.schema_tree import (
    EmptyTree,
    LeafTree,
    NodeTree,
    SchemaTree,
    tree_of_schema,
)
from repro.sql.ast import (
    AggCall,
    AndPred,
    BinPred,
    ColumnRef,
    Constant,
    DistinctQuery,
    Except,
    Exists,
    Expr,
    ExprAs,
    FalsePred,
    FuncCall,
    Intersect,
    NotPred,
    OrPred,
    Pred,
    Query,
    Select,
    Star,
    TableRef,
    TableStar,
    TruePred,
    UnionAll,
    Where,
)
from repro.sql.program import Catalog
from repro.sql.schema import Schema


# -- frames and contexts -------------------------------------------------------


@dataclass(frozen=True)
class FrameLeaf:
    """One aliased FROM item."""

    alias: str
    schema: Schema
    tree: SchemaTree


@dataclass(frozen=True)
class FrameNode:
    """Right-nested product of FROM items."""

    left: "Frame"
    right: "Frame"


Frame = object  # FrameLeaf | FrameNode


def frame_tree(frame: Frame) -> SchemaTree:
    if isinstance(frame, FrameLeaf):
        return frame.tree
    if isinstance(frame, FrameNode):
        return NodeTree(frame_tree(frame.left), frame_tree(frame.right))
    raise TypeError(f"unknown frame {type(frame).__name__}")


def frame_path(frame: Frame, alias: str) -> Optional[Path]:
    """Path from the frame tuple to ``alias``'s component."""
    if isinstance(frame, FrameLeaf):
        return StarPath() if frame.alias == alias else None
    if isinstance(frame, FrameNode):
        left = frame_path(frame.left, alias)
        if left is not None:
            return ComposePath(LeftPath(), left)
        right = frame_path(frame.right, alias)
        if right is not None:
            return ComposePath(RightPath(), right)
        return None
    raise TypeError(f"unknown frame {type(frame).__name__}")


def frame_schema(frame: Frame, alias: str) -> Optional[Schema]:
    if isinstance(frame, FrameLeaf):
        return frame.schema if frame.alias == alias else None
    if isinstance(frame, FrameNode):
        return frame_schema(frame.left, alias) or frame_schema(frame.right, alias)
    raise TypeError(f"unknown frame {type(frame).__name__}")


@dataclass(frozen=True)
class Context:
    """A stack of frames: ``Γ = node(parent, frame)``; None is the root."""

    parent: Optional["Context"]
    frame: Frame

    def topath(self, alias: str) -> Tuple[Path, Schema]:
        """Path from the context tuple to ``alias``, plus its flat schema.

        The innermost frame sits in the ``Right`` component of the context
        tuple; outer frames are reached through ``Left`` (Fig. 12's
        ``node Γ σ`` convention).
        """
        local = frame_path(self.frame, alias)
        if local is not None:
            schema = frame_schema(self.frame, alias)
            return ComposePath(RightPath(), local), schema
        if self.parent is None:
            raise ResolutionError(f"unknown alias {alias!r} in IR translation")
        outer_path, schema = self.parent.topath(alias)
        return ComposePath(LeftPath(), outer_path), schema


def attribute_path(schema: Schema, tree: SchemaTree, name: str) -> Path:
    """Path to attribute ``name`` inside a right-nested schema tree."""
    names = schema.attribute_names()
    if name not in names:
        raise ResolutionError(f"attribute {name!r} not in schema {schema.name!r}")
    index = names.index(name)
    path: Path = StarPath()
    for _ in range(index):
        path = ComposePath(path, RightPath())
    if index < len(names) - 1:
        path = ComposePath(path, LeftPath())
    return path


# -- translation -----------------------------------------------------------


class IRTranslator:
    """Fig. 11's ``Trc``/``Ctc`` rules."""

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog

    def translate(self, query: Query, ctx: Optional[Context] = None) -> IRQuery:
        """Translate a resolved, desugared SQL query to IR."""
        if isinstance(query, TableRef):
            if self._catalog.has_view(query.name):
                return self.translate(self._catalog.view_query(query.name), ctx)
            schema = self._catalog.table_schema(query.name)
            return TableIR(query.name, tree_of_schema(schema))
        if isinstance(query, Select):
            return self._translate_select(query, ctx)
        if isinstance(query, Where):
            raise CompileError(
                "standalone WHERE combinator is not supported by the IR "
                "translator; wrap it in a SELECT"
            )
        if isinstance(query, UnionAll):
            return UnionAllIR(
                self.translate(query.left, ctx), self.translate(query.right, ctx)
            )
        if isinstance(query, Except):
            return ExceptIR(
                self.translate(query.left, ctx), self.translate(query.right, ctx)
            )
        if isinstance(query, Intersect):
            return IntersectIR(
                self.translate(query.left, ctx), self.translate(query.right, ctx)
            )
        if isinstance(query, DistinctQuery):
            return DistinctIR(self.translate(query.query, ctx))
        raise CompileError(f"cannot translate query {type(query).__name__} to IR")

    def schema_of(self, query: Query) -> Schema:
        from repro.usr.compile import Compiler

        return Compiler(self._catalog).schema_of(query)

    def _translate_select(self, query: Select, ctx: Optional[Context]) -> IRQuery:
        if query.group_by:
            raise CompileError("GROUP BY must be desugared before IR translation")
        if not query.from_items:
            raise CompileError("IR translation requires a FROM clause")
        # FROM q1 x1, ..., qn xn  =>  right-nested products + frame.
        frames: List[FrameLeaf] = []
        ir_items: List[IRQuery] = []
        for item in query.from_items:
            item_schema = self.schema_of(item.query)
            frames.append(
                FrameLeaf(item.alias, item_schema, tree_of_schema(item_schema))
            )
            ir_items.append(self.translate(item.query, ctx))
        frame: Frame = frames[-1]
        ir_query: IRQuery = ir_items[-1]
        for leaf, ir_item in zip(reversed(frames[:-1]), reversed(ir_items[:-1])):
            frame = FrameNode(leaf, frame)
            ir_query = FromIR(ir_item, ir_query)
        inner_ctx = Context(ctx, frame)
        if query.where is not None:
            ir_query = WhereIR(ir_query, self._translate_pred(query.where, inner_ctx))
        projection, out_tree = self._translate_projections(query, inner_ctx)
        result: IRQuery = SelectIR(projection, ir_query, out_tree)
        if query.distinct:
            result = DistinctIR(result)
        return result

    def _translate_projections(
        self, query: Select, ctx: Context
    ) -> Tuple[Path, SchemaTree]:
        """Build the output path ``p`` and the output schema tree."""
        items: List[Tuple[Path, SchemaTree]] = []
        for proj in query.projections:
            if isinstance(proj, Star):
                # The whole FROM tuple: the Right component of the SELECT
                # context (Fig. 12 evaluates p on (g, t')).
                items.append(
                    (RightPath(), frame_tree(ctx.frame))
                )
            elif isinstance(proj, TableStar):
                path, schema = ctx.topath(proj.table)
                items.append((path, tree_of_schema(schema)))
            elif isinstance(proj, ExprAs):
                expr = self._translate_expr(proj.expr, ctx)
                items.append(
                    (E2PPath(expr), LeafTree("int", proj.alias or "col"))
                )
            else:
                raise CompileError(f"unknown projection {type(proj).__name__}")
        path, tree = items[-1]
        for item_path, item_tree in reversed(items[:-1]):
            path = PairPath(item_path, path)
            tree = NodeTree(item_tree, tree)
        return path, tree

    def _translate_pred(self, pred: Pred, ctx: Context) -> IRPred:
        if isinstance(pred, TruePred):
            return TrueIR()
        if isinstance(pred, FalsePred):
            return FalseIR()
        if isinstance(pred, AndPred):
            return AndIR(
                self._translate_pred(pred.left, ctx),
                self._translate_pred(pred.right, ctx),
            )
        if isinstance(pred, OrPred):
            return OrIR(
                self._translate_pred(pred.left, ctx),
                self._translate_pred(pred.right, ctx),
            )
        if isinstance(pred, NotPred):
            return NotIR(self._translate_pred(pred.inner, ctx))
        if isinstance(pred, Exists):
            inner = self.translate(pred.query, ctx)
            exists = ExistsIR(inner)
            return NotIR(exists) if pred.negated else exists
        if isinstance(pred, BinPred):
            left = self._translate_expr(pred.left, ctx)
            right = self._translate_expr(pred.right, ctx)
            if pred.op == "=":
                return EqIR(left, right)
            if pred.op == "<>":
                return NotIR(EqIR(left, right))
            # Uninterpreted comparison: CASTPRED β over argument paths.
            op = pred.op
            if op in (">", ">="):
                op = "<" if op == ">" else "<="
                left, right = right, left
            return CastPredIR(op, (E2PPath(left), E2PPath(right)))
        raise CompileError(f"cannot translate predicate {type(pred).__name__}")

    def _translate_expr(self, expr: Expr, ctx: Context) -> IRExpr:
        if isinstance(expr, ColumnRef):
            alias_path, schema = ctx.topath(expr.table)
            attr = attribute_path(schema, tree_of_schema(schema), expr.column)
            return P2EIR(ComposePath(alias_path, attr))
        if isinstance(expr, Constant):
            return ConstIR(expr.value)
        if isinstance(expr, FuncCall):
            return FuncIR(
                expr.name,
                tuple(self._translate_expr(a, ctx) for a in expr.args),
            )
        if isinstance(expr, AggCall):
            return AggIR(expr.name.lower(), self.translate(expr.query, ctx))
        raise CompileError(f"cannot translate expression {type(expr).__name__}")


def translate_query(query, catalog: Catalog) -> IRQuery:
    """Parse (if text), resolve, desugar, and translate to SQL IR."""
    from repro.sql.desugar import desugar_query
    from repro.sql.parser import parse_query
    from repro.sql.scope import resolve_query

    parsed = parse_query(query) if isinstance(query, str) else query
    resolved, _ = resolve_query(parsed, catalog)
    desugared = desugar_query(resolved)
    return IRTranslator(catalog).translate(desugared)
