"""Congruence closure over value expressions.

Given a set of equalities between :class:`~repro.usr.values.ValueExpr` terms,
this computes the closure under reflexivity, symmetry, transitivity, *and*
congruence: if ``a ~ b`` then ``f(..a..) ~ f(..b..)`` for every registered
application.  This is the "congruence procedure [43]" the paper uses to match
predicate parts of terms (Sec. 5.2), with Nelson–Oppen-style signature
rehashing.

Value expressions decompose into (operator, children) pairs:

* ``Attr(base, a)`` — operator ``("attr", a)`` with child ``base``;
* ``Func(f, args)`` — operator ``("fn", f)`` with the arguments as children;
* ``TupleCons`` / ``ConcatTuple`` — constructors with their components;
* ``TupleVar``, ``ConstVal``, ``Agg`` — leaves (aggregates are compared
  structurally; the canonizer pre-normalizes their bodies so structural
  equality implements the paper's "uninterpreted function of the subquery").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.logic.unionfind import UnionFind
from repro.usr.values import (
    Agg,
    Attr,
    ConcatTuple,
    ConstVal,
    Func,
    TupleCons,
    TupleVar,
    ValueExpr,
)


def decompose(value: ValueExpr) -> Optional[Tuple[Tuple, Tuple[ValueExpr, ...]]]:
    """Split a composite value into (operator tag, children); None for leaves."""
    if isinstance(value, Attr):
        return (("attr", value.name), (value.base,))
    if isinstance(value, Func):
        return (("fn", value.name, len(value.args)), value.args)
    if isinstance(value, TupleCons):
        names = tuple(name for name, _ in value.fields)
        return (("cons", names), tuple(v for _, v in value.fields))
    if isinstance(value, ConcatTuple):
        tags = tuple(
            (schema.name, schema.attribute_names(), schema.generic)
            if schema is not None
            else None
            for _, schema in value.parts
        )
        return (("concat", tags), tuple(v for v, _ in value.parts))
    return None


class CongruenceClosure:
    """Equivalence classes of value expressions closed under congruence."""

    def __init__(self) -> None:
        self._uf = UnionFind()
        self._nodes: Set[ValueExpr] = set()
        self._groups: Optional[Dict[ValueExpr, List[ValueExpr]]] = None

    # -- construction ------------------------------------------------------

    def add_term(self, value: ValueExpr) -> None:
        """Register ``value`` and all its subterms."""
        if value in self._nodes:
            return
        self._groups = None
        self._nodes.add(value)
        self._uf.add(value)
        parts = decompose(value)
        if parts is None:
            return
        _, children = parts
        for child in children:
            self.add_term(child)

    def merge(self, left: ValueExpr, right: ValueExpr) -> None:
        """Assert ``left = right`` and restore congruence."""
        self.add_term(left)
        self.add_term(right)
        self._groups = None
        self._uf.union(left, right)
        self._rebuild()

    def merge_many(self, pairs: Iterable[Tuple[ValueExpr, ValueExpr]]) -> None:
        """Assert several equalities with a single congruence rebuild.

        Congruence closure is confluent — the final partition depends only
        on the set of asserted equalities, not their order — so batching
        the unions and rehashing signatures once is equivalent to (and far
        cheaper than) a full :meth:`_rebuild` fixpoint per ``merge``.
        """
        pairs = list(pairs)
        if not pairs:
            # No equalities: every class is a singleton, so two signatures
            # can only coincide for structurally identical (= same) nodes;
            # the rehash fixpoint would be a no-op.
            return
        self._groups = None
        for left, right in pairs:
            self.add_term(left)
            self.add_term(right)
            self._uf.union(left, right)
        self._rebuild()

    def _rebuild(self) -> None:
        """Merge congruent applications until fixpoint (signature rehash).

        A global scan per round is quadratic but evidently correct; the term
        universes the decision procedure builds are small (tens of nodes).
        """
        changed = True
        while changed:
            changed = False
            self._groups = None
            signatures: Dict[Tuple, ValueExpr] = {}
            for node in self._nodes:
                if decompose(node) is None:
                    continue
                signature = self._signature(node)
                other = signatures.get(signature)
                if other is None:
                    signatures[signature] = node
                elif not self._uf.same(other, node):
                    self._uf.union(other, node)
                    changed = True

    def _signature(self, value: ValueExpr) -> Tuple:
        parts = decompose(value)
        if parts is None:
            return ("leaf", self._uf.find(value))
        op, children = parts
        return (op, tuple(self._uf.find(child) for child in children))

    # -- queries ---------------------------------------------------------

    def equal(self, left: ValueExpr, right: ValueExpr) -> bool:
        """Are ``left`` and ``right`` provably equal?

        Terms not previously registered are added first; their subterm
        structure may immediately connect them through congruence, so the
        closure is re-established before answering.
        """
        known = left in self._nodes and right in self._nodes
        self.add_term(left)
        self.add_term(right)
        if not known:
            self._rebuild()
        return self._uf.same(left, right)

    def find(self, value: ValueExpr) -> ValueExpr:
        """Representative of ``value``'s class (adding it if new)."""
        self.add_term(value)
        return self._uf.find(value)

    def _grouped(self) -> Dict[ValueExpr, List[ValueExpr]]:
        """Root → members partition, cached until the closure changes."""
        if self._groups is None:
            grouped: Dict[ValueExpr, List[ValueExpr]] = {}
            for node in self._nodes:
                grouped.setdefault(self._uf.find(node), []).append(node)
            self._groups = grouped
        return self._groups

    def class_members(self, value: ValueExpr) -> List[ValueExpr]:
        self.add_term(value)
        return self._grouped()[self._uf.find(value)]

    def classes(self) -> List[List[ValueExpr]]:
        return list(self._grouped().values())

    def constants_in_class(self, value: ValueExpr) -> List[ConstVal]:
        return [m for m in self.class_members(value) if isinstance(m, ConstVal)]

    def copy(self) -> "CongruenceClosure":
        clone = CongruenceClosure()
        for node in self._nodes:
            clone.add_term(node)
        for group in self.classes():
            first = group[0]
            for member in group[1:]:
                clone.merge(first, member)
        return clone
