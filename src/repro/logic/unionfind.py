"""A union-find (disjoint-set) structure over hashable elements.

Path compression plus union by rank; elements are added lazily on first use.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List


class UnionFind:
    """Disjoint sets of hashable elements."""

    def __init__(self) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}

    def add(self, element: Hashable) -> None:
        """Register ``element`` as its own singleton class (idempotent)."""
        if element not in self._parent:
            self._parent[element] = element
            self._rank[element] = 0

    def find(self, element: Hashable) -> Hashable:
        """The canonical representative of ``element``'s class."""
        parent = self._parent
        root = parent.get(element)
        if root is None:
            parent[element] = element
            self._rank[element] = 0
            return element
        if root is element:  # interned/identical fast path
            return root
        while True:
            above = parent[root]
            if above == root:
                break
            root = above
        # Path compression.
        while True:
            above = parent[element]
            if above == root:
                break
            parent[element] = root
            element = above
        return root

    def union(self, left: Hashable, right: Hashable) -> bool:
        """Merge the classes of ``left`` and ``right``; True if they changed."""
        root_left = self.find(left)
        root_right = self.find(right)
        if root_left == root_right:
            return False
        if self._rank[root_left] < self._rank[root_right]:
            root_left, root_right = root_right, root_left
        self._parent[root_right] = root_left
        if self._rank[root_left] == self._rank[root_right]:
            self._rank[root_left] += 1
        return True

    def same(self, left: Hashable, right: Hashable) -> bool:
        return self.find(left) == self.find(right)

    def elements(self) -> Iterable[Hashable]:
        return self._parent.keys()

    def classes(self) -> List[List[Hashable]]:
        """All equivalence classes as lists of members."""
        grouped: Dict[Hashable, List[Hashable]] = {}
        for element in self._parent:
            grouped.setdefault(self.find(element), []).append(element)
        return list(grouped.values())

    def __len__(self) -> int:
        return len(self._parent)
