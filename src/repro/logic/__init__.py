"""Logic utilities: union-find and congruence closure.

The decision procedure checks predicate-part equivalence with the congruence
procedure of Nelson & Oppen (Sec. 5.2): equalities generate equivalence
classes of value expressions, closed under function application.
"""

from repro.logic.unionfind import UnionFind
from repro.logic.congruence import CongruenceClosure

__all__ = ["CongruenceClosure", "UnionFind"]
