"""Hash-consing support: cached hashes, interned leaves, stable fingerprints.

The decision procedure is dominated by dictionary operations over deeply
nested immutable AST nodes (congruence closure, predicate dedup, term
matching).  Frozen dataclasses recompute their structural hash on every
lookup, which the profiler shows as hundreds of thousands of ``hash()``
calls per corpus run.  This module provides three tools:

* :func:`cached_structural_hash` — a class decorator (applied *above*
  ``@dataclass(frozen=True)``) that replaces the generated ``__hash__``
  with one that computes the structural hash once and stores it on the
  instance.  Equality stays the generated structural ``__eq__``, so the
  ``a == b ⇒ hash(a) == hash(b)`` contract is preserved.

* :data:`INTERN_CAP` — the bound for the leaf intern tables kept by
  :class:`~repro.usr.values.TupleVar` and small
  :class:`~repro.usr.values.ConstVal` constants, so the hot leaves are
  shared and pointer-compare fast.

* :func:`fingerprint` — a *run-stable* structural digest (BLAKE2b).
  Python's built-in ``hash`` is salted per process (``PYTHONHASHSEED``),
  so it cannot key any cache that must agree across runs or across
  worker processes.  Fingerprints serialize a node's class name and
  fields deterministically and are cached per node.

The module also hosts the :class:`LRUCache` used by the memoization layer
around :func:`repro.usr.spnf.normalize` and
:func:`repro.udp.canonize.canonize_form`, plus a registry so cache
hit/miss statistics can be surfaced (``udp-prove --report`` and the
cluster front end assert on them).

Memo-key design (see also :mod:`repro.service`): every memo key starts
from a fingerprint, never from ``id()`` or built-in ``hash()``, so a key
means "structurally identical input" regardless of which process or run
produced it.  Caches must be invalidated (:func:`clear_caches`) whenever
an input *outside* the key changes meaning — in practice only when a
catalog is mutated in place, since constraints enter the canonize key via
:meth:`repro.constraints.model.ConstraintSet.digest`.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import fields as _dataclass_fields, is_dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

# ---------------------------------------------------------------------------
# Cached structural hashing
# ---------------------------------------------------------------------------


def cached_structural_hash(cls):
    """Class decorator: memoize ``__hash__`` on the instance.

    Apply *above* ``@dataclass(frozen=True)`` so the dataclass fields are
    already registered.  The hash is computed from the class name and the
    dataclass fields (same inputs as the generated hash) and stored via
    ``object.__setattr__`` — legal on frozen instances and invisible to
    the generated ``__eq__``/``__repr__``, which only consult fields.
    """
    names = tuple(f.name for f in _dataclass_fields(cls))
    label = cls.__name__

    def __hash__(self, _names=names, _label=label):
        try:  # plain attribute read: the fastest cached path available
            return self._hash
        except AttributeError:
            h = hash((_label,) + tuple(getattr(self, n) for n in _names))
            object.__setattr__(self, "_hash", h)
            return h

    def __getstate__(self):
        # The cached hash is built on the per-process-salted builtin
        # `hash`; letting it survive pickling would break the
        # `a == b ⇒ hash(a) == hash(b)` contract in a process with a
        # different PYTHONHASHSEED.  The `_fingerprint`/`_str` caches are
        # seed-independent and safe to carry along.  The canonical-
        # labeling caches (`_canonical` is a whole renamed twin of the
        # node, `_refined_colors` a per-binder color map) are stripped
        # too — not for correctness (they are run-stable) but for size:
        # carrying them would roughly double every value published to
        # the cross-process shared memo store.  `_canon_digest` is one
        # small hex string and rides along.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        state.pop("_canonical", None)
        state.pop("_refined_colors", None)
        return state

    cls.__hash__ = __hash__
    cls.__getstate__ = __getstate__
    return cls


def cached_free_vars(cls):
    """Class decorator: memoize ``free_tuple_vars`` on the instance.

    Free-variable sets of immutable nodes are requested repeatedly by
    substitution, scope extrusion, and the canonizer's occurrence checks;
    the frozenset is computed once per node.
    """
    raw = cls.free_tuple_vars

    def free_tuple_vars(self, _raw=raw):
        try:
            return self._free_vars
        except AttributeError:
            out = _raw(self)
            object.__setattr__(self, "_free_vars", out)
            return out

    cls.free_tuple_vars = free_tuple_vars
    return cls


def cached_str(cls):
    """Class decorator: memoize a pure ``__str__`` on the instance.

    The canonizer and SPNF builder use rendered strings as deterministic
    sort keys (predicate order, relation-atom order, canonical term
    order), so the same immutable node is stringified many times per
    decision.  Apply below :func:`cached_structural_hash`, to classes
    whose ``__str__`` depends only on (immutable) fields.
    """
    raw_str = cls.__str__

    def __str__(self, _raw=raw_str):
        try:
            return self._str
        except AttributeError:
            s = _raw(self)
            object.__setattr__(self, "_str", s)
            return s

    cls.__str__ = __str__
    return cls


# ---------------------------------------------------------------------------
# Interned leaves
# ---------------------------------------------------------------------------

#: Bound on each intern table (the leaf classes keep one dict each; see
#: ``repro.usr.values``); past it, construction degrades gracefully to
#: plain allocation (fresh-name generators would otherwise grow the tables
#: without limit).
INTERN_CAP = 8192


# ---------------------------------------------------------------------------
# Run-stable fingerprints
# ---------------------------------------------------------------------------

_FP_BYTES = 16

#: Per-class field-name tuples, so fingerprints need not call
#: :func:`dataclasses.fields` on every node.
_FIELDS_BY_CLASS: Dict[type, Tuple[str, ...]] = {}


def _digest(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=_FP_BYTES).digest()


def _fp_bytes(obj: Any) -> bytes:
    """Stable, unambiguous byte encoding of a structural value.

    Primitives are length/tag-framed raw bytes (no hashing needed —
    ambiguity is prevented by the frame); composite nodes digest their
    children so deep structures keep fixed-size encodings, cached per
    node instance.
    """
    if obj is None:
        return b"\x00n"
    if obj is True:
        return b"\x00t"
    if obj is False:
        return b"\x00f"
    cls = obj.__class__
    if cls is str:
        raw = obj.encode("utf-8")
        return b"s%d:" % len(raw) + raw
    if cls is int:
        raw = b"%d" % obj
        return b"i%d:" % len(raw) + raw
    if cls is float:
        raw = repr(obj).encode("ascii")
        return b"g%d:" % len(raw) + raw
    if cls is tuple:
        return _digest(b"t:" + b"".join(_fp_bytes(item) for item in obj))
    if cls is frozenset:
        parts = sorted(_fp_bytes(item) for item in obj)
        return _digest(b"fs:" + b"".join(parts))
    if is_dataclass(obj) and not isinstance(obj, type):
        cached = getattr(obj, "__dict__", {}).get("_fingerprint")
        if cached is not None:
            return cached
        names = _FIELDS_BY_CLASS.get(cls)
        if names is None:
            names = tuple(f.name for f in _dataclass_fields(obj))
            _FIELDS_BY_CLASS[cls] = names
        payload = b"d:" + cls.__name__.encode("ascii")
        for name in names:
            payload += _fp_bytes(getattr(obj, name))
        fp = _digest(payload)
        try:
            object.__setattr__(obj, "_fingerprint", fp)
        except (AttributeError, TypeError):  # slots-only or exotic objects
            pass
        return fp
    if isinstance(obj, (str, int, float, tuple, frozenset)):  # subclasses
        return _fp_bytes(
            str(obj) if isinstance(obj, str) else
            int(obj) if isinstance(obj, int) else
            float(obj) if isinstance(obj, float) else
            tuple(obj) if isinstance(obj, tuple) else frozenset(obj)
        )
    # Last resort: repr is assumed deterministic for whatever lands here.
    return _digest(b"r:" + repr(obj).encode("utf-8", "backslashreplace"))


def fingerprint(obj: Any) -> str:
    """Hex digest of a node (or tuple of nodes), stable across runs.

    Structurally identical inputs — same classes, same fields, same binder
    names — map to the same fingerprint in every process regardless of
    ``PYTHONHASHSEED``, which is what lets memo entries be compared across
    multiprocessing workers and recorded in result sinks.
    """
    return _fp_bytes(obj).hex()


# ---------------------------------------------------------------------------
# LRU caches with shared statistics
# ---------------------------------------------------------------------------

_CACHE_REGISTRY: Dict[str, "LRUCache"] = {}

_MEMOIZATION_ENABLED = True


def memoization_enabled() -> bool:
    """Whether the normalize/canonize memo layer is active."""
    return _MEMOIZATION_ENABLED


def set_memoization(enabled: bool) -> bool:
    """Toggle the memo layer; returns the previous setting.

    Disabling does not clear existing entries — pair with
    :func:`clear_caches` to obtain a genuinely cold path (the property
    tests compare cold vs memoized results this way).
    """
    global _MEMOIZATION_ENABLED
    previous = _MEMOIZATION_ENABLED
    _MEMOIZATION_ENABLED = bool(enabled)
    return previous


class LRUCache:
    """A small LRU map with hit/miss counters.

    ``functools.lru_cache`` is unsuitable here: keys are computed by the
    caller (fingerprints, not argument tuples), entries must be clearable
    as a group, and the statistics need to be visible to reports.

    Thread-safe: the server's session pool proves on several threads of
    one process at once, and they all share the module-level
    normalize/canonize caches — a bare ``get``+``move_to_end`` pair would
    race an eviction on another thread.
    """

    __slots__ = ("name", "maxsize", "hits", "misses", "_data", "_lock")

    def __init__(self, name: str, maxsize: int = 4096, register: bool = True):
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()
        if register:
            _CACHE_REGISTRY[name] = self

    def get(self, key: Any):
        """The cached value or ``None``; counts a hit or a miss."""
        with self._lock:
            data = self._data
            value = data.get(key)
            if value is None:
                self.misses += 1
                return None
            self.hits += 1
            data.move_to_end(key)
            return value

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            data = self._data
            if key in data:
                data.move_to_end(key)
            data[key] = value
            if len(data) > self.maxsize:
                data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def values(self) -> List[Any]:
        """The cached values, least- to most-recently used."""
        with self._lock:
            return list(self._data.values())

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._data),
                "maxsize": self.maxsize,
            }


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Statistics of every registered cache, keyed by cache name."""
    return {name: cache.stats() for name, cache in sorted(_CACHE_REGISTRY.items())}


# -- fork safety -------------------------------------------------------------
#
# The session pool forks worker processes — at construction, and again
# whenever a dead member is respawned — from a parent that may have other
# threads mid-proof.  fork() copies every lock in whatever state it is
# in, so a child forked while another thread held a cache lock (or the
# shared store's lock) would deadlock on its first memo access.  The
# at-fork handlers below serialize forks and hold every such lock across
# the fork, so the child always inherits them released.

_FORK_GUARD = threading.Lock()
_HELD_AT_FORK: List = []


def _locks_to_hold() -> List:
    locks = [
        cache._lock
        for _, cache in sorted(_CACHE_REGISTRY.items())
    ]
    from repro.hashcons_store import active_store  # local: import cycle

    store = active_store()
    if store is not None:
        locks.append(store._lock)
    return locks


def _before_fork() -> None:
    _FORK_GUARD.acquire()
    _HELD_AT_FORK[:] = _locks_to_hold()
    for lock in _HELD_AT_FORK:
        lock.acquire()


def _after_fork() -> None:
    for lock in reversed(_HELD_AT_FORK):
        try:
            lock.release()
        except RuntimeError:  # pragma: no cover - defensive
            pass
    _HELD_AT_FORK.clear()
    try:
        _FORK_GUARD.release()
    except RuntimeError:  # pragma: no cover - defensive
        pass


if hasattr(os, "register_at_fork"):  # POSIX
    os.register_at_fork(
        before=_before_fork,
        after_in_parent=_after_fork,
        after_in_child=_after_fork,
    )


def clear_caches() -> None:
    """Drop all registered cache entries and reset the counters.

    Required whenever cached inputs change meaning out-of-band — e.g. a
    catalog mutated in place after solving started (constraint digests
    enter memo keys, but schema objects reachable from cached forms do
    not re-verify themselves).  Also invalidates the installed
    cross-process shared memo store (:mod:`repro.hashcons_store`), if
    any — its epoch bump propagates the clear to every pool member.
    """
    for cache in _CACHE_REGISTRY.values():
        cache.clear()
    from repro.hashcons_store import clear_active_store  # local: import cycle

    clear_active_store()
