"""U-semiring expressions: the paper's core formalism (Sec. 3).

A SQL query denotes a function ``Tuple(σ) → U`` into an *unbounded semiring*
``(U, 0, 1, +, ×, ‖·‖, not(·), (Σ_D))``.  This package defines:

* :mod:`repro.usr.values` — value expressions (tuple variables, attribute
  access, uninterpreted functions, aggregates, constants);
* :mod:`repro.usr.predicates` — predicate atoms ``[b]``;
* :mod:`repro.usr.terms` — the U-expression AST and the denotation wrapper;
* :mod:`repro.usr.axioms` — the axiom catalog (each a named identity);
* :mod:`repro.usr.spnf` — normalization into Sum-Product Normal Form
  (Theorem 3.4);
* :mod:`repro.usr.compile` — the SQL → U-expression translation (Sec. 3.2);
* :mod:`repro.usr.substitute` — capture-avoiding substitution;
* :mod:`repro.usr.pretty` / :mod:`repro.usr.size` — printing and metrics.
"""

from repro.usr.terms import (
    Add,
    Mul,
    Not,
    One,
    Pred,
    QueryDenotation,
    Rel,
    Squash,
    Sum,
    UExpr,
    Zero,
    add,
    mul,
)
from repro.usr.values import (
    Agg,
    Attr,
    ConcatTuple,
    ConstVal,
    Func,
    TupleCons,
    TupleVar,
    ValueExpr,
)
from repro.usr.predicates import AtomPred, EqPred, NePred, Predicate

__all__ = [
    "Add",
    "Agg",
    "AtomPred",
    "Attr",
    "ConcatTuple",
    "ConstVal",
    "EqPred",
    "Func",
    "Mul",
    "NePred",
    "Not",
    "One",
    "Pred",
    "Predicate",
    "QueryDenotation",
    "Rel",
    "Squash",
    "Sum",
    "TupleCons",
    "TupleVar",
    "UExpr",
    "ValueExpr",
    "Zero",
    "add",
    "mul",
]
