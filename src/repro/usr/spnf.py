"""Sum-Product Normal Form (Definition 3.3, Theorem 3.4).

A U-expression in SPNF is a sum of *terms*; each term is

    Σ_{t1, ..., tm}  [b1] × ... × [bk] × ‖Es‖ × not(En) × M1 × ... × Mj

with predicates ``[bi]``, at most one squash factor, at most one negation
factor, and relation atoms ``Mi = R(t)``.  We represent the normal form as a
tuple of :class:`NormalTerm`; the squash and negation parts are themselves
normal forms (tuples of terms), and squash parts are kept *flattened*
(no nested squash factors — Lemma 5.1).

:func:`normalize` converts any U-expression into this shape by exhaustively
applying the nine rewrite rules in the proof of Theorem 3.4; each rule is an
axiom instance, and an optional :class:`~repro.udp.trace.ProofTrace` records
the applications.

Normalization is memoized: results are cached in an LRU keyed by the
expression's structural identity (cached hashes make in-process lookups
near-free; the run-stable :func:`~repro.hashcons.fingerprint` is the
equivalent key for anything that must cross process or run boundaries),
together with the proof steps the cold run recorded, which are replayed
into the caller's trace on a hit.  The memo applies at every recursion
level, so a repeated subexpression — ubiquitous in clustering workloads,
where each incoming query is re-normalized against every group
representative — is normalized once per process.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.hashcons import (
    LRUCache,
    cached_free_vars,
    cached_str,
    cached_structural_hash,
    memoization_enabled,
)
from repro.hashcons_store import shared_memo_get, shared_memo_put
from repro.sql.schema import Schema
from repro.udp.trace import ProofTrace
from repro.usr.predicates import AtomPred, EqPred, NePred, Predicate
from repro.usr.substitute import fresh_name, subst_predicate, subst_value
from repro.usr.terms import (
    Add,
    Mul,
    Not,
    One,
    Pred,
    Rel,
    Squash,
    Sum,
    UExpr,
    Zero,
    _One,
    _Zero,
    add,
    big_sum,
    mul,
    not_,
    squash,
)
from repro.usr.values import ConstVal, TupleVar, ValueExpr

#: A normal form: sum of terms.  The empty tuple is the constant 0.
NormalForm = Tuple["NormalTerm", ...]


@cached_structural_hash
@cached_str
@cached_free_vars
@dataclass(frozen=True)
class NormalTerm:
    """One SPNF term.

    Attributes:
        vars: summation bindings ``(name, schema)`` in order.
        preds: predicate factors, deduplicated (``[b]² = [b]`` via Eq. (11)
            and Eq. (4)) and sorted for determinism.
        rels: relation atoms as a sorted *multiset* — duplicates matter under
            bag semantics.
        squash_part: the ``Es`` of the unique squash factor, or ``None`` when
            ``Es = 1``; always flattened (no inner squash factors).
        neg_part: the ``En`` of the unique negation factor, or ``None`` when
            ``En = 0``.
    """

    vars: Tuple[Tuple[str, Schema], ...] = ()
    preds: Tuple[Predicate, ...] = ()
    rels: Tuple[Tuple[str, ValueExpr], ...] = ()
    squash_part: Optional[NormalForm] = None
    neg_part: Optional[NormalForm] = None

    def is_one(self) -> bool:
        """True when the term is the constant 1."""
        return (
            not self.vars
            and not self.preds
            and not self.rels
            and self.squash_part is None
            and self.neg_part is None
        )

    def bound_names(self) -> frozenset:
        return frozenset(name for name, _ in self.vars)

    def canonical_digest(self) -> str:
        """Run-stable digest of this term's canonical alpha-variant.

        Delegates to :func:`repro.cq.labeling.term_digest` (imported
        locally: ``labeling`` builds on this module); equal digests
        witness a binder bijection making two terms byte-identical.
        """
        from repro.cq.labeling import term_digest

        return term_digest(self)

    def free_tuple_vars(self) -> frozenset:
        free: frozenset = frozenset()
        for pred in self.preds:
            free |= pred.free_tuple_vars()
        for _, arg in self.rels:
            free |= arg.free_tuple_vars()
        if self.squash_part is not None:
            for term in self.squash_part:
                free |= term.free_tuple_vars()
        if self.neg_part is not None:
            for term in self.neg_part:
                free |= term.free_tuple_vars()
        return free - self.bound_names()

    def __str__(self) -> str:
        return str(term_to_uexpr(self))


# ---------------------------------------------------------------------------
# Term construction helpers
# ---------------------------------------------------------------------------


def pred_sort_key(pred: Predicate) -> str:
    """Deterministic order of predicate factors (their rendered strings)."""
    return str(pred)


def rel_sort_key(atom: Tuple[str, ValueExpr]) -> str:
    """Deterministic order of relation atoms (name + rendered argument)."""
    return f"{atom[0]}({atom[1]})"


#: Backwards-compatible aliases; the canonical-labeling kernel
#: (:mod:`repro.cq.labeling`) re-sorts factor lists with the same keys
#: after renaming binders, so the two orders can never drift apart.
_pred_sort_key = pred_sort_key
_rel_sort_key = rel_sort_key


def simplify_predicate(pred: Predicate) -> Optional[bool]:
    """Constant-fold a predicate: True / False / None (symbolic).

    Literal constants of the value domain are pairwise distinct under the
    standard interpretation, so ``[3 = 3]`` folds to 1 and ``[3 = 4]`` to 0.
    """
    if isinstance(pred, EqPred):
        if pred.left == pred.right:
            return True
        if isinstance(pred.left, ConstVal) and isinstance(pred.right, ConstVal):
            return pred.left.value == pred.right.value
        return None
    if isinstance(pred, NePred):
        if pred.left == pred.right:
            return False
        if isinstance(pred.left, ConstVal) and isinstance(pred.right, ConstVal):
            return pred.left.value != pred.right.value
        return None
    return None


def _bare_squash_body(term: NormalTerm) -> Optional[NormalForm]:
    """The squash body of a term that is *only* a squash, else ``None``."""
    if (
        not term.vars
        and not term.preds
        and not term.rels
        and term.neg_part is None
        and term.squash_part is not None
    ):
        return term.squash_part
    return None


def make_term(
    vars: Tuple[Tuple[str, Schema], ...],
    preds: Tuple[Predicate, ...],
    rels: Tuple[Tuple[str, ValueExpr], ...],
    squash_part: Optional[NormalForm],
    neg_part: Optional[NormalForm],
) -> Optional[NormalTerm]:
    """Build a simplified term; ``None`` means the term is the constant 0."""
    kept: List[Predicate] = []
    seen = set()
    for pred in preds:
        folded = simplify_predicate(pred)
        if folded is True:
            continue
        if folded is False:
            return None
        if pred not in seen:
            seen.add(pred)
            kept.append(pred)
    if squash_part is not None:
        if len(squash_part) == 0:
            return None  # ‖0‖ = 0 annihilates the product (Eq. (1))
        if any(term.is_one() for term in squash_part):
            squash_part = None  # ‖1 + x‖ = 1 (Eq. (1))
    if neg_part is not None:
        # not(x + ‖y‖) = not(x) × not(‖y‖) = not(x) × not(y) = not(x + y)
        # (Sec. 3.1: not-add then not-squash), so a bare-squash term inside
        # a negation contributes nothing but its body.  Without this,
        # ``normalize`` is not idempotent across re-denotation: the uexpr
        # smart constructor ``not_`` strips the squash, the term-level path
        # would keep it.
        if any(_bare_squash_body(term) is not None for term in neg_part):
            flattened: List[NormalTerm] = []
            for term in neg_part:
                body = _bare_squash_body(term)
                if body is not None:
                    flattened.extend(body)
                else:
                    flattened.append(term)
            neg_part = tuple(flattened)
        if len(neg_part) == 0:
            neg_part = None  # not(0) = 1
    return NormalTerm(
        vars=vars,
        preds=tuple(sorted(kept, key=_pred_sort_key)),
        rels=tuple(sorted(rels, key=_rel_sort_key)),
        squash_part=squash_part,
        neg_part=neg_part,
    )


def rename_term_binders(term: NormalTerm, taken: frozenset) -> NormalTerm:
    """Freshen the binders of ``term`` that collide with names in ``taken``."""
    mapping: Dict[str, ValueExpr] = {}
    new_vars: List[Tuple[str, Schema]] = []
    for name, schema in term.vars:
        if name in taken:
            renamed = fresh_name(name)
            mapping[name] = TupleVar(renamed)
            new_vars.append((renamed, schema))
        else:
            new_vars.append((name, schema))
    if not mapping:
        return term
    return substitute_term(
        NormalTerm(
            tuple(new_vars), term.preds, term.rels, term.squash_part, term.neg_part
        ),
        mapping,
    )


def substitute_term(term: NormalTerm, mapping: Dict[str, ValueExpr]) -> NormalTerm:
    """Substitute free tuple variables inside a term's factors.

    The caller is responsible for not substituting the term's own binders
    (entries for bound names are ignored).
    """
    inner = {k: v for k, v in mapping.items() if k not in term.bound_names()}
    if not inner:
        return term
    preds = tuple(subst_predicate(p, inner) for p in term.preds)
    rels = tuple((name, subst_value(arg, inner)) for name, arg in term.rels)
    squash_part = (
        tuple(substitute_term(t, inner) for t in term.squash_part)
        if term.squash_part is not None
        else None
    )
    neg_part = (
        tuple(substitute_term(t, inner) for t in term.neg_part)
        if term.neg_part is not None
        else None
    )
    return NormalTerm(term.vars, preds, rels, squash_part, neg_part)


def resimplify_term(term: NormalTerm) -> Optional[NormalTerm]:
    """Re-run constant folding / dedup after a substitution."""
    squash_part = term.squash_part
    if squash_part is not None:
        resimplified: List[NormalTerm] = []
        for sub in squash_part:
            kept = resimplify_term(sub)
            if kept is not None:
                resimplified.append(kept)
        squash_part = tuple(resimplified)
    neg_part = term.neg_part
    if neg_part is not None:
        resimplified = []
        for sub in neg_part:
            kept = resimplify_term(sub)
            if kept is not None:
                resimplified.append(kept)
        neg_part = tuple(resimplified)
    return make_term(term.vars, term.preds, term.rels, squash_part, neg_part)


# ---------------------------------------------------------------------------
# Products of terms and forms (rules (1)-(4), (6)-(9) of Theorem 3.4)
# ---------------------------------------------------------------------------


def mul_terms(left: NormalTerm, right: NormalTerm) -> Optional[NormalTerm]:
    """Product of two terms (scope extrusion + factor merging).

    Pulling both summations outward (rules (6)-(7)) requires the binders of
    each side to avoid the other side's variables, so colliding binders are
    freshened first.
    """
    left = rename_term_binders(left, right.free_tuple_vars())
    right = rename_term_binders(right, left.bound_names() | left.free_tuple_vars())
    # Squash factors merge by Eq. (3): ‖x‖ × ‖y‖ = ‖x × y‖.
    if left.squash_part is None:
        squash_part = right.squash_part
    elif right.squash_part is None:
        squash_part = left.squash_part
    else:
        squash_part = mul_forms(left.squash_part, right.squash_part)
    # Negation factors merge: not(x) × not(y) = not(x + y).
    if left.neg_part is None:
        neg_part = right.neg_part
    elif right.neg_part is None:
        neg_part = left.neg_part
    else:
        neg_part = left.neg_part + right.neg_part
    return make_term(
        left.vars + right.vars,
        left.preds + right.preds,
        left.rels + right.rels,
        squash_part,
        neg_part,
    )


def mul_forms(left: NormalForm, right: NormalForm) -> NormalForm:
    """Distributed product of two normal forms."""
    out: List[NormalTerm] = []
    for lterm in left:
        for rterm in right:
            product = mul_terms(lterm, rterm)
            if product is not None:
                out.append(product)
    return tuple(out)


def merge_scoped(outer: NormalTerm, inner: NormalTerm) -> Optional[NormalTerm]:
    """Merge ``inner`` into ``outer`` where inner sat *inside* outer's scope.

    Unlike :func:`mul_terms` (which multiplies sibling factors), the inner
    term's free variables may refer to the outer term's binders — those
    references must stay captured.  Only the inner binders are freshened,
    against every name visible from the outer term.
    """
    taken = (
        outer.bound_names()
        | outer.free_tuple_vars()
        | (inner.free_tuple_vars() - outer.bound_names())
    )
    inner = rename_term_binders(inner, frozenset(taken))
    if inner.squash_part is None:
        squash_part = outer.squash_part
    elif outer.squash_part is None:
        squash_part = inner.squash_part
    else:
        squash_part = mul_forms(outer.squash_part, inner.squash_part)
    if inner.neg_part is None:
        neg_part = outer.neg_part
    elif outer.neg_part is None:
        neg_part = inner.neg_part
    else:
        neg_part = outer.neg_part + inner.neg_part
    return make_term(
        outer.vars + inner.vars,
        outer.preds + inner.preds,
        outer.rels + inner.rels,
        squash_part,
        neg_part,
    )


def flatten_squash(form: NormalForm) -> NormalForm:
    """Dissolve inner squash factors under an enclosing squash (Lemma 5.1).

    ``‖ a × ‖x‖ + y ‖ = ‖ a × x + y ‖``: inside a squash, every term's squash
    factor may be replaced by its body, distributing sums as needed.  The
    squash body lives inside the host term's summation scope, so the merge
    keeps the host's binders fixed (see :func:`merge_scoped`).
    """
    out: List[NormalTerm] = []
    for term in form:
        if term.squash_part is None:
            out.append(term)
            continue
        inner = flatten_squash(term.squash_part)
        base = NormalTerm(term.vars, term.preds, term.rels, None, term.neg_part)
        for sub in inner:
            merged = merge_scoped(base, sub)
            if merged is not None:
                out.append(merged)
    return tuple(out)


# ---------------------------------------------------------------------------
# Normalization (Theorem 3.4)
# ---------------------------------------------------------------------------


#: Memo table for :func:`normalize`.  Keyed by the expression itself
#: (structural equality); the value is ``(form, proof_steps)`` so a hit
#: can replay the recorded axiom applications into the caller's trace.
_NORMALIZE_CACHE = LRUCache("normalize", maxsize=4096)

#: Recursion depth per thread: the shared cross-process store is only
#: consulted/fed at depth 0 (the root expression of a decision).  Inner
#: results are subsumed by the root's value — a sibling process hitting
#: the root entry never recurses at all — so publishing every recursive
#: level would multiply pickle/IO cost for no extra warming.
_STORE_DEPTH = threading.local()


def normalize(expr: UExpr, trace: Optional[ProofTrace] = None) -> NormalForm:
    """Rewrite ``expr`` into SPNF, memoized by structural identity.

    A cache hit returns the previously computed normal form (an
    alpha-variant is semantically interchangeable, and the key is the
    exact structure including binder names, so hits are only ever replays
    of the identical input) and appends the cold run's recorded proof
    steps to ``trace``.

    Two memo levels: the private in-process LRU first, then — when a
    :mod:`repro.hashcons_store` store is installed (session pools) — the
    cross-process shared store, keyed on the run-stable fingerprint so
    pool members warm each other instead of each normalizing cold.
    """
    if not memoization_enabled() or isinstance(expr, (_Zero, _One, Pred, Rel)):
        return _normalize_impl(expr, trace)
    # The key is the expression itself: structural equality with cached
    # hashes is cheaper than a digest; the shared level re-keys on the
    # run-stable `fingerprint()`, which agrees across processes.
    key = expr
    depth = getattr(_STORE_DEPTH, "value", 0)
    hit = _NORMALIZE_CACHE.get(key)
    if hit is None and depth == 0:
        hit = shared_memo_get("normalize", expr)
        if hit is not None:
            _NORMALIZE_CACHE.put(key, hit)
    if hit is not None:
        form, steps = hit
        if trace is not None:
            trace.steps.extend(steps)
        return form
    sub_trace = ProofTrace()
    _STORE_DEPTH.value = depth + 1
    try:
        form = _normalize_impl(expr, sub_trace)
    finally:
        _STORE_DEPTH.value = depth
    value = (form, tuple(sub_trace.steps))
    _NORMALIZE_CACHE.put(key, value)
    if depth == 0:
        shared_memo_put("normalize", expr, value)
    if trace is not None:
        trace.steps.extend(sub_trace.steps)
    return form


def _normalize_impl(expr: UExpr, trace: Optional[ProofTrace]) -> NormalForm:
    """One level of the Theorem 3.4 rewriting (recurses via the memo).

    The recursion applies the Theorem 3.4 rules: distributivity (rules 1-2),
    associativity/commutativity bookkeeping (3-4), sum extrusion (5-7), squash
    merging (8) and negation merging (9), plus the smart-constructor
    simplifications of :func:`make_term`.
    """
    if isinstance(expr, _Zero):
        return ()
    if isinstance(expr, _One):
        return (NormalTerm(),)
    if isinstance(expr, Pred):
        term = make_term((), (expr.pred,), (), None, None)
        return (term,) if term is not None else ()
    if isinstance(expr, Rel):
        term = make_term((), (), ((expr.name, expr.arg),), None, None)
        return (term,) if term is not None else ()
    if isinstance(expr, Add):
        out: List[NormalTerm] = []
        for arg in expr.args:
            out.extend(normalize(arg, trace))
        if trace is not None:
            trace.record("add-assoc", "flatten sum of terms")
        return tuple(out)
    if isinstance(expr, Mul):
        form: NormalForm = (NormalTerm(),)
        for arg in expr.args:
            form = mul_forms(form, normalize(arg, trace))
        if trace is not None:
            trace.record("distrib", "distribute product over sums")
        return form
    if isinstance(expr, Sum):
        body = normalize(expr.body, trace)
        out = []
        for term in body:
            bound = term
            if expr.var in term.bound_names():
                bound = rename_term_binders(term, frozenset({expr.var}))
            out.append(
                NormalTerm(
                    ((expr.var, expr.schema),) + bound.vars,
                    bound.preds,
                    bound.rels,
                    bound.squash_part,
                    bound.neg_part,
                )
            )
        if trace is not None:
            trace.record("sum-add", f"push Σ{expr.var} through sum of terms")
        return tuple(out)
    if isinstance(expr, Squash):
        inner = flatten_squash(normalize(expr.body, trace))
        if trace is not None:
            trace.record("squash-flatten", "dissolve nested squash factors")
        term = make_term((), (), (), inner, None)
        return (term,) if term is not None else ()
    if isinstance(expr, Not):
        inner = normalize(expr.body, trace)
        if len(inner) == 0:
            if trace is not None:
                trace.record("not-zero", "not(0) = 1")
            return (NormalTerm(),)
        term = make_term((), (), (), None, inner)
        return (term,) if term is not None else ()
    raise CompileError(f"cannot normalize {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Back-conversion to plain U-expressions
# ---------------------------------------------------------------------------


def term_to_uexpr(term: NormalTerm) -> UExpr:
    """Reconstruct the U-expression of a single term."""
    factors: List[UExpr] = [Pred(p) for p in term.preds]
    if term.squash_part is not None:
        factors.append(squash(form_to_uexpr(term.squash_part)))
    if term.neg_part is not None:
        factors.append(not_(form_to_uexpr(term.neg_part)))
    factors.extend(Rel(name, arg) for name, arg in term.rels)
    return big_sum(term.vars, mul(*factors))


def form_to_uexpr(form: NormalForm) -> UExpr:
    """Reconstruct the U-expression of a normal form."""
    return add(*[term_to_uexpr(term) for term in form])
