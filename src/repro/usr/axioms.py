"""The axiom catalog of the U-semiring (Definitions 3.1, Sec. 3.2, Sec. 4).

Every transformation the library performs is an application of one of these
named identities; proof traces reference them by key.  The catalog is the
reproduction of the paper's "trusted code base": the 129 lines of Lean
axioms become this table plus the instance self-check harness in
:mod:`repro.semirings.base`, which verifies that every concrete semiring we
ship actually satisfies each identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Axiom:
    """A named identity between two U-expressions."""

    key: str
    statement: str
    source: str


_AXIOM_LIST = [
    # -- commutative semiring ------------------------------------------------
    Axiom("add-comm", "x + y = y + x", "semiring"),
    Axiom("add-assoc", "(x + y) + z = x + (y + z)", "semiring"),
    Axiom("add-zero", "x + 0 = x", "semiring"),
    Axiom("mul-comm", "x × y = y × x", "semiring"),
    Axiom("mul-assoc", "(x × y) × z = x × (y × z)", "semiring"),
    Axiom("mul-one", "x × 1 = x", "semiring"),
    Axiom("mul-zero", "x × 0 = 0", "semiring"),
    Axiom("distrib", "x × (y + z) = x × y + x × z", "semiring"),
    # -- squash (Eq. (1)-(6)) --------------------------------------------------
    Axiom("squash-zero", "‖0‖ = 0", "Eq. (1)"),
    Axiom("squash-one-plus", "‖1 + x‖ = 1", "Eq. (1)"),
    Axiom("squash-absorb-add", "‖‖x‖ + y‖ = ‖x + y‖", "Eq. (2)"),
    Axiom("squash-mul", "‖x‖ × ‖y‖ = ‖x × y‖", "Eq. (3)"),
    Axiom("squash-idem", "‖x‖ × ‖x‖ = ‖x‖", "Eq. (4)"),
    Axiom("squash-self", "x × ‖x‖ = x", "Eq. (5)"),
    Axiom("squash-fix", "x² = x  ⇒  ‖x‖ = x", "Eq. (6)"),
    # -- negation -------------------------------------------------------------
    Axiom("not-zero", "not(0) = 1", "Sec. 3.1"),
    Axiom("not-mul", "not(x × y) = ‖not(x) + not(y)‖", "Sec. 3.1"),
    Axiom("not-add", "not(x + y) = not(x) × not(y)", "Sec. 3.1"),
    Axiom("not-squash", "not(‖x‖) = ‖not(x)‖ = not(x)", "Sec. 3.1"),
    # -- unbounded summation (Eq. (7)-(10)) -------------------------------------
    Axiom("sum-add", "Σt (f1 + f2) = Σt f1 + Σt f2", "Eq. (7)"),
    Axiom("sum-swap", "Σt1 Σt2 f = Σt2 Σt1 f", "Eq. (8)"),
    Axiom("sum-scale", "x × Σt f = Σt (x × f)", "Eq. (9)"),
    Axiom("sum-squash", "‖Σt f‖ = ‖Σt ‖f‖‖", "Eq. (10)"),
    # -- predicates (Eq. (11)-(15)) ----------------------------------------------
    Axiom("pred-squashed", "[b] = ‖[b]‖", "Eq. (11)"),
    Axiom("excluded-middle", "[e1 = e2] + [e1 ≠ e2] = 1", "Eq. (12)"),
    Axiom("subst-equals", "f(e1) × [e1 = e2] = f(e2) × [e1 = e2]", "Eq. (13)"),
    Axiom("eq-unique", "Σt [t = e] = 1", "Eq. (14)"),
    Axiom("eq-sum-elim", "Σt [t = e] × f(t) = f(e)", "Eq. (15), derived"),
    Axiom("eq-trans", "[e1 = e2] × [e2 = e3] = [e1 = e2] × [e2 = e3] × [e1 = e3]",
          "congruence, derived from Eq. (13)"),
    # -- integrity constraints -------------------------------------------------
    Axiom("key", "[t.k = t'.k] × R(t) × R(t') = [t = t'] × R(t)", "Def. 4.1"),
    Axiom("fk", "S(t') = S(t') × Σt R(t) × [t.k = t'.k']", "Def. 4.4"),
    Axiom(
        "key-squash",
        "Σt [b] ‖E‖ [t.k = e] R(t) = ‖Σt [b] ‖E‖ [t.k = e] R(t)‖",
        "Theorem 4.3",
    ),
    # -- derived lemmas ---------------------------------------------------------
    Axiom("squash-flatten", "‖a × ‖x‖ + y‖ = ‖a × x + y‖", "Lemma 5.1"),
    Axiom("view-inline", "v(t) = q(t) for view v := q", "Sec. 4.1"),
    Axiom(
        "tuple-ext",
        "[t = t'] = Π_a [t.a = t'.a] for concrete schemas",
        "Sec. 4.2 (Ex. 4.7 reconstruction step)",
    ),
]

#: key → Axiom, the canonical registry.
AXIOMS: Dict[str, Axiom] = {axiom.key: axiom for axiom in _AXIOM_LIST}


def axiom(key: str) -> Axiom:
    """Look up an axiom by key; raises KeyError for unknown keys."""
    return AXIOMS[key]
