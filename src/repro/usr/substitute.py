"""Capture-avoiding substitution of tuple variables in U-expressions.

The compiler generates globally-unique binder names, so capture can only occur
if an expression is substituted *into* itself; we still rename defensively
whenever a binder collides with a free variable of the payload.
"""

from __future__ import annotations

import itertools
from typing import Dict

from repro.usr.predicates import AtomPred, EqPred, NePred, Predicate
from repro.usr.terms import (
    Add,
    Mul,
    Not,
    Pred,
    Rel,
    Squash,
    Sum,
    UExpr,
    _One,
    _Zero,
)
from repro.usr.values import (
    Agg,
    Attr,
    ConcatTuple,
    ConstVal,
    Func,
    TupleCons,
    TupleVar,
    ValueExpr,
    project_attr,
)

_rename_counter = itertools.count()


def fresh_name(base: str) -> str:
    """A globally fresh tuple-variable name derived from ``base``."""
    stem = base.split("$")[0]
    return f"{stem}${next(_rename_counter)}"


def substitute_tuple_var(expr: UExpr, var: str, value: ValueExpr) -> UExpr:
    """Replace free occurrences of tuple variable ``var`` by ``value``."""
    return _subst(expr, {var: value})


def substitute_many(expr: UExpr, mapping: Dict[str, ValueExpr]) -> UExpr:
    """Simultaneous substitution of several tuple variables."""
    if not mapping:
        return expr
    return _subst(expr, dict(mapping))


def _subst(expr: UExpr, mapping: Dict[str, ValueExpr]) -> UExpr:
    if isinstance(expr, (_Zero, _One)):
        return expr
    if isinstance(expr, Add):
        return Add(tuple(_subst(a, mapping) for a in expr.args))
    if isinstance(expr, Mul):
        return Mul(tuple(_subst(a, mapping) for a in expr.args))
    if isinstance(expr, Squash):
        return Squash(_subst(expr.body, mapping))
    if isinstance(expr, Not):
        return Not(_subst(expr.body, mapping))
    if isinstance(expr, Pred):
        return Pred(subst_predicate(expr.pred, mapping))
    if isinstance(expr, Rel):
        return Rel(expr.name, subst_value(expr.arg, mapping))
    if isinstance(expr, Sum):
        inner = {k: v for k, v in mapping.items() if k != expr.var}
        if not inner:
            return expr
        payload_vars: frozenset = frozenset()
        for value in inner.values():
            payload_vars |= value.free_tuple_vars()
        var = expr.var
        body = expr.body
        if var in payload_vars:
            renamed = fresh_name(var)
            body = _subst(body, {var: TupleVar(renamed)})
            var = renamed
        return Sum(var, expr.schema, _subst(body, inner))
    raise TypeError(f"cannot substitute in {type(expr).__name__}")


def subst_predicate(pred: Predicate, mapping: Dict[str, ValueExpr]) -> Predicate:
    if isinstance(pred, EqPred):
        return EqPred(subst_value(pred.left, mapping), subst_value(pred.right, mapping))
    if isinstance(pred, NePred):
        return NePred(subst_value(pred.left, mapping), subst_value(pred.right, mapping))
    if isinstance(pred, AtomPred):
        return AtomPred(pred.name, tuple(subst_value(a, mapping) for a in pred.args))
    raise TypeError(f"cannot substitute in predicate {type(pred).__name__}")


def subst_value(value: ValueExpr, mapping: Dict[str, ValueExpr]) -> ValueExpr:
    if isinstance(value, TupleVar):
        return mapping.get(value.name, value)
    if isinstance(value, Attr):
        base = subst_value(value.base, mapping)
        # Re-normalize so ⟨a: e⟩.a reduces after substitution.
        return project_attr(base, value.name)
    if isinstance(value, ConstVal):
        return value
    if isinstance(value, Func):
        return Func(value.name, tuple(subst_value(a, mapping) for a in value.args))
    if isinstance(value, Agg):
        inner = {k: v for k, v in mapping.items() if k != value.var}
        if not inner:
            return value
        payload_vars: frozenset = frozenset()
        for payload in inner.values():
            payload_vars |= payload.free_tuple_vars()
        var = value.var
        body = value.body
        if var in payload_vars:
            renamed = fresh_name(var)
            body = substitute_tuple_var(body, var, TupleVar(renamed))
            var = renamed
        return Agg(value.name, var, value.schema, _subst(body, inner))
    if isinstance(value, TupleCons):
        return TupleCons(
            tuple((n, subst_value(v, mapping)) for n, v in value.fields)
        )
    if isinstance(value, ConcatTuple):
        return ConcatTuple(
            tuple((subst_value(v, mapping), s) for v, s in value.parts)
        )
    raise TypeError(f"cannot substitute in value {type(value).__name__}")
