"""Value expressions: the scalar/tuple-level terms inside ``[b]`` and ``R(t)``.

These are the ``e`` of Fig. 2 after translation: tuple variables, attribute
projections, uninterpreted function applications, aggregates over query
denotations, constants, and (for the Eq. (15) elimination machinery) explicit
tuple constructors.

All nodes are immutable, hashable, and compare structurally.  Hashes are
cached per instance and the hot leaves (:class:`TupleVar`, small
:class:`ConstVal`) are interned (see :mod:`repro.hashcons`); every node also
carries a run-stable structural :meth:`~ValueExpr.fingerprint` used as a
memoization key by the normalize/canonize caches and the batch service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, TYPE_CHECKING

from repro.hashcons import (
    INTERN_CAP,
    cached_free_vars,
    cached_str,
    cached_structural_hash,
    fingerprint as _structural_fingerprint,
)
from repro.sql.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.usr.terms import UExpr

#: Sentinel default for ``__new__`` so pickle/copy reconstruction (which
#: calls ``cls.__new__(cls)`` with no arguments) always allocates a fresh
#: instance instead of handing out a shared interned one whose state would
#: then be overwritten.
_UNINTERNED = object()


class ValueExpr:
    """Base class for value expressions."""

    __slots__ = ()

    def free_tuple_vars(self) -> frozenset:
        """Names of tuple variables occurring free in this value."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Structural digest, stable across runs and processes."""
        return _structural_fingerprint(self)


#: Intern pools for the leaf nodes (bounded; see :data:`INTERN_CAP`).
_TUPLEVAR_POOL: dict = {}
_CONSTVAL_POOL: dict = {}


@cached_structural_hash
@dataclass(frozen=True)
class TupleVar(ValueExpr):
    """A tuple variable ``t`` ranging over ``Tuple(σ)``."""

    name: str

    def __new__(cls, name=_UNINTERNED):
        if (
            cls is not TupleVar
            or name is _UNINTERNED
            or not isinstance(name, str)
        ):
            return super().__new__(cls)
        cached = _TUPLEVAR_POOL.get(name)
        if cached is not None:
            return cached
        instance = super().__new__(cls)
        if len(_TUPLEVAR_POOL) < INTERN_CAP:
            _TUPLEVAR_POOL[name] = instance
        return instance

    def free_tuple_vars(self) -> frozenset:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@cached_structural_hash
@cached_str
@cached_free_vars
@dataclass(frozen=True)
class Attr(ValueExpr):
    """Attribute access ``base.name``."""

    base: ValueExpr
    name: str

    def free_tuple_vars(self) -> frozenset:
        return self.base.free_tuple_vars()

    def __str__(self) -> str:
        return f"{self.base}.{self.name}"


@cached_structural_hash
@dataclass(frozen=True)
class ConstVal(ValueExpr):
    """A literal constant."""

    value: object

    def __new__(cls, value=_UNINTERNED):
        if (
            cls is not ConstVal
            or value is _UNINTERNED
            or not isinstance(value, (str, int, float, bool))
        ):
            return super().__new__(cls)
        key = (type(value).__name__, value)
        cached = _CONSTVAL_POOL.get(key)
        if cached is not None:
            return cached
        instance = super().__new__(cls)
        if len(_CONSTVAL_POOL) < INTERN_CAP:
            _CONSTVAL_POOL[key] = instance
        return instance

    def free_tuple_vars(self) -> frozenset:
        return frozenset()

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@cached_structural_hash
@cached_str
@cached_free_vars
@dataclass(frozen=True)
class Func(ValueExpr):
    """Uninterpreted function application ``f(e1, ..., en)``."""

    name: str
    args: Tuple[ValueExpr, ...]

    def free_tuple_vars(self) -> frozenset:
        out: frozenset = frozenset()
        for arg in self.args:
            out |= arg.free_tuple_vars()
        return out

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@cached_structural_hash
@cached_str
@cached_free_vars
@dataclass(frozen=True)
class Agg(ValueExpr):
    """An aggregate ``agg(λ var. body)`` over a query denotation.

    ``body`` is a U-expression with ``var`` free; the pair represents the
    K-relation the aggregate consumes.  The decision procedure treats ``Agg``
    as an uninterpreted function of the *canonized* body, so two aggregates
    are equal when their names match and their bodies are U-equivalent.
    """

    name: str
    var: str
    schema: Schema
    body: "UExpr"

    def free_tuple_vars(self) -> frozenset:
        return self.body.free_tuple_vars() - frozenset({self.var})

    def __str__(self) -> str:
        return f"{self.name}(λ{self.var}. {self.body})"


@cached_structural_hash
@cached_str
@cached_free_vars
@dataclass(frozen=True)
class TupleCons(ValueExpr):
    """An explicit tuple ``⟨a1: e1, ..., an: en⟩``.

    Produced when a summation variable with a fully-known schema is pinned
    attribute-by-attribute (Ex. 4.7's ``[t1 = (t3.k, t3.a)]`` step) and then
    substituted away via Eq. (15).
    """

    fields: Tuple[Tuple[str, ValueExpr], ...]

    def free_tuple_vars(self) -> frozenset:
        out: frozenset = frozenset()
        for _, value in self.fields:
            out |= value.free_tuple_vars()
        return out

    def field(self, name: str) -> Optional[ValueExpr]:
        for field_name, value in self.fields:
            if field_name == name:
                return value
        return None

    def __str__(self) -> str:
        inner = ", ".join(f"{n}: {v}" for n, v in self.fields)
        return f"⟨{inner}⟩"


@cached_structural_hash
@cached_str
@cached_free_vars
@dataclass(frozen=True)
class ConcatTuple(ValueExpr):
    """Concatenation of tuples ``t1 ⧺ t2 ⧺ ...`` (cross-product output).

    Each part carries its schema when known, so attribute access can route to
    the right component; parts with generic schemas keep accesses opaque.
    """

    parts: Tuple[Tuple[ValueExpr, Optional[Schema]], ...]

    def free_tuple_vars(self) -> frozenset:
        out: frozenset = frozenset()
        for value, _ in self.parts:
            out |= value.free_tuple_vars()
        return out

    def __str__(self) -> str:
        return " ⧺ ".join(str(v) for v, _ in self.parts)


def project_attr(value: ValueExpr, name: str) -> ValueExpr:
    """Smart attribute access: simplifies projections of constructors.

    ``⟨a: e⟩.a`` reduces to ``e``; concatenations route to the component whose
    (concrete) schema owns the attribute; anything else stays symbolic.
    """
    if isinstance(value, TupleCons):
        field = value.field(name)
        if field is not None:
            return field
        return Attr(value, name)
    if isinstance(value, ConcatTuple):
        for part, schema in value.parts:
            if schema is not None and schema.has_attribute(name):
                return project_attr(part, name)
        return Attr(value, name)
    return Attr(value, name)
