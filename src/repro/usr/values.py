"""Value expressions: the scalar/tuple-level terms inside ``[b]`` and ``R(t)``.

These are the ``e`` of Fig. 2 after translation: tuple variables, attribute
projections, uninterpreted function applications, aggregates over query
denotations, constants, and (for the Eq. (15) elimination machinery) explicit
tuple constructors.

All nodes are immutable, hashable, and compare structurally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, TYPE_CHECKING

from repro.sql.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.usr.terms import UExpr


class ValueExpr:
    """Base class for value expressions."""

    __slots__ = ()

    def free_tuple_vars(self) -> frozenset:
        """Names of tuple variables occurring free in this value."""
        raise NotImplementedError


@dataclass(frozen=True)
class TupleVar(ValueExpr):
    """A tuple variable ``t`` ranging over ``Tuple(σ)``."""

    name: str

    def free_tuple_vars(self) -> frozenset:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Attr(ValueExpr):
    """Attribute access ``base.name``."""

    base: ValueExpr
    name: str

    def free_tuple_vars(self) -> frozenset:
        return self.base.free_tuple_vars()

    def __str__(self) -> str:
        return f"{self.base}.{self.name}"


@dataclass(frozen=True)
class ConstVal(ValueExpr):
    """A literal constant."""

    value: object

    def free_tuple_vars(self) -> frozenset:
        return frozenset()

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class Func(ValueExpr):
    """Uninterpreted function application ``f(e1, ..., en)``."""

    name: str
    args: Tuple[ValueExpr, ...]

    def free_tuple_vars(self) -> frozenset:
        out: frozenset = frozenset()
        for arg in self.args:
            out |= arg.free_tuple_vars()
        return out

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Agg(ValueExpr):
    """An aggregate ``agg(λ var. body)`` over a query denotation.

    ``body`` is a U-expression with ``var`` free; the pair represents the
    K-relation the aggregate consumes.  The decision procedure treats ``Agg``
    as an uninterpreted function of the *canonized* body, so two aggregates
    are equal when their names match and their bodies are U-equivalent.
    """

    name: str
    var: str
    schema: Schema
    body: "UExpr"

    def free_tuple_vars(self) -> frozenset:
        return self.body.free_tuple_vars() - frozenset({self.var})

    def __str__(self) -> str:
        return f"{self.name}(λ{self.var}. {self.body})"


@dataclass(frozen=True)
class TupleCons(ValueExpr):
    """An explicit tuple ``⟨a1: e1, ..., an: en⟩``.

    Produced when a summation variable with a fully-known schema is pinned
    attribute-by-attribute (Ex. 4.7's ``[t1 = (t3.k, t3.a)]`` step) and then
    substituted away via Eq. (15).
    """

    fields: Tuple[Tuple[str, ValueExpr], ...]

    def free_tuple_vars(self) -> frozenset:
        out: frozenset = frozenset()
        for _, value in self.fields:
            out |= value.free_tuple_vars()
        return out

    def field(self, name: str) -> Optional[ValueExpr]:
        for field_name, value in self.fields:
            if field_name == name:
                return value
        return None

    def __str__(self) -> str:
        inner = ", ".join(f"{n}: {v}" for n, v in self.fields)
        return f"⟨{inner}⟩"


@dataclass(frozen=True)
class ConcatTuple(ValueExpr):
    """Concatenation of tuples ``t1 ⧺ t2 ⧺ ...`` (cross-product output).

    Each part carries its schema when known, so attribute access can route to
    the right component; parts with generic schemas keep accesses opaque.
    """

    parts: Tuple[Tuple[ValueExpr, Optional[Schema]], ...]

    def free_tuple_vars(self) -> frozenset:
        out: frozenset = frozenset()
        for value, _ in self.parts:
            out |= value.free_tuple_vars()
        return out

    def __str__(self) -> str:
        return " ⧺ ".join(str(v) for v, _ in self.parts)


def project_attr(value: ValueExpr, name: str) -> ValueExpr:
    """Smart attribute access: simplifies projections of constructors.

    ``⟨a: e⟩.a`` reduces to ``e``; concatenations route to the component whose
    (concrete) schema owns the attribute; anything else stays symbolic.
    """
    if isinstance(value, TupleCons):
        field = value.field(name)
        if field is not None:
            return field
        return Attr(value, name)
    if isinstance(value, ConcatTuple):
        for part, schema in value.parts:
            if schema is not None and schema.has_attribute(name):
                return project_attr(part, name)
        return Attr(value, name)
    return Attr(value, name)
