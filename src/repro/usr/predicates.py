"""Predicate atoms ``[b]`` of U-expressions.

After translation (Sec. 3.2), the boolean connectives have dissolved into
semiring operations (``AND`` → ``×``, ``OR`` → ``‖+‖``, ``NOT`` → ``not``,
``EXISTS`` → ``‖·‖``), so the only predicates that survive as ``[b]`` atoms
are:

* interpreted equality ``[e1 = e2]`` — subject to axioms (12)–(14);
* its excluded-middle complement ``[e1 ≠ e2]``;
* uninterpreted atoms ``[β(e1, ..., en)]`` for comparisons such as ``≥``.

Every predicate satisfies ``[b] = ‖[b]‖`` (Eq. (11)), hence ``[b]² = [b]``;
the decision procedure exploits this by treating predicate factor lists as
sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.hashcons import (
    cached_free_vars,
    cached_str,
    cached_structural_hash,
    fingerprint as _structural_fingerprint,
)
from repro.usr.values import ValueExpr


class Predicate:
    """Base class for predicate atoms."""

    __slots__ = ()

    def free_tuple_vars(self) -> frozenset:
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Structural digest, stable across runs and processes."""
        return _structural_fingerprint(self)


def _ordered_pair(left: ValueExpr, right: ValueExpr) -> Tuple[ValueExpr, ValueExpr]:
    """Order a symmetric pair deterministically for structural equality.

    Primarily keyed on the rendered form (cached per node, an order of
    magnitude cheaper than ``repr``'s uncached recursive rendering);
    the rare render ties between *distinct* values — e.g.
    ``TupleVar("x.a")`` vs ``Attr(TupleVar("x"), "a")`` — fall back to
    the injective ``repr`` so the stored orientation never depends on
    argument order.
    """
    left_str, right_str = str(left), str(right)
    if left_str < right_str:
        return left, right
    if right_str < left_str:
        return right, left
    if left == right or repr(left) <= repr(right):
        return left, right
    return right, left


@cached_structural_hash
@cached_str
@cached_free_vars
@dataclass(frozen=True, init=False)
class EqPred(Predicate):
    """Interpreted equality ``[e1 = e2]`` (stored in canonical order)."""

    left: ValueExpr
    right: ValueExpr

    def __init__(self, left: ValueExpr, right: ValueExpr) -> None:
        ordered_left, ordered_right = _ordered_pair(left, right)
        object.__setattr__(self, "left", ordered_left)
        object.__setattr__(self, "right", ordered_right)

    def free_tuple_vars(self) -> frozenset:
        return self.left.free_tuple_vars() | self.right.free_tuple_vars()

    def __str__(self) -> str:
        return f"[{self.left} = {self.right}]"


@cached_structural_hash
@cached_str
@cached_free_vars
@dataclass(frozen=True, init=False)
class NePred(Predicate):
    """Inequality ``[e1 ≠ e2]`` — arises from excluded middle (Eq. (12))."""

    left: ValueExpr
    right: ValueExpr

    def __init__(self, left: ValueExpr, right: ValueExpr) -> None:
        ordered_left, ordered_right = _ordered_pair(left, right)
        object.__setattr__(self, "left", ordered_left)
        object.__setattr__(self, "right", ordered_right)

    def free_tuple_vars(self) -> frozenset:
        return self.left.free_tuple_vars() | self.right.free_tuple_vars()

    def __str__(self) -> str:
        return f"[{self.left} ≠ {self.right}]"


@cached_structural_hash
@cached_str
@cached_free_vars
@dataclass(frozen=True)
class AtomPred(Predicate):
    """An uninterpreted predicate atom ``[β(e1, ..., en)]``.

    Comparison operators other than ``=``/``≠`` land here.  The compiler
    normalizes ``>`` and ``>=`` into ``<`` / ``<=`` with swapped operands so
    trivially-flipped spellings compare equal.
    """

    name: str
    args: Tuple[ValueExpr, ...]

    def free_tuple_vars(self) -> frozenset:
        out: frozenset = frozenset()
        for arg in self.args:
            out |= arg.free_tuple_vars()
        return out

    def __str__(self) -> str:
        if self.name in ("<", "<=", "LIKE") and len(self.args) == 2:
            return f"[{self.args[0]} {self.name} {self.args[1]}]"
        return f"[{self.name}({', '.join(str(a) for a in self.args)})]"


def negate_atom(pred: Predicate) -> Predicate:
    """The complemented atom for excluded-middle reasoning.

    ``[e1 = e2]`` ↔ ``[e1 ≠ e2]``; uninterpreted atoms get a ``¬``-prefixed
    uninterpreted complement (sound: nothing is assumed about either side).
    """
    if isinstance(pred, EqPred):
        return NePred(pred.left, pred.right)
    if isinstance(pred, NePred):
        return EqPred(pred.left, pred.right)
    if isinstance(pred, AtomPred):
        if pred.name.startswith("¬"):
            return AtomPred(pred.name[1:], pred.args)
        return AtomPred("¬" + pred.name, pred.args)
    raise TypeError(f"cannot negate predicate {type(pred).__name__}")
