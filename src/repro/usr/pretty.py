"""Pretty-printing of U-expressions and normal forms.

Two renderings:

* :func:`pretty` — Unicode, close to the paper's notation
  (``Σ_t([t.a ≥ 12] × R(t))``);
* :func:`pretty_ascii` — pure ASCII for logs and terminals without Unicode.
"""

from __future__ import annotations

from repro.usr.spnf import NormalForm, NormalTerm, form_to_uexpr, term_to_uexpr
from repro.usr.terms import QueryDenotation, UExpr

_ASCII_MAP = {
    "Σ": "SUM",
    "‖": "|",
    "×": "*",
    "≠": "!=",
    "⟨": "<",
    "⟩": ">",
    "⧺": "++",
    "λ": "\\",
    "≥": ">=",
    "≤": "<=",
    "¬": "!",
}


def pretty(expr: UExpr) -> str:
    """Unicode rendering (relies on each node's ``__str__``)."""
    return str(expr)


def pretty_ascii(expr: UExpr) -> str:
    """ASCII rendering."""
    text = str(expr)
    for src, dst in _ASCII_MAP.items():
        text = text.replace(src, dst)
    return text


def pretty_denotation(denotation: QueryDenotation) -> str:
    return f"λ{denotation.var}. {pretty(denotation.body)}"


def pretty_term(term: NormalTerm) -> str:
    return pretty(term_to_uexpr(term))


def pretty_form(form: NormalForm) -> str:
    if not form:
        return "0"
    return "\n  + ".join(pretty_term(term) for term in form)
