"""Translation of SQL queries to U-expressions (Sec. 3.2, Fig. 12).

The entry point is :class:`Compiler`, which takes a catalog and produces for
each (resolved, desugared) query a :class:`~repro.usr.terms.QueryDenotation`
``λ t. E`` with ``E`` built from the Sec. 3.2 rules:

* ``⟦SELECT p FROM q1 x1, ..., qn xn WHERE b⟧(t) =
  Σ_{t1..tn} [p(t1..tn) = t] × ⟦b⟧ × Π ⟦qi⟧(ti)``;
* ``DISTINCT`` → ``‖·‖``; ``UNION ALL`` → ``+``; ``EXCEPT q2`` → ``× not(·)``;
* predicates: ``AND`` → ``×``, ``OR`` → ``‖+‖``, ``NOT`` → ``not``,
  ``EXISTS q`` → ``‖Σ_t ⟦q⟧(t)‖``, ``NOT EXISTS q`` → ``not(Σ_t ⟦q⟧(t))``;
* comparison atoms other than ``=``/``<>`` become uninterpreted predicates,
  with ``>``/``>=`` normalized to flipped ``<``/``<=``;
* aggregates become :class:`~repro.usr.values.Agg` — uninterpreted functions
  of the subquery denotation.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError, UnsupportedFeatureError
from repro.sql.ast import (
    AggCall,
    AndPred,
    BinPred,
    ColumnRef,
    Constant,
    DistinctQuery,
    Except,
    Exists,
    Expr,
    ExprAs,
    FalsePred,
    FuncCall,
    Intersect,
    NotPred,
    OrPred,
    Pred as SqlPred,
    Projection,
    Query,
    Select,
    Star,
    TableRef,
    TableStar,
    TruePred,
    UnionAll,
    Where,
    is_aggregate_name,
)
from repro.sql.program import Catalog
from repro.sql.schema import Schema
from repro.sql.scope import projection_output_schema
from repro.usr.predicates import AtomPred, EqPred, NePred
from repro.usr.terms import (
    Mul,
    Not,
    One,
    Pred,
    QueryDenotation,
    Rel,
    Sum,
    UExpr,
    Zero,
    add,
    mul,
    not_,
    squash,
)
from repro.usr.values import (
    Agg,
    Attr,
    ConcatTuple,
    ConstVal,
    Func,
    TupleCons,
    TupleVar,
    ValueExpr,
    project_attr,
)

#: env maps FROM-alias (or "" for the WHERE combinator) to (value, schema).
Env = Dict[str, Tuple[ValueExpr, Schema]]


class Compiler:
    """Compile resolved + desugared SQL queries to U-expressions."""

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog
        self._counter = itertools.count(1)

    # -- public API --------------------------------------------------------

    def compile_query(self, query: Query) -> QueryDenotation:
        """Compile a closed query into ``λ t. E``."""
        schema = self.schema_of(query)
        var = self._fresh("t")
        body = self.denote(query, TupleVar(var), {})
        return QueryDenotation(var, schema, body)

    # -- schemas -----------------------------------------------------------

    def schema_of(self, query: Query) -> Schema:
        """Output schema of a resolved query (views already inlined)."""
        if isinstance(query, TableRef):
            if self._catalog.has_view(query.name):
                return self.schema_of(self._catalog.view_query(query.name))
            return self._catalog.table_schema(query.name)
        if isinstance(query, Select):
            entries = [
                (item.alias, self.schema_of(item.query)) for item in query.from_items
            ]
            return projection_output_schema(entries, query.projections)
        if isinstance(query, (Where, DistinctQuery)):
            return self.schema_of(query.query)
        if isinstance(query, (UnionAll, Except, Intersect)):
            return self.schema_of(query.left)
        raise CompileError(f"cannot infer schema of {type(query).__name__}")

    # -- queries -----------------------------------------------------------

    def denote(self, query: Query, out: ValueExpr, env: Env) -> UExpr:
        """The U-expression for ``⟦query⟧(out)`` under ``env``."""
        if isinstance(query, TableRef):
            if self._catalog.has_view(query.name):
                return self.denote(self._catalog.view_query(query.name), out, env)
            return Rel(query.name, out)
        if isinstance(query, Select):
            return self._denote_select(query, out, env)
        if isinstance(query, Where):
            schema = self.schema_of(query.query)
            inner_env = dict(env)
            inner_env[""] = (out, schema)
            return mul(
                self.denote(query.query, out, env),
                self.denote_pred(query.predicate, inner_env),
            )
        if isinstance(query, UnionAll):
            return add(
                self.denote(query.left, out, env), self.denote(query.right, out, env)
            )
        if isinstance(query, Except):
            return mul(
                self.denote(query.left, out, env),
                not_(self.denote(query.right, out, env)),
            )
        if isinstance(query, Intersect):
            # SQL set intersection: the distinct tuples present in both.
            return squash(
                mul(
                    self.denote(query.left, out, env),
                    self.denote(query.right, out, env),
                )
            )
        if isinstance(query, DistinctQuery):
            return squash(self.denote(query.query, out, env))
        raise CompileError(f"cannot compile query node {type(query).__name__}")

    def _denote_select(self, query: Select, out: ValueExpr, env: Env) -> UExpr:
        if query.group_by:
            raise CompileError("GROUP BY must be desugared before compilation")
        bindings: List[Tuple[str, Schema]] = []
        inner_env: Env = dict(env)
        factors: List[UExpr] = []
        for item in query.from_items:
            item_schema = self.schema_of(item.query)
            var = self._fresh(item.alias or "t")
            bindings.append((var, item_schema))
            inner_env[item.alias] = (TupleVar(var), item_schema)
            factors.append(self.denote(item.query, TupleVar(var), env))
        projection_eq = self._projection_equality(query, out, inner_env)
        body_factors: List[UExpr] = [projection_eq]
        if query.where is not None:
            body_factors.append(self.denote_pred(query.where, inner_env))
        body_factors.extend(factors)
        body = mul(*body_factors)
        for var, schema in reversed(bindings):
            body = Sum(var, schema, body)
        if query.distinct:
            return squash(body)
        return body

    def _projection_equality(
        self, query: Select, out: ValueExpr, env: Env
    ) -> UExpr:
        """Build ``[p(t1..tn) = out]`` for the SELECT's projection list."""
        rhs = self._projection_value(query, env)
        return Pred(EqPred(out, rhs))

    def _projection_value(self, query: Select, env: Env) -> ValueExpr:
        """The output tuple as a value expression over the FROM variables."""
        entries = [(alias, schema) for alias, (_, schema) in env.items() if alias]
        # Recompute the (deduplicated) output schema to name constructor
        # fields consistently with scope resolution.
        local_entries = [
            (item.alias, self.schema_of(item.query)) for item in query.from_items
        ]
        out_schema = projection_output_schema(local_entries, query.projections)

        # Expand projections into "parts": whole-tuple parts and named fields.
        parts: List[Tuple[str, object]] = []  # ("tuple", (value, schema)) | ("field", expr)
        for proj in query.projections:
            if isinstance(proj, Star):
                for item in query.from_items:
                    value, schema = env[item.alias]
                    parts.append(("tuple", (value, schema)))
            elif isinstance(proj, TableStar):
                if proj.table not in env:
                    raise CompileError(f"unknown alias {proj.table!r} in projection")
                value, schema = env[proj.table]
                parts.append(("tuple", (value, schema)))
            elif isinstance(proj, ExprAs):
                parts.append(("field", self.denote_expr(proj.expr, env)))
            else:
                raise CompileError(f"unknown projection {type(proj).__name__}")

        if len(parts) == 1 and parts[0][0] == "tuple":
            value, _ = parts[0][1]
            return value

        # If every tuple part has a concrete schema, expand the whole output
        # into named fields matching the (deduplicated) output schema.
        all_concrete = all(
            kind == "field" or part[1].is_concrete() for kind, part in parts
        )
        if all_concrete:
            fields: List[Tuple[str, ValueExpr]] = []
            names = out_schema.attribute_names()
            index = 0
            for kind, part in parts:
                if kind == "tuple":
                    value, schema = part
                    for attr in schema.attributes:
                        fields.append((names[index], project_attr(value, attr.name)))
                        index += 1
                else:
                    fields.append((names[index], part))
                    index += 1
            return TupleCons(tuple(fields))

        # Generic multi-part output: keep whole tuple parts, group runs of
        # fields into anonymous constructors.
        concat_parts: List[Tuple[ValueExpr, Optional[Schema]]] = []
        field_run: List[Tuple[str, ValueExpr]] = []
        names = out_schema.attribute_names()
        index = 0

        def flush_fields() -> None:
            nonlocal field_run
            if field_run:
                run_schema = Schema.of("", *[name for name, _ in field_run])
                concat_parts.append((TupleCons(tuple(field_run)), run_schema))
                field_run = []

        for kind, part in parts:
            if kind == "tuple":
                flush_fields()
                value, schema = part
                concat_parts.append((value, schema))
                index += len(schema.attributes)
            else:
                field_run.append((names[index] if index < len(names) else f"col{index}", part))
                index += 1
        flush_fields()
        return ConcatTuple(tuple(concat_parts))

    # -- predicates ----------------------------------------------------------

    def denote_pred(self, pred: SqlPred, env: Env) -> UExpr:
        if isinstance(pred, TruePred):
            return One
        if isinstance(pred, FalsePred):
            return Zero
        if isinstance(pred, AndPred):
            return mul(
                self.denote_pred(pred.left, env), self.denote_pred(pred.right, env)
            )
        if isinstance(pred, OrPred):
            return squash(
                add(
                    self.denote_pred(pred.left, env),
                    self.denote_pred(pred.right, env),
                )
            )
        if isinstance(pred, NotPred):
            return not_(self.denote_pred(pred.inner, env))
        if isinstance(pred, Exists):
            schema = self.schema_of(pred.query)
            var = self._fresh("e")
            body = self.denote(pred.query, TupleVar(var), env)
            summed = Sum(var, schema, body)
            if pred.negated:
                return not_(summed)
            return squash(summed)
        if isinstance(pred, BinPred):
            left = self.denote_expr(pred.left, env)
            right = self.denote_expr(pred.right, env)
            if pred.op == "=":
                return Pred(EqPred(left, right))
            if pred.op == "<>":
                return Pred(NePred(left, right))
            if pred.op in (">", ">="):
                flipped = "<" if pred.op == ">" else "<="
                return Pred(AtomPred(flipped, (right, left)))
            if pred.op in ("<", "<=", "LIKE"):
                return Pred(AtomPred(pred.op, (left, right)))
            raise UnsupportedFeatureError(f"unsupported comparison {pred.op!r}")
        raise CompileError(f"cannot compile predicate {type(pred).__name__}")

    # -- expressions ---------------------------------------------------------

    def denote_expr(self, expr: Expr, env: Env) -> ValueExpr:
        if isinstance(expr, ColumnRef):
            if expr.table not in env:
                raise CompileError(f"unresolved column reference {expr}")
            base, _ = env[expr.table]
            return project_attr(base, expr.column)
        if isinstance(expr, Constant):
            return ConstVal(expr.value)
        if isinstance(expr, FuncCall):
            if is_aggregate_name(expr.name):
                raise CompileError(
                    f"aggregate {expr.name} must be desugared before compilation"
                )
            return Func(
                expr.name, tuple(self.denote_expr(a, env) for a in expr.args)
            )
        if isinstance(expr, AggCall):
            schema = self.schema_of(expr.query)
            var = self._fresh("a")
            body = self.denote(expr.query, TupleVar(var), env)
            return Agg(expr.name.lower(), var, schema, body)
        raise CompileError(f"cannot compile expression {type(expr).__name__}")

    # -- internals -----------------------------------------------------------

    def _fresh(self, base: str) -> str:
        return f"{base}_{next(self._counter)}"


def compile_sql(text_or_query, catalog: Catalog) -> QueryDenotation:
    """Convenience: parse (if text), resolve, desugar, and compile a query."""
    from repro.sql.desugar import desugar_query
    from repro.sql.parser import parse_query
    from repro.sql.scope import resolve_query

    query = text_or_query
    if isinstance(query, str):
        query = parse_query(query)
    resolved, _ = resolve_query(query, catalog)
    desugared = desugar_query(resolved)
    return Compiler(catalog).compile_query(desugared)
