"""Size metrics on U-expressions and normal forms.

Used to reproduce the Sec. 6.3 statistic: how much bigger expressions get
after conversion to SPNF (the paper reports +4.1% on the literature corpus
and +0.7% on Calcite, despite the worst-case exponential distributivity).

Size counts AST nodes: every U-expression operator, predicate atom, and value
expression node contributes 1.
"""

from __future__ import annotations

from repro.usr.predicates import AtomPred, EqPred, NePred, Predicate
from repro.usr.spnf import NormalForm, NormalTerm
from repro.usr.terms import (
    Add,
    Mul,
    Not,
    Pred,
    Rel,
    Squash,
    Sum,
    UExpr,
    _One,
    _Zero,
)
from repro.usr.values import (
    Agg,
    Attr,
    ConcatTuple,
    ConstVal,
    Func,
    TupleCons,
    TupleVar,
    ValueExpr,
)


def value_size(value: ValueExpr) -> int:
    """Node count of a value expression."""
    if isinstance(value, (TupleVar, ConstVal)):
        return 1
    if isinstance(value, Attr):
        return 1 + value_size(value.base)
    if isinstance(value, Func):
        return 1 + sum(value_size(a) for a in value.args)
    if isinstance(value, Agg):
        return 1 + expr_size(value.body)
    if isinstance(value, TupleCons):
        return 1 + sum(value_size(v) for _, v in value.fields)
    if isinstance(value, ConcatTuple):
        return 1 + sum(value_size(v) for v, _ in value.parts)
    raise TypeError(f"unknown value node {type(value).__name__}")


def predicate_size(pred: Predicate) -> int:
    """Node count of a predicate atom."""
    if isinstance(pred, (EqPred, NePred)):
        return 1 + value_size(pred.left) + value_size(pred.right)
    if isinstance(pred, AtomPred):
        return 1 + sum(value_size(a) for a in pred.args)
    raise TypeError(f"unknown predicate node {type(pred).__name__}")


def expr_size(expr: UExpr) -> int:
    """Node count of a U-expression."""
    if isinstance(expr, (_Zero, _One)):
        return 1
    if isinstance(expr, (Add, Mul)):
        return 1 + sum(expr_size(a) for a in expr.args)
    if isinstance(expr, Sum):
        return 1 + expr_size(expr.body)
    if isinstance(expr, (Squash, Not)):
        return 1 + expr_size(expr.body)
    if isinstance(expr, Pred):
        return predicate_size(expr.pred)
    if isinstance(expr, Rel):
        return 1 + value_size(expr.arg)
    raise TypeError(f"unknown U-expression node {type(expr).__name__}")


def term_size(term: NormalTerm) -> int:
    """Node count of an SPNF term."""
    total = len(term.vars)
    total += sum(predicate_size(p) for p in term.preds)
    total += sum(1 + value_size(arg) for _, arg in term.rels)
    if term.squash_part is not None:
        total += 1 + form_size(term.squash_part)
    if term.neg_part is not None:
        total += 1 + form_size(term.neg_part)
    return max(total, 1)


def form_size(form: NormalForm) -> int:
    """Node count of a normal form (sum of its terms)."""
    if not form:
        return 1
    return sum(term_size(term) for term in form)
