"""The U-expression AST (Definition 3.1).

Nodes:

* ``Zero`` / ``One`` — semiring constants;
* ``Add`` / ``Mul`` — n-ary, flattened sums and products (associativity and
  commutativity axioms are baked into the smart constructors :func:`add` and
  :func:`mul`, which also apply the unit/annihilator identities);
* ``Sum(var, schema, body)`` — unbounded summation ``Σ_{t∈Tuple(σ)} body``;
* ``Squash(body)`` — ``‖body‖``;
* ``Not(body)`` — ``not(body)``;
* ``Pred(p)`` — a predicate atom ``[b]``;
* ``Rel(name, arg)`` — a relation atom ``R(t)``.

``QueryDenotation`` packages a query's meaning ``λ t. E`` (a U-expression
``E`` with a distinguished free tuple variable ``t`` of schema ``σ``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.hashcons import (
    cached_free_vars,
    cached_str,
    cached_structural_hash,
    fingerprint as _structural_fingerprint,
)
from repro.sql.schema import Schema
from repro.usr.predicates import Predicate
from repro.usr.values import ValueExpr


class UExpr:
    """Base class of U-expressions."""

    __slots__ = ()

    def free_tuple_vars(self) -> frozenset:
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Structural digest of the expression, stable across runs.

        Used as the memo key for :func:`repro.usr.spnf.normalize`; unlike
        ``hash()`` it is independent of ``PYTHONHASHSEED``, so worker
        processes of the batch service compute identical keys.
        """
        return _structural_fingerprint(self)

    def __add__(self, other: "UExpr") -> "UExpr":
        return add(self, other)

    def __mul__(self, other: "UExpr") -> "UExpr":
        return mul(self, other)


@cached_structural_hash
@dataclass(frozen=True)
class _Zero(UExpr):
    def free_tuple_vars(self) -> frozenset:
        return frozenset()

    def __str__(self) -> str:
        return "0"


@cached_structural_hash
@dataclass(frozen=True)
class _One(UExpr):
    def free_tuple_vars(self) -> frozenset:
        return frozenset()

    def __str__(self) -> str:
        return "1"


#: The unique 0 and 1 of the expression language.
Zero = _Zero()
One = _One()


@cached_structural_hash
@cached_str
@cached_free_vars
@dataclass(frozen=True)
class Add(UExpr):
    """n-ary sum; always has ≥ 2 operands after smart construction."""

    args: Tuple[UExpr, ...]

    def free_tuple_vars(self) -> frozenset:
        out: frozenset = frozenset()
        for arg in self.args:
            out |= arg.free_tuple_vars()
        return out

    def __str__(self) -> str:
        return " + ".join(str(a) for a in self.args)


@cached_structural_hash
@cached_str
@cached_free_vars
@dataclass(frozen=True)
class Mul(UExpr):
    """n-ary product; always has ≥ 2 operands after smart construction."""

    args: Tuple[UExpr, ...]

    def free_tuple_vars(self) -> frozenset:
        out: frozenset = frozenset()
        for arg in self.args:
            out |= arg.free_tuple_vars()
        return out

    def __str__(self) -> str:
        parts = []
        for arg in self.args:
            if isinstance(arg, Add):
                parts.append(f"({arg})")
            else:
                parts.append(str(arg))
        return " × ".join(parts)


@cached_structural_hash
@cached_str
@cached_free_vars
@dataclass(frozen=True)
class Sum(UExpr):
    """Unbounded summation ``Σ_{var ∈ Tuple(schema)} body``."""

    var: str
    schema: Schema
    body: UExpr

    def free_tuple_vars(self) -> frozenset:
        return self.body.free_tuple_vars() - frozenset({self.var})

    def __str__(self) -> str:
        return f"Σ_{self.var}({self.body})"


@cached_structural_hash
@cached_str
@cached_free_vars
@dataclass(frozen=True)
class Squash(UExpr):
    """The squash operator ``‖body‖`` (DISTINCT / EXISTS)."""

    body: UExpr

    def free_tuple_vars(self) -> frozenset:
        return self.body.free_tuple_vars()

    def __str__(self) -> str:
        return f"‖{self.body}‖"


@cached_structural_hash
@cached_str
@cached_free_vars
@dataclass(frozen=True)
class Not(UExpr):
    """The negation operator ``not(body)`` (NOT EXISTS / EXCEPT)."""

    body: UExpr

    def free_tuple_vars(self) -> frozenset:
        return self.body.free_tuple_vars()

    def __str__(self) -> str:
        return f"not({self.body})"


@cached_structural_hash
@cached_str
@cached_free_vars
@dataclass(frozen=True)
class Pred(UExpr):
    """A predicate atom ``[b]``."""

    pred: Predicate

    def free_tuple_vars(self) -> frozenset:
        return self.pred.free_tuple_vars()

    def __str__(self) -> str:
        return str(self.pred)


@cached_structural_hash
@cached_str
@cached_free_vars
@dataclass(frozen=True)
class Rel(UExpr):
    """A relation atom ``R(t)`` — the multiplicity of ``t`` in ``R``."""

    name: str
    arg: ValueExpr

    def free_tuple_vars(self) -> frozenset:
        return self.arg.free_tuple_vars()

    def __str__(self) -> str:
        return f"{self.name}({self.arg})"


# ---------------------------------------------------------------------------
# Smart constructors (fold in the plain-semiring unit/annihilator identities)
# ---------------------------------------------------------------------------


def add(*args: UExpr) -> UExpr:
    """Flattened n-ary sum with ``0`` removed."""
    flat: List[UExpr] = []
    for arg in args:
        if isinstance(arg, Add):
            flat.extend(arg.args)
        elif arg is Zero or isinstance(arg, _Zero):
            continue
        else:
            flat.append(arg)
    if not flat:
        return Zero
    if len(flat) == 1:
        return flat[0]
    return Add(tuple(flat))


def mul(*args: UExpr) -> UExpr:
    """Flattened n-ary product with ``1`` removed and ``0`` annihilating."""
    flat: List[UExpr] = []
    for arg in args:
        if isinstance(arg, Mul):
            flat.extend(arg.args)
        elif arg is One or isinstance(arg, _One):
            continue
        elif arg is Zero or isinstance(arg, _Zero):
            return Zero
        else:
            flat.append(arg)
    if not flat:
        return One
    if len(flat) == 1:
        return flat[0]
    return Mul(tuple(flat))


def big_sum(bindings: Iterable[Tuple[str, Schema]], body: UExpr) -> UExpr:
    """``Σ_{t1, ..., tn} body`` built right-to-left."""
    expr = body
    for var, schema in reversed(list(bindings)):
        expr = Sum(var, schema, expr)
    return expr


def squash(body: UExpr) -> UExpr:
    """Smart squash: ``‖0‖ = 0``, ``‖1‖ = 1``, ``‖‖x‖‖ = ‖x‖`` (Eq. (1)-(2))."""
    if isinstance(body, (_Zero, _One)):
        return body
    if isinstance(body, Squash):
        return body
    return Squash(body)


def not_(body: UExpr) -> UExpr:
    """Smart negation: ``not(0) = 1``, ``not(‖x‖) = not(x)``."""
    if isinstance(body, _Zero):
        return One
    if isinstance(body, Squash):
        return Not(body.body)
    return Not(body)


@dataclass(frozen=True)
class QueryDenotation:
    """A query's meaning ``λ var : Tuple(schema). body``."""

    var: str
    schema: Schema
    body: UExpr

    def apply(self, value: ValueExpr) -> UExpr:
        """β-reduce the denotation at ``value``."""
        from repro.usr.substitute import substitute_tuple_var

        return substitute_tuple_var(self.body, self.var, value)

    def __str__(self) -> str:
        return f"λ{self.var}. {self.body}"
