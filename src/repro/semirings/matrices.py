"""Diagonal 2×2 matrices over ``N̄`` (Sec. 3.1's frugality witness).

Elements are pairs ``diag(a, b)`` with componentwise operations in ``N̄``.
In this U-semiring, ``‖diag(2, 0)‖ = diag(1, 0)``, which is neither 0 nor 1 —
so the *conditional* identity "``x ≠ 0 ⇒ ‖x‖ = 1``" fails, demonstrating why
the paper excludes it from the axiom set.  All the Definition 3.1 axioms do
hold (see the self-check tests).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.semirings.base import USemiring
from repro.semirings.extended import ExtendedNaturals


@dataclass(frozen=True)
class Diag:
    """``diag(a, b)`` with ``a, b ∈ N̄``."""

    a: object
    b: object

    def __repr__(self) -> str:
        return f"diag({self.a}, {self.b})"


class DiagonalMatrixSemiring(USemiring):
    """Componentwise ``N̄ × N̄``."""

    name = "diag2(N̄)"

    def __init__(self) -> None:
        self._base = ExtendedNaturals()

    @property
    def zero(self) -> Diag:
        return Diag(0, 0)

    @property
    def one(self) -> Diag:
        return Diag(1, 1)

    def add(self, left: Diag, right: Diag) -> Diag:
        return Diag(self._base.add(left.a, right.a), self._base.add(left.b, right.b))

    def mul(self, left: Diag, right: Diag) -> Diag:
        return Diag(self._base.mul(left.a, right.a), self._base.mul(left.b, right.b))

    def squash(self, value: Diag) -> Diag:
        return Diag(self._base.squash(value.a), self._base.squash(value.b))

    def not_(self, value: Diag) -> Diag:
        return Diag(self._base.not_(value.a), self._base.not_(value.b))
