"""Finite-domain interpretation of U-expressions — the semantic oracle.

An :class:`Interpretation` fixes a U-semiring instance, a finite value
universe, and a multiplicity assignment for every relation name.  Unbounded
summations range over *all* tuples of a schema built from the universe, so
the equality axioms (Eq. (12)–(15)) hold exactly provided every value a query
can mention lies in the universe (the tests arrange this).

Uses:

* check that SPNF conversion and canonization preserve meaning,
* cross-validate the SQL→U-expression compiler against the independent
  bag-semantics engine (:mod:`repro.engine`),
* exhibit concrete counterexamples for non-equivalent query pairs.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import EvaluationError
from repro.sql.schema import Schema
from repro.semirings.base import USemiring
from repro.usr.predicates import AtomPred, EqPred, NePred, Predicate
from repro.usr.terms import (
    Add,
    Mul,
    Not,
    Pred,
    QueryDenotation,
    Rel,
    Squash,
    Sum,
    UExpr,
    _One,
    _Zero,
)
from repro.usr.values import (
    Agg,
    Attr,
    ConcatTuple,
    ConstVal,
    Func,
    TupleCons,
    TupleVar,
    ValueExpr,
)

#: A concrete tuple: attribute name → scalar value.
ConcreteTuple = Dict[str, object]


def tuple_key(t: ConcreteTuple) -> Tuple:
    """Hashable canonical form of a concrete tuple."""
    return tuple(sorted(t.items(), key=lambda item: item[0]))


def default_atom_oracle(name: str, args: Sequence[object]) -> bool:
    """Interpret uninterpreted atoms deterministically.

    ``<``/``<=`` get their numeric meaning when both operands are numbers;
    a ``¬``-prefixed name is the complement of its base atom; anything else
    gets a deterministic pseudo-random boolean derived from a stable hash, so
    repeated evaluations agree.
    """
    if name.startswith("¬"):
        return not default_atom_oracle(name[1:], args)
    if name == "<" and len(args) == 2:
        try:
            return args[0] < args[1]
        except TypeError:
            pass
    if name == "<=" and len(args) == 2:
        try:
            return args[0] <= args[1]
        except TypeError:
            pass
    digest = hash((name, tuple(repr(a) for a in args)))
    return digest % 2 == 0


class Interpretation:
    """A finite model: semiring + universe + relation multiplicities."""

    def __init__(
        self,
        semiring: USemiring,
        universe: Sequence[object],
        relations: Dict[str, Dict[Tuple, object]],
        atom_oracle: Optional[Callable[[str, Sequence[object]], bool]] = None,
    ) -> None:
        if not universe:
            raise EvaluationError("the value universe must be non-empty")
        self.semiring = semiring
        self.universe = list(universe)
        self.relations = relations
        self.atom_oracle = atom_oracle or default_atom_oracle

    # -- domains -----------------------------------------------------------

    def tuples_of(self, schema: Schema) -> Iterable[ConcreteTuple]:
        """All tuples of ``schema`` over the universe."""
        if schema.generic:
            raise EvaluationError(
                f"cannot enumerate tuples of generic schema {schema.name!r}"
            )
        names = schema.attribute_names()
        for values in itertools.product(self.universe, repeat=len(names)):
            yield dict(zip(names, values))

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, expr: UExpr, env: Optional[Dict[str, ConcreteTuple]] = None):
        """Evaluate ``expr`` under ``env`` to a semiring value."""
        env = env or {}
        return self._eval(expr, env)

    def _eval(self, expr: UExpr, env: Dict[str, ConcreteTuple]):
        semiring = self.semiring
        if isinstance(expr, _Zero):
            return semiring.zero
        if isinstance(expr, _One):
            return semiring.one
        if isinstance(expr, Add):
            return semiring.sum(self._eval(arg, env) for arg in expr.args)
        if isinstance(expr, Mul):
            return semiring.product(self._eval(arg, env) for arg in expr.args)
        if isinstance(expr, Squash):
            return semiring.squash(self._eval(expr.body, env))
        if isinstance(expr, Not):
            return semiring.not_(self._eval(expr.body, env))
        if isinstance(expr, Sum):
            def body_values():
                for candidate in self.tuples_of(expr.schema):
                    inner = dict(env)
                    inner[expr.var] = candidate
                    yield self._eval(expr.body, inner)

            return semiring.sum(body_values())
        if isinstance(expr, Pred):
            return semiring.from_bool(self._eval_pred(expr.pred, env))
        if isinstance(expr, Rel):
            value = self.eval_value(expr.arg, env)
            if not isinstance(value, dict):
                raise EvaluationError(f"relation argument is not a tuple: {value!r}")
            table = self.relations.get(expr.name, {})
            return table.get(tuple_key(value), semiring.zero)
        raise EvaluationError(f"cannot evaluate {type(expr).__name__}")

    def _eval_pred(self, pred: Predicate, env: Dict[str, ConcreteTuple]) -> bool:
        if isinstance(pred, EqPred):
            return self.eval_value(pred.left, env) == self.eval_value(pred.right, env)
        if isinstance(pred, NePred):
            return self.eval_value(pred.left, env) != self.eval_value(pred.right, env)
        if isinstance(pred, AtomPred):
            args = [self.eval_value(a, env) for a in pred.args]
            return self.atom_oracle(pred.name, args)
        raise EvaluationError(f"cannot evaluate predicate {type(pred).__name__}")

    def eval_value(self, value: ValueExpr, env: Dict[str, ConcreteTuple]):
        if isinstance(value, TupleVar):
            if value.name not in env:
                raise EvaluationError(f"unbound tuple variable {value.name!r}")
            return env[value.name]
        if isinstance(value, Attr):
            base = self.eval_value(value.base, env)
            if not isinstance(base, dict):
                raise EvaluationError(f"attribute access on non-tuple: {base!r}")
            if value.name not in base:
                raise EvaluationError(f"tuple has no attribute {value.name!r}")
            return base[value.name]
        if isinstance(value, ConstVal):
            return value.value
        if isinstance(value, Func):
            args = tuple(
                self._freeze(self.eval_value(a, env)) for a in value.args
            )
            return ("fn:" + value.name, args)
        if isinstance(value, Agg):
            return self._eval_agg(value, env)
        if isinstance(value, TupleCons):
            return {name: self.eval_value(v, env) for name, v in value.fields}
        if isinstance(value, ConcatTuple):
            return self._eval_concat(value, env)
        raise EvaluationError(f"cannot evaluate value {type(value).__name__}")

    def _freeze(self, value):
        if isinstance(value, dict):
            return tuple_key(value)
        return value

    def _eval_agg(self, value: Agg, env: Dict[str, ConcreteTuple]):
        """An aggregate's value: an opaque token of the body's K-relation."""
        support: List[Tuple] = []
        for candidate in self.tuples_of(value.schema):
            inner = dict(env)
            inner[value.var] = candidate
            multiplicity = self._eval(value.body, inner)
            if multiplicity != self.semiring.zero:
                support.append((tuple_key(candidate), repr(multiplicity)))
        support.sort()
        return ("agg:" + value.name, tuple(support))

    def _eval_concat(self, value: ConcatTuple, env: Dict[str, ConcreteTuple]):
        """Concatenate component tuples with positional name deduplication.

        Matches :func:`repro.sql.scope.projection_output_schema`'s renaming so
        the concatenation compares equal to output-domain tuples.
        """
        out: Dict[str, object] = {}
        counts: Dict[str, int] = {}
        for part, schema in value.parts:
            component = self.eval_value(part, env)
            if not isinstance(component, dict):
                raise EvaluationError("concat component is not a tuple")
            if schema is None or schema.generic:
                raise EvaluationError(
                    "cannot concatenate tuples without concrete schemas"
                )
            for attr in schema.attributes:
                if attr.name not in component:
                    raise EvaluationError(
                        f"component tuple missing attribute {attr.name!r}"
                    )
                count = counts.get(attr.name, 0)
                counts[attr.name] = count + 1
                out_name = attr.name if count == 0 else f"{attr.name}_{count}"
                out[out_name] = component[attr.name]
        return out


def evaluate(
    expr: UExpr,
    interpretation: Interpretation,
    env: Optional[Dict[str, ConcreteTuple]] = None,
):
    """Module-level convenience wrapper."""
    return interpretation.evaluate(expr, env)


def evaluate_denotation(
    denotation: QueryDenotation, interpretation: Interpretation
) -> Dict[Tuple, object]:
    """The full output K-relation of a query denotation.

    Maps each candidate output tuple (over the universe) to its multiplicity;
    zero-multiplicity entries are omitted.
    """
    out: Dict[Tuple, object] = {}
    zero = interpretation.semiring.zero
    for candidate in interpretation.tuples_of(denotation.schema):
        value = interpretation.evaluate(
            denotation.body, {denotation.var: candidate}
        )
        if value != zero:
            out[tuple_key(candidate)] = value
    return out
