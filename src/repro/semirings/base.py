"""The U-semiring interface and the axiom self-check harness.

A concrete instance supplies the carrier operations of Definition 3.1.  The
:func:`check_axioms` harness exercises *every* axiom of the definition on
caller-provided sample elements — this is the executable counterpart of the
paper's trusted axiom base: before an instance is used as a semantic oracle,
the test suite proves (by exhaustive sampling) that it really is a
U-semiring.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence


class USemiring:
    """Abstract carrier of ``(U, 0, 1, +, ×, ‖·‖, not, Σ)``."""

    name = "abstract"

    @property
    def zero(self):
        raise NotImplementedError

    @property
    def one(self):
        raise NotImplementedError

    def add(self, left, right):
        raise NotImplementedError

    def mul(self, left, right):
        raise NotImplementedError

    def squash(self, value):
        raise NotImplementedError

    def not_(self, value):
        raise NotImplementedError

    def sum(self, values: Iterable):
        """Unbounded summation over a (finite, in tests) domain."""
        total = self.zero
        for value in values:
            total = self.add(total, value)
        return total

    # -- conveniences ------------------------------------------------------

    def product(self, values: Iterable):
        total = self.one
        for value in values:
            total = self.mul(total, value)
        return total

    def from_bool(self, flag: bool):
        return self.one if flag else self.zero

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class AxiomViolation(AssertionError):
    """Raised by :func:`check_axioms` when an identity fails on a sample."""


def check_axioms(semiring: USemiring, samples: Sequence) -> List[str]:
    """Verify every Definition 3.1 axiom on all sample combinations.

    Returns the list of axiom names checked; raises :class:`AxiomViolation`
    with a counterexample description on the first failure.
    """

    checked: List[str] = []

    def expect(name: str, condition: bool, detail: str) -> None:
        if not condition:
            raise AxiomViolation(f"{semiring.name}: axiom {name} fails: {detail}")

    def record(name: str) -> None:
        if name not in checked:
            checked.append(name)

    zero, one = semiring.zero, semiring.one
    add, mul = semiring.add, semiring.mul
    squash, not_ = semiring.squash, semiring.not_

    for x in samples:
        expect("add-zero", add(x, zero) == x, f"x={x!r}")
        record("add-zero")
        expect("mul-one", mul(x, one) == x, f"x={x!r}")
        record("mul-one")
        expect("mul-zero", mul(x, zero) == zero, f"x={x!r}")
        record("mul-zero")
        # Eq. (4): ‖x‖ × ‖x‖ = ‖x‖
        expect("squash-idem", mul(squash(x), squash(x)) == squash(x), f"x={x!r}")
        record("squash-idem")
        # Eq. (5): x × ‖x‖ = x
        expect("squash-self", mul(x, squash(x)) == x, f"x={x!r}")
        record("squash-self")
        # Eq. (6): x² = x ⇒ ‖x‖ = x
        if mul(x, x) == x:
            expect("squash-fix", squash(x) == x, f"x={x!r}")
            record("squash-fix")
        # not(‖x‖) = ‖not(x)‖ = not(x)
        expect(
            "not-squash",
            not_(squash(x)) == not_(x) and squash(not_(x)) == not_(x),
            f"x={x!r}",
        )
        record("not-squash")
        # Eq. (1): ‖1 + x‖ = 1
        expect("squash-one-plus", squash(add(one, x)) == one, f"x={x!r}")
        record("squash-one-plus")

    expect("squash-zero", squash(zero) == zero, "‖0‖ ≠ 0")
    record("squash-zero")
    expect("not-zero", not_(zero) == one, "not(0) ≠ 1")
    record("not-zero")

    for x in samples:
        for y in samples:
            expect("add-comm", add(x, y) == add(y, x), f"x={x!r} y={y!r}")
            record("add-comm")
            expect("mul-comm", mul(x, y) == mul(y, x), f"x={x!r} y={y!r}")
            record("mul-comm")
            # Eq. (2): ‖‖x‖ + y‖ = ‖x + y‖
            expect(
                "squash-absorb-add",
                squash(add(squash(x), y)) == squash(add(x, y)),
                f"x={x!r} y={y!r}",
            )
            record("squash-absorb-add")
            # Eq. (3): ‖x‖ × ‖y‖ = ‖x × y‖
            expect(
                "squash-mul",
                mul(squash(x), squash(y)) == squash(mul(x, y)),
                f"x={x!r} y={y!r}",
            )
            record("squash-mul")
            expect(
                "not-mul",
                not_(mul(x, y)) == squash(add(not_(x), not_(y))),
                f"x={x!r} y={y!r}",
            )
            record("not-mul")
            expect(
                "not-add",
                not_(add(x, y)) == mul(not_(x), not_(y)),
                f"x={x!r} y={y!r}",
            )
            record("not-add")

    for x in samples:
        for y in samples:
            for z in samples:
                expect(
                    "add-assoc",
                    add(add(x, y), z) == add(x, add(y, z)),
                    f"x={x!r} y={y!r} z={z!r}",
                )
                record("add-assoc")
                expect(
                    "mul-assoc",
                    mul(mul(x, y), z) == mul(x, mul(y, z)),
                    f"x={x!r} y={y!r} z={z!r}",
                )
                record("mul-assoc")
                expect(
                    "distrib",
                    mul(x, add(y, z)) == add(mul(x, y), mul(x, z)),
                    f"x={x!r} y={y!r} z={z!r}",
                )
                record("distrib")

    # Summation axioms (Eq. (7)-(10)) on finite sample domains.
    domain = list(samples)

    def f_pair(a, b):
        return mul(a, b)

    for x in samples:
        # Eq. (7): Σ (f1 + f2) = Σ f1 + Σ f2, with f1 = id, f2 = const x.
        lhs = semiring.sum(add(v, x) for v in domain)
        rhs = add(semiring.sum(domain), semiring.sum(x for _ in domain))
        expect("sum-add", lhs == rhs, f"x={x!r}")
        record("sum-add")
        # Eq. (9): x × Σ f = Σ (x × f)
        lhs = mul(x, semiring.sum(domain))
        rhs = semiring.sum(mul(x, v) for v in domain)
        expect("sum-scale", lhs == rhs, f"x={x!r}")
        record("sum-scale")
    # Eq. (8): Σt1 Σt2 f = Σt2 Σt1 f
    lhs = semiring.sum(semiring.sum(f_pair(a, b) for b in domain) for a in domain)
    rhs = semiring.sum(semiring.sum(f_pair(a, b) for a in domain) for b in domain)
    expect("sum-swap", lhs == rhs, "double sum")
    record("sum-swap")
    # Eq. (10): ‖Σ f‖ = ‖Σ ‖f‖‖
    lhs = squash(semiring.sum(domain))
    rhs = squash(semiring.sum(squash(v) for v in domain))
    expect("sum-squash", lhs == rhs, "squashed sum")
    record("sum-squash")

    return checked
