"""The extended naturals ``N̄ = N ∪ {∞}`` (Sec. 3.1, example (2)).

``N̄`` closes ``N`` under *arbitrary* summation domains: a sum with infinite
support is ∞.  The arithmetic extensions are ``x + ∞ = ∞``, ``0 × ∞ = 0``,
and ``x × ∞ = ∞`` for ``x ≠ 0``.

This instance also witnesses the paper's incompleteness example (end of
Sec. 4.2): queries that agree over every finite database can still differ
over ``N̄``.
"""

from __future__ import annotations

from typing import Union

from repro.semirings.base import USemiring


class _Infinity:
    """The ∞ element; a singleton."""

    _instance = None

    def __new__(cls) -> "_Infinity":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "∞"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Infinity)

    def __hash__(self) -> int:
        return hash("∞")


#: The unique infinity element of N̄.
INFINITY = _Infinity()

Element = Union[int, _Infinity]


class ExtendedNaturals(USemiring):
    """``(N̄, 0, 1, +, ×)`` with the saturating extensions."""

    name = "N̄"

    @property
    def zero(self) -> Element:
        return 0

    @property
    def one(self) -> Element:
        return 1

    def add(self, left: Element, right: Element) -> Element:
        if left == INFINITY or right == INFINITY:
            return INFINITY
        return left + right

    def mul(self, left: Element, right: Element) -> Element:
        if left == 0 or right == 0:
            return 0
        if left == INFINITY or right == INFINITY:
            return INFINITY
        return left * right

    def squash(self, value: Element) -> Element:
        return 1 if value != 0 else 0

    def not_(self, value: Element) -> Element:
        return 0 if value != 0 else 1
