"""The booleans ``B`` — set semantics.

``+`` is disjunction, ``×`` conjunction, ``‖·‖`` the identity, and ``not``
boolean complement.
"""

from __future__ import annotations

from repro.semirings.base import USemiring


class BooleanSemiring(USemiring):
    """``(B, False, True, ∨, ∧)``."""

    name = "B"

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def add(self, left: bool, right: bool) -> bool:
        return left or right

    def mul(self, left: bool, right: bool) -> bool:
        return left and right

    def squash(self, value: bool) -> bool:
        return value

    def not_(self, value: bool) -> bool:
        return not value
