"""Concrete U-semiring instances and the finite-domain interpreter.

The paper (Sec. 3.1) lists four example U-semirings; all are implemented
here, together with an axiom self-check harness and an interpreter that
evaluates U-expressions over finite value universes.  The interpreter is the
library's *semantic oracle*: it lets tests confirm that every syntactic
transformation (SPNF, canonization, constraint rewrites) preserves meaning in
actual models.

* :mod:`repro.semirings.naturals` — ``N`` (standard bag semantics);
* :mod:`repro.semirings.booleans` — ``B`` (set semantics);
* :mod:`repro.semirings.extended` — ``N̄ = N ∪ {∞}``;
* :mod:`repro.semirings.matrices` — diagonal 2×2 matrices over ``N̄``, the
  paper's witness that ``x ≠ 0 ⇒ ‖x‖ = 1`` must *not* be an axiom.
"""

from repro.semirings.base import USemiring, check_axioms
from repro.semirings.booleans import BooleanSemiring
from repro.semirings.extended import INFINITY, ExtendedNaturals
from repro.semirings.matrices import DiagonalMatrixSemiring
from repro.semirings.naturals import NaturalsSemiring
from repro.semirings.interp import Interpretation, evaluate

__all__ = [
    "BooleanSemiring",
    "DiagonalMatrixSemiring",
    "ExtendedNaturals",
    "INFINITY",
    "Interpretation",
    "NaturalsSemiring",
    "USemiring",
    "check_axioms",
    "evaluate",
]
