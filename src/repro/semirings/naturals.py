"""The natural numbers ``N`` — SQL's standard bag semantics.

``‖x‖`` is the truncation to {0, 1}; ``not(x)`` its complement.  This is the
instance the soundness theorem (Theorem 5.3) connects to the SQL standard:
two U-equivalent queries agree in particular over ``N``.
"""

from __future__ import annotations

from repro.semirings.base import USemiring


class NaturalsSemiring(USemiring):
    """``(N, 0, 1, +, ×)`` with ‖x‖ = min(x, 1) and not(x) = 1 - min(x, 1)."""

    name = "N"

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def add(self, left: int, right: int) -> int:
        return left + right

    def mul(self, left: int, right: int) -> int:
        return left * right

    def squash(self, value: int) -> int:
        return 1 if value != 0 else 0

    def not_(self, value: int) -> int:
        return 0 if value != 0 else 1
