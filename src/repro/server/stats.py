"""Server-side statistics: thread-safe counters behind ``GET /stats``.

The HTTP front end serves each request on its own thread
(:class:`http.server.ThreadingHTTPServer`) and proves on a pool of
sessions, so every counter here must tolerate concurrent increments.
Verdict and reason-code tallies reuse
:class:`~repro.udp.trace.ReasonTally`; endpoint and error counts keep
their own lock.  A snapshot combines the server-level counters with the
pool's per-member and rolled-up view (tallies, compile-cache occupancy,
shared-store hit/miss — :meth:`repro.server.pool.SessionPool.stats`),
this process's memo caches (:func:`repro.cache_stats`), and the
admission gate's state, so one ``GET /stats`` answers "how warm and how
loaded is this service" end to end.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Mapping, Optional, Tuple

from repro.hashcons import cache_stats
from repro.session import VerifyResult
from repro.udp.trace import ReasonTally


def service_health(pool=None, *, draining: bool = False) -> Tuple[str, List[str]]:
    """``(status, problems)`` for ``/healthz``, shared by both front ends.

    ``"ok"`` means fully healthy; ``"degraded"`` (still HTTP 200 — the
    service answers correctly, just without its full durability or
    capacity) means the store circuit breaker is open/probing or a pool
    member is watchdog-wedged; ``"draining"`` means shutdown is in
    progress and no new work is being accepted.  ``problems`` names each
    cause so operators do not have to diff ``/stats`` to find out why.
    """
    status = "ok"
    problems: List[str] = []
    if pool is not None:
        health = pool.store_health()
        if health is not None and health.get("state") != "ok":
            status = "degraded"
            problems.append(f"store circuit breaker {health.get('state')}")
        wedged = pool.degraded_members()
        if wedged:
            status = "degraded"
            problems.append(
                f"{wedged} pool member{'s' if wedged != 1 else ''} wedged"
            )
    if draining:
        status = "draining"
        problems.append("shutting down: draining in-flight requests")
    return status, problems


def jittered_retry_after(base: float, *, spread: float = 0.5) -> float:
    """``base`` stretched by up to ``spread`` (uniform), in seconds.

    The static ``Retry-After`` hint synchronized every refused client
    onto the same retry instant — a 503 burst came back as a thundering
    herd exactly ``base`` seconds later and was refused again.  Jitter
    de-correlates the herd; the hint only ever grows, so the contract
    "wait at least this long" still holds.
    """
    base = max(0.0, float(base))
    return base * (1.0 + random.random() * max(0.0, float(spread)))


class ServerStats:
    """Aggregate counters of one server's lifetime."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # Uptime must come from the monotonic clock: an NTP step or a
        # manual clock change would otherwise make /healthz report
        # negative or jumping uptime.  The wall-clock start instant is
        # kept separately, for display only (``started_unix``).
        self._started_monotonic = time.monotonic()
        self._started_unix = time.time()
        self.tally = ReasonTally()
        self._endpoints: Dict[str, int] = {}
        self._bad_requests = 0
        self._internal_errors = 0
        self._saturated = 0
        self._rate_limited = 0

    # -- recording ---------------------------------------------------------

    def record_endpoint(self, name: str) -> None:
        with self._lock:
            self._endpoints[name] = self._endpoints.get(name, 0) + 1

    def record_result(self, result: VerifyResult) -> None:
        self.tally.record(result.verdict, result.reason_code)

    def record_result_record(self, record: Mapping[str, object]) -> None:
        """Tally a result already in wire form (the pool speaks JSON)."""
        self.tally.record_json(record)  # foreign record shape: skip tally

    def record_bad_request(self) -> None:
        with self._lock:
            self._bad_requests += 1

    def record_internal_error(self) -> None:
        with self._lock:
            self._internal_errors += 1

    def record_saturated(self) -> None:
        with self._lock:
            self._saturated += 1

    def record_rate_limited(self) -> None:
        with self._lock:
            self._rate_limited += 1

    # -- views -------------------------------------------------------------

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_monotonic

    def snapshot(self, pool=None, gate=None, cluster=None) -> Dict[str, object]:
        """The ``GET /stats`` payload (plain JSON-serializable dicts).

        ``pool`` contributes the per-member breakdown, the rolled-up
        session view (the ``session`` key kept from the single-session
        server's schema), and the shared-store counters; ``gate``
        contributes admission/backpressure state; ``cluster`` is the
        clustering engine's tally block (``/cluster`` placements by
        layer, group count, durability), included whenever the server
        has served a clustering stream.
        """
        with self._lock:
            endpoints = dict(sorted(self._endpoints.items()))
            bad_requests = self._bad_requests
            internal_errors = self._internal_errors
            saturated = self._saturated
            rate_limited = self._rate_limited
        verdicts = self.tally.snapshot()
        out: Dict[str, object] = {
            "uptime_seconds": round(self.uptime_seconds, 3),
            "started_unix": round(self._started_unix, 3),
            "endpoints": endpoints,
            "bad_requests": bad_requests,
            "internal_errors": internal_errors,
            "saturated": saturated,
            "rate_limited": rate_limited,
            # Derived from the one snapshot so 'results' always equals the
            # sum of 'verdicts' even while other threads keep recording.
            "results": sum(verdicts["verdicts"].values()),
            "verdicts": verdicts["verdicts"],
            "reason_codes": verdicts["reason_codes"],
            "caches": cache_stats(),
        }
        if pool is not None:
            pool_stats = pool.stats()
            out["pool"] = pool_stats
            out["session"] = pool_stats["session"]
            out["store"] = pool_stats["store"]
        if gate is not None:
            out["admission"] = gate.snapshot()
        if cluster is not None:
            out["cluster"] = cluster
        return out


__all__ = ["ServerStats", "jittered_retry_after", "service_health"]
