"""Server-side statistics: thread-safe counters behind ``GET /stats``.

The HTTP front end serves each request on its own thread
(:class:`http.server.ThreadingHTTPServer`), so every counter here must
tolerate concurrent increments.  Verdict and reason-code tallies reuse
:class:`~repro.udp.trace.ReasonTally`; endpoint and error counts keep
their own lock.  A snapshot combines the server-level counters with the
process-wide memo caches (:func:`repro.cache_stats`) and the owning
session's compile-cache occupancy (:meth:`repro.session.Session.cache_info`),
so one ``GET /stats`` answers "how warm is this service" end to end.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.hashcons import cache_stats
from repro.session import Session, VerifyResult
from repro.udp.trace import ReasonTally


class ServerStats:
    """Aggregate counters of one server's lifetime."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_monotonic = time.monotonic()
        self._started_unix = time.time()
        self.tally = ReasonTally()
        self._endpoints: Dict[str, int] = {}
        self._bad_requests = 0
        self._internal_errors = 0

    # -- recording ---------------------------------------------------------

    def record_endpoint(self, name: str) -> None:
        with self._lock:
            self._endpoints[name] = self._endpoints.get(name, 0) + 1

    def record_result(self, result: VerifyResult) -> None:
        self.tally.record(result.verdict, result.reason_code)

    def record_bad_request(self) -> None:
        with self._lock:
            self._bad_requests += 1

    def record_internal_error(self) -> None:
        with self._lock:
            self._internal_errors += 1

    # -- views -------------------------------------------------------------

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_monotonic

    def snapshot(self, session: Optional[Session] = None) -> Dict[str, object]:
        """The ``GET /stats`` payload (plain JSON-serializable dicts)."""
        with self._lock:
            endpoints = dict(sorted(self._endpoints.items()))
            bad_requests = self._bad_requests
            internal_errors = self._internal_errors
        verdicts = self.tally.snapshot()
        out: Dict[str, object] = {
            "uptime_seconds": round(self.uptime_seconds, 3),
            "started_unix": round(self._started_unix, 3),
            "endpoints": endpoints,
            "bad_requests": bad_requests,
            "internal_errors": internal_errors,
            # Derived from the one snapshot so 'results' always equals the
            # sum of 'verdicts' even while other threads keep recording.
            "results": sum(verdicts["verdicts"].values()),
            "verdicts": verdicts["verdicts"],
            "reason_codes": verdicts["reason_codes"],
            "caches": cache_stats(),
        }
        if session is not None:
            out["session"] = {
                "requests": session.stats.requests,
                **session.cache_info(),
            }
        return out


__all__ = ["ServerStats"]
