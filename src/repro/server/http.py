"""The long-lived verification server: HTTP over a warm :class:`Session`.

A stdlib-only front end (``http.server`` threading, no third-party
dependencies) that turns the library into a deployable network service::

    udp-prove serve --port 8642 --pipeline udp-prove,model-check

Routes
------

``POST /verify``
    One :class:`~repro.session.VerifyRequest` as a JSON object
    (``{"left", "right", "program"?, "id"?, "timeout_seconds"?,
    "pipeline"?}``); responds with the
    :class:`~repro.session.VerifyResult` JSON record.  ``pipeline`` is a
    per-request override: a comma-separated tactic spec applied on top of
    the server's configuration.

``POST /verify/batch``
    JSON lines in (one request object per line), JSON lines out — each
    input line answered by a result record *in input order*, streamed
    through :meth:`~repro.session.Session.verify_many`'s bounded
    in-flight window and flushed per record, so arbitrarily long batches
    run in constant memory on both ends.  ``?pipeline=`` and ``?window=``
    query parameters override per batch.

``GET /healthz`` / ``GET /stats``
    Liveness, and the full counter snapshot (verdicts and reason codes,
    memo-cache hit/miss from :func:`repro.cache_stats`, compile-cache
    occupancy, uptime).

Error isolation
---------------

A malformed request never takes the server down and never produces a
bare traceback body: envelope problems (invalid JSON, missing fields,
unknown tactics) come back as HTTP 400 with a structured
``{"error": {"code", "reason", ...}}`` record; a malformed *line* inside
a batch becomes an in-stream error record while its siblings proceed;
verification-level failures are already structured
``unsupported``/``error`` verdicts (the session's never-raises
contract); anything unexpected is a structured ``internal-error``
record, counted in ``/stats``.

Thread-safety contract
----------------------

Each connection is served on its own thread, but all of them share one
:class:`~repro.session.Session` (per catalog, plus its program-text
sub-sessions) whose caches are plain LRU dicts — so the server
serializes pipeline execution behind a single lock.  Concurrent clients
overlap on I/O and get consistent caches; they do not get parallel
proving.  Run one process per core (e.g. behind any HTTP load balancer)
for CPU parallelism — sessions share nothing across processes, and the
run-stable fingerprints keep their verdicts identical.
"""

from __future__ import annotations

import json
import threading
import uuid
from dataclasses import replace
from http import HTTPStatus
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterable, Iterator, Mapping, Optional
from urllib.parse import parse_qs, urlsplit

from repro import __version__
from repro.server.stats import ServerStats
from repro.session import (
    DEFAULT_WINDOW,
    PipelineConfig,
    Session,
    VerifyRequest,
    VerifyResult,
    parse_pipeline_spec,
)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: Upper bound on a single ``POST /verify`` body.
MAX_REQUEST_BYTES = 16 * 1024 * 1024
#: Upper bound on one batch line before it is force-split (and fails JSON
#: parsing as a structured bad-line record instead of exhausting memory).
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Reserved request-id prefix marking a malformed batch line's placeholder.
#: The NUL byte keeps it out of any sane client's id space; each batch adds
#: a random nonce on top (see ``_verify_stream``) so even a hostile id
#: cannot collide with a placeholder and swap records.
_BAD_LINE_PREFIX = "\x00bad-line:"


def error_record(code: str, reason: str, **fields: object) -> Dict[str, object]:
    """The structured error envelope every non-result answer uses."""
    record: Dict[str, object] = {"code": code, "reason": reason}
    record.update(fields)
    return {"error": record}


class VerificationServer:
    """One warm session behind a threaded stdlib HTTP server.

    Construct with an existing :class:`~repro.session.Session` (to
    preload a catalog) or a :class:`~repro.session.PipelineConfig` (a
    fresh session is created), then either :meth:`serve_forever` on the
    calling thread (the CLI) or :meth:`start`/:meth:`close` a background
    thread (tests, embedding).  ``port=0`` binds an ephemeral port;
    :attr:`url` reports the bound address either way.
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        *,
        pipeline: Optional[PipelineConfig] = None,
        host: str = DEFAULT_HOST,
        port: int = 0,
        window: int = DEFAULT_WINDOW,
        quiet: bool = True,
    ) -> None:
        if session is not None and pipeline is not None:
            raise ValueError(
                "pass either a session or a pipeline config, not both — "
                "the pipeline is the session's config"
            )
        self.session = session or Session(config=pipeline)
        self.window = max(1, int(window))
        self.quiet = quiet
        self.stats = ServerStats()
        self._lock = threading.RLock()
        self._configs: Dict[str, PipelineConfig] = {}
        self._httpd = _ThreadingServer((host, port), _Handler)
        self._httpd.owner = self
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()

    def start(self) -> "VerificationServer":
        """Serve on a daemon thread; pair with :meth:`close`."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"udp-prove-serve:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            self._httpd.shutdown()
            self._thread.join(timeout=10)
        self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "VerificationServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- request handling (transport-independent) --------------------------

    def health(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "uptime_seconds": round(self.stats.uptime_seconds, 3),
            "version": __version__,
        }

    def config_for(self, spec: Optional[str]) -> PipelineConfig:
        """The effective pipeline: the session's, overridden by ``spec``.

        Raises ``ValueError`` on a malformed spec or unknown tactic —
        callers turn that into a structured 400.  Parsed overrides are
        cached so request streams pay the validation once per spec.
        """
        if spec is None or spec == "":
            return self.session.config
        if not isinstance(spec, str):
            raise ValueError(
                "'pipeline' must be a comma-separated string of tactic names"
            )
        config = self._configs.get(spec)
        if config is None:
            config = replace(
                self.session.config, tactics=tuple(parse_pipeline_spec(spec))
            )
            if len(self._configs) < 64:
                self._configs[spec] = config
        return config

    def verify_one(self, obj: Mapping[str, object]) -> VerifyResult:
        """Decide one ``POST /verify`` payload (already JSON-decoded).

        Envelope errors raise ``ValueError`` (→ 400); everything past the
        envelope is the session's never-raises contract, so the result —
        including ``unsupported`` and ``error`` verdicts — is a normal
        200 record.
        """
        for key in ("left", "right"):
            if key not in obj:
                raise ValueError(f"missing required field {key!r}")
        request = VerifyRequest.from_json(obj)
        config = self.config_for(obj.get("pipeline"))  # type: ignore[arg-type]
        with self._lock:
            result = self.session.verify(request, config=config)
        self.stats.record_result(result)
        return result

    def verify_stream(
        self,
        lines: Iterable[str],
        *,
        pipeline: Optional[str] = None,
        window: Optional[int] = None,
    ) -> Iterator[Dict[str, object]]:
        """Decide a JSONL batch: one output record per input line, in order.

        Good lines flow through :meth:`Session.verify_many`'s bounded
        window; a malformed line is swapped for a cheap placeholder
        request (reserved nonce-carrying id, fails the front end
        immediately) whose result is rewritten into a structured
        bad-line error record on the way out — ordering stays exact and
        sibling lines are untouched.  Placeholders do traverse the
        session, so ``/stats``'s *session-level* request count includes
        malformed lines while the server-level result counters do not.
        The session lock is taken per result, not for the whole batch,
        so single verifies interleave with long batches.
        """
        # Validate eagerly (this wrapper is not a generator) so a bad
        # pipeline spec raises before the caller commits to a 200 stream.
        config = self.config_for(pipeline)
        window = self.window if window is None else max(1, int(window))
        return self._verify_stream(lines, config, window)

    def _verify_stream(
        self, lines: Iterable[str], config: PipelineConfig, window: int
    ) -> Iterator[Dict[str, object]]:
        bad: Dict[str, Dict[str, object]] = {}
        # Per-batch nonce: a client id can contain the NUL prefix, but it
        # cannot guess this, so placeholders never collide with real ids.
        marker_prefix = f"{_BAD_LINE_PREFIX}{uuid.uuid4().hex}:"

        def requests() -> Iterator[VerifyRequest]:
            for lineno, raw in enumerate(lines, start=1):
                text = raw.strip()
                if not text:
                    continue
                try:
                    obj = json.loads(text)
                    if not isinstance(obj, dict):
                        raise ValueError("each line must be a JSON object")
                    for key in ("left", "right"):
                        if key not in obj:
                            raise ValueError(f"missing required field {key!r}")
                    yield VerifyRequest.from_json(obj)
                except (KeyError, TypeError, ValueError) as err:
                    marker = f"{marker_prefix}{lineno}"
                    bad[marker] = error_record(
                        "bad-request", str(err), line=lineno
                    )
                    yield VerifyRequest(left="", right="", request_id=marker)

        iterator = self.session.verify_many(
            requests(), window=window, config=config
        )
        while True:
            with self._lock:
                try:
                    result = next(iterator)
                except StopIteration:
                    break
            record = (
                bad.pop(result.request_id, None)
                if result.request_id.startswith(marker_prefix)
                else None
            )
            if record is not None:
                self.stats.record_bad_request()
                yield record
            else:
                self.stats.record_result(result)
                yield result.to_json()


class _ThreadingServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    owner: VerificationServer


class _Handler(BaseHTTPRequestHandler):
    server_version = f"udp-prove/{__version__}"
    #: Per-socket-operation timeout: a client that stalls mid-headers or
    #: mid-body gets disconnected instead of pinning a handler thread
    #: forever in the long-lived service.
    timeout = 60.0
    server: _ThreadingServer

    # -- logging -----------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if self.server.owner.quiet:
            return
        super().log_message(format, *args)

    # -- routing -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        owner = self.server.owner
        path = urlsplit(self.path).path
        try:
            if path == "/healthz":
                owner.stats.record_endpoint("healthz")
                self._send_json(HTTPStatus.OK, owner.health())
            elif path == "/stats":
                owner.stats.record_endpoint("stats")
                self._send_json(
                    HTTPStatus.OK, owner.stats.snapshot(owner.session)
                )
            elif path in ("/verify", "/verify/batch"):
                self._send_error(
                    HTTPStatus.METHOD_NOT_ALLOWED,
                    "method-not-allowed",
                    f"{path} requires POST",
                )
            else:
                self._send_error(
                    HTTPStatus.NOT_FOUND, "not-found", f"no route for {path}"
                )
        except Exception as err:  # noqa: BLE001 - no traceback bodies
            self._internal_error(err)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        parsed = urlsplit(self.path)
        try:
            if parsed.path == "/verify":
                self._post_verify()
            elif parsed.path == "/verify/batch":
                self._post_batch(parse_qs(parsed.query))
            else:
                self._send_error(
                    HTTPStatus.NOT_FOUND,
                    "not-found",
                    f"no route for {parsed.path}",
                )
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as err:  # noqa: BLE001 - no traceback bodies
            self._internal_error(err)

    def _method_not_allowed(self) -> None:
        self._send_error(
            HTTPStatus.METHOD_NOT_ALLOWED,
            "method-not-allowed",
            f"{self.command} is not supported",
        )

    do_PUT = do_DELETE = do_PATCH = _method_not_allowed  # noqa: N815

    # -- endpoints ---------------------------------------------------------

    def _post_verify(self) -> None:
        owner = self.server.owner
        owner.stats.record_endpoint("verify")
        body = self._read_body(MAX_REQUEST_BYTES)
        if body is None:
            return
        try:
            obj = json.loads(body)
            if not isinstance(obj, dict):
                raise ValueError("request body must be a JSON object")
        except ValueError as err:
            self._bad_request(f"invalid JSON body: {err}")
            return
        try:
            result = owner.verify_one(obj)
        except (KeyError, TypeError, ValueError) as err:
            self._bad_request(str(err))
            return
        self._send_json(HTTPStatus.OK, result.to_json())

    def _post_batch(self, query: Dict[str, list]) -> None:
        owner = self.server.owner
        owner.stats.record_endpoint("verify_batch")
        length = self._content_length()
        if length is None:
            return
        try:
            spec = (query.get("pipeline") or [None])[0]
            window = (query.get("window") or [None])[0]
            stream = owner.verify_stream(
                self._iter_body_lines(length),
                pipeline=spec,
                window=int(window) if window is not None else None,
            )
        except ValueError as err:
            self._bad_request(str(err))
            return
        self.send_response(HTTPStatus.OK)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        try:
            for record in stream:
                self.wfile.write(
                    json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"
                )
                self.wfile.flush()  # each record leaves as it is decided
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to answer
        except Exception as err:  # noqa: BLE001 - headers already sent
            owner.stats.record_internal_error()
            line = error_record(
                "internal-error", f"{type(err).__name__}: {err}"
            )
            try:
                self.wfile.write(
                    json.dumps(line, sort_keys=True).encode("utf-8") + b"\n"
                )
            except OSError:
                pass

    # -- body reading ------------------------------------------------------

    def _content_length(self) -> Optional[int]:
        raw = self.headers.get("Content-Length")
        if raw is None:
            self._bad_request(
                "missing Content-Length (chunked bodies are not supported)"
            )
            return None
        try:
            length = int(raw)
            if length < 0:
                raise ValueError(raw)
        except ValueError:
            self._bad_request(f"invalid Content-Length {raw!r}")
            return None
        return length

    def _read_body(self, limit: int) -> Optional[bytes]:
        length = self._content_length()
        if length is None:
            return None
        if length > limit:
            self._send_error(
                HTTPStatus.REQUEST_ENTITY_TOO_LARGE,
                "payload-too-large",
                f"body of {length} bytes exceeds the {limit}-byte limit",
            )
            return None
        return self.rfile.read(length)

    def _iter_body_lines(self, remaining: int) -> Iterator[str]:
        """Stream the request body line by line, bounded by Content-Length.

        A line longer than :data:`MAX_LINE_BYTES` is truncated (the rest
        is read and discarded up to its newline) rather than split, so it
        still yields exactly one string — which fails JSON parsing into
        one bad-line record — and line numbering stays aligned with the
        client's input.
        """
        buffer = b""
        overflowing = False
        while remaining > 0:
            chunk = self.rfile.readline(min(remaining, MAX_LINE_BYTES))
            if not chunk:
                break
            remaining -= len(chunk)
            ended = chunk.endswith(b"\n")
            if not overflowing:
                buffer += chunk
                if len(buffer) > MAX_LINE_BYTES:
                    buffer = buffer[:MAX_LINE_BYTES]
                    overflowing = not ended
            if ended:
                yield buffer.decode("utf-8", "replace")
                buffer = b""
                overflowing = False
        if buffer:
            yield buffer.decode("utf-8", "replace")

    # -- responses ---------------------------------------------------------

    def _send_json(self, status: HTTPStatus, payload: Mapping[str, object]) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(int(status))
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: HTTPStatus, code: str, reason: str) -> None:
        self._send_json(status, error_record(code, reason))

    def _bad_request(self, reason: str) -> None:
        self.server.owner.stats.record_bad_request()
        self._send_error(HTTPStatus.BAD_REQUEST, "bad-request", reason)

    def _internal_error(self, err: Exception) -> None:
        self.server.owner.stats.record_internal_error()
        try:
            self._send_error(
                HTTPStatus.INTERNAL_SERVER_ERROR,
                "internal-error",
                f"{type(err).__name__}: {err}",
            )
        except OSError:
            self.close_connection = True


__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "MAX_LINE_BYTES",
    "MAX_REQUEST_BYTES",
    "VerificationServer",
    "error_record",
]
