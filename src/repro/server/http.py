"""The long-lived verification server: HTTP over a warm session pool.

A stdlib-only front end (``http.server`` threading, no third-party
dependencies) that turns the library into a deployable network service::

    udp-prove serve --port 8642 --pool-size 4

Routes
------

``POST /verify``
    One :class:`~repro.session.VerifyRequest` as a JSON object
    (``{"left", "right", "program"?, "id"?, "timeout_seconds"?,
    "pipeline"?}``); responds with the
    :class:`~repro.session.VerifyResult` JSON record.  ``pipeline`` is a
    per-request override: a comma-separated tactic spec applied on top of
    the server's configuration.

``POST /verify/batch``
    JSON lines in (one request object per line), JSON lines out — each
    input line answered by a result record *in input order* even though
    the pool decides lines concurrently across members; each record is
    flushed as it is decided, so arbitrarily long batches run in
    constant memory on both ends.  ``?pipeline=`` and ``?window=`` query
    parameters override per batch; the window bounds how many lines are
    in flight across the pool at once.

``POST /corpus``
    Replay the built-in evaluation corpus (optionally ``?dataset=``)
    through the pool and answer a summary record — after one call,
    ``GET /stats`` is a self-contained health benchmark.

``POST /cluster``
    Stream JSONL queries (one JSON string or ``{"query", "id"?}``
    object per line) into the clustering engine
    (:mod:`repro.service.clustering`); one placement record per input
    line comes back in input order (``{"group", "placed_by":
    "digest|decision|new", ...}``), flushed as it is placed.  Queries
    are grouped by *proved* equivalence under the server's catalog:
    alpha-variant twins place in O(1) on canonical digests, residual
    comparisons fan out across the pool sharded by representative
    digest, and — with a group-capable store — groups persist across
    restarts.  Group numbering is per-server-lifetime and monotonic:
    successive requests keep extending the same partition.

``GET /healthz`` / ``GET /stats``
    Liveness, and the full counter snapshot: per-member and rolled-up
    verdict/reason-code tallies, shared-store hit/miss, memo-cache and
    compile-cache occupancy, admission-gate state, uptime.

Request bodies may be sent with ``Content-Length`` *or* chunked
``Transfer-Encoding`` — chunked batches let clients stream unbounded
JSONL uploads without knowing their size up front.

Error isolation
---------------

A malformed request never takes the server down and never produces a
bare traceback body: envelope problems (invalid JSON, missing fields,
unknown tactics, malformed chunk framing) come back as HTTP 400 with a
structured ``{"error": {"code", "reason", ...}}`` record; a malformed
*line* inside a batch becomes an in-stream error record while its
siblings proceed; verification-level failures are already structured
``unsupported``/``error`` verdicts (the session's never-raises
contract); anything unexpected is a structured ``internal-error``
record, counted in ``/stats``.

Concurrency contract
--------------------

Each connection is served on its own thread, and proving is dispatched
across a :class:`~repro.server.pool.SessionPool` of warm per-catalog
sessions — each work item runs on exactly one member, members share the
process-wide (and, in process mode, cross-process) memo stores, and
``/verify/batch`` output order is exactly input order regardless of
which member finishes first.  Admission is bounded: past
``max_inflight`` executing plus ``max_queued`` briefly waiting
requests, the server answers a structured 503 with a ``Retry-After``
header instead of queueing without limit.  See the README for the full
contract.
"""

from __future__ import annotations

import json
import logging
import threading
from http import HTTPStatus
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro import __version__
from repro.server.framing import (
    BadChunkedBody,
    LineSplitter,
    TruncatedBody,
)
from repro.server.pool import AdmissionGate, SessionPool, error_record
from repro.server.stats import ServerStats, jittered_retry_after, service_health
from repro.session import DEFAULT_WINDOW, PipelineConfig, Session
from urllib.parse import parse_qs, urlsplit

_LOG = logging.getLogger("repro.server.http")

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: Upper bound on a single ``POST /verify`` body.
MAX_REQUEST_BYTES = 16 * 1024 * 1024
#: Upper bound on one batch line; a longer line is truncated (and fails
#: JSON parsing as a structured bad-line record instead of exhausting
#: memory) while line numbering stays aligned with the client's input.
MAX_LINE_BYTES = 4 * 1024 * 1024
#: Chunk-extension allowance when reading a chunk-size line.
_CHUNK_SIZE_LINE_LIMIT = 1024


# Framing exceptions live in repro.server.framing (shared with the
# front door); the old private name stays as an alias for callers.
_BadChunkedBody = BadChunkedBody


class VerificationServer:
    """A session pool behind a threaded stdlib HTTP server.

    Construct with an existing :class:`~repro.session.Session` (to
    preload a catalog — it becomes the pool's prototype) or a
    :class:`~repro.session.PipelineConfig` (a fresh prototype is
    created), then either :meth:`serve_forever` on the calling thread
    (the CLI) or :meth:`start`/:meth:`close` a background thread (tests,
    embedding).  ``port=0`` binds an ephemeral port; :attr:`url` reports
    the bound address either way.

    ``pool_size``/``pool_mode`` shape the :class:`SessionPool` (mode
    ``auto`` forks one worker per member when ``pool_size > 1``);
    ``max_inflight``/``max_queued``/``admission_timeout`` shape the
    admission gate, and ``retry_after`` is the hint sent with 503s.
    Alternatively pass a ready-made ``pool`` (the server then does not
    close it).
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        *,
        pipeline: Optional[PipelineConfig] = None,
        host: str = DEFAULT_HOST,
        port: int = 0,
        window: int = DEFAULT_WINDOW,
        quiet: bool = True,
        pool: Optional[SessionPool] = None,
        pool_size: Optional[int] = 1,
        pool_mode: str = "auto",
        pool_max: Optional[int] = None,
        member_timeout: Optional[float] = None,
        shared_store=None,
        store_path: Optional[str] = None,
        store_backend: str = "auto",
        shard_dispatch: bool = True,
        max_inflight: Optional[int] = None,
        max_queued: Optional[int] = None,
        admission_timeout: float = 0.5,
        retry_after: int = 1,
        per_client_inflight: Optional[int] = None,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[float] = None,
        drain_timeout: float = 10.0,
    ) -> None:
        if pool is not None and (session is not None or pipeline is not None):
            raise ValueError(
                "pass either a ready-made pool or session/pipeline, not both"
            )
        if pool is not None:
            self.pool = pool
            self._owns_pool = False
        else:
            self.pool = SessionPool(
                pool_size,
                mode=pool_mode,
                session=session,
                pipeline=pipeline,
                shared_store=shared_store,
                store_path=store_path,
                store_backend=store_backend,
                member_timeout=member_timeout,
                pool_max=pool_max,
                shard_dispatch=shard_dispatch,
            )
            self._owns_pool = True
        self.window = max(1, int(window))
        self.quiet = quiet
        self.stats = ServerStats()
        if max_inflight is None:
            max_inflight = max(4, 2 * self.pool.pool_max)
        self.gate = AdmissionGate(
            max_inflight,
            max_queued,
            wait_timeout=admission_timeout,
            per_client_inflight=per_client_inflight,
            rate_limit=rate_limit,
            rate_burst=rate_burst,
        )
        self.retry_after = max(1, int(retry_after))
        self.drain_timeout = max(0.0, float(drain_timeout))
        self._cluster_engine = None
        self._cluster_lock = threading.Lock()
        self._draining = False
        self._drained = False
        self._drain_lock = threading.Lock()
        self._httpd = _ThreadingServer((host, port), _Handler)
        self._httpd.owner = self
        self._thread = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path).

        On the way out — a ``KeyboardInterrupt`` or a
        :meth:`request_shutdown` (the SIGTERM path) — the server drains:
        the listener closes first (no new work), in-flight requests get
        up to ``drain_timeout`` seconds to finish, the store is flushed,
        and the pool is reaped so no member process outlives the server.
        """
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()
            self._drain()

    def request_shutdown(self) -> None:
        """Begin a graceful drain; idempotent and signal-handler-safe.

        Stops the accept loop from a side thread (``shutdown()`` blocks
        until the loop notices, so it must not run on the serving
        thread) and flips :meth:`health` to ``"draining"``.  The actual
        drain — waiting out in-flight requests, flushing, reaping —
        happens on the serving thread as :meth:`serve_forever` unwinds.
        """
        with self._drain_lock:
            if self._draining:
                return
            self._draining = True
        threading.Thread(
            target=self._httpd.shutdown,
            name="udp-serve-shutdown",
            daemon=True,
        ).start()

    def _drain(self) -> None:
        """Finish in-flight work (time-boxed), flush, reap; idempotent."""
        with self._drain_lock:
            if self._drained:
                return
            self._drained = True
            self._draining = True
        if not self.gate.wait_idle(self.drain_timeout):
            _LOG.warning(
                "drain timeout (%.1fs) with %d request(s) still in "
                "flight; shutting down anyway",
                self.drain_timeout,
                self.gate.inflight,
            )
        store = self.pool.store
        if store is not None:
            flush = getattr(store, "flush", None)
            if flush is not None:
                try:
                    flush()
                except Exception:  # noqa: BLE001 - drain must finish
                    pass
        if self._owns_pool:
            self.pool.close()

    def start(self) -> "VerificationServer":
        """Serve on a daemon thread; pair with :meth:`close`."""
        import threading

        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"udp-prove-serve:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            self._httpd.shutdown()
            self._thread.join(timeout=10)
        self._thread = None
        self._httpd.server_close()
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "VerificationServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- transport-independent views ---------------------------------------

    def cluster_engine(self):
        """The server's clustering engine, created on first use.

        One engine per server lifetime: group numbering is monotonic
        across requests, so successive ``POST /cluster`` streams keep
        extending the same partition.  Residual decisions dispatch
        across the pool (sharded by representative digest) and group
        state persists in the pool's store when it is group-capable.
        """
        with self._cluster_lock:
            if self._cluster_engine is None:
                from repro.service.clustering import ClusterEngine

                self._cluster_engine = ClusterEngine(
                    pool=self.pool, store=self.pool.store
                )
            return self._cluster_engine

    def cluster_snapshot(self) -> Optional[Dict[str, object]]:
        """The ``cluster`` block of ``/stats``; ``None`` before first use."""
        with self._cluster_lock:
            engine = self._cluster_engine
        return engine.snapshot() if engine is not None else None

    def health(self) -> Dict[str, object]:
        status, problems = service_health(self.pool, draining=self._draining)
        payload: Dict[str, object] = {
            "status": status,
            "uptime_seconds": round(self.stats.uptime_seconds, 3),
            "version": __version__,
            "pool_size": self.pool.size,
            "pool_mode": self.pool.mode,
        }
        if problems:
            payload["problems"] = problems
        return payload


class _ThreadingServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    owner: VerificationServer


class _Handler(BaseHTTPRequestHandler):
    server_version = f"udp-prove/{__version__}"
    #: Per-socket-operation timeout: a client that stalls mid-headers or
    #: mid-body gets disconnected instead of pinning a handler thread
    #: forever in the long-lived service.
    timeout = 60.0
    server: _ThreadingServer

    # -- logging -----------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if self.server.owner.quiet:
            return
        super().log_message(format, *args)

    # -- routing -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        owner = self.server.owner
        path = urlsplit(self.path).path
        try:
            if path == "/healthz":
                owner.stats.record_endpoint("healthz")
                self._send_json(HTTPStatus.OK, owner.health())
            elif path == "/stats":
                owner.stats.record_endpoint("stats")
                self._send_json(
                    HTTPStatus.OK,
                    owner.stats.snapshot(
                        pool=owner.pool,
                        gate=owner.gate,
                        cluster=owner.cluster_snapshot(),
                    ),
                )
            elif path in ("/verify", "/verify/batch", "/corpus", "/cluster"):
                self._send_error(
                    HTTPStatus.METHOD_NOT_ALLOWED,
                    "method-not-allowed",
                    f"{path} requires POST",
                )
            else:
                self._send_error(
                    HTTPStatus.NOT_FOUND, "not-found", f"no route for {path}"
                )
        except Exception as err:  # noqa: BLE001 - no traceback bodies
            self._internal_error(err)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        owner = self.server.owner
        parsed = urlsplit(self.path)
        try:
            if parsed.path not in (
                "/verify",
                "/verify/batch",
                "/corpus",
                "/cluster",
            ):
                self._send_error(
                    HTTPStatus.NOT_FOUND,
                    "not-found",
                    f"no route for {parsed.path}",
                )
                return
            # Backpressure: bounded admission for every proving route.
            # GETs (health, stats) stay answerable under full load.
            client = self._client_id()
            decision = owner.gate.try_enter(client)
            if not decision:
                if decision.code == "rate-limited":
                    self._rate_limited(decision)
                else:
                    self._saturated()
                return
            try:
                if parsed.path == "/verify":
                    self._post_verify()
                elif parsed.path == "/verify/batch":
                    self._post_batch(parse_qs(parsed.query))
                elif parsed.path == "/cluster":
                    self._post_cluster()
                else:
                    self._post_corpus(parse_qs(parsed.query))
            finally:
                owner.gate.leave(client)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as err:  # noqa: BLE001 - no traceback bodies
            self._internal_error(err)

    def _client_id(self) -> str:
        """The admission identity: ``X-Client-Id`` header, else peer IP.

        The header lets load balancers and test harnesses carry the real
        principal through; unlabeled traffic falls back to the socket
        peer so per-client fairness still holds per remote host.
        """
        header = (self.headers.get("X-Client-Id") or "").strip()
        if header:
            return header[:128]
        return str(self.client_address[0])

    def _method_not_allowed(self) -> None:
        self._send_error(
            HTTPStatus.METHOD_NOT_ALLOWED,
            "method-not-allowed",
            f"{self.command} is not supported",
        )

    do_PUT = do_DELETE = do_PATCH = _method_not_allowed  # noqa: N815

    # -- endpoints ---------------------------------------------------------

    def _post_verify(self) -> None:
        owner = self.server.owner
        owner.stats.record_endpoint("verify")
        body = self._read_body(MAX_REQUEST_BYTES)
        if body is None:
            return
        try:
            obj = json.loads(body)
            if not isinstance(obj, dict):
                raise ValueError("request body must be a JSON object")
        except ValueError as err:
            self._bad_request(f"invalid JSON body: {err}")
            return
        try:
            record = owner.pool.verify_json(obj)
        except (KeyError, TypeError, ValueError) as err:
            self._bad_request(str(err))
            return
        owner.stats.record_result_record(record)
        self._send_json(HTTPStatus.OK, record)

    def _post_batch(self, query: Dict[str, list]) -> None:
        owner = self.server.owner
        owner.stats.record_endpoint("verify_batch")
        frames = self._body_frames()
        if frames is None:
            return
        try:
            spec = (query.get("pipeline") or [None])[0]
            window = (query.get("window") or [None])[0]
            stream = owner.pool.verify_stream(
                _iter_lines(frames),
                pipeline=spec,
                window=(
                    int(window) if window is not None else owner.window
                ),
            )
        except ValueError as err:
            self._bad_request(str(err))
            return
        self._stream_ndjson(stream)

    def _post_cluster(self) -> None:
        owner = self.server.owner
        owner.stats.record_endpoint("cluster")
        frames = self._body_frames()
        if frames is None:
            return
        engine = owner.cluster_engine()
        self._stream_ndjson(engine.place_stream(_iter_lines(frames)))

    def _stream_ndjson(self, stream: Iterator[Mapping[str, object]]) -> None:
        """Answer 200 + NDJSON, one record per input line, flushed as made.

        Shared by the batch and cluster routes.  Once the 200 is out,
        every failure — a truncated or malformed body discovered
        mid-upload, or an unexpected server-side error — becomes the
        explicit last in-stream record, so the consumer always knows
        whether the tail was processed.
        """
        owner = self.server.owner
        self.send_response(HTTPStatus.OK)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True

        def write_record(record: Mapping[str, object]) -> None:
            self.wfile.write(
                json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"
            )
            self.wfile.flush()  # each record leaves as it is decided

        try:
            for record in stream:
                # Client-caused bad lines and server-side failures are
                # both in-stream records, but /stats must blame the
                # right party.  A cluster placement whose query failed
                # to compile carries a plain-string ``error`` reason —
                # that one is still a successful placement.
                error = record.get("error")
                if isinstance(error, Mapping):
                    if error.get("code") == "internal-error":
                        owner.stats.record_internal_error()
                    else:
                        owner.stats.record_bad_request()
                else:
                    owner.stats.record_result_record(record)
                write_record(record)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to answer
        except TruncatedBody as err:
            # The client died mid-upload.  Every fully received line was
            # already answered; the truncation becomes the explicit last
            # record so the consumer knows the tail was never decided.
            owner.stats.record_bad_request()
            try:
                write_record(
                    error_record(
                        "truncated-body",
                        str(err),
                        received_bytes=err.received,
                        expected_bytes=err.expected,
                    )
                )
            except OSError:
                pass
        except _BadChunkedBody as err:
            # Headers are long gone; the framing error becomes the last
            # in-stream record and the connection closes.
            owner.stats.record_bad_request()
            try:
                write_record(
                    error_record("bad-request", f"malformed chunked body: {err}")
                )
            except OSError:
                pass
        except Exception as err:  # noqa: BLE001 - headers already sent
            owner.stats.record_internal_error()
            try:
                write_record(
                    error_record("internal-error", f"{type(err).__name__}: {err}")
                )
            except OSError:
                pass

    def _post_corpus(self, query: Dict[str, list]) -> None:
        owner = self.server.owner
        owner.stats.record_endpoint("corpus")
        # The corpus replay needs no body; drain one if present so the
        # connection stays reusable.
        if self._has_body():
            if self._read_body(MAX_REQUEST_BYTES) is None:
                return
        try:
            dataset = (query.get("dataset") or [None])[0]
            spec = (query.get("pipeline") or [None])[0]
            summary, records = owner.pool.run_corpus(dataset, spec)
        except ValueError as err:
            self._bad_request(str(err))
            return
        for record in records:
            owner.stats.record_result_record(record)
        self._send_json(HTTPStatus.OK, summary)

    # -- body reading ------------------------------------------------------

    def _has_body(self) -> bool:
        return bool(
            self.headers.get("Content-Length")
            or self.headers.get("Transfer-Encoding")
        )

    def _body_frames(self) -> Optional[Iterator[bytes]]:
        """The request body as a byte-chunk iterator, framing resolved.

        Prefers chunked ``Transfer-Encoding`` (streams without a known
        size — RFC 7230 requires ignoring Content-Length then); falls
        back to ``Content-Length``.  Sends the 400 itself and returns
        ``None`` when neither framing is usable.
        """
        encoding = (self.headers.get("Transfer-Encoding") or "").strip().lower()
        if encoding:
            codings = [c.strip() for c in encoding.split(",") if c.strip()]
            if codings == ["chunked"]:
                return self._iter_chunked_frames()
            # "gzip, chunked" etc. would need the other coding decoded
            # first; accepting it as plain chunked would misparse the
            # payload, so refuse anything but exactly 'chunked'.
            self._bad_request(
                f"unsupported Transfer-Encoding {encoding!r} "
                "(only 'chunked' is implemented)"
            )
            return None
        length = self._content_length()
        if length is None:
            return None
        return self._iter_length_frames(length)

    def _content_length(self) -> Optional[int]:
        raw = self.headers.get("Content-Length")
        if raw is None:
            self._bad_request(
                "missing Content-Length (send one, or use chunked "
                "Transfer-Encoding to stream an unbounded body)"
            )
            return None
        try:
            length = int(raw)
            if length < 0:
                raise ValueError(raw)
        except ValueError:
            self._bad_request(f"invalid Content-Length {raw!r}")
            return None
        return length

    def _iter_length_frames(self, length: int) -> Iterator[bytes]:
        # readline, not read: a plain read(64KB) blocks until the full
        # 64KB arrive, which deadlocks lockstep clients that wait for
        # line N's result record before sending line N+1.  readline
        # returns at each newline, so every completed line reaches the
        # pool immediately (oversized lines still stream in bounded
        # pieces via the limit).
        remaining = length
        while remaining > 0:
            chunk = self.rfile.readline(min(remaining, 65536))
            if not chunk:
                # EOF with bytes still owed: the client died (or lied
                # about Content-Length) mid-upload.  Treating the prefix
                # as a complete body silently verified half a batch.
                raise TruncatedBody(length - remaining, length)
            remaining -= len(chunk)
            yield chunk

    def _iter_chunked_frames(self) -> Iterator[bytes]:
        """Decode chunked Transfer-Encoding incrementally.

        Yields raw data pieces as they arrive (chunk boundaries carry no
        meaning — a JSONL line or even one UTF-8 character may span
        chunks).  Framing violations raise :class:`_BadChunkedBody`,
        which callers map to a structured 400 (before headers) or an
        in-stream error record (mid-stream).
        """
        rfile = self.rfile
        while True:
            size_line = rfile.readline(_CHUNK_SIZE_LINE_LIMIT + 1)
            if not size_line or not size_line.endswith(b"\n"):
                raise _BadChunkedBody("truncated or oversized chunk-size line")
            token = size_line.split(b";", 1)[0].strip()
            try:
                size = int(token, 16)
            except ValueError:
                raise _BadChunkedBody(
                    f"invalid chunk size {token[:32]!r}"
                ) from None
            if size < 0:
                raise _BadChunkedBody(f"negative chunk size {size}")
            if size == 0:
                break
            remaining = size
            while remaining > 0:
                piece = rfile.read(min(remaining, 65536))
                if not piece:
                    raise _BadChunkedBody("truncated chunk data")
                remaining -= len(piece)
                yield piece
            trailer = rfile.read(2)
            if trailer != b"\r\n":
                raise _BadChunkedBody("chunk data not terminated by CRLF")
        # Trailer section: header lines until the terminating blank line.
        while True:
            line = rfile.readline(_CHUNK_SIZE_LINE_LIMIT + 1)
            if not line or line in (b"\r\n", b"\n"):
                break

    def _read_body(self, limit: int) -> Optional[bytes]:
        """The whole request body, bounded; sends its own error answers."""
        length_header = self.headers.get("Content-Length")
        if length_header is not None and not self.headers.get(
            "Transfer-Encoding"
        ):
            # Fast path keeps the pre-read size check (no buffering of a
            # body that already announced it is too large).
            length = self._content_length()
            if length is None:
                return None
            if length > limit:
                self._send_error(
                    HTTPStatus.REQUEST_ENTITY_TOO_LARGE,
                    "payload-too-large",
                    f"body of {length} bytes exceeds the {limit}-byte limit",
                )
                return None
            body = self.rfile.read(length)
            if len(body) < length:
                # Short read: the client disconnected mid-upload.  The
                # prefix must not be parsed as a complete request.
                self._bad_request(
                    str(TruncatedBody(len(body), length))
                )
                return None
            return body
        frames = self._body_frames()
        if frames is None:
            return None
        pieces = []
        total = 0
        try:
            for piece in frames:
                total += len(piece)
                if total > limit:
                    self._send_error(
                        HTTPStatus.REQUEST_ENTITY_TOO_LARGE,
                        "payload-too-large",
                        f"body exceeds the {limit}-byte limit",
                    )
                    return None
                pieces.append(piece)
        except TruncatedBody as err:
            self._bad_request(str(err))
            return None
        except _BadChunkedBody as err:
            self._bad_request(f"malformed chunked body: {err}")
            return None
        return b"".join(pieces)

    # -- responses ---------------------------------------------------------

    def _send_json(
        self,
        status: HTTPStatus,
        payload: Mapping[str, object],
        headers: Sequence[Tuple[str, str]] = (),
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(int(status))
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: HTTPStatus, code: str, reason: str) -> None:
        self._send_json(status, error_record(code, reason))

    def _bad_request(self, reason: str) -> None:
        self.server.owner.stats.record_bad_request()
        self._send_error(HTTPStatus.BAD_REQUEST, "bad-request", reason)

    def _rate_limited(self, decision) -> None:
        owner = self.server.owner
        owner.stats.record_rate_limited()
        base = (
            decision.retry_after
            if decision.retry_after is not None
            else owner.retry_after
        )
        retry = round(jittered_retry_after(base), 3)
        self._send_json(
            HTTPStatus.TOO_MANY_REQUESTS,
            error_record(
                "rate-limited",
                "this client is over its admission limit; retry after "
                f"{retry}s",
                retry_after_seconds=retry,
            ),
            headers=(("Retry-After", str(max(1, round(retry)))),),
        )
        self.close_connection = True

    def _saturated(self) -> None:
        owner = self.server.owner
        owner.stats.record_saturated()
        gate = owner.gate
        retry = round(jittered_retry_after(owner.retry_after), 3)
        self._send_json(
            HTTPStatus.SERVICE_UNAVAILABLE,
            error_record(
                "saturated",
                f"server at capacity ({gate.max_inflight} in flight, "
                f"{gate.max_queued} queued); retry after "
                f"{retry}s",
                retry_after_seconds=retry,
            ),
            headers=(("Retry-After", str(max(1, round(retry)))),),
        )
        self.close_connection = True

    def _internal_error(self, err: Exception) -> None:
        self.server.owner.stats.record_internal_error()
        try:
            self._send_error(
                HTTPStatus.INTERNAL_SERVER_ERROR,
                "internal-error",
                f"{type(err).__name__}: {err}",
            )
        except OSError:
            self.close_connection = True


def _iter_lines(frames: Iterator[bytes]) -> Iterator[str]:
    """Split a byte-chunk stream into text lines for the batch route.

    Framing-agnostic: chunk boundaries (TCP segments, HTTP chunks) carry
    no meaning, so a line — or a multi-byte UTF-8 sequence — may span any
    number of chunks; decoding happens per completed line.  A line longer
    than :data:`MAX_LINE_BYTES` is truncated there (its overflow, up to
    the newline, is read and discarded) so it still yields exactly one
    string — which fails JSON parsing into one bad-line record — and line
    numbering stays aligned with the client's input.
    """
    splitter = LineSplitter()
    for chunk in frames:
        # The limit is read per chunk so tests that monkeypatch the
        # module global see it take effect mid-stream.
        yield from splitter.feed(chunk, MAX_LINE_BYTES)
    yield from splitter.finish()


__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "MAX_LINE_BYTES",
    "MAX_REQUEST_BYTES",
    "VerificationServer",
    "error_record",
]
