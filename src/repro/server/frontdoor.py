"""The async front door: one event loop, thousands of connections.

The threaded server (:mod:`repro.server.http`) spends one OS thread per
connection — fine for tens of clients, a hard ceiling for the ROADMAP's
"millions of users re-verifying the same optimizer rules".  This module
replaces that front end with a single-threaded :mod:`selectors` event
loop that

* **accepts and parses without blocking** — header reads, body framing
  (Content-Length and chunked, via the shared
  :mod:`repro.server.framing` state machines), and JSON validation all
  happen on the loop; a stalled client costs one socket, not a thread;
* **keeps proving off the accept path** — every parsed request is
  handed to the :class:`~repro.server.pool.SessionPool` dispatcher
  (:meth:`~repro.server.pool.SessionPool.submit_json`) and its future's
  done-callback wakes the loop to write the answer, so the loop never
  waits on a member;
* **routes by canonical digest** — the pool consistent-hashes each
  request's exact-text digest (:func:`repro.server.pool.request_shard_digest`)
  onto the member ring, so repeated verifications of the same pair land
  on the member whose compile LRU and verdict caches are already hot
  for that digest range;
* **admits in arrival order** — a request that cannot enter the
  :class:`~repro.server.pool.AdmissionGate` immediately parks in a FIFO
  queue on the loop (no thread blocked) and is admitted strictly in
  order when slots free; newcomers cannot barge.  Per-client fairness
  caps and token-bucket rate limits answer 429 with ``Retry-After``;
  queue overflow answers 503;
* **defends the loop** — connections idle mid-request beyond
  ``idle_timeout`` are dropped (the slow-loris defense), as are
  write-stalled readers that stop draining their responses (their
  admission slots come back); pipelined bytes buffered during an
  in-flight request are capped at :data:`MAX_HEAD_BYTES` (reads pause,
  TCP backpressure takes over); and accepts beyond ``max_connections``
  are answered with a terse 503.

Routes, wire schema, and error records are identical to the threaded
server — the differential suite holds the two front ends to the same
verdict-for-verdict contract over the full corpus.
"""

from __future__ import annotations

import json
import selectors
import socket
import threading
import time
from collections import deque
from concurrent.futures import Future
from http import HTTPStatus
from typing import Deque, Dict, List, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro import __version__
from repro.server import http as _http
from repro.server.framing import (
    BadChunkedBody,
    ChunkedDecoder,
    LengthDecoder,
    LineSplitter,
    TruncatedBody,
    parse_request_head,
)
from repro.server.pool import (
    AdmissionGate,
    SessionPool,
    error_record,
)
from repro.server.stats import ServerStats, jittered_retry_after, service_health
from repro.session import DEFAULT_WINDOW, PipelineConfig, Session, VerifyRequest

#: Upper bound on a request head (request line + headers).
MAX_HEAD_BYTES = 64 * 1024
#: Stop appending decided batch records to a connection's output buffer
#: past this size until the client drains it (slow-reader backpressure).
_OUTBUF_SOFT_LIMIT = 1024 * 1024

_PROVING_ROUTES = ("/verify", "/verify/batch", "/corpus", "/cluster")

# Connection states.
_READ_HEAD = "read-head"
_READ_BODY = "read-body"
_PARKED = "parked"
_DISPATCHED = "dispatched"
_CLOSING = "closing"


class _Connection:
    """One client socket's framing state and in-flight request."""

    __slots__ = (
        "sock",
        "fd",
        "addr",
        "inbuf",
        "outbuf",
        "state",
        "last_activity",
        "method",
        "target",
        "version",
        "headers",
        "decoder",
        "body",
        "client_id",
        "keep_alive",
        "serial",
        "future",
        "batch",
        "cluster",
        "admitted_client",
        "close_after_write",
        "parsing",
        "reg_events",
        "last_drain",
    )

    def __init__(self, sock: socket.socket, addr) -> None:
        self.sock = sock
        self.fd = sock.fileno()
        self.addr = addr
        self.inbuf = b""
        self.outbuf = bytearray()
        self.state = _READ_HEAD
        self.last_activity = time.monotonic()
        #: Last successful drain of ``outbuf`` into the socket — the
        #: write-stall clock.  Unlike ``last_activity`` it never advances
        #: on *input*, so a client trickling bytes while refusing to read
        #: its responses still gets swept.
        self.last_drain = self.last_activity
        self.serial = 0
        self.close_after_write = False
        self.parsing = False
        self.reg_events = 0
        self._reset_request()

    def _reset_request(self) -> None:
        self.method = ""
        self.target = ""
        self.version = ""
        self.headers: Dict[str, str] = {}
        self.decoder = None
        self.body = bytearray()
        self.client_id = ""
        self.keep_alive = True
        self.future: Optional[Future] = None
        self.batch: Optional[_BatchState] = None
        self.cluster: Optional[_ClusterState] = None
        self.admitted_client: Optional[str] = None


class _BatchState:
    """An in-flight ``/verify/batch``: ordered fan-out over the pool."""

    __slots__ = ("lines", "next_line", "pending", "window", "spec", "headers_sent")

    def __init__(self, lines: List[str], window: int, spec: Optional[str]) -> None:
        self.lines = lines
        self.next_line = 0
        #: (input line number, future) in strict input order.
        self.pending: Deque[Tuple[int, Future]] = deque()
        self.window = max(1, window)
        self.spec = spec
        self.headers_sent = False


class _ClusterState:
    """An in-flight ``/cluster`` stream: records produced off-loop.

    The clustering engine serializes placements behind its own lock, so
    the stream runs on a dedicated thread (like ``/corpus``) and pushes
    each placement record through this deque; the loop drains them into
    the connection's output buffer under the soft limit.  ``lock``
    guards the deque and the ``done`` flag — the only state shared
    between the producer thread and the loop.
    """

    __slots__ = ("lock", "records", "done", "headers_sent")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.records: Deque[Mapping[str, object]] = deque()
        self.done = False
        self.headers_sent = False


class FrontDoorServer:
    """A digest-sharded session pool behind a selectors event loop.

    Constructor knobs mirror :class:`~repro.server.http.VerificationServer`
    (same pool, store, and admission parameters) plus the loop's own:
    ``max_connections`` bounds concurrently open sockets and
    ``idle_timeout`` drops clients stalled mid-request.  ``port=0``
    binds an ephemeral port; :attr:`url` reports the bound address.
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        *,
        pipeline: Optional[PipelineConfig] = None,
        host: str = _http.DEFAULT_HOST,
        port: int = 0,
        window: int = DEFAULT_WINDOW,
        quiet: bool = True,
        pool: Optional[SessionPool] = None,
        pool_size: Optional[int] = 1,
        pool_mode: str = "auto",
        pool_max: Optional[int] = None,
        member_timeout: Optional[float] = None,
        shared_store=None,
        store_path: Optional[str] = None,
        store_backend: str = "auto",
        shard_dispatch: bool = True,
        max_inflight: Optional[int] = None,
        max_queued: Optional[int] = None,
        admission_timeout: float = 0.5,
        retry_after: int = 1,
        per_client_inflight: Optional[int] = None,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[float] = None,
        max_connections: int = 1000,
        idle_timeout: float = 30.0,
        drain_timeout: float = 10.0,
    ) -> None:
        if pool is not None and (session is not None or pipeline is not None):
            raise ValueError(
                "pass either a ready-made pool or session/pipeline, not both"
            )
        if pool is not None:
            self.pool = pool
            self._owns_pool = False
        else:
            self.pool = SessionPool(
                pool_size,
                mode=pool_mode,
                session=session,
                pipeline=pipeline,
                shared_store=shared_store,
                store_path=store_path,
                store_backend=store_backend,
                member_timeout=member_timeout,
                pool_max=pool_max,
                shard_dispatch=shard_dispatch,
            )
            self._owns_pool = True
        self.window = max(1, int(window))
        self.quiet = quiet
        self.stats = ServerStats()
        if max_inflight is None:
            max_inflight = max(4, 2 * self.pool.pool_max)
        self.gate = AdmissionGate(
            max_inflight,
            max_queued,
            wait_timeout=admission_timeout,
            per_client_inflight=per_client_inflight,
            rate_limit=rate_limit,
            rate_burst=rate_burst,
        )
        self.retry_after = max(1, int(retry_after))
        self.max_connections = max(1, int(max_connections))
        self.idle_timeout = max(0.1, float(idle_timeout))
        self.drain_timeout = max(0.0, float(drain_timeout))
        self._draining = False
        self._drain_deadline: Optional[float] = None
        self._cluster_engine = None
        self._cluster_lock = threading.Lock()

        self._sel = selectors.DefaultSelector()
        self._lsock = socket.create_server(
            (host, port), backlog=min(self.max_connections, 512), reuse_port=False
        )
        # Cached: the drain path closes the listener early, and ``url``
        # must keep answering afterwards.
        self._addr = self._lsock.getsockname()
        self._lsock.setblocking(False)
        self._sel.register(self._lsock, selectors.EVENT_READ, "accept")
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._sel.register(self._wake_r, selectors.EVENT_READ, "wake")
        self.gate.add_release_listener(self._wake)

        self._conns: Dict[int, _Connection] = {}
        self._parked: Deque[_Connection] = deque()
        #: Connections with dispatched work to poll on each wake.
        self._active: Dict[int, _Connection] = {}
        self._running = False
        self._thread: Optional[threading.Thread] = None
        self._last_sweep = time.monotonic()

        # Front-door-specific counters (all touched only on the loop).
        self.accepted = 0
        self.refused_connections = 0
        self.idle_closed = 0
        self.peak_connections = 0
        self.parked_peak = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self._addr[0]

    @property
    def port(self) -> int:
        return self._addr[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Run the loop on the calling thread until :meth:`close`."""
        self._running = True
        try:
            self._run_loop()
        finally:
            self._teardown()

    def start(self) -> "FrontDoorServer":
        """Run the loop on a daemon thread; pair with :meth:`close`."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._running = True
        self._thread = threading.Thread(
            target=self._run_loop,
            name=f"udp-prove-frontdoor:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._running = False
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._teardown()

    def request_shutdown(self) -> None:
        """Begin a graceful drain; idempotent and signal-handler-safe.

        Flips the drain flag and wakes the loop; the loop itself closes
        the listener, finishes (or time-boxes, ``drain_timeout``)
        in-flight requests, then unwinds through :meth:`_teardown` —
        flushing the store and reaping the pool.  No blocking happens
        here, so a SIGTERM handler may call it directly.
        """
        self._draining = True
        self._wake()

    def _begin_drain(self) -> None:
        """First drain pass (on the loop): stop accepting, shed idle conns."""
        if self._drain_deadline is not None:
            return
        self._drain_deadline = time.monotonic() + self.drain_timeout
        try:
            self._sel.unregister(self._lsock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            self._lsock.close()  # new connections get refused, not queued
        except OSError:
            pass
        # Keep-alive connections idle between requests hold no work —
        # shedding them now is what lets "no in-flight work" converge.
        for conn in list(self._conns.values()):
            if conn.state == _READ_HEAD and not conn.inbuf and not conn.outbuf:
                self._drop(conn)

    def _teardown(self) -> None:
        if self._sel is None:
            return
        for conn in list(self._conns.values()):
            self._drop(conn)
        try:
            self._sel.unregister(self._lsock)
        except (KeyError, ValueError):
            pass
        for sock in (self._lsock, self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass
        try:
            self._sel.close()
        except OSError:
            pass
        self._sel = None
        store = self.pool.store
        if store is not None:
            flush = getattr(store, "flush", None)
            if flush is not None:
                try:
                    flush()
                except Exception:  # noqa: BLE001 - teardown must finish
                    pass
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "FrontDoorServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def health(self) -> Dict[str, object]:
        status, problems = service_health(self.pool, draining=self._draining)
        payload: Dict[str, object] = {
            "status": status,
            "uptime_seconds": round(self.stats.uptime_seconds, 3),
            "version": __version__,
            "pool_size": self.pool.size,
            "pool_mode": self.pool.mode,
            "frontdoor": True,
        }
        if problems:
            payload["problems"] = problems
        return payload

    def cluster_engine(self):
        """The server's clustering engine, created on first use.

        One engine per server lifetime (group numbering is monotonic
        across requests); decisions fan out across the pool sharded by
        representative digest, and group state persists in the pool's
        store when it is group-capable.  Thread-safe: the engine is
        built under a lock because ``/cluster`` streams run on
        dedicated threads off the loop.
        """
        with self._cluster_lock:
            if self._cluster_engine is None:
                from repro.service.clustering import ClusterEngine

                self._cluster_engine = ClusterEngine(
                    pool=self.pool, store=self.pool.store
                )
            return self._cluster_engine

    def cluster_snapshot(self) -> Optional[Dict[str, object]]:
        """The ``cluster`` block of ``/stats``; ``None`` before first use."""
        with self._cluster_lock:
            engine = self._cluster_engine
        return engine.snapshot() if engine is not None else None

    def _frontdoor_stats(self) -> Dict[str, object]:
        return {
            "connections": len(self._conns),
            "peak_connections": self.peak_connections,
            "accepted": self.accepted,
            "refused_connections": self.refused_connections,
            "idle_closed": self.idle_closed,
            "parked": len(self._parked),
            "parked_peak": self.parked_peak,
            "max_connections": self.max_connections,
            "idle_timeout": self.idle_timeout,
            "draining": self._draining,
        }

    # -- the loop ----------------------------------------------------------

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # wake pipe full: a wake is already pending

    def _run_loop(self) -> None:
        while self._running:
            if self._draining:
                self._begin_drain()
                if not self._conns:
                    break  # every in-flight request answered and closed
                if time.monotonic() >= self._drain_deadline:
                    break  # time-boxed: teardown drops the stragglers
            try:
                events = self._sel.select(
                    timeout=0.1 if self._draining else 0.5
                )
            except OSError:
                break
            for key, mask in events:
                if key.data == "accept":
                    self._accept()
                elif key.data == "wake":
                    try:
                        while self._wake_r.recv(4096):
                            pass
                    except (BlockingIOError, OSError):
                        pass
                else:
                    conn = key.data
                    try:
                        if mask & selectors.EVENT_READ:
                            self._on_readable(conn)
                        if (
                            self._conns.get(conn.fd) is conn
                            and mask & selectors.EVENT_WRITE
                        ):
                            self._on_writable(conn)
                    except Exception:  # noqa: BLE001 - loop must survive
                        self.stats.record_internal_error()
                        self._drop(conn)
            try:
                self._service_active()
                self._drain_parked()
                now = time.monotonic()
                if now - self._last_sweep >= 1.0:
                    self._sweep_idle(now)
                    self._last_sweep = now
            except Exception:  # noqa: BLE001 - loop must survive
                self.stats.record_internal_error()

    # -- accepting ---------------------------------------------------------

    def _accept(self) -> None:
        while True:
            try:
                sock, addr = self._lsock.accept()
            except (BlockingIOError, OSError):
                return
            if len(self._conns) >= self.max_connections:
                # Overloaded: answer a terse 503 best-effort and close —
                # never let one accept burst wedge the loop.
                self.refused_connections += 1
                try:
                    sock.setblocking(False)
                    sock.send(
                        b"HTTP/1.1 503 Service Unavailable\r\n"
                        b"Content-Length: 0\r\nConnection: close\r\n"
                        b"Retry-After: 1\r\n\r\n"
                    )
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = _Connection(sock, addr)
            self._conns[conn.fd] = conn
            self.accepted += 1
            self.peak_connections = max(self.peak_connections, len(self._conns))
            self._sel.register(sock, selectors.EVENT_READ, conn)
            conn.reg_events = selectors.EVENT_READ

    def _set_events(self, conn: _Connection) -> None:
        if self._conns.get(conn.fd) is not conn:
            return
        events = 0
        if conn.state in (_READ_HEAD, _READ_BODY):
            events |= selectors.EVENT_READ
        elif len(conn.inbuf) <= MAX_HEAD_BYTES:
            # Parked or dispatched: stay registered for reads so a client
            # disconnect is noticed promptly — until the client has a full
            # head's worth of pipelined bytes buffered, at which point
            # reads pause (TCP backpressure takes over) until the
            # in-flight request completes and parsing drains the buffer.
            events |= selectors.EVENT_READ
        if conn.outbuf:
            events |= selectors.EVENT_WRITE
        if events == conn.reg_events:
            return
        try:
            if events == 0:
                self._sel.unregister(conn.sock)
            elif conn.reg_events == 0:
                self._sel.register(conn.sock, events, conn)
            else:
                self._sel.modify(conn.sock, events, conn)
            conn.reg_events = events
        except (KeyError, ValueError, OSError):
            pass

    def _drop(self, conn: _Connection) -> None:
        # Identity check, not membership: the OS reuses fd numbers, so a
        # stale double-drop must never evict a newer connection.
        if self._conns.get(conn.fd) is not conn:
            return
        del self._conns[conn.fd]
        conn.serial += 1  # orphan any in-flight future callbacks
        if conn.admitted_client is not None:
            self.gate.leave(conn.admitted_client)
            conn.admitted_client = None
        self._active.pop(conn.fd, None)
        try:
            self._parked.remove(conn)
        except ValueError:
            pass
        try:
            self._sel.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    def _sweep_idle(self, now: float) -> None:
        """Drop connections stalled mid-request (the slow-loris defense).

        Reading states are swept on plain inactivity: a keep-alive
        connection idle between requests with nothing buffered is exactly
        a slot a slow-loris hoards.  Parked and dispatched connections
        are usually waiting on *us* — except when they have output the
        client has stopped draining.  ``last_activity`` advances on every
        successful send, so a dispatched/closing connection with a
        non-empty ``outbuf`` and no progress for a full ``idle_timeout``
        is a write-stalled reader; dropping it releases its admission
        slot (a ``/verify/batch`` client that never reads would otherwise
        hold a gate slot forever).
        """
        for conn in list(self._conns.values()):
            if conn.state in (_READ_HEAD, _READ_BODY):
                stalled = now - conn.last_activity >= self.idle_timeout
            elif conn.outbuf:
                stalled = now - conn.last_drain >= self.idle_timeout
            else:
                continue  # waiting on the pool, nothing owed to the client
            if stalled:
                self.idle_closed += 1
                self._drop(conn)

    # -- reading and parsing ----------------------------------------------

    def _on_readable(self, conn: _Connection) -> None:
        try:
            data = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop(conn)
            return
        if not data:
            # EOF.  A half-closed client may still be reading, so a
            # truncated upload gets its 400 naming the truncation (the
            # same contract as the threaded server); between requests
            # this is a normal close.
            if conn.state == _READ_BODY and conn.decoder is not None:
                try:
                    conn.decoder.finish()
                except (TruncatedBody, BadChunkedBody) as err:
                    self._answer_error(
                        conn,
                        HTTPStatus.BAD_REQUEST,
                        "bad-request",
                        str(err),
                        close=True,
                    )
                    return
            elif conn.state == _READ_HEAD and conn.inbuf:
                self._answer_error(
                    conn,
                    HTTPStatus.BAD_REQUEST,
                    "bad-request",
                    "connection ended mid request head",
                    close=True,
                )
                return
            self._drop(conn)
            return
        conn.last_activity = time.monotonic()
        if conn.state not in (_READ_HEAD, _READ_BODY):
            # Bytes while parked/dispatched (pipelining): buffer them —
            # but never without bound.  Past MAX_HEAD_BYTES _set_events
            # drops EVENT_READ, so a client streaming during a slow
            # request costs one head's worth of memory, not the heap.
            conn.inbuf += data
            self._set_events(conn)
            return
        conn.inbuf += data
        self._advance_parse(conn)

    def _advance_parse(self, conn: _Connection) -> None:
        # Reentrancy guard: answering a request inline resets the
        # connection for the next one (_answer_json -> _next_request ->
        # _advance_parse).  The while-loop below picks the next buffered
        # request up iteratively, so the nested call must be a no-op —
        # otherwise a single segment of ~200 pipelined requests recurses
        # five frames per request straight into RecursionError.
        if conn.parsing:
            return
        conn.parsing = True
        try:
            self._advance_parse_loop(conn)
        finally:
            conn.parsing = False

    def _advance_parse_loop(self, conn: _Connection) -> None:
        while self._conns.get(conn.fd) is conn:
            if conn.state == _READ_HEAD:
                end, skip = _find_head_end(conn.inbuf)
                if end < 0:
                    if len(conn.inbuf) > MAX_HEAD_BYTES:
                        self._answer_error(
                            conn,
                            HTTPStatus.REQUEST_HEADER_FIELDS_TOO_LARGE,
                            "bad-request",
                            "request head too large",
                            close=True,
                        )
                    return
                head = conn.inbuf[:end]
                conn.inbuf = conn.inbuf[end + skip :]
                if not self._parse_head(conn, head):
                    return
                if conn.state == _READ_HEAD:
                    continue  # answered inline, keep-alive: next request
                if conn.state != _READ_BODY:
                    return  # answered-and-closing or parked/dispatched
            if conn.state == _READ_BODY:
                if not self._parse_body(conn):
                    return  # need more bytes
                if conn.state == _READ_HEAD:
                    continue  # answered inline, keep-alive: next request
            return

    def _parse_head(self, conn: _Connection, head: bytes) -> bool:
        try:
            method, target, version, headers = parse_request_head(head)
        except ValueError as err:
            self._answer_error(
                conn, HTTPStatus.BAD_REQUEST, "bad-request", str(err), close=True
            )
            return False
        conn.method = method
        conn.target = target
        conn.version = version
        conn.headers = headers
        conn.client_id = (headers.get("x-client-id") or "").strip()[:128] or str(
            conn.addr[0] if isinstance(conn.addr, tuple) else conn.addr
        )
        connection_header = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            conn.keep_alive = "keep-alive" in connection_header
        else:
            conn.keep_alive = "close" not in connection_header
        path = urlsplit(target).path

        # Any answer sent while announced body bytes sit unread must
        # close the connection: those bytes would otherwise be parsed as
        # the next request head, desyncing the framing into a spurious
        # 400 the client never asked for.
        encoding = (headers.get("transfer-encoding") or "").strip().lower()
        raw_length = (headers.get("content-length") or "").strip()
        body_announced = bool(encoding) or raw_length not in ("", "0")

        if method == "GET":
            self._handle_get(conn, path, close=body_announced)
            return True
        if method != "POST":
            self._answer_error(
                conn,
                HTTPStatus.METHOD_NOT_ALLOWED,
                "method-not-allowed",
                f"{method} is not supported",
                close=body_announced,
            )
            return True
        if path not in _PROVING_ROUTES:
            self._answer_error(
                conn,
                HTTPStatus.NOT_FOUND,
                "not-found",
                f"no route for {path}",
                close=body_announced,
            )
            return True

        if encoding:
            codings = [c.strip() for c in encoding.split(",") if c.strip()]
            if codings != ["chunked"]:
                self._answer_error(
                    conn,
                    HTTPStatus.BAD_REQUEST,
                    "bad-request",
                    f"unsupported Transfer-Encoding {encoding!r} "
                    "(only 'chunked' is implemented)",
                    close=True,
                )
                return True
            conn.decoder = ChunkedDecoder()
        else:
            raw = headers.get("content-length")
            if raw is None and path == "/corpus":
                raw = "0"  # corpus replay needs no body
            if raw is None:
                self._answer_error(
                    conn,
                    HTTPStatus.BAD_REQUEST,
                    "bad-request",
                    "missing Content-Length (send one, or use chunked "
                    "Transfer-Encoding to stream an unbounded body)",
                )
                return True
            try:
                length = int(raw)
                if length < 0:
                    raise ValueError(raw)
            except ValueError:
                self._answer_error(
                    conn,
                    HTTPStatus.BAD_REQUEST,
                    "bad-request",
                    f"invalid Content-Length {raw!r}",
                    close=True,
                )
                return True
            if length > _http.MAX_REQUEST_BYTES:
                self._answer_error(
                    conn,
                    HTTPStatus.REQUEST_ENTITY_TOO_LARGE,
                    "payload-too-large",
                    f"body of {length} bytes exceeds the "
                    f"{_http.MAX_REQUEST_BYTES}-byte limit",
                    close=True,
                )
                return True
            conn.decoder = LengthDecoder(length)
        if headers.get("expect", "").lower() == "100-continue":
            conn.outbuf += b"HTTP/1.1 100 Continue\r\n\r\n"
            self._set_events(conn)
        conn.body = bytearray()
        conn.state = _READ_BODY
        return True

    def _parse_body(self, conn: _Connection) -> bool:
        """Feed buffered bytes to the body decoder; True to continue."""
        decoder = conn.decoder
        data = conn.inbuf
        conn.inbuf = b""
        try:
            conn.body += decoder.feed(data)
        except BadChunkedBody as err:
            self._answer_error(
                conn,
                HTTPStatus.BAD_REQUEST,
                "bad-request",
                f"malformed chunked body: {err}",
                close=True,
            )
            return True
        if len(conn.body) > _http.MAX_REQUEST_BYTES:
            self._answer_error(
                conn,
                HTTPStatus.REQUEST_ENTITY_TOO_LARGE,
                "payload-too-large",
                f"body exceeds the {_http.MAX_REQUEST_BYTES}-byte limit",
                close=True,
            )
            return True
        if not decoder.done:
            return False
        conn.inbuf = decoder.trailing + conn.inbuf
        self._begin_request(conn)
        return True

    # -- admission and dispatch -------------------------------------------

    def _begin_request(self, conn: _Connection) -> None:
        """Body complete: admit (or park, in arrival order) then dispatch."""
        if self._parked:
            # Strict FIFO: while anyone is parked, newcomers park behind
            # them — the barging bug has no analog here by construction.
            self._park(conn)
            return
        decision = self.gate.poll_enter(conn.client_id)
        if decision:
            conn.admitted_client = conn.client_id
            self._dispatch(conn)
        elif decision.code == "rate-limited":
            self._answer_rate_limited(conn, decision)
        else:
            self._park(conn)

    def _park(self, conn: _Connection) -> None:
        if len(self._parked) >= self.gate.max_queued:
            self.gate.record_rejection(conn.client_id)
            self._answer_saturated(conn)
            return
        conn.state = _PARKED
        self._parked.append(conn)
        self.parked_peak = max(self.parked_peak, len(self._parked))
        self._set_events(conn)

    def _drain_parked(self) -> None:
        while self._parked:
            conn = self._parked[0]
            if self._conns.get(conn.fd) is not conn:
                self._parked.popleft()
                continue
            decision = self.gate.poll_enter(conn.client_id)
            if decision:
                self._parked.popleft()
                conn.admitted_client = conn.client_id
                self._dispatch(conn)
                continue
            if decision.code == "rate-limited":
                self._parked.popleft()
                self._answer_rate_limited(conn, decision)
                continue
            break  # head must wait; everyone behind keeps FIFO order

    def _dispatch(self, conn: _Connection) -> None:
        path = urlsplit(conn.target).path
        query = parse_qs(urlsplit(conn.target).query)
        body = bytes(conn.body)
        conn.body = bytearray()
        if path == "/verify":
            self._dispatch_verify(conn, body)
        elif path == "/verify/batch":
            self._dispatch_batch(conn, query, body)
        elif path == "/cluster":
            self._dispatch_cluster(conn, body)
        else:
            self._dispatch_corpus(conn, query)

    def _dispatch_verify(self, conn: _Connection, body: bytes) -> None:
        self.stats.record_endpoint("verify")
        try:
            obj = json.loads(body)
            if not isinstance(obj, dict):
                raise ValueError("request body must be a JSON object")
        except ValueError as err:
            self._answer_bad_request(conn, f"invalid JSON body: {err}")
            return
        try:
            spec = self.pool.validate_json(obj)
        except (KeyError, TypeError, ValueError) as err:
            self._answer_bad_request(conn, str(err))
            return
        conn.state = _DISPATCHED
        conn.future = self.pool.submit_json(obj, spec)
        self._watch(conn, conn.future)

    def _dispatch_batch(
        self, conn: _Connection, query: Dict[str, list], body: bytes
    ) -> None:
        self.stats.record_endpoint("verify_batch")
        spec = (query.get("pipeline") or [None])[0]
        window = (query.get("window") or [None])[0]
        try:
            window = int(window) if window is not None else self.window
            self.pool.config_for(spec)
        except ValueError as err:
            self._answer_bad_request(conn, str(err))
            return
        splitter = LineSplitter()
        lines = splitter.feed(body, _http.MAX_LINE_BYTES)
        lines += splitter.finish()
        conn.state = _DISPATCHED
        conn.batch = _BatchState(lines, max(1, window), spec)
        conn.keep_alive = False  # batch responses stream then close
        self._active[conn.fd] = conn
        self._pump_batch(conn)

    def _dispatch_cluster(self, conn: _Connection, body: bytes) -> None:
        self.stats.record_endpoint("cluster")
        splitter = LineSplitter()
        lines = splitter.feed(body, _http.MAX_LINE_BYTES)
        lines += splitter.finish()
        engine = self.cluster_engine()
        state = _ClusterState()
        conn.state = _DISPATCHED
        conn.cluster = state
        conn.keep_alive = False  # cluster responses stream then close
        self._active[conn.fd] = conn
        serial = conn.serial

        def run() -> None:
            # A dedicated thread, like /corpus: the engine serializes
            # placements behind its own lock and may block on pool
            # members, neither of which may happen on the loop.
            try:
                for record in engine.place_stream(lines):
                    with state.lock:
                        state.records.append(record)
                    self._wake()
                    if conn.serial != serial:
                        return  # client is gone: stop placing its tail
            except Exception as err:  # noqa: BLE001 - in-stream record
                with state.lock:
                    state.records.append(
                        error_record(
                            "internal-error", f"{type(err).__name__}: {err}"
                        )
                    )
            finally:
                with state.lock:
                    state.done = True
                self._wake()

        threading.Thread(
            target=run, name="udp-frontdoor-cluster", daemon=True
        ).start()
        self._pump_cluster(conn)

    def _dispatch_corpus(self, conn: _Connection, query: Dict[str, list]) -> None:
        self.stats.record_endpoint("corpus")
        dataset = (query.get("dataset") or [None])[0]
        spec = (query.get("pipeline") or [None])[0]
        future: Future = Future()

        def run() -> None:
            # A dedicated thread, not the dispatcher executor: run_corpus
            # itself fans out on that executor and must not occupy one of
            # its own slots (pool_max == 1 would deadlock).
            try:
                future.set_result(self.pool.run_corpus(dataset, spec))
            except BaseException as err:  # noqa: BLE001
                future.set_exception(err)

        conn.state = _DISPATCHED
        conn.future = future
        threading.Thread(target=run, name="udp-frontdoor-corpus", daemon=True).start()
        self._watch(conn, future)

    def _watch(self, conn: _Connection, future: Future) -> None:
        """Wake the loop when ``future`` resolves; serviced by serial."""
        self._active[conn.fd] = conn
        serial = conn.serial

        def done(_fut: Future) -> None:
            if conn.serial == serial:
                self._wake()

        future.add_done_callback(done)

    # -- completion service (runs on the loop) -----------------------------

    def _service_active(self) -> None:
        for conn in list(self._active.values()):
            if self._conns.get(conn.fd) is not conn:
                self._active.pop(conn.fd, None)
                continue
            if conn.batch is not None:
                self._pump_batch(conn)
            elif conn.cluster is not None:
                self._pump_cluster(conn)
            elif conn.future is not None and conn.future.done():
                self._active.pop(conn.fd, None)
                self._finish_single(conn)

    def _finish_single(self, conn: _Connection) -> None:
        future = conn.future
        conn.future = None
        try:
            result = future.result()
        except Exception as err:  # noqa: BLE001 - no traceback bodies
            self.stats.record_internal_error()
            self._release(conn)
            self._answer_json(
                conn,
                HTTPStatus.INTERNAL_SERVER_ERROR,
                error_record("internal-error", f"{type(err).__name__}: {err}"),
            )
            return
        path = urlsplit(conn.target).path
        if path == "/corpus":
            summary, records = result
            for record in records:
                self.stats.record_result_record(record)
            self._release(conn)
            self._answer_json(conn, HTTPStatus.OK, summary)
        else:
            self.stats.record_result_record(result)
            self._release(conn)
            self._answer_json(conn, HTTPStatus.OK, result)

    def _pump_batch(self, conn: _Connection) -> None:
        batch = conn.batch
        if batch is None:
            return
        if not batch.headers_sent:
            batch.headers_sent = True
            conn.outbuf += (
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n"
                b"Connection: close\r\n\r\n"
            )
        # Alternate submit/emit until neither can make progress: submit
        # up to the window in input order, emit decided records from the
        # head (order preserved), refill as the head drains.
        progressed = True
        while progressed:
            progressed = False
            while (
                len(batch.pending) < batch.window
                and batch.next_line < len(batch.lines)
            ):
                lineno = batch.next_line + 1
                text = batch.lines[batch.next_line].strip()
                batch.next_line += 1
                if not text:
                    continue
                future: Future
                try:
                    obj = json.loads(text)
                    if not isinstance(obj, dict):
                        raise ValueError("each line must be a JSON object")
                    for key in ("left", "right"):
                        if key not in obj:
                            raise ValueError(f"missing required field {key!r}")
                    VerifyRequest.from_json(obj)
                    future = self.pool.submit_json(obj, batch.spec)
                    self._watch(conn, future)
                except (KeyError, TypeError, ValueError) as err:
                    future = Future()
                    future.set_result(
                        error_record("bad-request", str(err), line=lineno)
                    )
                batch.pending.append((lineno, future))
            while (
                batch.pending
                and batch.pending[0][1].done()
                and len(conn.outbuf) < _OUTBUF_SOFT_LIMIT
            ):
                _, future = batch.pending.popleft()
                try:
                    record = future.result()
                except Exception as err:  # noqa: BLE001
                    record = error_record(
                        "internal-error", f"{type(err).__name__}: {err}"
                    )
                if "error" in record:
                    if record["error"].get("code") == "internal-error":
                        self.stats.record_internal_error()
                    else:
                        self.stats.record_bad_request()
                else:
                    self.stats.record_result_record(record)
                conn.outbuf += (
                    json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"
                )
                progressed = True
        if batch.next_line >= len(batch.lines) and all(
            future.done() for _, future in batch.pending
        ):
            # Every line is decided: proving is over, so free the
            # admission slot now.  Holding it until the output fully
            # drains would let a slow (or stalled) reader pin a gate
            # slot for as long as it cares to not read.
            self._release(conn)
        if not batch.pending and batch.next_line >= len(batch.lines):
            conn.batch = None
            self._active.pop(conn.fd, None)
            conn.close_after_write = True
        if conn.outbuf:
            self._set_events(conn)
            self._on_writable(conn)

    def _pump_cluster(self, conn: _Connection) -> None:
        """Drain produced placement records into the output buffer.

        Mirrors :meth:`_pump_batch`: headers go out first, records are
        appended under the soft limit (a slow reader pauses draining,
        TCP backpressure does the rest), and the admission slot is
        released the moment the stream is fully placed and drained to
        the buffer — the producer thread is done by then.
        """
        state = conn.cluster
        if state is None:
            return
        if not state.headers_sent:
            state.headers_sent = True
            conn.outbuf += (
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n"
                b"Connection: close\r\n\r\n"
            )
        while len(conn.outbuf) < _OUTBUF_SOFT_LIMIT:
            with state.lock:
                record = state.records.popleft() if state.records else None
            if record is None:
                break
            # A placement whose query failed to compile carries a
            # plain-string ``error`` reason — still a successful
            # placement; only dict-shaped error records blame a party.
            error = record.get("error")
            if isinstance(error, Mapping):
                if error.get("code") == "internal-error":
                    self.stats.record_internal_error()
                else:
                    self.stats.record_bad_request()
            else:
                self.stats.record_result_record(record)
            conn.outbuf += (
                json.dumps(record, sort_keys=True).encode("utf-8") + b"\n"
            )
        with state.lock:
            finished = state.done and not state.records
        if finished:
            self._release(conn)
            conn.cluster = None
            self._active.pop(conn.fd, None)
            conn.close_after_write = True
        if conn.outbuf:
            self._set_events(conn)
            self._on_writable(conn)
        elif finished:
            # The buffer already drained before the stream ended, so no
            # write event is coming: close (EOF is the end-of-stream
            # marker under ``Connection: close``) here or never.
            self._drop(conn)

    def _release(self, conn: _Connection) -> None:
        if conn.admitted_client is not None:
            self.gate.leave(conn.admitted_client)
            conn.admitted_client = None

    # -- GET routes --------------------------------------------------------

    def _handle_get(self, conn: _Connection, path: str, close: bool = False) -> None:
        if path == "/healthz":
            self.stats.record_endpoint("healthz")
            self._answer_json(conn, HTTPStatus.OK, self.health(), close=close)
        elif path == "/stats":
            self.stats.record_endpoint("stats")
            snapshot = self.stats.snapshot(
                pool=self.pool,
                gate=self.gate,
                cluster=self.cluster_snapshot(),
            )
            snapshot["frontdoor"] = self._frontdoor_stats()
            self._answer_json(conn, HTTPStatus.OK, snapshot, close=close)
        elif path in _PROVING_ROUTES:
            self._answer_error(
                conn,
                HTTPStatus.METHOD_NOT_ALLOWED,
                "method-not-allowed",
                f"{path} requires POST",
                close=close,
            )
        else:
            self._answer_error(
                conn,
                HTTPStatus.NOT_FOUND,
                "not-found",
                f"no route for {path}",
                close=close,
            )

    # -- answering ---------------------------------------------------------

    def _answer_json(
        self,
        conn: _Connection,
        status: HTTPStatus,
        payload: Mapping[str, object],
        headers: Tuple[Tuple[str, str], ...] = (),
        close: bool = False,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        # During a drain every answer closes its connection — keep-alive
        # would hold the loop open past the last in-flight request.
        closing = close or not conn.keep_alive or self._draining
        head = [
            f"HTTP/1.1 {int(status)} {status.phrase}",
            f"Server: udp-prove-frontdoor/{__version__}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        for name, value in headers:
            head.append(f"{name}: {value}")
        head.append("Connection: close" if closing else "Connection: keep-alive")
        conn.outbuf += ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        if closing:
            conn.close_after_write = True
            conn.state = _CLOSING
        else:
            self._next_request(conn)
        self._set_events(conn)
        self._on_writable(conn)

    def _next_request(self, conn: _Connection) -> None:
        conn.serial += 1
        conn._reset_request()
        conn.state = _READ_HEAD
        if conn.inbuf:
            self._advance_parse(conn)

    def _answer_error(
        self,
        conn: _Connection,
        status: HTTPStatus,
        code: str,
        reason: str,
        close: bool = False,
    ) -> None:
        if status == HTTPStatus.BAD_REQUEST:
            self.stats.record_bad_request()
        self._answer_json(conn, status, error_record(code, reason), close=close)

    def _answer_bad_request(self, conn: _Connection, reason: str) -> None:
        self._release(conn)
        self.stats.record_bad_request()
        self._answer_json(
            conn,
            HTTPStatus.BAD_REQUEST,
            error_record("bad-request", reason),
        )

    def _answer_saturated(self, conn: _Connection) -> None:
        self.stats.record_saturated()
        gate = self.gate
        retry = round(jittered_retry_after(self.retry_after), 3)
        self._answer_json(
            conn,
            HTTPStatus.SERVICE_UNAVAILABLE,
            error_record(
                "saturated",
                f"server at capacity ({gate.max_inflight} in flight, "
                f"{gate.max_queued} queued); retry after "
                f"{retry}s",
                retry_after_seconds=retry,
            ),
            headers=(("Retry-After", str(max(1, round(retry)))),),
            close=True,
        )

    def _answer_rate_limited(self, conn: _Connection, decision) -> None:
        self.stats.record_rate_limited()
        base = (
            decision.retry_after
            if decision.retry_after is not None
            else self.retry_after
        )
        retry = round(jittered_retry_after(base), 3)
        self._answer_json(
            conn,
            HTTPStatus.TOO_MANY_REQUESTS,
            error_record(
                "rate-limited",
                "this client is over its admission limit; retry after "
                f"{retry}s",
                retry_after_seconds=retry,
            ),
            headers=(("Retry-After", str(max(1, round(retry)))),),
            close=True,
        )

    # -- writing -----------------------------------------------------------

    def _on_writable(self, conn: _Connection) -> None:
        while conn.outbuf:
            try:
                sent = conn.sock.send(bytes(conn.outbuf[:262144]))
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._drop(conn)
                return
            if sent <= 0:
                break
            del conn.outbuf[:sent]
            conn.last_activity = conn.last_drain = time.monotonic()
        if (
            not conn.outbuf
            and conn.close_after_write
            and conn.batch is None
            and conn.cluster is None
        ):
            self._drop(conn)
            return
        self._set_events(conn)


def _find_head_end(buffer: bytes) -> Tuple[int, int]:
    """Locate the head/body boundary; ``(end, separator_len)`` or ``(-1, 0)``."""
    crlf = buffer.find(b"\r\n\r\n")
    lf = buffer.find(b"\n\n")
    if crlf >= 0 and (lf < 0 or crlf < lf):
        return crlf, 4
    if lf >= 0:
        return lf, 2
    return -1, 0


__all__ = ["FrontDoorServer", "MAX_HEAD_BYTES"]
