"""Parallel proving: a pool of N warm sessions behind one dispatcher.

PR 3's server put every request behind a single session lock — correct,
but one core.  The UDP decision procedure is embarrassingly parallel
across query pairs, so this module replaces the lock with a
:class:`SessionPool`: N warm per-catalog :class:`~repro.session.Session`
members, an idle queue that hands each work item to exactly one member,
and a shared cross-process memo store
(:class:`repro.hashcons_store.SharedMemoStore`) so members warm each
other's normalize/canonize caches instead of each owning a cold private
LRU.

Member kinds
------------

``thread``
    Members are in-process sessions.  Dispatch, ordering, and
    backpressure behave identically to process mode, but proving shares
    the GIL — use it for ``size == 1``, for tests, and on platforms
    without ``fork``.

``process``
    Each member is a forked worker process holding the (copy-on-write)
    warm prototype session and a private pipe.  Proving runs on real
    cores; results travel back as the JSON wire records, so verdicts and
    reason codes are bit-identical to the in-process path.  A member
    whose process dies mid-request answers with a structured ``error``
    record and is respawned from the prototype.

``auto`` picks ``process`` when ``size > 1`` and ``fork`` is available,
else ``thread``.

Ordering and dispatch
---------------------

* :meth:`SessionPool.verify_json` — one request, any idle member
  (blocking until one frees; admission control above bounds the wait).
* :meth:`SessionPool.verify_stream` — a JSONL batch fanned out across
  members through a bounded in-flight window, yielded strictly in input
  order; malformed lines become in-stream error records without
  consuming a member.
* :meth:`SessionPool.run_corpus` — the built-in evaluation corpus
  through the pool, summarized (the ``POST /corpus`` health benchmark).

Backpressure
------------

:class:`AdmissionGate` bounds the number of admitted requests: up to
``max_inflight`` executing plus ``max_queued`` briefly waiting; past
that, callers are told to go away (the HTTP layer answers a structured
503 with ``Retry-After``).
"""

from __future__ import annotations

import bisect
import hashlib
import json
import logging
import os
import queue
import threading
import time
from collections import deque
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from dataclasses import replace
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.faults import FaultError, fault_hit
from repro.hashcons_store import active_store, install_shared_store
from repro.session import (
    DEFAULT_WINDOW,
    PipelineConfig,
    Session,
    VerifyRequest,
    VerifyResult,
    parse_pipeline_spec,
)
from repro.udp.trace import ReasonCode, ReasonTally, Verdict

POOL_MODES = ("auto", "thread", "process")

_LOG = logging.getLogger("repro.server.pool")

#: Slack added on top of the cooperative pipeline budget before a
#: process member is declared wedged and killed.  The cooperative
#: budget fires inside the engine in the normal case; the hard deadline
#: only exists for loops that stop reaching the budget checks.
HARD_TIMEOUT_GRACE = 30.0


def error_record(code: str, reason: str, **fields: object) -> Dict[str, object]:
    """The structured error envelope every non-result answer uses."""
    record: Dict[str, object] = {"code": code, "reason": reason}
    record.update(fields)
    return {"error": record}


def default_pool_size() -> int:
    """One member per core — the ``--pool-size`` default."""
    return max(1, os.cpu_count() or 1)


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def resolve_pool_mode(mode: str, size: int) -> str:
    """Collapse ``auto`` to a concrete member kind for this platform.

    An explicit ``process`` request on a platform without the ``fork``
    start method fails loudly here — before any state (shared store,
    members) is built — rather than surfacing as a late
    ``multiprocessing`` error.
    """
    if mode not in POOL_MODES:
        raise ValueError(
            f"unknown pool mode {mode!r}; expected one of {POOL_MODES}"
        )
    if mode == "process" and not _fork_available():
        raise ValueError(
            "pool mode 'process' requires the fork start method; "
            "use 'thread' (or 'auto') on this platform"
        )
    if mode != "auto":
        return mode
    if size <= 1 or not _fork_available():
        return "thread"
    return "process"


# ---------------------------------------------------------------------------
# The work a member does (runs in-process or inside a forked worker)
# ---------------------------------------------------------------------------


def _config_for(
    base: PipelineConfig,
    cache: Dict[str, PipelineConfig],
    spec: Optional[str],
) -> PipelineConfig:
    """The effective pipeline: ``base`` overridden by a ``spec`` string.

    Raises ``ValueError`` on a malformed spec or unknown tactic; parsed
    overrides are cached so request streams pay validation once per spec.
    """
    if spec is None or spec == "":
        return base
    if not isinstance(spec, str):
        raise ValueError(
            "'pipeline' must be a comma-separated string of tactic names"
        )
    config = cache.get(spec)
    if config is None:
        config = replace(base, tactics=tuple(parse_pipeline_spec(spec)))
        if len(cache) < 64:
            cache[spec] = config
    return config


def _decide_json(
    session: Session,
    configs: Dict[str, PipelineConfig],
    obj: Mapping[str, object],
    spec: Optional[str],
) -> Dict[str, object]:
    """Decide one JSON request payload on ``session``; the result record."""
    request = VerifyRequest.from_json(obj)
    config = _config_for(session.config, configs, spec)
    return session.verify(request, config=config).to_json()


def _member_info(session: Session) -> Dict[str, object]:
    """One member's warmth snapshot (session caches, shared store).

    Kept deliberately small: process members pickle this over the pipe
    with every reply to keep the parent's ``/stats`` view fresh without
    a blocking round-trip, so it carries only what the stats rollup
    consumes (the process-wide memo-layer counters stay visible via the
    serving process's own :func:`repro.cache_stats`).
    """
    info: Dict[str, object] = {
        "session": {"requests": session.stats.requests, **session.cache_info()},
    }
    store = active_store()
    if store is not None:
        info["store"] = store.stats()
    return info


def _error_result_record(
    obj: Mapping[str, object], reason: str
) -> Dict[str, object]:
    """A structured ``error``-verdict result for a member-level failure."""
    return VerifyResult(
        request_id=str(obj.get("id", "")),
        verdict=Verdict.ERROR,
        reason_code=ReasonCode.INTERNAL_ERROR,
        reason=reason,
    ).to_json()


def _timeout_result_record(
    obj: Mapping[str, object], reason: str
) -> Dict[str, object]:
    """A structured ``timeout`` result for a hard-killed wedged member."""
    return VerifyResult(
        request_id=str(obj.get("id", "")),
        verdict=Verdict.TIMEOUT,
        reason_code=ReasonCode.BUDGET_EXHAUSTED,
        reason=reason,
    ).to_json()


def _close_inherited_fds(conn) -> None:
    """Drop every descriptor a forked worker inherited except its pipe.

    A member respawned while the server is live forks with client
    sockets and the listening socket open; the child holding those
    duplicates would keep connection-close-terminated batch streams
    from ever reaching EOF on the client.  The shared store's
    descriptor is also closed here — it is told to forget it and
    re-opens lazily for this pid.
    """
    try:
        store = active_store()
        if store is not None:
            store.forget_descriptor()
        keep = conn.fileno()
        try:
            limit = min(int(os.sysconf("SC_OPEN_MAX")), 65536)
        except (AttributeError, ValueError, OSError):
            limit = 4096
        os.closerange(3, keep)
        os.closerange(keep + 1, limit)
    except Exception:  # noqa: BLE001 - hygiene must never kill the worker
        pass


def _process_member_main(conn, session: Session) -> None:
    """The forked worker loop: recv (obj, spec), send the result record.

    The session (and the installed shared store, and the warm memo
    layers) arrive via fork copy-on-write; the store re-opens its file
    descriptor on first use in the new pid.  The loop never raises: any
    failure is sent back as an ``("error", reason, info)`` reply, and a
    broken pipe ends the process.
    """
    _close_inherited_fds(conn)
    configs: Dict[str, PipelineConfig] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message is None:
            break
        kind, obj, spec = message
        try:
            rule = fault_hit("member.crash")
            if rule is not None:
                os._exit(23)  # chaos: die exactly like a segfault would
            rule = fault_hit("member.hang")
            if rule is not None:
                # Chaos: wedge past the cooperative budget checks so the
                # parent's hard deadline is what recovers the member.
                time.sleep(rule.delay if rule.delay > 0 else 3600.0)
            if kind != "verify":
                reply = ("error", f"unknown message kind {kind!r}", None)
            else:
                record = _decide_json(session, configs, obj, spec)
                reply = ("ok", record, _member_info(session))
        except Exception as err:  # noqa: BLE001 - isolation contract
            reply = ("error", f"{type(err).__name__}: {err}", None)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


# ---------------------------------------------------------------------------
# Members
# ---------------------------------------------------------------------------


class _MemberBase:
    """Parent-side bookkeeping every member kind shares."""

    mode = "?"

    def __init__(self, member_id: int) -> None:
        self.member_id = member_id
        self.tally = ReasonTally()
        self.requests = 0
        self.failures = 0
        self.restarts = 0
        self.hard_timeouts = 0
        # Scheduling state, guarded by the pool's condition variable: a
        # member serves exactly one work item at a time, and the shard
        # router prefers the member that owns the item's digest range.
        self.busy = False
        self.last_used = time.monotonic()
        self.sharded_requests = 0
        # A degraded member is known-wedged (thread watchdog fired) and
        # skipped by the dispatcher until its stuck call returns.
        # Process members never set it — they are killed and respawned
        # instead.
        self.degraded = False

    def _record(self, record: Mapping[str, object]) -> None:
        self.requests += 1
        self.tally.record_json(record)  # foreign record shape: count only

    def snapshot(self) -> Dict[str, object]:
        tallies = self.tally.snapshot()
        return {
            "id": self.member_id,
            "mode": self.mode,
            "requests": self.requests,
            "failures": self.failures,
            "restarts": self.restarts,
            "hard_timeouts": self.hard_timeouts,
            "degraded": self.degraded,
            "sharded_requests": self.sharded_requests,
            "verdicts": tallies["verdicts"],
            "reason_codes": tallies["reason_codes"],
            **self.info(),
        }

    # subclass API ---------------------------------------------------------

    def run_json(
        self,
        obj: Mapping[str, object],
        spec: Optional[str],
        deadline: Optional[float] = None,
    ) -> Dict[str, object]:
        raise NotImplementedError

    def info(self) -> Dict[str, object]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class _ThreadJob:
    """One work item handed to a thread member's worker; its own rendezvous."""

    __slots__ = ("obj", "spec", "result", "failed", "done", "lock", "abandoned")

    def __init__(self, obj: Mapping[str, object], spec: Optional[str]) -> None:
        self.obj = obj
        self.spec = spec
        self.result: Optional[Dict[str, object]] = None
        self.failed = False
        self.done = threading.Event()
        self.lock = threading.Lock()
        # Set by the dispatcher when the watchdog deadline fires; tells
        # the worker its (eventual) result is garbage and the member
        # should recover instead of answering.
        self.abandoned = False


class _ThreadMember(_MemberBase):
    """An in-process session behind a persistent worker thread + watchdog.

    Thread members cannot be hard-killed (Python offers no safe way to
    terminate a thread), so a wedged prove used to wedge the member —
    and its dispatcher thread — forever (the isolation gap ROADMAP
    called out).  Proving now runs on the member's own long-lived worker
    thread; :meth:`run_json` waits for the result up to the hard
    ``deadline`` and, when the watchdog fires, answers an honest
    structured ``timeout`` record and marks the member **degraded**: the
    dispatcher skips it until the stuck call finally returns, at which
    point the worker discards the abandoned result and the member
    rejoins the idle queue.  The session is never shared between two
    in-flight proves — exclusivity stays the idle queue's job.
    """

    mode = "thread"

    def __init__(
        self,
        member_id: int,
        session: Session,
        on_recover: Optional[Callable[["_ThreadMember"], None]] = None,
    ) -> None:
        super().__init__(member_id)
        self.session = session
        self._configs: Dict[str, PipelineConfig] = {}
        self._on_recover = on_recover
        self._jobs: "queue.Queue[Optional[_ThreadJob]]" = queue.Queue()
        self.heartbeat = time.monotonic()
        self.recoveries = 0
        self._worker = threading.Thread(
            target=self._work_loop,
            name=f"udp-pool-member-{member_id}",
            daemon=True,
        )
        self._worker.start()

    def _work_loop(self) -> None:
        while True:
            job = self._jobs.get()
            if job is None:
                break
            self.heartbeat = time.monotonic()
            try:
                rule = fault_hit("member.crash")
                if rule is not None:
                    raise FaultError(
                        f"injected crash in member {self.member_id}"
                    )
                rule = fault_hit("member.hang")
                if rule is not None:
                    time.sleep(rule.delay if rule.delay > 0 else 3600.0)
                record = _decide_json(
                    self.session, self._configs, job.obj, job.spec
                )
                failed = False
            except Exception as err:  # noqa: BLE001 - isolation contract
                record = _error_result_record(
                    job.obj, f"{type(err).__name__}: {err}"
                )
                failed = True
            self.heartbeat = time.monotonic()
            with job.lock:
                job.result = record
                job.failed = failed
                late = job.abandoned
                job.done.set()
            if late:
                # The wedged prove finally returned.  Its caller was
                # answered with a timeout record long ago; drop the
                # stale result and rejoin the idle queue.
                self.degraded = False
                self.recoveries += 1
                _LOG.warning(
                    "pool member %d recovered from a wedged prove; "
                    "member back in rotation",
                    self.member_id,
                )
                if self._on_recover is not None:
                    try:
                        self._on_recover(self)
                    except Exception:  # noqa: BLE001 - defensive
                        pass

    def run_json(
        self,
        obj: Mapping[str, object],
        spec: Optional[str],
        deadline: Optional[float] = None,
    ) -> Dict[str, object]:
        job = _ThreadJob(obj, spec)
        self._jobs.put(job)
        if not job.done.wait(deadline):
            with job.lock:
                finished = job.done.is_set()
                if not finished:
                    job.abandoned = True
            if not finished:
                # Watchdog: the worker missed the hard deadline.  Answer
                # honestly and take the member out of rotation until the
                # stuck call returns (a thread cannot be hard-killed).
                self.failures += 1
                self.hard_timeouts += 1
                self.degraded = True
                record = _timeout_result_record(
                    obj,
                    f"pool member {self.member_id} exceeded the hard "
                    f"deadline of {float(deadline):.1f}s; thread member "
                    "marked degraded until the wedged prove returns",
                )
                self._record(record)
                return record
        record = job.result
        if job.failed:
            self.failures += 1
        self._record(record)
        return record

    def snapshot(self) -> Dict[str, object]:
        data = super().snapshot()
        data["recoveries"] = self.recoveries
        data["heartbeat_age"] = round(
            max(0.0, time.monotonic() - self.heartbeat), 3
        )
        return data

    def info(self) -> Dict[str, object]:
        return _member_info(self.session)

    def close(self) -> None:
        self._jobs.put(None)
        self._worker.join(timeout=2.0)


class _ProcessMember(_MemberBase):
    """A forked worker process holding a copy-on-write warm session."""

    mode = "process"

    def __init__(self, member_id: int, prototype: Session, context) -> None:
        super().__init__(member_id)
        self._prototype = prototype
        self._context = context
        self.last_info: Dict[str, object] = {}
        self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = self._context.Pipe()
        self._conn = parent_conn
        self._proc = self._context.Process(
            target=_process_member_main,
            args=(child_conn, self._prototype),
            name=f"udp-pool-member-{self.member_id}",
            daemon=True,
        )
        self._proc.start()
        child_conn.close()

    def run_json(
        self,
        obj: Mapping[str, object],
        spec: Optional[str],
        deadline: Optional[float] = None,
    ) -> Dict[str, object]:
        try:
            self._conn.send(("verify", dict(obj), spec))
            if deadline is not None and not self._conn.poll(deadline):
                # The worker is wedged (alive but not answering): a loop
                # that stopped reaching the cooperative budget checks.
                # Kill it, respawn from the warm prototype, and answer a
                # structured timeout so the reader thread is never held
                # hostage by one bad pair.
                self.failures += 1
                self.hard_timeouts += 1
                self.restarts += 1
                record = _timeout_result_record(
                    obj,
                    f"pool member {self.member_id} exceeded the hard "
                    f"deadline of {deadline:.1f}s; member killed and "
                    "respawned",
                )
                self._kill()
                self._spawn()
                self._record(record)
                return record
            status, payload, info = self._conn.recv()
        except (EOFError, BrokenPipeError, OSError) as err:
            # The worker died mid-request (crash, OOM kill, ...): answer
            # with a structured error record and respawn from the warm
            # prototype so the pool heals without dropping capacity.
            self.failures += 1
            self.restarts += 1
            record = _error_result_record(
                obj,
                f"pool member {self.member_id} died mid-request "
                f"({type(err).__name__}); member respawned",
            )
            try:
                self.close()
            finally:
                self._spawn()
            self._record(record)
            return record
        if status == "ok":
            record = payload
            if info:
                self.last_info = info
        else:
            self.failures += 1
            record = _error_result_record(obj, str(payload))
        self._record(record)
        return record

    def info(self) -> Dict[str, object]:
        return dict(self.last_info)

    def _kill(self) -> None:
        """Tear the worker down without waiting for cooperation."""
        try:
            self._proc.terminate()
            self._proc.join(timeout=5)
            if self._proc.is_alive():  # pragma: no cover - stuck in a syscall
                self._proc.kill()
                self._proc.join(timeout=5)
        except (OSError, AttributeError):  # pragma: no cover - defensive
            pass
        try:
            self._conn.close()
        except OSError:
            pass

    def close(self) -> None:
        try:
            self._conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self._proc.join(timeout=5)
        if self._proc.is_alive():  # pragma: no cover - wedged worker
            self._proc.terminate()
            self._proc.join(timeout=5)
        try:
            self._conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Shard routing
# ---------------------------------------------------------------------------


def request_shard_digest(obj: Mapping[str, object]) -> str:
    """The routing digest of one request: the exact-text tier key.

    Hashes the raw ``program``/``left``/``right`` texts (the same
    granularity as the session's text-tier verdict cache) so repeated
    verifications of the same pair always land on the same pool member
    regardless of whitespace in *other* fields, keeping that member's
    compile LRU and verdict caches hot for its digest range.  Computed
    before any parsing — safe to call on untrusted payloads.
    """
    hasher = hashlib.blake2b(digest_size=16)
    for key in ("program", "left", "right"):
        value = obj.get(key)
        hasher.update(b"\x1f")
        if value is not None:
            hasher.update(str(value).encode("utf-8", "replace"))
    return hasher.hexdigest()


class _HashRing:
    """Consistent hashing: member ids own arcs of a blake2b point ring.

    Each member contributes ``replicas`` virtual points, so adding or
    reaping one member only remaps ~1/N of the digest space — the grown
    pool keeps most members' cache locality intact, unlike modular
    hashing which reshuffles everything.
    """

    def __init__(self, replicas: int = 64) -> None:
        self.replicas = replicas
        self._points: List[int] = []
        self._ids: List[int] = []

    @staticmethod
    def _point(key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def rebuild(self, member_ids: Iterable[int]) -> None:
        pairs = sorted(
            (self._point(f"{member_id}#{replica}"), member_id)
            for member_id in member_ids
            for replica in range(self.replicas)
        )
        self._points = [point for point, _ in pairs]
        self._ids = [member_id for _, member_id in pairs]

    def lookup(self, key: str) -> Optional[int]:
        if not self._points:
            return None
        index = bisect.bisect(self._points, self._point(key))
        return self._ids[index % len(self._ids)]


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------


class SessionPool:
    """N warm per-catalog sessions dispatching work items concurrently.

    Construct with an existing :class:`~repro.session.Session` (its
    catalog and config become the prototype), a
    :class:`~repro.session.PipelineConfig`, or ``program`` text.  The
    pool owns an idle queue (each member serves exactly one work item at
    a time — no cross-talk by construction), a dispatcher executor for
    batch fan-out, and optionally the shared memo store its members warm
    each other through.
    """

    def __init__(
        self,
        size: Optional[int] = None,
        *,
        mode: str = "auto",
        session: Optional[Session] = None,
        pipeline: Optional[PipelineConfig] = None,
        program: Optional[str] = None,
        shared_store=None,
        store_path: Optional[str] = None,
        store_backend: str = "auto",
        member_timeout: Optional[float] = None,
        pool_max: Optional[int] = None,
        shard_dispatch: bool = True,
        shard_patience: float = 0.05,
        grow_after: float = 1.0,
        idle_reap: float = 30.0,
        autoscale_interval: float = 0.25,
    ) -> None:
        if session is not None and pipeline is not None:
            raise ValueError(
                "pass either a session or a pipeline config, not both — "
                "the pipeline is the session's config"
            )
        self.size = max(1, int(size if size is not None else default_pool_size()))
        self.mode = resolve_pool_mode(mode, self.size)
        # Dynamic sizing: ``size`` is the floor the pool always keeps
        # warm, ``pool_max`` the ceiling the autoscaler may grow to under
        # sustained saturation.  Equal bounds (the default) disable the
        # autoscaler entirely.
        self.pool_max = max(self.size, int(pool_max)) if pool_max else self.size
        self.shard_dispatch = bool(shard_dispatch)
        self.shard_patience = max(0.0, float(shard_patience))
        self.grow_after = max(0.0, float(grow_after))
        self.idle_reap = max(0.1, float(idle_reap))
        self._autoscale_interval = max(0.02, float(autoscale_interval))
        if session is not None:
            prototype = session
        elif program:
            prototype = Session.from_program_text(program, pipeline)
        else:
            prototype = Session(config=pipeline)
        prototype.constraint_set()  # warm before clone/fork
        self._prototype = prototype
        self.config = prototype.config
        self._configs: Dict[str, PipelineConfig] = {}
        # Hard per-pair isolation: process members that fail to answer
        # within this many seconds are killed and respawned (None derives
        # the deadline from the pipeline budgets per request).  Thread
        # members rely on the cooperative budget alone.
        self.member_timeout = (
            None if member_timeout is None else max(0.1, float(member_timeout))
        )

        # The shared store must be installed *before* members fork so
        # they inherit it.  None = auto (process mode, or whenever an
        # explicit path/backend asks for durability), False = off,
        # True = on, or pass a ready store object.  ``store_backend``
        # picks the implementation (``auto`` resolves to the durable
        # SQLite backend; ``flock`` is the legacy flat file).
        self._owns_store = False
        self._previous_store = None
        self._installed_store = False
        if shared_store is None:
            shared_store = self.mode == "process" or store_path is not None
        if shared_store is False:
            self.store = None
        elif shared_store is True:
            from repro.store import open_store  # local: keep import light

            self.store = open_store(store_path, backend=store_backend)
            self._owns_store = True
        else:
            self.store = shared_store
        if self.store is not None:
            self._previous_store = install_shared_store(self.store)
            self._installed_store = True

        self.members: List[_MemberBase] = []
        self._cond = threading.Condition()
        self._ring = _HashRing()
        self._mp_context = None
        self._next_member_id = 0
        self._waiting = 0
        self.dispatch_sharded = 0
        self.dispatch_fallback = 0
        self.dispatch_any = 0
        self.grown = 0
        self.reaped = 0
        self._stop = threading.Event()
        self._autoscaler: Optional[threading.Thread] = None
        try:
            try:
                self._build_members()
            except (OSError, PermissionError):
                # Process creation unavailable (sandboxes): degrade to
                # in-process members rather than failing to boot.
                for member in self.members:
                    member.close()
                self.members = []
                self.mode = "thread"
                self._build_members()
                _LOG.warning(
                    "process pool unavailable on this platform; degraded "
                    "to %d thread members (cooperative budgets only — a "
                    "wedged prove cannot be hard-killed)",
                    self.size,
                )
            self._ring.rebuild([m.member_id for m in self.members])
            self._executor = ThreadPoolExecutor(
                max_workers=self.pool_max,
                thread_name_prefix="udp-pool-dispatch",
            )
        except BaseException:
            # Never leave a half-built pool's globals behind: uninstall
            # the shared store (and delete its temp file) and reap any
            # members already spawned before re-raising.
            for member in self.members:
                member.close()
            self._release_store()
            raise
        self._closed = False
        if self.mode == "thread" and self.size > 1:
            # The isolation gap ROADMAP calls out: thread members only
            # honor cooperative budgets, so a wedged prove wedges the
            # member forever.  Busy deployments should run process mode.
            _LOG.warning(
                "pool mode 'thread' with %d members: members share the "
                "GIL and cannot be hard-killed on a wedged prove; use "
                "--pool-mode process (the default where fork exists) "
                "for busy deployments",
                self.size,
            )
        if self.pool_max > self.size:
            self._autoscaler = threading.Thread(
                target=self._autoscale_loop,
                name="udp-pool-autoscale",
                daemon=True,
            )
            self._autoscaler.start()

    def _build_members(self) -> None:
        if self.mode == "process":
            import multiprocessing

            self._mp_context = multiprocessing.get_context("fork")
        for member_id in range(self.size):
            self.members.append(self._new_member(member_id))
        self._next_member_id = self.size

    def _new_member(self, member_id: int) -> _MemberBase:
        """Spawn one member (initial build and autoscaler growth)."""
        if self.mode == "process":
            rule = fault_hit("pool.fork")
            if rule is not None:
                # Chaos: surface exactly what a failed fork(2) raises so
                # the boot-time degrade-to-threads path is exercised.
                raise OSError(f"injected fork failure for member {member_id}")
            return _ProcessMember(member_id, self._prototype, self._mp_context)
        session = (
            self._prototype if member_id == 0 else self._prototype.clone()
        )
        return _ThreadMember(
            member_id, session, on_recover=self._member_recovered
        )

    def _member_recovered(self, member: _MemberBase) -> None:
        """A degraded thread member's wedged prove returned: wake waiters."""
        with self._cond:
            self._cond.notify_all()

    # -- lifecycle ---------------------------------------------------------

    def _release_store(self) -> None:
        if self._installed_store:
            install_shared_store(self._previous_store)
            self._installed_store = False
        if self._owns_store and self.store is not None:
            self._owns_store = False
            self.store.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._autoscaler is not None:
            self._autoscaler.join(timeout=2.0)
        self._executor.shutdown(wait=False, cancel_futures=True)
        with self._cond:
            members = list(self.members)
            self._cond.notify_all()
        for member in members:
            member.close()
        self._release_store()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- validation --------------------------------------------------------

    def config_for(self, spec: Optional[str]) -> PipelineConfig:
        """Validate (and cache) a pipeline override against the base config.

        Raises ``ValueError`` on a malformed spec or unknown tactic —
        callers turn that into a structured 400 *before* any member is
        consumed.
        """
        return _config_for(self.config, self._configs, spec)

    # -- dispatch ----------------------------------------------------------

    def _hard_deadline(
        self, obj: Mapping[str, object], spec: Optional[str]
    ) -> float:
        """Seconds a member may spend on this item before being killed.

        Explicit ``member_timeout`` wins; otherwise the deadline is the
        sum of the effective pipeline's per-tactic budgets (honoring a
        per-request ``timeout_seconds`` override) plus a grace margin —
        generous enough that the cooperative budget always fires first
        on a healthy member.
        """
        if self.member_timeout is not None:
            return self.member_timeout
        try:
            config = self.config_for(spec)
            override = obj.get("timeout_seconds")
            if override is not None:
                budget = float(override) * max(1, len(config.tactics))
            else:
                budget = sum(
                    config.budget_for(tactic) for tactic in config.tactics
                )
        except (TypeError, ValueError):  # pragma: no cover - validated upstream
            budget = 0.0
        return max(1.0, budget) + HARD_TIMEOUT_GRACE

    def _member_by_id(self, member_id: int) -> Optional[_MemberBase]:
        for member in self.members:
            if member.member_id == member_id:
                return member
        return None

    def _acquire(
        self, preferred: Optional[int]
    ) -> Tuple[_MemberBase, bool]:
        """Claim an idle member, preferring the shard owner briefly.

        Waits up to ``shard_patience`` for the preferred member (the
        locality bet: a short wait for a warm cache usually beats cold
        work on a random member), then falls back to any idle member.
        Returns ``(member, on_home_shard)``.
        """
        with self._cond:
            self._waiting += 1
            try:
                deadline = (
                    time.monotonic() + self.shard_patience
                    if preferred is not None
                    else None
                )
                while True:
                    if self._closed:
                        raise RuntimeError("pool is closed")
                    if preferred is not None:
                        member = self._member_by_id(preferred)
                        if member is None or member.degraded:
                            # Reaped since the ring lookup, or known
                            # wedged: no point waiting for it.
                            if member is not None:
                                self.dispatch_fallback += 1
                            preferred = None
                            continue
                        if not member.busy:
                            member.busy = True
                            return member, True
                        remaining = deadline - time.monotonic()
                        if remaining > 0:
                            self._cond.wait(min(remaining, 0.05))
                            continue
                        self.dispatch_fallback += 1
                        preferred = None
                        continue
                    # Least-recently-used idle member: unsharded traffic
                    # rotates across the pool instead of pinning member 0.
                    # Degraded (watchdog-wedged) members are skipped while
                    # any healthy member exists; with every member wedged
                    # we still dispatch — the caller gets an honest
                    # structured timeout instead of an unbounded wait.
                    idle = [m for m in self.members if not m.busy]
                    member = min(
                        (m for m in idle if not m.degraded),
                        key=lambda m: m.last_used,
                        default=None,
                    )
                    if member is None:
                        member = min(
                            idle, key=lambda m: m.last_used, default=None
                        )
                    if member is not None:
                        member.busy = True
                        return member, False
                    self._cond.wait(0.1)
            finally:
                self._waiting -= 1

    def _release(self, member: _MemberBase) -> None:
        with self._cond:
            member.busy = False
            member.last_used = time.monotonic()
            self._cond.notify_all()

    def _dispatch(
        self,
        obj: Mapping[str, object],
        spec: Optional[str],
        shard: Optional[str] = None,
    ) -> Dict[str, object]:
        deadline = self._hard_deadline(obj, spec)
        preferred = None
        if shard is not None:
            with self._cond:
                preferred = self._ring.lookup(shard)
        member, on_home = self._acquire(preferred)
        with self._cond:
            if shard is None:
                self.dispatch_any += 1
            elif on_home:
                self.dispatch_sharded += 1
                member.sharded_requests += 1
        try:
            return member.run_json(obj, spec, deadline)
        finally:
            self._release(member)

    def _shard_for(self, obj: Mapping[str, object]) -> Optional[str]:
        return request_shard_digest(obj) if self.shard_dispatch else None

    def validate_json(self, obj: Mapping[str, object]) -> Optional[str]:
        """Validate one request envelope; the pipeline spec on success.

        Raises ``ValueError`` on envelope errors (→ 400) without
        consuming a member.  Factored out of :meth:`verify_json` so the
        non-blocking front door can validate on the event loop and
        dispatch asynchronously via :meth:`submit_json`.
        """
        for key in ("left", "right"):
            if key not in obj:
                raise ValueError(f"missing required field {key!r}")
        spec = obj.get("pipeline")
        if spec is not None and not isinstance(spec, str):
            raise ValueError(
                "'pipeline' must be a comma-separated string of tactic names"
            )
        self.config_for(spec)  # validate before consuming a member
        VerifyRequest.from_json(obj)  # envelope type errors → 400, not 500
        return spec

    def verify_json(self, obj: Mapping[str, object]) -> Dict[str, object]:
        """Decide one ``POST /verify`` payload (already JSON-decoded).

        Envelope errors raise ``ValueError`` (→ 400); everything past
        the envelope is the session's never-raises contract, so the
        returned record — including ``unsupported`` and ``error``
        verdicts — is a normal 200 answer.
        """
        spec = self.validate_json(obj)
        return self._dispatch(obj, spec, self._shard_for(obj))

    def submit_json(
        self,
        obj: Mapping[str, object],
        spec: Optional[str] = None,
        *,
        shard: Optional[str] = None,
    ) -> "Future[Dict[str, object]]":
        """Dispatch one *already validated* payload asynchronously.

        The front door's path: validation ran on the event loop via
        :meth:`validate_json`, proving happens on a dispatcher thread,
        and the returned future's done-callback wakes the loop — the
        accept path never blocks on a member.

        ``shard`` overrides the default per-request shard key; the
        clustering engine passes the *representative's* digest so every
        comparison against one group lands on the member whose compile
        and match caches already hold that representative.
        """
        if shard is None:
            shard = self._shard_for(obj)
        return self._executor.submit(self._dispatch, obj, spec, shard)

    def verify_stream(
        self,
        lines: Iterable[str],
        *,
        pipeline: Optional[str] = None,
        window: int = DEFAULT_WINDOW,
    ) -> Iterator[Dict[str, object]]:
        """Decide a JSONL batch: one record per input line, in input order.

        Lines are parsed as they arrive and fanned out across the pool
        through a bounded window of in-flight dispatches; output order is
        exactly input order regardless of which member finishes first.  A
        malformed line becomes an in-stream ``bad-request`` error record
        carrying its line number — it never consumes a member, and
        sibling lines are untouched.
        """
        self.config_for(pipeline)  # fail before the caller commits to a 200
        window = max(1, int(window))
        return self._verify_stream(lines, pipeline, window)

    def _verify_stream(
        self, lines: Iterable[str], spec: Optional[str], window: int
    ) -> Iterator[Dict[str, object]]:
        pending: "deque[Future]" = deque()

        def resolve(future: Future) -> Dict[str, object]:
            # CancelledError is a BaseException: a pool closed mid-batch
            # must still answer with in-stream records, never a handler
            # crash.
            try:
                return future.result()
            except (Exception, CancelledError) as err:  # noqa: BLE001
                return error_record(
                    "internal-error", f"{type(err).__name__}: {err}"
                )

        lines_iter = iter(lines)
        lineno = 0
        while True:
            try:
                raw = next(lines_iter)
            except StopIteration:
                break
            except Exception:
                # The transport broke mid-body (e.g. malformed chunk
                # framing): answer every fully received line before
                # letting the caller report the framing error.
                while pending:
                    yield resolve(pending.popleft())
                raise
            lineno += 1
            text = raw.strip()
            if not text:
                continue
            try:
                obj = json.loads(text)
                if not isinstance(obj, dict):
                    raise ValueError("each line must be a JSON object")
                for key in ("left", "right"):
                    if key not in obj:
                        raise ValueError(f"missing required field {key!r}")
                VerifyRequest.from_json(obj)  # validate before dispatch
                future = self._executor.submit(
                    self._dispatch, obj, spec, self._shard_for(obj)
                )
            except (KeyError, TypeError, ValueError) as err:
                future = Future()
                future.set_result(
                    error_record("bad-request", str(err), line=lineno)
                )
            pending.append(future)
            while len(pending) >= window:
                yield resolve(pending.popleft())
        while pending:
            yield resolve(pending.popleft())

    def run_corpus(
        self,
        dataset: Optional[str] = None,
        pipeline: Optional[str] = None,
    ) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
        """Replay the built-in corpus through the pool; (summary, records).

        The ``POST /corpus`` health benchmark: after one call,
        ``GET /stats`` shows a full corpus worth of verdict and
        reason-code tallies plus the memo/store warmth it produced.
        """
        from repro.corpus import all_rules, as_verify_requests

        self.config_for(pipeline)
        if dataset in ("", "all"):
            dataset = None
        if dataset is not None:
            known = sorted({rule.dataset for rule in all_rules()})
            if dataset not in known:
                raise ValueError(
                    f"unknown dataset {dataset!r}; expected one of {known}"
                )
        requests = as_verify_requests(dataset)
        started = time.monotonic()
        futures = []
        for request in requests:
            obj = request.to_json()
            futures.append(
                self._executor.submit(
                    self._dispatch, obj, pipeline, self._shard_for(obj)
                )
            )
        records = []
        for future in futures:
            try:
                records.append(future.result())
            except (Exception, CancelledError) as err:  # noqa: BLE001
                records.append(
                    _error_result_record({}, f"{type(err).__name__}: {err}")
                )
        elapsed = time.monotonic() - started
        verdicts: Dict[str, int] = {}
        reasons: Dict[str, int] = {}
        for record in records:
            verdict = str(record.get("verdict", "error"))
            verdicts[verdict] = verdicts.get(verdict, 0) + 1
            reason = str(record.get("reason_code", ""))
            reasons[reason] = reasons.get(reason, 0) + 1
        summary: Dict[str, object] = {
            "dataset": dataset or "all",
            "rules": len(records),
            "elapsed_seconds": round(elapsed, 6),
            "rules_per_second": (
                round(len(records) / elapsed, 3) if elapsed > 0 else None
            ),
            "verdicts": dict(sorted(verdicts.items())),
            "reason_codes": dict(sorted(reasons.items())),
            "pool_size": self.size,
            "pool_mode": self.mode,
        }
        return summary, records

    # -- dynamic sizing ----------------------------------------------------

    def _autoscale_loop(self) -> None:
        """Grow on sustained saturation, reap idle members, stay bounded.

        Samples every ``autoscale_interval`` seconds.  Growth requires
        *sustained* saturation (every member busy with callers waiting
        for at least ``grow_after`` seconds) so a momentary burst does
        not fork members it will not use; reaping requires a member to
        have sat idle for ``idle_reap`` seconds and never shrinks below
        the base size.  Each membership change rebuilds the hash ring —
        consistent hashing keeps ~(N-1)/N of shard assignments stable.
        """
        saturated_since: Optional[float] = None
        while not self._stop.wait(self._autoscale_interval):
            now = time.monotonic()
            grow = False
            reap_member: Optional[_MemberBase] = None
            with self._cond:
                if self._closed:
                    break
                total = len(self.members)
                busy = sum(1 for m in self.members if m.busy)
                if busy >= total and self._waiting > 0 and total < self.pool_max:
                    if saturated_since is None:
                        saturated_since = now
                    elif now - saturated_since >= self.grow_after:
                        grow = True
                        saturated_since = None
                else:
                    saturated_since = None
                if not grow and total > self.size:
                    for member in self.members:
                        if (
                            not member.busy
                            and now - member.last_used >= self.idle_reap
                        ):
                            member.busy = True  # claim: no new dispatches
                            reap_member = member
                            break
            if grow:
                self._grow_one()
            if reap_member is not None:
                self._reap(reap_member)

    def _grow_one(self) -> None:
        with self._cond:
            member_id = self._next_member_id
            self._next_member_id += 1
        try:
            member = self._new_member(member_id)  # fork outside the lock
        except Exception as err:  # noqa: BLE001 - growth is best-effort
            _LOG.warning("pool growth failed: %s: %s", type(err).__name__, err)
            return
        with self._cond:
            if self._closed:
                close_it = True
            else:
                close_it = False
                self.members.append(member)
                self.grown += 1
                self._ring.rebuild([m.member_id for m in self.members])
                self._cond.notify_all()
                _LOG.info(
                    "pool grew to %d members (sustained saturation; max %d)",
                    len(self.members),
                    self.pool_max,
                )
        if close_it:
            member.close()

    def _reap(self, member: _MemberBase) -> None:
        with self._cond:
            if member not in self.members:
                return
            self.members.remove(member)
            self.reaped += 1
            self._ring.rebuild([m.member_id for m in self.members])
            self._cond.notify_all()
            _LOG.info(
                "reaped idle pool member %d (down to %d members)",
                member.member_id,
                len(self.members),
            )
        member.close()

    # -- observability -----------------------------------------------------

    def degraded_members(self) -> int:
        """How many members are currently known-wedged (watchdog-flagged)."""
        with self._cond:
            return sum(1 for member in self.members if member.degraded)

    def store_health(self) -> Optional[Dict[str, object]]:
        """The store circuit breaker's health view, if the store has one."""
        if self.store is None:
            return None
        health = getattr(self.store, "health", None)
        if health is None:
            return None
        try:
            return health()
        except Exception:  # noqa: BLE001 - health must never raise
            return None

    def stats(self) -> Dict[str, object]:
        """Per-member and rolled-up tallies, plus the shared-store view."""
        with self._cond:
            members = [member.snapshot() for member in self.members]
            dispatch = {
                "sharding": self.shard_dispatch,
                "sharded": self.dispatch_sharded,
                "fallbacks": self.dispatch_fallback,
                "unsharded": self.dispatch_any,
            }
            autoscale = {
                "base_size": self.size,
                "pool_max": self.pool_max,
                "current_size": len(self.members),
                "grown": self.grown,
                "reaped": self.reaped,
            }
        verdicts: Dict[str, int] = {}
        reasons: Dict[str, int] = {}
        session_rollup = {
            "requests": 0,
            "compile_cache": {"hits": 0, "misses": 0, "entries": 0},
            "programs": 0,
            "program_compile_entries": 0,
        }
        for snapshot in members:
            for key, count in snapshot["verdicts"].items():
                verdicts[key] = verdicts.get(key, 0) + count
            for key, count in snapshot["reason_codes"].items():
                reasons[key] = reasons.get(key, 0) + count
            session = snapshot.get("session") or {}
            session_rollup["requests"] += session.get("requests", 0)
            compile_cache = session.get("compile_cache") or {}
            for key in ("hits", "misses", "entries"):
                session_rollup["compile_cache"][key] += compile_cache.get(key, 0)
            session_rollup["programs"] += session.get("programs", 0)
            session_rollup["program_compile_entries"] += session.get(
                "program_compile_entries", 0
            )
        store: Dict[str, object] = {"installed": self.store is not None}
        if self.store is not None:
            if self.mode == "thread":
                # Thread members share this process's store object; its
                # counters already are the rollup.
                store.update(self.store.stats())
            else:
                # Each member process owns its counters; sum the
                # last-known views and keep the parent's entry count.
                rollup = {
                    "hits": 0,
                    "misses": 0,
                    "publishes": 0,
                    "dropped": 0,
                    "compactions": 0,
                    "expired": 0,
                    "errors": 0,
                }
                for snapshot in members:
                    member_store = snapshot.get("store") or {}
                    for key in rollup:
                        rollup[key] += member_store.get(key, 0)
                store.update(self.store.stats())
                store.update(rollup)
            verdict_stats = getattr(self.store, "verdict_stats", None)
            if verdict_stats is not None:
                # The durable cross-restart view: historical verdict
                # tallies and hit rates straight from the database.
                store["verdict_cache"] = verdict_stats()
        dispatch["sharded_requests"] = sum(
            m["sharded_requests"] for m in members
        )
        return {
            "size": self.size,
            "mode": self.mode,
            "dispatch": dispatch,
            "autoscale": autoscale,
            "requests": sum(m["requests"] for m in members),
            "hard_timeouts": sum(m["hard_timeouts"] for m in members),
            "degraded_members": sum(1 for m in members if m["degraded"]),
            "watchdog_recoveries": sum(
                m.get("recoveries", 0) for m in members
            ),
            "verdicts": dict(sorted(verdicts.items())),
            "reason_codes": dict(sorted(reasons.items())),
            "members": members,
            "session": {
                "requests": session_rollup["requests"],
                "compile_cache": session_rollup["compile_cache"],
                "programs": session_rollup["programs"],
                "program_compile_entries": session_rollup[
                    "program_compile_entries"
                ],
            },
            "store": store,
        }


# ---------------------------------------------------------------------------
# Backpressure
# ---------------------------------------------------------------------------


class AdmissionDecision:
    """The outcome of one admission attempt; truthy iff admitted.

    ``code`` on refusal is ``"saturated"`` (global backpressure → 503)
    or ``"rate-limited"`` (this client's fairness cap or token bucket →
    429).  ``retry_after`` carries the bucket's own refill estimate when
    the gate can compute one; the HTTP layer falls back to its
    configured hint otherwise.
    """

    __slots__ = ("admitted", "code", "retry_after")

    def __init__(
        self,
        admitted: bool,
        code: Optional[str] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        self.admitted = admitted
        self.code = code
        self.retry_after = retry_after

    def __bool__(self) -> bool:
        return self.admitted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.admitted:
            return "AdmissionDecision(admitted)"
        return f"AdmissionDecision(refused, code={self.code!r})"


_ADMITTED = AdmissionDecision(True)


class _ClientState:
    """Per-client admission bookkeeping (fairness cap + token bucket)."""

    __slots__ = (
        "inflight",
        "admitted",
        "rejected",
        "rate_limited",
        "tokens",
        "refilled",
        "last_seen",
    )

    def __init__(self, now: float, burst: float) -> None:
        self.inflight = 0
        self.admitted = 0
        self.rejected = 0
        self.rate_limited = 0
        self.tokens = burst
        self.refilled = now
        self.last_seen = now


class AdmissionGate:
    """Arrival-ordered admission with per-client fairness and rate limits.

    Global backpressure: ``max_inflight`` executing plus ``max_queued``
    waiting; past that, callers are refused on the spot.  Waiters are
    served strictly in arrival order through a FIFO ticket queue — a
    newcomer arriving while anyone is queued can no longer steal a
    freed slot (the barging bug this replaces: ``try_enter`` used to
    admit whenever ``_inflight`` dipped, regardless of the queue).

    Per-client controls (enabled per knob, all optional):

    * ``per_client_inflight`` — one client may hold at most this many
      slots at once; beyond it the client is refused (429) immediately
      so one greedy client cannot drain the global gate.
    * ``rate_limit`` / ``rate_burst`` — a token bucket per client:
      ``rate_limit`` admissions/second sustained, ``rate_burst`` deep.
      Refusals carry the bucket's refill estimate as ``retry_after``.

    The HTTP layer maps refusals to structured 503 (saturated) or 429
    (rate-limited), both with ``Retry-After`` — load sheds at the front
    door instead of piling onto the member queue.
    """

    def __init__(
        self,
        max_inflight: int,
        max_queued: Optional[int] = None,
        wait_timeout: float = 0.5,
        *,
        per_client_inflight: Optional[int] = None,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[float] = None,
        max_clients: int = 1024,
    ) -> None:
        self.max_inflight = max(1, int(max_inflight))
        self.max_queued = (
            self.max_inflight if max_queued is None else max(0, int(max_queued))
        )
        self.wait_timeout = max(0.0, float(wait_timeout))
        self.per_client_inflight = (
            None
            if per_client_inflight is None
            else max(1, int(per_client_inflight))
        )
        self.rate_limit = (
            None if rate_limit is None or rate_limit <= 0 else float(rate_limit)
        )
        if rate_burst is not None and rate_burst > 0:
            self.rate_burst = float(rate_burst)
        elif self.rate_limit is not None:
            self.rate_burst = max(1.0, 2.0 * self.rate_limit)
        else:
            self.rate_burst = 1.0
        self.max_clients = max(16, int(max_clients))
        self._cond = threading.Condition()
        self._waiters: "deque[object]" = deque()
        self._clients: Dict[str, _ClientState] = {}
        self._listeners: List[Callable[[], None]] = []
        self._inflight = 0
        self.admitted = 0
        self.rejected = 0
        self.rate_limited = 0
        self.peak_inflight = 0

    # -- per-client bookkeeping (all under self._cond) ---------------------

    def _client_state(self, client: Optional[str]) -> Optional[_ClientState]:
        if client is None:
            return None
        now = time.monotonic()
        state = self._clients.get(client)
        if state is None:
            if len(self._clients) >= self.max_clients:
                idle = [
                    (s.last_seen, name)
                    for name, s in self._clients.items()
                    if s.inflight == 0
                ]
                if idle:
                    _, oldest = min(idle)
                    del self._clients[oldest]
            state = _ClientState(now, self.rate_burst)
            self._clients[client] = state
        state.last_seen = now
        return state

    def _client_refusal(
        self, state: Optional[_ClientState]
    ) -> Optional[AdmissionDecision]:
        """A 429 decision if this client is over its own limits."""
        if state is None:
            return None
        if (
            self.per_client_inflight is not None
            and state.inflight >= self.per_client_inflight
        ):
            self.rate_limited += 1
            state.rate_limited += 1
            return AdmissionDecision(False, "rate-limited", None)
        if self.rate_limit is not None:
            now = time.monotonic()
            state.tokens = min(
                self.rate_burst,
                state.tokens + (now - state.refilled) * self.rate_limit,
            )
            state.refilled = now
            if state.tokens < 1.0:
                self.rate_limited += 1
                state.rate_limited += 1
                retry = (1.0 - state.tokens) / self.rate_limit
                return AdmissionDecision(
                    False, "rate-limited", round(max(retry, 0.001), 3)
                )
        return None

    def _admit(self, state: Optional[_ClientState]) -> AdmissionDecision:
        self._inflight += 1
        self.admitted += 1
        self.peak_inflight = max(self.peak_inflight, self._inflight)
        if state is not None:
            state.inflight += 1
            state.admitted += 1
            if self.rate_limit is not None:
                # Unclamped: queued same-client admissions may briefly
                # overdraw the bucket; the debt delays later refills, so
                # the sustained rate still holds.
                state.tokens -= 1.0
        return _ADMITTED

    def _refuse_saturated(
        self, state: Optional[_ClientState]
    ) -> AdmissionDecision:
        self.rejected += 1
        if state is not None:
            state.rejected += 1
        return AdmissionDecision(False, "saturated", None)

    # -- admission ---------------------------------------------------------

    def try_enter(
        self,
        client: Optional[str] = None,
        *,
        wait_timeout: Optional[float] = None,
    ) -> AdmissionDecision:
        """Admit, queue (FIFO), or refuse; truthy result iff admitted."""
        timeout = (
            self.wait_timeout if wait_timeout is None else max(0.0, wait_timeout)
        )
        with self._cond:
            state = self._client_state(client)
            refusal = self._client_refusal(state)
            if refusal is not None:
                return refusal
            if self._inflight < self.max_inflight and not self._waiters:
                return self._admit(state)
            if len(self._waiters) >= self.max_queued or timeout <= 0:
                return self._refuse_saturated(state)
            ticket = object()
            self._waiters.append(ticket)
            deadline = time.monotonic() + timeout
            try:
                while not (
                    self._waiters[0] is ticket
                    and self._inflight < self.max_inflight
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return self._refuse_saturated(state)
                    self._cond.wait(remaining)
                return self._admit(state)
            finally:
                self._waiters.remove(ticket)
                self._cond.notify_all()

    def poll_enter(self, client: Optional[str] = None) -> AdmissionDecision:
        """Non-blocking probe for event-loop callers (the front door).

        Admits only when a slot is free *and* no FIFO waiter is queued
        ahead.  A saturated answer is not tallied as a rejection — the
        caller parks the connection in its own arrival-ordered queue and
        calls :meth:`record_rejection` only when it actually refuses.
        Rate-limit refusals are final and tallied here.
        """
        with self._cond:
            state = self._client_state(client)
            refusal = self._client_refusal(state)
            if refusal is not None:
                return refusal
            if self._inflight < self.max_inflight and not self._waiters:
                return self._admit(state)
            return AdmissionDecision(False, "saturated", None)

    def record_rejection(self, client: Optional[str] = None) -> None:
        """Tally a saturation refusal decided by the caller (parked-queue
        overflow at the front door)."""
        with self._cond:
            self._refuse_saturated(self._clients.get(client))

    @property
    def inflight(self) -> int:
        """Admitted-and-not-yet-left count; the drain path polls this."""
        with self._cond:
            return self._inflight

    def wait_idle(self, timeout: float) -> bool:
        """Block until every admitted request has left, or ``timeout``.

        The graceful-drain primitive: after the listener stops
        accepting, the server waits here for in-flight work to finish
        before flushing the store and reaping the pool.  True iff the
        gate went idle within the timeout.
        """
        deadline = time.monotonic() + max(0.0, float(timeout))
        with self._cond:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def leave(self, client: Optional[str] = None) -> None:
        with self._cond:
            self._inflight = max(0, self._inflight - 1)
            if client is not None:
                state = self._clients.get(client)
                if state is not None:
                    state.inflight = max(0, state.inflight - 1)
            self._cond.notify_all()
            listeners = tuple(self._listeners)
        for listener in listeners:
            try:
                listener()
            except Exception:  # noqa: BLE001 - listeners must not kill leave
                pass

    def add_release_listener(self, listener: Callable[[], None]) -> None:
        """Call ``listener`` after every release (outside the gate lock);
        the front door uses this to wake its event loop and admit the
        head of its parked queue."""
        with self._cond:
            self._listeners.append(listener)

    def snapshot(self) -> Dict[str, object]:
        with self._cond:
            clients: Dict[str, Dict[str, object]] = {}
            top = sorted(
                self._clients.items(),
                key=lambda item: item[1].admitted + item[1].rejected,
                reverse=True,
            )[:32]
            for name, state in top:
                clients[name] = {
                    "inflight": state.inflight,
                    "admitted": state.admitted,
                    "rejected": state.rejected,
                    "rate_limited": state.rate_limited,
                }
            return {
                "max_inflight": self.max_inflight,
                "max_queued": self.max_queued,
                "wait_timeout": self.wait_timeout,
                "per_client_inflight": self.per_client_inflight,
                "rate_limit": self.rate_limit,
                "rate_burst": self.rate_burst if self.rate_limit else None,
                "inflight": self._inflight,
                "queued": len(self._waiters),
                "admitted": self.admitted,
                "rejected": self.rejected,
                "rate_limited": self.rate_limited,
                "peak_inflight": self.peak_inflight,
                "clients_tracked": len(self._clients),
                "clients": clients,
            }


__all__ = [
    "AdmissionDecision",
    "AdmissionGate",
    "POOL_MODES",
    "SessionPool",
    "default_pool_size",
    "error_record",
    "request_shard_digest",
    "resolve_pool_mode",
]
