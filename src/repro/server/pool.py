"""Parallel proving: a pool of N warm sessions behind one dispatcher.

PR 3's server put every request behind a single session lock — correct,
but one core.  The UDP decision procedure is embarrassingly parallel
across query pairs, so this module replaces the lock with a
:class:`SessionPool`: N warm per-catalog :class:`~repro.session.Session`
members, an idle queue that hands each work item to exactly one member,
and a shared cross-process memo store
(:class:`repro.hashcons_store.SharedMemoStore`) so members warm each
other's normalize/canonize caches instead of each owning a cold private
LRU.

Member kinds
------------

``thread``
    Members are in-process sessions.  Dispatch, ordering, and
    backpressure behave identically to process mode, but proving shares
    the GIL — use it for ``size == 1``, for tests, and on platforms
    without ``fork``.

``process``
    Each member is a forked worker process holding the (copy-on-write)
    warm prototype session and a private pipe.  Proving runs on real
    cores; results travel back as the JSON wire records, so verdicts and
    reason codes are bit-identical to the in-process path.  A member
    whose process dies mid-request answers with a structured ``error``
    record and is respawned from the prototype.

``auto`` picks ``process`` when ``size > 1`` and ``fork`` is available,
else ``thread``.

Ordering and dispatch
---------------------

* :meth:`SessionPool.verify_json` — one request, any idle member
  (blocking until one frees; admission control above bounds the wait).
* :meth:`SessionPool.verify_stream` — a JSONL batch fanned out across
  members through a bounded in-flight window, yielded strictly in input
  order; malformed lines become in-stream error records without
  consuming a member.
* :meth:`SessionPool.run_corpus` — the built-in evaluation corpus
  through the pool, summarized (the ``POST /corpus`` health benchmark).

Backpressure
------------

:class:`AdmissionGate` bounds the number of admitted requests: up to
``max_inflight`` executing plus ``max_queued`` briefly waiting; past
that, callers are told to go away (the HTTP layer answers a structured
503 with ``Retry-After``).
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from collections import deque
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from dataclasses import replace
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.hashcons_store import active_store, install_shared_store
from repro.session import (
    DEFAULT_WINDOW,
    PipelineConfig,
    Session,
    VerifyRequest,
    VerifyResult,
    parse_pipeline_spec,
)
from repro.udp.trace import ReasonCode, ReasonTally, Verdict

POOL_MODES = ("auto", "thread", "process")

#: Slack added on top of the cooperative pipeline budget before a
#: process member is declared wedged and killed.  The cooperative
#: budget fires inside the engine in the normal case; the hard deadline
#: only exists for loops that stop reaching the budget checks.
HARD_TIMEOUT_GRACE = 30.0


def error_record(code: str, reason: str, **fields: object) -> Dict[str, object]:
    """The structured error envelope every non-result answer uses."""
    record: Dict[str, object] = {"code": code, "reason": reason}
    record.update(fields)
    return {"error": record}


def default_pool_size() -> int:
    """One member per core — the ``--pool-size`` default."""
    return max(1, os.cpu_count() or 1)


def _fork_available() -> bool:
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def resolve_pool_mode(mode: str, size: int) -> str:
    """Collapse ``auto`` to a concrete member kind for this platform.

    An explicit ``process`` request on a platform without the ``fork``
    start method fails loudly here — before any state (shared store,
    members) is built — rather than surfacing as a late
    ``multiprocessing`` error.
    """
    if mode not in POOL_MODES:
        raise ValueError(
            f"unknown pool mode {mode!r}; expected one of {POOL_MODES}"
        )
    if mode == "process" and not _fork_available():
        raise ValueError(
            "pool mode 'process' requires the fork start method; "
            "use 'thread' (or 'auto') on this platform"
        )
    if mode != "auto":
        return mode
    if size <= 1 or not _fork_available():
        return "thread"
    return "process"


# ---------------------------------------------------------------------------
# The work a member does (runs in-process or inside a forked worker)
# ---------------------------------------------------------------------------


def _config_for(
    base: PipelineConfig,
    cache: Dict[str, PipelineConfig],
    spec: Optional[str],
) -> PipelineConfig:
    """The effective pipeline: ``base`` overridden by a ``spec`` string.

    Raises ``ValueError`` on a malformed spec or unknown tactic; parsed
    overrides are cached so request streams pay validation once per spec.
    """
    if spec is None or spec == "":
        return base
    if not isinstance(spec, str):
        raise ValueError(
            "'pipeline' must be a comma-separated string of tactic names"
        )
    config = cache.get(spec)
    if config is None:
        config = replace(base, tactics=tuple(parse_pipeline_spec(spec)))
        if len(cache) < 64:
            cache[spec] = config
    return config


def _decide_json(
    session: Session,
    configs: Dict[str, PipelineConfig],
    obj: Mapping[str, object],
    spec: Optional[str],
) -> Dict[str, object]:
    """Decide one JSON request payload on ``session``; the result record."""
    request = VerifyRequest.from_json(obj)
    config = _config_for(session.config, configs, spec)
    return session.verify(request, config=config).to_json()


def _member_info(session: Session) -> Dict[str, object]:
    """One member's warmth snapshot (session caches, shared store).

    Kept deliberately small: process members pickle this over the pipe
    with every reply to keep the parent's ``/stats`` view fresh without
    a blocking round-trip, so it carries only what the stats rollup
    consumes (the process-wide memo-layer counters stay visible via the
    serving process's own :func:`repro.cache_stats`).
    """
    info: Dict[str, object] = {
        "session": {"requests": session.stats.requests, **session.cache_info()},
    }
    store = active_store()
    if store is not None:
        info["store"] = store.stats()
    return info


def _error_result_record(
    obj: Mapping[str, object], reason: str
) -> Dict[str, object]:
    """A structured ``error``-verdict result for a member-level failure."""
    return VerifyResult(
        request_id=str(obj.get("id", "")),
        verdict=Verdict.ERROR,
        reason_code=ReasonCode.INTERNAL_ERROR,
        reason=reason,
    ).to_json()


def _timeout_result_record(
    obj: Mapping[str, object], reason: str
) -> Dict[str, object]:
    """A structured ``timeout`` result for a hard-killed wedged member."""
    return VerifyResult(
        request_id=str(obj.get("id", "")),
        verdict=Verdict.TIMEOUT,
        reason_code=ReasonCode.BUDGET_EXHAUSTED,
        reason=reason,
    ).to_json()


def _close_inherited_fds(conn) -> None:
    """Drop every descriptor a forked worker inherited except its pipe.

    A member respawned while the server is live forks with client
    sockets and the listening socket open; the child holding those
    duplicates would keep connection-close-terminated batch streams
    from ever reaching EOF on the client.  The shared store's
    descriptor is also closed here — it is told to forget it and
    re-opens lazily for this pid.
    """
    try:
        store = active_store()
        if store is not None:
            store.forget_descriptor()
        keep = conn.fileno()
        try:
            limit = min(int(os.sysconf("SC_OPEN_MAX")), 65536)
        except (AttributeError, ValueError, OSError):
            limit = 4096
        os.closerange(3, keep)
        os.closerange(keep + 1, limit)
    except Exception:  # noqa: BLE001 - hygiene must never kill the worker
        pass


def _process_member_main(conn, session: Session) -> None:
    """The forked worker loop: recv (obj, spec), send the result record.

    The session (and the installed shared store, and the warm memo
    layers) arrive via fork copy-on-write; the store re-opens its file
    descriptor on first use in the new pid.  The loop never raises: any
    failure is sent back as an ``("error", reason, info)`` reply, and a
    broken pipe ends the process.
    """
    _close_inherited_fds(conn)
    configs: Dict[str, PipelineConfig] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if message is None:
            break
        kind, obj, spec = message
        try:
            if kind != "verify":
                reply = ("error", f"unknown message kind {kind!r}", None)
            else:
                record = _decide_json(session, configs, obj, spec)
                reply = ("ok", record, _member_info(session))
        except Exception as err:  # noqa: BLE001 - isolation contract
            reply = ("error", f"{type(err).__name__}: {err}", None)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


# ---------------------------------------------------------------------------
# Members
# ---------------------------------------------------------------------------


class _MemberBase:
    """Parent-side bookkeeping every member kind shares."""

    mode = "?"

    def __init__(self, member_id: int) -> None:
        self.member_id = member_id
        self.tally = ReasonTally()
        self.requests = 0
        self.failures = 0
        self.restarts = 0
        self.hard_timeouts = 0

    def _record(self, record: Mapping[str, object]) -> None:
        self.requests += 1
        self.tally.record_json(record)  # foreign record shape: count only

    def snapshot(self) -> Dict[str, object]:
        tallies = self.tally.snapshot()
        return {
            "id": self.member_id,
            "mode": self.mode,
            "requests": self.requests,
            "failures": self.failures,
            "restarts": self.restarts,
            "hard_timeouts": self.hard_timeouts,
            "verdicts": tallies["verdicts"],
            "reason_codes": tallies["reason_codes"],
            **self.info(),
        }

    # subclass API ---------------------------------------------------------

    def run_json(
        self,
        obj: Mapping[str, object],
        spec: Optional[str],
        deadline: Optional[float] = None,
    ) -> Dict[str, object]:
        raise NotImplementedError

    def info(self) -> Dict[str, object]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class _ThreadMember(_MemberBase):
    """An in-process session; exclusivity is the idle queue's job.

    Thread members cannot be hard-killed (Python offers no safe way to
    terminate a thread), so the ``deadline`` is ignored here — their
    isolation remains the cooperative pipeline budget.  Deployments that
    need wedge-proof isolation run ``process`` members.
    """

    mode = "thread"

    def __init__(self, member_id: int, session: Session) -> None:
        super().__init__(member_id)
        self.session = session
        self._configs: Dict[str, PipelineConfig] = {}

    def run_json(
        self,
        obj: Mapping[str, object],
        spec: Optional[str],
        deadline: Optional[float] = None,
    ) -> Dict[str, object]:
        try:
            record = _decide_json(self.session, self._configs, obj, spec)
        except Exception as err:  # noqa: BLE001 - isolation contract
            self.failures += 1
            record = _error_result_record(obj, f"{type(err).__name__}: {err}")
        self._record(record)
        return record

    def info(self) -> Dict[str, object]:
        return _member_info(self.session)

    def close(self) -> None:
        pass


class _ProcessMember(_MemberBase):
    """A forked worker process holding a copy-on-write warm session."""

    mode = "process"

    def __init__(self, member_id: int, prototype: Session, context) -> None:
        super().__init__(member_id)
        self._prototype = prototype
        self._context = context
        self.last_info: Dict[str, object] = {}
        self._spawn()

    def _spawn(self) -> None:
        parent_conn, child_conn = self._context.Pipe()
        self._conn = parent_conn
        self._proc = self._context.Process(
            target=_process_member_main,
            args=(child_conn, self._prototype),
            name=f"udp-pool-member-{self.member_id}",
            daemon=True,
        )
        self._proc.start()
        child_conn.close()

    def run_json(
        self,
        obj: Mapping[str, object],
        spec: Optional[str],
        deadline: Optional[float] = None,
    ) -> Dict[str, object]:
        try:
            self._conn.send(("verify", dict(obj), spec))
            if deadline is not None and not self._conn.poll(deadline):
                # The worker is wedged (alive but not answering): a loop
                # that stopped reaching the cooperative budget checks.
                # Kill it, respawn from the warm prototype, and answer a
                # structured timeout so the reader thread is never held
                # hostage by one bad pair.
                self.failures += 1
                self.hard_timeouts += 1
                self.restarts += 1
                record = _timeout_result_record(
                    obj,
                    f"pool member {self.member_id} exceeded the hard "
                    f"deadline of {deadline:.1f}s; member killed and "
                    "respawned",
                )
                self._kill()
                self._spawn()
                self._record(record)
                return record
            status, payload, info = self._conn.recv()
        except (EOFError, BrokenPipeError, OSError) as err:
            # The worker died mid-request (crash, OOM kill, ...): answer
            # with a structured error record and respawn from the warm
            # prototype so the pool heals without dropping capacity.
            self.failures += 1
            self.restarts += 1
            record = _error_result_record(
                obj,
                f"pool member {self.member_id} died mid-request "
                f"({type(err).__name__}); member respawned",
            )
            try:
                self.close()
            finally:
                self._spawn()
            self._record(record)
            return record
        if status == "ok":
            record = payload
            if info:
                self.last_info = info
        else:
            self.failures += 1
            record = _error_result_record(obj, str(payload))
        self._record(record)
        return record

    def info(self) -> Dict[str, object]:
        return dict(self.last_info)

    def _kill(self) -> None:
        """Tear the worker down without waiting for cooperation."""
        try:
            self._proc.terminate()
            self._proc.join(timeout=5)
            if self._proc.is_alive():  # pragma: no cover - stuck in a syscall
                self._proc.kill()
                self._proc.join(timeout=5)
        except (OSError, AttributeError):  # pragma: no cover - defensive
            pass
        try:
            self._conn.close()
        except OSError:
            pass

    def close(self) -> None:
        try:
            self._conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self._proc.join(timeout=5)
        if self._proc.is_alive():  # pragma: no cover - wedged worker
            self._proc.terminate()
            self._proc.join(timeout=5)
        try:
            self._conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------


class SessionPool:
    """N warm per-catalog sessions dispatching work items concurrently.

    Construct with an existing :class:`~repro.session.Session` (its
    catalog and config become the prototype), a
    :class:`~repro.session.PipelineConfig`, or ``program`` text.  The
    pool owns an idle queue (each member serves exactly one work item at
    a time — no cross-talk by construction), a dispatcher executor for
    batch fan-out, and optionally the shared memo store its members warm
    each other through.
    """

    def __init__(
        self,
        size: Optional[int] = None,
        *,
        mode: str = "auto",
        session: Optional[Session] = None,
        pipeline: Optional[PipelineConfig] = None,
        program: Optional[str] = None,
        shared_store=None,
        store_path: Optional[str] = None,
        store_backend: str = "auto",
        member_timeout: Optional[float] = None,
    ) -> None:
        if session is not None and pipeline is not None:
            raise ValueError(
                "pass either a session or a pipeline config, not both — "
                "the pipeline is the session's config"
            )
        self.size = max(1, int(size if size is not None else default_pool_size()))
        self.mode = resolve_pool_mode(mode, self.size)
        if session is not None:
            prototype = session
        elif program:
            prototype = Session.from_program_text(program, pipeline)
        else:
            prototype = Session(config=pipeline)
        prototype.constraint_set()  # warm before clone/fork
        self._prototype = prototype
        self.config = prototype.config
        self._configs: Dict[str, PipelineConfig] = {}
        # Hard per-pair isolation: process members that fail to answer
        # within this many seconds are killed and respawned (None derives
        # the deadline from the pipeline budgets per request).  Thread
        # members rely on the cooperative budget alone.
        self.member_timeout = (
            None if member_timeout is None else max(0.1, float(member_timeout))
        )

        # The shared store must be installed *before* members fork so
        # they inherit it.  None = auto (process mode, or whenever an
        # explicit path/backend asks for durability), False = off,
        # True = on, or pass a ready store object.  ``store_backend``
        # picks the implementation (``auto`` resolves to the durable
        # SQLite backend; ``flock`` is the legacy flat file).
        self._owns_store = False
        self._previous_store = None
        self._installed_store = False
        if shared_store is None:
            shared_store = self.mode == "process" or store_path is not None
        if shared_store is False:
            self.store = None
        elif shared_store is True:
            from repro.store import open_store  # local: keep import light

            self.store = open_store(store_path, backend=store_backend)
            self._owns_store = True
        else:
            self.store = shared_store
        if self.store is not None:
            self._previous_store = install_shared_store(self.store)
            self._installed_store = True

        self.members: List[_MemberBase] = []
        self._idle: "queue.Queue[_MemberBase]" = queue.Queue()
        try:
            try:
                self._build_members()
            except (OSError, PermissionError):
                # Process creation unavailable (sandboxes): degrade to
                # in-process members rather than failing to boot.
                for member in self.members:
                    member.close()
                self.members = []
                self._idle = queue.Queue()
                self.mode = "thread"
                self._build_members()
            for member in self.members:
                self._idle.put(member)
            self._executor = ThreadPoolExecutor(
                max_workers=self.size, thread_name_prefix="udp-pool-dispatch"
            )
        except BaseException:
            # Never leave a half-built pool's globals behind: uninstall
            # the shared store (and delete its temp file) and reap any
            # members already spawned before re-raising.
            for member in self.members:
                member.close()
            self._release_store()
            raise
        self._closed = False

    def _build_members(self) -> None:
        if self.mode == "process":
            import multiprocessing

            context = multiprocessing.get_context("fork")
            for member_id in range(self.size):
                self.members.append(
                    _ProcessMember(member_id, self._prototype, context)
                )
        else:
            for member_id in range(self.size):
                session = (
                    self._prototype
                    if member_id == 0
                    else self._prototype.clone()
                )
                self.members.append(_ThreadMember(member_id, session))

    # -- lifecycle ---------------------------------------------------------

    def _release_store(self) -> None:
        if self._installed_store:
            install_shared_store(self._previous_store)
            self._installed_store = False
        if self._owns_store and self.store is not None:
            self._owns_store = False
            self.store.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=False, cancel_futures=True)
        for member in self.members:
            member.close()
        self._release_store()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- validation --------------------------------------------------------

    def config_for(self, spec: Optional[str]) -> PipelineConfig:
        """Validate (and cache) a pipeline override against the base config.

        Raises ``ValueError`` on a malformed spec or unknown tactic —
        callers turn that into a structured 400 *before* any member is
        consumed.
        """
        return _config_for(self.config, self._configs, spec)

    # -- dispatch ----------------------------------------------------------

    def _hard_deadline(
        self, obj: Mapping[str, object], spec: Optional[str]
    ) -> float:
        """Seconds a member may spend on this item before being killed.

        Explicit ``member_timeout`` wins; otherwise the deadline is the
        sum of the effective pipeline's per-tactic budgets (honoring a
        per-request ``timeout_seconds`` override) plus a grace margin —
        generous enough that the cooperative budget always fires first
        on a healthy member.
        """
        if self.member_timeout is not None:
            return self.member_timeout
        try:
            config = self.config_for(spec)
            override = obj.get("timeout_seconds")
            if override is not None:
                budget = float(override) * max(1, len(config.tactics))
            else:
                budget = sum(
                    config.budget_for(tactic) for tactic in config.tactics
                )
        except (TypeError, ValueError):  # pragma: no cover - validated upstream
            budget = 0.0
        return max(1.0, budget) + HARD_TIMEOUT_GRACE

    def _dispatch(
        self, obj: Mapping[str, object], spec: Optional[str]
    ) -> Dict[str, object]:
        deadline = self._hard_deadline(obj, spec)
        member = self._idle.get()
        try:
            return member.run_json(obj, spec, deadline)
        finally:
            self._idle.put(member)

    def verify_json(self, obj: Mapping[str, object]) -> Dict[str, object]:
        """Decide one ``POST /verify`` payload (already JSON-decoded).

        Envelope errors raise ``ValueError`` (→ 400); everything past
        the envelope is the session's never-raises contract, so the
        returned record — including ``unsupported`` and ``error``
        verdicts — is a normal 200 answer.
        """
        for key in ("left", "right"):
            if key not in obj:
                raise ValueError(f"missing required field {key!r}")
        spec = obj.get("pipeline")
        if spec is not None and not isinstance(spec, str):
            raise ValueError(
                "'pipeline' must be a comma-separated string of tactic names"
            )
        self.config_for(spec)  # validate before consuming a member
        VerifyRequest.from_json(obj)  # envelope type errors → 400, not 500
        return self._dispatch(obj, spec)

    def verify_stream(
        self,
        lines: Iterable[str],
        *,
        pipeline: Optional[str] = None,
        window: int = DEFAULT_WINDOW,
    ) -> Iterator[Dict[str, object]]:
        """Decide a JSONL batch: one record per input line, in input order.

        Lines are parsed as they arrive and fanned out across the pool
        through a bounded window of in-flight dispatches; output order is
        exactly input order regardless of which member finishes first.  A
        malformed line becomes an in-stream ``bad-request`` error record
        carrying its line number — it never consumes a member, and
        sibling lines are untouched.
        """
        self.config_for(pipeline)  # fail before the caller commits to a 200
        window = max(1, int(window))
        return self._verify_stream(lines, pipeline, window)

    def _verify_stream(
        self, lines: Iterable[str], spec: Optional[str], window: int
    ) -> Iterator[Dict[str, object]]:
        pending: "deque[Future]" = deque()

        def resolve(future: Future) -> Dict[str, object]:
            # CancelledError is a BaseException: a pool closed mid-batch
            # must still answer with in-stream records, never a handler
            # crash.
            try:
                return future.result()
            except (Exception, CancelledError) as err:  # noqa: BLE001
                return error_record(
                    "internal-error", f"{type(err).__name__}: {err}"
                )

        lines_iter = iter(lines)
        lineno = 0
        while True:
            try:
                raw = next(lines_iter)
            except StopIteration:
                break
            except Exception:
                # The transport broke mid-body (e.g. malformed chunk
                # framing): answer every fully received line before
                # letting the caller report the framing error.
                while pending:
                    yield resolve(pending.popleft())
                raise
            lineno += 1
            text = raw.strip()
            if not text:
                continue
            try:
                obj = json.loads(text)
                if not isinstance(obj, dict):
                    raise ValueError("each line must be a JSON object")
                for key in ("left", "right"):
                    if key not in obj:
                        raise ValueError(f"missing required field {key!r}")
                VerifyRequest.from_json(obj)  # validate before dispatch
                future = self._executor.submit(self._dispatch, obj, spec)
            except (KeyError, TypeError, ValueError) as err:
                future = Future()
                future.set_result(
                    error_record("bad-request", str(err), line=lineno)
                )
            pending.append(future)
            while len(pending) >= window:
                yield resolve(pending.popleft())
        while pending:
            yield resolve(pending.popleft())

    def run_corpus(
        self,
        dataset: Optional[str] = None,
        pipeline: Optional[str] = None,
    ) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
        """Replay the built-in corpus through the pool; (summary, records).

        The ``POST /corpus`` health benchmark: after one call,
        ``GET /stats`` shows a full corpus worth of verdict and
        reason-code tallies plus the memo/store warmth it produced.
        """
        from repro.corpus import all_rules, as_verify_requests

        self.config_for(pipeline)
        if dataset in ("", "all"):
            dataset = None
        if dataset is not None:
            known = sorted({rule.dataset for rule in all_rules()})
            if dataset not in known:
                raise ValueError(
                    f"unknown dataset {dataset!r}; expected one of {known}"
                )
        requests = as_verify_requests(dataset)
        started = time.monotonic()
        futures = [
            self._executor.submit(self._dispatch, request.to_json(), pipeline)
            for request in requests
        ]
        records = []
        for future in futures:
            try:
                records.append(future.result())
            except (Exception, CancelledError) as err:  # noqa: BLE001
                records.append(
                    _error_result_record({}, f"{type(err).__name__}: {err}")
                )
        elapsed = time.monotonic() - started
        verdicts: Dict[str, int] = {}
        reasons: Dict[str, int] = {}
        for record in records:
            verdict = str(record.get("verdict", "error"))
            verdicts[verdict] = verdicts.get(verdict, 0) + 1
            reason = str(record.get("reason_code", ""))
            reasons[reason] = reasons.get(reason, 0) + 1
        summary: Dict[str, object] = {
            "dataset": dataset or "all",
            "rules": len(records),
            "elapsed_seconds": round(elapsed, 6),
            "rules_per_second": (
                round(len(records) / elapsed, 3) if elapsed > 0 else None
            ),
            "verdicts": dict(sorted(verdicts.items())),
            "reason_codes": dict(sorted(reasons.items())),
            "pool_size": self.size,
            "pool_mode": self.mode,
        }
        return summary, records

    # -- observability -----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Per-member and rolled-up tallies, plus the shared-store view."""
        members = [member.snapshot() for member in self.members]
        verdicts: Dict[str, int] = {}
        reasons: Dict[str, int] = {}
        session_rollup = {
            "requests": 0,
            "compile_cache": {"hits": 0, "misses": 0, "entries": 0},
            "programs": 0,
            "program_compile_entries": 0,
        }
        for snapshot in members:
            for key, count in snapshot["verdicts"].items():
                verdicts[key] = verdicts.get(key, 0) + count
            for key, count in snapshot["reason_codes"].items():
                reasons[key] = reasons.get(key, 0) + count
            session = snapshot.get("session") or {}
            session_rollup["requests"] += session.get("requests", 0)
            compile_cache = session.get("compile_cache") or {}
            for key in ("hits", "misses", "entries"):
                session_rollup["compile_cache"][key] += compile_cache.get(key, 0)
            session_rollup["programs"] += session.get("programs", 0)
            session_rollup["program_compile_entries"] += session.get(
                "program_compile_entries", 0
            )
        store: Dict[str, object] = {"installed": self.store is not None}
        if self.store is not None:
            if self.mode == "thread":
                # Thread members share this process's store object; its
                # counters already are the rollup.
                store.update(self.store.stats())
            else:
                # Each member process owns its counters; sum the
                # last-known views and keep the parent's entry count.
                rollup = {
                    "hits": 0,
                    "misses": 0,
                    "publishes": 0,
                    "dropped": 0,
                    "compactions": 0,
                    "expired": 0,
                    "errors": 0,
                }
                for snapshot in members:
                    member_store = snapshot.get("store") or {}
                    for key in rollup:
                        rollup[key] += member_store.get(key, 0)
                store.update(self.store.stats())
                store.update(rollup)
            verdict_stats = getattr(self.store, "verdict_stats", None)
            if verdict_stats is not None:
                # The durable cross-restart view: historical verdict
                # tallies and hit rates straight from the database.
                store["verdict_cache"] = verdict_stats()
        return {
            "size": self.size,
            "mode": self.mode,
            "requests": sum(m["requests"] for m in members),
            "hard_timeouts": sum(m["hard_timeouts"] for m in members),
            "verdicts": dict(sorted(verdicts.items())),
            "reason_codes": dict(sorted(reasons.items())),
            "members": members,
            "session": {
                "requests": session_rollup["requests"],
                "compile_cache": session_rollup["compile_cache"],
                "programs": session_rollup["programs"],
                "program_compile_entries": session_rollup[
                    "program_compile_entries"
                ],
            },
            "store": store,
        }


# ---------------------------------------------------------------------------
# Backpressure
# ---------------------------------------------------------------------------


class AdmissionGate:
    """Bounded admission: ``max_inflight`` executing + ``max_queued`` waiting.

    :meth:`try_enter` admits immediately while capacity remains; past
    that, up to ``max_queued`` callers wait up to ``wait_timeout``
    seconds for a slot, and everyone else is refused on the spot.  The
    HTTP layer turns a refusal into a structured 503 with
    ``Retry-After`` — load sheds at the front door instead of piling
    onto the member queue.
    """

    def __init__(
        self,
        max_inflight: int,
        max_queued: Optional[int] = None,
        wait_timeout: float = 0.5,
    ) -> None:
        self.max_inflight = max(1, int(max_inflight))
        self.max_queued = (
            self.max_inflight if max_queued is None else max(0, int(max_queued))
        )
        self.wait_timeout = max(0.0, float(wait_timeout))
        self._cond = threading.Condition()
        self._inflight = 0
        self._queued = 0
        self.admitted = 0
        self.rejected = 0
        self.peak_inflight = 0

    def try_enter(self) -> bool:
        with self._cond:
            if self._inflight >= self.max_inflight:
                if self._queued >= self.max_queued or self.wait_timeout <= 0:
                    self.rejected += 1
                    return False
                self._queued += 1
                try:
                    deadline = time.monotonic() + self.wait_timeout
                    while self._inflight >= self.max_inflight:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            self.rejected += 1
                            return False
                        self._cond.wait(remaining)
                finally:
                    self._queued -= 1
            self._inflight += 1
            self.admitted += 1
            self.peak_inflight = max(self.peak_inflight, self._inflight)
            return True

    def leave(self) -> None:
        with self._cond:
            self._inflight = max(0, self._inflight - 1)
            self._cond.notify()

    def snapshot(self) -> Dict[str, object]:
        with self._cond:
            return {
                "max_inflight": self.max_inflight,
                "max_queued": self.max_queued,
                "wait_timeout": self.wait_timeout,
                "inflight": self._inflight,
                "queued": self._queued,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "peak_inflight": self.peak_inflight,
            }


__all__ = [
    "AdmissionGate",
    "POOL_MODES",
    "SessionPool",
    "default_pool_size",
    "error_record",
    "resolve_pool_mode",
]
