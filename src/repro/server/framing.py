"""HTTP body framing shared by the threaded server and the front door.

The threaded ``http.server`` path reads bodies with blocking generators;
the selectors front door feeds bytes as they arrive off the wire.  Both
must agree byte-for-byte on framing semantics — Content-Length vs
chunked Transfer-Encoding, line splitting with the oversized-line clip,
and what counts as a truncated upload — so the decoding state machines
live here and each transport drives them its own way.

Incremental decoders
--------------------

* :class:`LengthDecoder` — a ``Content-Length`` body: counts down,
  reports completion, and flags EOF-before-done as
  :class:`TruncatedBody` (silently accepting the prefix is the bug this
  replaces).
* :class:`ChunkedDecoder` — chunked ``Transfer-Encoding`` as a
  resumable state machine; framing violations raise
  :class:`BadChunkedBody` with the same messages the blocking decoder
  uses, so in-stream error records are transport-independent.
* :class:`LineSplitter` — byte stream → text lines with the
  oversized-line clip semantics the batch route pins in its fuzz tests:
  a line longer than the limit yields exactly one truncated string (its
  overflow is discarded up to the newline) so line numbering stays
  aligned with the client's input.

Request heads
-------------

:func:`parse_request_head` parses the request line and headers from the
raw bytes the front door accumulated (everything before ``CRLF CRLF``),
tolerating bare-``LF`` clients the same way ``http.server`` does.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Chunk-extension allowance when reading a chunk-size line.
CHUNK_SIZE_LINE_LIMIT = 1024


class BadChunkedBody(ValueError):
    """Malformed chunked Transfer-Encoding framing."""


class TruncatedBody(ValueError):
    """The connection ended before the announced body arrived."""

    def __init__(self, received: int, expected: int) -> None:
        super().__init__(
            f"body truncated: received {received} of {expected} bytes "
            "before the connection ended"
        )
        self.received = received
        self.expected = expected


class LengthDecoder:
    """Incremental ``Content-Length`` body: feed bytes, collect payload."""

    def __init__(self, length: int) -> None:
        self.expected = max(0, int(length))
        self.remaining = self.expected
        self.trailing = b""

    @property
    def done(self) -> bool:
        return self.remaining == 0

    def feed(self, data: bytes) -> bytes:
        """Consume ``data``; the payload portion (surplus → ``trailing``)."""
        if self.remaining == 0:
            self.trailing += data
            return b""
        take = data[: self.remaining]
        self.remaining -= len(take)
        if len(data) > len(take):
            self.trailing += data[len(take) :]
        return take

    def finish(self) -> None:
        """Declare EOF; raises :class:`TruncatedBody` if bytes are owed."""
        if self.remaining > 0:
            raise TruncatedBody(self.expected - self.remaining, self.expected)


class ChunkedDecoder:
    """Incremental chunked Transfer-Encoding decoder.

    ``feed`` returns the decoded payload bytes of whatever arrived;
    chunk boundaries carry no meaning to callers.  After the
    terminating 0-chunk and trailer section, ``done`` is true and any
    surplus bytes land in ``trailing`` (the next pipelined request).
    """

    _SIZE, _DATA, _DATA_CRLF, _TRAILER, _DONE = range(5)

    def __init__(self) -> None:
        self._state = self._SIZE
        self._buffer = b""
        self._chunk_remaining = 0
        self.trailing = b""

    @property
    def done(self) -> bool:
        return self._state == self._DONE

    def feed(self, data: bytes) -> bytes:  # noqa: C901 - one state machine
        if self._state == self._DONE:
            self.trailing += data
            return b""
        self._buffer += data
        out: List[bytes] = []
        while True:
            if self._state == self._SIZE:
                newline = self._buffer.find(b"\n")
                if newline < 0:
                    if len(self._buffer) > CHUNK_SIZE_LINE_LIMIT:
                        raise BadChunkedBody(
                            "truncated or oversized chunk-size line"
                        )
                    break
                size_line = self._buffer[: newline + 1]
                if len(size_line) > CHUNK_SIZE_LINE_LIMIT + 1:
                    raise BadChunkedBody(
                        "truncated or oversized chunk-size line"
                    )
                self._buffer = self._buffer[newline + 1 :]
                token = size_line.split(b";", 1)[0].strip()
                try:
                    size = int(token, 16)
                except ValueError:
                    raise BadChunkedBody(
                        f"invalid chunk size {token[:32]!r}"
                    ) from None
                if size < 0:
                    raise BadChunkedBody(f"negative chunk size {size}")
                if size == 0:
                    self._state = self._TRAILER
                    continue
                self._chunk_remaining = size
                self._state = self._DATA
            elif self._state == self._DATA:
                if not self._buffer:
                    break
                take = self._buffer[: self._chunk_remaining]
                self._buffer = self._buffer[len(take) :]
                self._chunk_remaining -= len(take)
                out.append(take)
                if self._chunk_remaining == 0:
                    self._state = self._DATA_CRLF
            elif self._state == self._DATA_CRLF:
                if len(self._buffer) < 2:
                    break
                if self._buffer[:2] != b"\r\n":
                    raise BadChunkedBody("chunk data not terminated by CRLF")
                self._buffer = self._buffer[2:]
                self._state = self._SIZE
            elif self._state == self._TRAILER:
                newline = self._buffer.find(b"\n")
                if newline < 0:
                    if len(self._buffer) > CHUNK_SIZE_LINE_LIMIT:
                        raise BadChunkedBody("oversized trailer line")
                    break
                line = self._buffer[: newline + 1]
                self._buffer = self._buffer[newline + 1 :]
                if line in (b"\r\n", b"\n"):
                    self._state = self._DONE
                    self.trailing += self._buffer
                    self._buffer = b""
                    break
            else:  # pragma: no cover - _DONE handled on entry
                break
        return b"".join(out)

    def finish(self) -> None:
        """Declare EOF; an unterminated chunk stream is a framing error."""
        if self._state != self._DONE:
            raise BadChunkedBody("truncated chunk data")


class LineSplitter:
    """Byte stream → text lines with the oversized-line clip semantics.

    ``limit`` is read per call so callers may pass a module global that
    tests monkeypatch (the batch fuzz suite pins these semantics).
    """

    def __init__(self) -> None:
        self._buffer = b""
        self._clipped: Optional[bytes] = None

    def feed(self, chunk: bytes, limit: int) -> List[str]:
        lines: List[str] = []
        self._buffer += chunk
        while True:
            if self._clipped is not None:
                newline = self._buffer.find(b"\n")
                if newline < 0:
                    self._buffer = b""  # keep discarding the oversized tail
                    break
                lines.append(self._clipped.decode("utf-8", "replace"))
                self._clipped = None
                self._buffer = self._buffer[newline + 1 :]
                continue
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = self._buffer[: newline + 1]
                self._buffer = self._buffer[newline + 1 :]
                if len(line) > limit:
                    line = line[:limit]
                lines.append(line.decode("utf-8", "replace"))
                continue
            if len(self._buffer) > limit:
                self._clipped = self._buffer[:limit]
                self._buffer = b""
            break
        return lines

    def finish(self) -> List[str]:
        """Flush the final unterminated line, if any."""
        if self._clipped is not None:
            tail = [self._clipped.decode("utf-8", "replace")]
            self._clipped = None
            return tail
        if self._buffer:
            tail = [self._buffer.decode("utf-8", "replace")]
            self._buffer = b""
            return tail
        return []


def parse_request_head(
    head: bytes,
) -> Tuple[str, str, str, Dict[str, str]]:
    """Parse ``method, target, version, headers`` from a raw request head.

    ``head`` is everything before the blank line (exclusive).  Raises
    ``ValueError`` on a malformed request line or header; duplicate
    headers are comma-joined per RFC 7230 §3.2.2.
    """
    lines = head.split(b"\n")
    request_line = lines[0].rstrip(b"\r").decode("latin-1")
    parts = request_line.split()
    if len(parts) == 2:
        method, target = parts
        version = "HTTP/0.9"
    elif len(parts) == 3:
        method, target, version = parts
        if not version.startswith("HTTP/"):
            raise ValueError(f"malformed HTTP version {version!r}")
    else:
        raise ValueError(f"malformed request line {request_line!r}")
    headers: Dict[str, str] = {}
    for raw in lines[1:]:
        raw = raw.rstrip(b"\r")
        if not raw:
            continue
        if raw[:1] in (b" ", b"\t"):
            raise ValueError("obsolete header line folding is not supported")
        name, sep, value = raw.partition(b":")
        if not sep or not name.strip():
            raise ValueError(f"malformed header line {raw[:64]!r}")
        key = name.strip().decode("latin-1").lower()
        text = value.strip().decode("latin-1")
        if key in headers:
            headers[key] = f"{headers[key]}, {text}"
        else:
            headers[key] = text
    return method, target, version, headers


__all__ = [
    "BadChunkedBody",
    "CHUNK_SIZE_LINE_LIMIT",
    "ChunkedDecoder",
    "LengthDecoder",
    "LineSplitter",
    "TruncatedBody",
    "parse_request_head",
]
