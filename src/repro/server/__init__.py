"""repro.server — the long-lived HTTP verification service.

The batch subsystem (:mod:`repro.service`) answers "decide this corpus
once"; this package answers "keep deciding, indefinitely": a
stdlib-only threaded HTTP server that owns one warm
:class:`~repro.session.Session` — hot compile caches, program-text
sub-sessions, and the normalize/canonize memo layers — and exposes the
structured request/result wire format over four routes:

========================  ===================================================
``POST /verify``          one JSON :class:`~repro.session.VerifyRequest`
``POST /verify/batch``    JSONL in → JSONL out, streamed in input order
``GET /healthz``          liveness + uptime
``GET /stats``            verdict/reason-code counters, cache occupancy
========================  ===================================================

Start it from the CLI (``udp-prove serve --port 8642``), or embed it::

    from repro.server import VerificationServer

    with VerificationServer(port=0) as server:   # ephemeral port
        ...  # POST to server.url

Errors are always structured records, never traceback bodies; see
:mod:`repro.server.http` for the wire schema, the error-isolation
guarantees, and the thread-safety contract of the shared session.
"""

from repro.server.http import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    MAX_LINE_BYTES,
    MAX_REQUEST_BYTES,
    VerificationServer,
    error_record,
)
from repro.server.stats import ServerStats

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "MAX_LINE_BYTES",
    "MAX_REQUEST_BYTES",
    "ServerStats",
    "VerificationServer",
    "error_record",
]
