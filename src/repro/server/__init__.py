"""repro.server — the long-lived HTTP verification service.

The batch subsystem (:mod:`repro.service`) answers "decide this corpus
once"; this package answers "keep deciding, indefinitely": a
stdlib-only threaded HTTP server over a :class:`SessionPool` of warm
per-catalog :class:`~repro.session.Session` members — hot compile
caches, program-text sub-sessions, the normalize/canonize memo layers,
and (in process mode) a cross-process shared memo store that lets
members warm each other — exposing the structured request/result wire
format over six routes:

========================  ===================================================
``POST /verify``          one JSON :class:`~repro.session.VerifyRequest`
``POST /verify/batch``    JSONL in → JSONL out, streamed in input order
``POST /corpus``          replay the built-in corpus; summary JSON
``POST /cluster``         JSONL queries in → JSONL placement records out,
                          grouped by proved equivalence
                          (:mod:`repro.service.clustering`)
``GET /healthz``          liveness + uptime
``GET /stats``            per-member + rolled-up tallies, caches, admission
========================  ===================================================

Two front ends share those routes, the pool, and the admission gate:
:class:`VerificationServer` (one thread per connection — simple, fine
for tens of clients) and :class:`FrontDoorServer` (a selectors event
loop holding thousands of connections, parsing off-thread-free and
dispatching by consistent-hashed request digest so each member's caches
stay hot for its shard — ``udp-prove serve --frontdoor``).

Start one from the CLI (``udp-prove serve --port 8642 --pool-size 4``),
or embed it::

    from repro.server import VerificationServer

    with VerificationServer(port=0, pool_size=4) as server:
        ...  # POST to server.url

Errors are always structured records, never traceback bodies; past the
admission bound the server answers 503 with ``Retry-After``.  See
:mod:`repro.server.http` for the wire schema and error isolation, and
:mod:`repro.server.pool` for the dispatch/ordering/backpressure
contract.
"""

from repro.server.frontdoor import FrontDoorServer
from repro.server.http import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    MAX_LINE_BYTES,
    MAX_REQUEST_BYTES,
    VerificationServer,
    error_record,
)
from repro.server.pool import (
    AdmissionDecision,
    AdmissionGate,
    SessionPool,
    default_pool_size,
    request_shard_digest,
    resolve_pool_mode,
)
from repro.server.stats import ServerStats

__all__ = [
    "AdmissionDecision",
    "AdmissionGate",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "FrontDoorServer",
    "MAX_LINE_BYTES",
    "MAX_REQUEST_BYTES",
    "ServerStats",
    "SessionPool",
    "VerificationServer",
    "default_pool_size",
    "error_record",
    "request_shard_digest",
    "resolve_pool_mode",
]
