"""Exception hierarchy for the repro (UDP) library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single type at the API boundary.  The subtypes partition failures
by pipeline stage: lexing/parsing, name resolution, compilation to
U-expressions, and the decision procedure itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class LexError(ReproError):
    """Raised when the tokenizer encounters an invalid character sequence.

    Attributes:
        line: 1-based line number of the offending character.
        column: 1-based column number of the offending character.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(ReproError):
    """Raised when the parser cannot derive the input from the Fig. 2 grammar.

    Attributes:
        line: 1-based line number of the offending token.
        column: 1-based column number of the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ResolutionError(ReproError):
    """Raised when an alias, attribute, table, or view cannot be resolved."""


class SchemaError(ReproError):
    """Raised for malformed or inconsistent schema declarations."""


class CompileError(ReproError):
    """Raised when a resolved SQL AST cannot be compiled to a U-expression."""


class UnsupportedFeatureError(CompileError):
    """Raised when a query uses SQL outside the supported Fig. 2 fragment.

    The paper's prototype rejects features such as ``NULL``, ``CASE``,
    arithmetic reasoning, and string casts; we surface the same boundary as a
    distinct error type so the evaluation harness can count "unsupported"
    separately from "unproved" (Fig. 5).
    """


class EvaluationError(ReproError):
    """Raised by the concrete bag-semantics engine for runtime errors."""


class DecisionTimeout(ReproError):
    """Raised when the decision procedure exceeds its configured budget."""
