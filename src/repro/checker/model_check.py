"""The bounded model checker: search small databases for a disagreement.

Strategy, in order:

1. the empty instance (catches constant-output differences, e.g. the
   count bug's empty-input corner);
2. exhaustive tiny instances (≤ 1-2 rows per table over a 2-value pool,
   constraint-satisfying only);
3. random instances of growing size.

Both queries are evaluated under the from-scratch bag-semantics engine; a
disagreement is a database where the output *bags* differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.engine.database import Database, bag_of
from repro.engine.eval import QueryEvaluator
from repro.engine.generator import DatabaseGenerator
from repro.errors import EvaluationError
from repro.sql.ast import Query
from repro.sql.desugar import desugar_query
from repro.sql.parser import parse_query
from repro.sql.program import Catalog
from repro.sql.scope import resolve_query


@dataclass
class Counterexample:
    """A database on which the two queries disagree."""

    database: Database
    left_bag: Dict[Tuple, int]
    right_bag: Dict[Tuple, int]

    def describe(self) -> str:
        lines = ["counterexample database:", self.database.describe()]
        lines.append(f"left output bag:  {self.left_bag}")
        lines.append(f"right output bag: {self.right_bag}")
        return "\n".join(lines)


class ModelChecker:
    """Bounded refutation of query equivalence under a catalog."""

    def __init__(self, catalog: Catalog, seed: int = 0) -> None:
        self.catalog = catalog
        self._seed = seed

    def _prepare(self, query: Union[str, Query]) -> Query:
        parsed = parse_query(query) if isinstance(query, str) else query
        resolved, _ = resolve_query(parsed, self.catalog)
        return desugar_query(resolved)

    def find_counterexample(
        self,
        left: Union[str, Query],
        right: Union[str, Query],
        random_attempts: int = 30,
        max_rows: int = 3,
        exhaustive_rows: int = 1,
    ) -> Optional[Counterexample]:
        """Search for a disagreement; ``None`` when none was found."""
        left_query = self._prepare(left)
        right_query = self._prepare(right)
        generator = DatabaseGenerator(self.catalog, seed=self._seed)

        candidates: List[Database] = [generator.empty()]
        try:
            candidates.extend(generator.exhaustive_small(exhaustive_rows))
        except EvaluationError:
            pass
        for database in candidates:
            witness = self._check_one(database, left_query, right_query)
            if witness is not None:
                return witness
        for attempt in range(random_attempts):
            generator = DatabaseGenerator(
                self.catalog, seed=self._seed + attempt + 1
            )
            try:
                database = generator.generate(max_rows=max_rows)
            except EvaluationError:
                continue
            witness = self._check_one(database, left_query, right_query)
            if witness is not None:
                return witness
        return None

    def _check_one(
        self, database: Database, left: Query, right: Query
    ) -> Optional[Counterexample]:
        evaluator = QueryEvaluator(database)
        try:
            left_bag = bag_of(evaluator.rows(left))
            right_bag = bag_of(evaluator.rows(right))
        except EvaluationError:
            return None
        if left_bag != right_bag:
            return Counterexample(database, left_bag, right_bag)
        return None

    def agree_on_random(
        self,
        left: Union[str, Query],
        right: Union[str, Query],
        attempts: int = 20,
        max_rows: int = 3,
    ) -> bool:
        """Quick confidence check: no disagreement across random instances."""
        return (
            self.find_counterexample(
                left, right, random_attempts=attempts, max_rows=max_rows
            )
            is None
        )
