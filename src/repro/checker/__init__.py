"""Bounded counterexample search for query pairs.

The complement of the prover (the paper's prior work [21]): where UDP proves
equivalence, the model checker *refutes* it by finding a concrete database on
which the two queries disagree.  Neither subsumes the other — the checker
cannot prove equivalence, the prover cannot exhibit counterexamples.
"""

from repro.checker.model_check import Counterexample, ModelChecker

__all__ = ["Counterexample", "ModelChecker"]
