"""Bag-semantics evaluation of the Fig. 2 SQL fragment.

The evaluator interprets *resolved* queries (all column references alias-
qualified, views inlined) directly over a :class:`~repro.engine.database.Database`.
It is deliberately independent of the U-expression pipeline: tests compare the
two implementations to validate the compiler's denotational semantics.

Semantics notes:

* ``UNION ALL`` concatenates bags; ``DISTINCT`` deduplicates;
* ``q1 EXCEPT q2`` keeps every ``q1`` occurrence of rows *absent* from ``q2``
  (anti-semijoin), matching ``⟦q1⟧(t) × not(⟦q2⟧(t))`` in Fig. 12;
* ``EXISTS`` is evaluated with the ambient row environment (correlated
  subqueries);
* aggregates receive their concrete SQL meaning (``sum``/``count``/``avg``/
  ``min``/``max``) — this is what lets the model checker expose the count
  bug, which the uninterpreted-aggregate prover must not "prove" away;
* scalar arithmetic (``+ - * /``) is interpreted; unknown functions evaluate
  to a deterministic opaque token.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import EvaluationError
from repro.sql.ast import (
    AggCall,
    AndPred,
    BinPred,
    ColumnRef,
    Constant,
    DistinctQuery,
    Except,
    Exists,
    Expr,
    ExprAs,
    FalsePred,
    FuncCall,
    Intersect,
    NotPred,
    OrPred,
    Pred,
    Query,
    Select,
    Star,
    TableRef,
    TableStar,
    TruePred,
    UnionAll,
    Where,
    is_aggregate_name,
)
from repro.engine.database import Database, Row, bag_of, freeze_row

#: Evaluation environment: alias → current row (innermost scope wins).
Env = Dict[str, Row]


class QueryEvaluator:
    """Evaluates resolved, desugared queries over a database."""

    def __init__(self, database: Database) -> None:
        self._db = database
        self._catalog = database.catalog

    # -- queries -----------------------------------------------------------

    def rows(self, query: Query, env: Optional[Env] = None) -> List[Row]:
        """The bag of output rows of ``query`` under ``env``."""
        env = env or {}
        if isinstance(query, TableRef):
            if self._catalog.has_view(query.name):
                return self.rows(self._catalog.view_query(query.name), env)
            return self._db.rows(query.name)
        if isinstance(query, Select):
            return self._rows_select(query, env)
        if isinstance(query, Where):
            out = []
            for row in self.rows(query.query, env):
                inner = dict(env)
                inner[""] = row
                if self.truth(query.predicate, inner):
                    out.append(row)
            return out
        if isinstance(query, UnionAll):
            return self.rows(query.left, env) + self.rows(query.right, env)
        if isinstance(query, Except):
            right_keys = {
                freeze_row(row) for row in self.rows(query.right, env)
            }
            return [
                row
                for row in self.rows(query.left, env)
                if freeze_row(row) not in right_keys
            ]
        if isinstance(query, Intersect):
            right_keys = {
                freeze_row(row) for row in self.rows(query.right, env)
            }
            seen = set()
            out = []
            for row in self.rows(query.left, env):
                key = freeze_row(row)
                if key in right_keys and key not in seen:
                    seen.add(key)
                    out.append(row)
            return out
        if isinstance(query, DistinctQuery):
            seen = set()
            out = []
            for row in self.rows(query.query, env):
                key = freeze_row(row)
                if key not in seen:
                    seen.add(key)
                    out.append(row)
            return out
        raise EvaluationError(f"cannot evaluate query {type(query).__name__}")

    def _rows_select(self, query: Select, env: Env) -> List[Row]:
        if query.group_by:
            raise EvaluationError("GROUP BY must be desugared before evaluation")
        # Cross product of the FROM items, left to right.
        assignments: List[Env] = [dict(env)]
        schemas = {}
        for item in query.from_items:
            item_rows = self.rows(item.query, env)
            schemas[item.alias] = item_rows
            next_assignments: List[Env] = []
            for assignment in assignments:
                for row in item_rows:
                    extended = dict(assignment)
                    extended[item.alias] = row
                    next_assignments.append(extended)
            assignments = next_assignments
        out: List[Row] = []
        for assignment in assignments:
            if query.where is not None and not self.truth(query.where, assignment):
                continue
            out.append(self._project(query, assignment))
        if query.distinct:
            seen = set()
            deduped = []
            for row in out:
                key = freeze_row(row)
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            return deduped
        return out

    def _project(self, query: Select, env: Env) -> Row:
        out: Dict[str, object] = {}
        counts: Dict[str, int] = {}

        def emit(name: str, value: object) -> None:
            count = counts.get(name, 0)
            counts[name] = count + 1
            out_name = name if count == 0 else f"{name}_{count}"
            out[out_name] = value

        def emit_alias(alias: str) -> None:
            row = env[alias]
            # Deterministic attribute order: use the FROM item's schema when
            # available, otherwise sorted row keys.
            names = sorted(row.keys())
            for item in query.from_items:
                if item.alias == alias and isinstance(item.query, TableRef):
                    schema = self._catalog.table_schema(item.query.name)
                    if schema.is_concrete():
                        names = list(schema.attribute_names())
                    break
            for name in names:
                emit(name, row[name])

        for proj in query.projections:
            if isinstance(proj, Star):
                for item in query.from_items:
                    emit_alias(item.alias)
            elif isinstance(proj, TableStar):
                emit_alias(proj.table)
            elif isinstance(proj, ExprAs):
                emit(proj.alias or proj.output_name() or "col", self.value(proj.expr, env))
            else:
                raise EvaluationError(f"unknown projection {type(proj).__name__}")
        return out

    # -- predicates ----------------------------------------------------------

    def truth(self, pred: Pred, env: Env) -> bool:
        if isinstance(pred, TruePred):
            return True
        if isinstance(pred, FalsePred):
            return False
        if isinstance(pred, AndPred):
            return self.truth(pred.left, env) and self.truth(pred.right, env)
        if isinstance(pred, OrPred):
            return self.truth(pred.left, env) or self.truth(pred.right, env)
        if isinstance(pred, NotPred):
            return not self.truth(pred.inner, env)
        if isinstance(pred, Exists):
            non_empty = bool(self.rows(pred.query, env))
            return (not non_empty) if pred.negated else non_empty
        if isinstance(pred, BinPred):
            left = self.value(pred.left, env)
            right = self.value(pred.right, env)
            return _compare(pred.op, left, right)
        raise EvaluationError(f"cannot evaluate predicate {type(pred).__name__}")

    # -- expressions ---------------------------------------------------------

    def value(self, expr: Expr, env: Env) -> object:
        if isinstance(expr, ColumnRef):
            if expr.table not in env:
                raise EvaluationError(f"unbound alias {expr.table!r} in {expr}")
            row = env[expr.table]
            if expr.column not in row:
                raise EvaluationError(f"row has no attribute {expr.column!r}")
            return row[expr.column]
        if isinstance(expr, Constant):
            return expr.value
        if isinstance(expr, FuncCall):
            args = [self.value(a, env) for a in expr.args]
            return _apply_function(expr.name, args)
        if isinstance(expr, AggCall):
            rows = self.rows(expr.query, env)
            return _apply_aggregate(expr.name, rows)
        raise EvaluationError(f"cannot evaluate expression {type(expr).__name__}")


def _compare(op: str, left: object, right: object) -> bool:
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    try:
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        if op == ">=":
            return left >= right  # type: ignore[operator]
    except TypeError:
        return False
    if op == "LIKE":
        return isinstance(left, str) and isinstance(right, str) and right in left
    raise EvaluationError(f"unknown comparison {op!r}")


def _apply_function(name: str, args: List[object]) -> object:
    if name in ("+", "-", "*", "/") and len(args) == 2:
        left, right = args
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            if name == "+":
                return left + right
            if name == "-":
                return left - right
            if name == "*":
                return left * right
            if right == 0:
                return 0  # SQL engines differ; pick a total semantics
            return left // right if isinstance(left, int) else left / right
    # Unknown function: deterministic opaque token.
    return ("fn:" + name, tuple(repr(a) for a in args))


def _apply_aggregate(name: str, rows: List[Row]) -> object:
    """Concrete SQL aggregate over a subquery's output bag.

    The operand column is the subquery's single projected column (the
    desugarer emits ``agg_arg``); ``count`` over a star subquery counts rows.
    """
    name = name.lower()
    if name == "count":
        return len(rows)
    values: List[object] = []
    for row in rows:
        if "agg_arg" in row:
            values.append(row["agg_arg"])
        elif len(row) == 1:
            values.append(next(iter(row.values())))
        else:
            raise EvaluationError(
                f"aggregate {name} expects a single-column subquery"
            )
    numbers = [v for v in values if isinstance(v, (int, float))]
    if name == "sum":
        return sum(numbers) if numbers else 0
    if name == "avg":
        return sum(numbers) / len(numbers) if numbers else 0
    if name == "min":
        return min(numbers) if numbers else 0
    if name == "max":
        return max(numbers) if numbers else 0
    raise EvaluationError(f"unknown aggregate {name!r}")


def evaluate_query(query: Query, database: Database, env: Optional[Env] = None) -> List[Row]:
    """Module-level convenience: evaluate a resolved query to a bag of rows."""
    return QueryEvaluator(database).rows(query, env)
