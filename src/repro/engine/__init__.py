"""An executable bag-semantics SQL engine, built from scratch.

This substrate makes the Fig. 2 fragment *runnable*: tables are bags of rows,
queries evaluate to bags, and aggregates get their concrete SQL meaning.  The
engine serves three purposes:

* cross-validate the SQL → U-expression compiler against an independent
  implementation of the semantics (tests);
* power the bounded model checker (:mod:`repro.checker`) that finds concrete
  counterexamples for non-equivalent query pairs — the complementary tool the
  paper cites as prior work [21];
* generate the workloads for the benchmark harness.
"""

from repro.engine.database import Database, Row
from repro.engine.eval import QueryEvaluator, evaluate_query
from repro.engine.generator import DatabaseGenerator

__all__ = [
    "Database",
    "DatabaseGenerator",
    "QueryEvaluator",
    "Row",
    "evaluate_query",
]
