"""Database instances: named bags of rows.

A row is a plain ``dict`` from attribute name to a scalar value; a table is a
list of rows (duplicates meaningful — bag semantics).  The database validates
inserted rows against the catalog schema and can check the declared integrity
constraints, which the random instance generator relies on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import EvaluationError, SchemaError
from repro.sql.program import Catalog

#: A concrete row.
Row = Dict[str, object]


def freeze_row(row: Row) -> Tuple:
    """Hashable canonical form of a row (sorted by attribute name)."""
    return tuple(sorted(row.items(), key=lambda item: item[0]))


def bag_of(rows: Iterable[Row]) -> Dict[Tuple, int]:
    """Multiplicity map of a bag of rows."""
    out: Dict[Tuple, int] = {}
    for row in rows:
        key = freeze_row(row)
        out[key] = out.get(key, 0) + 1
    return out


class Database:
    """A concrete instance of the catalog's base tables."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._tables: Dict[str, List[Row]] = {
            name: [] for name in catalog.tables()
        }

    # -- population --------------------------------------------------------

    def insert(self, table: str, row: Row) -> None:
        """Insert one row, checking it against the table's schema."""
        if table not in self._tables:
            raise EvaluationError(f"unknown table {table!r}")
        schema = self.catalog.table_schema(table)
        if schema.is_concrete():
            expected = set(schema.attribute_names())
            if set(row.keys()) != expected:
                raise SchemaError(
                    f"row attributes {sorted(row)} do not match schema "
                    f"{sorted(expected)} of table {table!r}"
                )
        self._tables[table].append(dict(row))

    def insert_all(self, table: str, rows: Iterable[Row]) -> None:
        for row in rows:
            self.insert(table, row)

    def set_table(self, table: str, rows: Iterable[Row]) -> None:
        if table not in self._tables:
            raise EvaluationError(f"unknown table {table!r}")
        self._tables[table] = []
        self.insert_all(table, rows)

    # -- access -----------------------------------------------------------

    def rows(self, table: str) -> List[Row]:
        if table not in self._tables:
            raise EvaluationError(f"unknown table {table!r}")
        return [dict(row) for row in self._tables[table]]

    def tables(self) -> List[str]:
        return sorted(self._tables)

    def size(self) -> int:
        return sum(len(rows) for rows in self._tables.values())

    # -- integrity ----------------------------------------------------------

    def violated_constraints(self) -> List[str]:
        """Human-readable descriptions of violated keys and foreign keys."""
        problems: List[str] = []
        for key in self.catalog.keys:
            if key.table not in self._tables:
                continue
            seen: Dict[Tuple, Tuple] = {}
            for row in self._tables[key.table]:
                key_value = tuple(row.get(attr) for attr in key.attributes)
                whole = freeze_row(row)
                if key_value in seen and seen[key_value] != whole:
                    problems.append(
                        f"key {key.table}({', '.join(key.attributes)}) "
                        f"violated by value {key_value}"
                    )
                elif key_value in seen:
                    problems.append(
                        f"key {key.table}({', '.join(key.attributes)}) "
                        f"violated: duplicate row with value {key_value}"
                    )
                seen.setdefault(key_value, whole)
        for fk in self.catalog.foreign_keys:
            if fk.table not in self._tables or fk.ref_table not in self._tables:
                continue
            referenced = {
                tuple(row.get(attr) for attr in fk.ref_attributes)
                for row in self._tables[fk.ref_table]
            }
            for row in self._tables[fk.table]:
                value = tuple(row.get(attr) for attr in fk.attributes)
                if value not in referenced:
                    problems.append(
                        f"fk {fk.table}({', '.join(fk.attributes)}) -> "
                        f"{fk.ref_table}: dangling value {value}"
                    )
        return problems

    def satisfies_constraints(self) -> bool:
        return not self.violated_constraints()

    # -- presentation -------------------------------------------------------

    def describe(self) -> str:
        lines = []
        for name in self.tables():
            rows = self._tables[name]
            lines.append(f"{name} ({len(rows)} rows):")
            for row in rows:
                inner = ", ".join(f"{k}={v}" for k, v in sorted(row.items()))
                lines.append(f"  {{{inner}}}")
        return "\n".join(lines)
