"""Random database instances respecting declared integrity constraints.

The generator produces small instances over a bounded integer pool.  Keys are
enforced by sampling distinct key values; foreign keys by sampling referenced
key values from the already-populated target table.  Tables are filled in
foreign-key dependency order (topological); cyclic reference graphs fall back
to best-effort generation followed by a constraint check and retry.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence

from repro.errors import EvaluationError
from repro.engine.database import Database, Row
from repro.sql.program import Catalog


class DatabaseGenerator:
    """Generates random constraint-satisfying instances of a catalog."""

    def __init__(
        self,
        catalog: Catalog,
        value_pool: Optional[Sequence[object]] = None,
        seed: int = 0,
    ) -> None:
        self.catalog = catalog
        self.value_pool = list(value_pool) if value_pool else list(range(4))
        self._random = random.Random(seed)

    # -- public API --------------------------------------------------------

    def generate(self, max_rows: int = 3, attempts: int = 50) -> Database:
        """One random instance satisfying every declared constraint."""
        for _ in range(attempts):
            database = self._generate_once(max_rows)
            if database.satisfies_constraints():
                return database
        raise EvaluationError(
            "could not generate a constraint-satisfying instance "
            f"in {attempts} attempts"
        )

    def generate_many(self, count: int, max_rows: int = 3) -> List[Database]:
        return [self.generate(max_rows) for _ in range(count)]

    def empty(self) -> Database:
        """The empty instance (always satisfies the constraints)."""
        return Database(self.catalog)

    def exhaustive_small(self, rows_per_table: int = 1) -> List[Database]:
        """All instances with at most ``rows_per_table`` rows per table over a
        two-value pool — tiny but systematically covers the corner cases
        (empty tables included)."""
        pool = self.value_pool[:2] if len(self.value_pool) >= 2 else self.value_pool
        tables = sorted(self.catalog.tables())
        per_table_options: List[List[List[Row]]] = []
        for table in tables:
            schema = self.catalog.table_schema(table)
            names = schema.attribute_names()
            candidate_rows = [
                dict(zip(names, values))
                for values in itertools.product(pool, repeat=len(names))
            ]
            options: List[List[Row]] = [[]]
            for size in range(1, rows_per_table + 1):
                for combo in itertools.combinations(candidate_rows, size):
                    options.append([dict(r) for r in combo])
            per_table_options.append(options)
        databases: List[Database] = []
        for assignment in itertools.product(*per_table_options):
            database = Database(self.catalog)
            for table, rows in zip(tables, assignment):
                database.set_table(table, rows)
            if database.satisfies_constraints():
                databases.append(database)
        return databases

    # -- internals -----------------------------------------------------------

    def _generate_once(self, max_rows: int) -> Database:
        database = Database(self.catalog)
        for table in self._fill_order():
            schema = self.catalog.table_schema(table)
            if not schema.is_concrete():
                raise EvaluationError(
                    f"cannot generate rows for generic schema of table {table!r}"
                )
            row_count = self._random.randint(0, max_rows)
            rows = self._rows_for(table, row_count, database)
            database.set_table(table, rows)
        return database

    def _fill_order(self) -> List[str]:
        """Tables in foreign-key dependency order (referenced first)."""
        tables = sorted(self.catalog.tables())
        depends: Dict[str, set] = {t: set() for t in tables}
        for fk in self.catalog.foreign_keys:
            if fk.table in depends and fk.ref_table in depends:
                if fk.table != fk.ref_table:
                    depends[fk.table].add(fk.ref_table)
        ordered: List[str] = []
        remaining = set(tables)
        while remaining:
            ready = sorted(
                t for t in remaining if depends[t] <= set(ordered)
            )
            if not ready:
                # Cycle: append the rest in name order; the caller's
                # constraint check + retry loop handles the fallout.
                ordered.extend(sorted(remaining))
                break
            ordered.extend(ready)
            remaining -= set(ready)
        return ordered

    def _rows_for(self, table: str, count: int, database: Database) -> List[Row]:
        schema = self.catalog.table_schema(table)
        names = schema.attribute_names()
        keys = self.catalog.keys_of(table)
        fks = [c for c in self.catalog.foreign_keys if c.table == table]
        rows: List[Row] = []
        used_key_values = {tuple(k): set() for k in keys}
        for _ in range(count):
            row: Row = {
                name: self._random.choice(self.value_pool) for name in names
            }
            # Foreign keys: copy a referenced key value when available.
            for fk in fks:
                referenced = database.rows(fk.ref_table)
                if not referenced:
                    row = None
                    break
                target = self._random.choice(referenced)
                for src_attr, ref_attr in zip(fk.attributes, fk.ref_attributes):
                    row[src_attr] = target[ref_attr]
            if row is None:
                continue
            # Keys: skip rows that would duplicate a key value.
            duplicate = False
            for key in keys:
                key_value = tuple(row[a] for a in key)
                if key_value in used_key_values[tuple(key)]:
                    duplicate = True
                    break
            if duplicate:
                continue
            for key in keys:
                used_key_values[tuple(key)].add(tuple(row[a] for a in key))
            rows.append(row)
        return rows
