"""Deterministic fault injection: named points, seeded plans, zero cost off.

The resilience layer (store circuit breaker, pool watchdog, graceful
drain) is only trustworthy if its failure paths are *exercised*, and
real faults — a disk that starts erroring, a worker that segfaults, a
prove that wedges — are neither reproducible nor CI-friendly.  This
module gives the chaos suite a deterministic substitute: a
:class:`FaultPlan` is a set of rules bound to **named injection
points** compiled into the serving stack:

==================  =========================================================
point               fires where
==================  =========================================================
``store.read``      inside the store failover wrapper, on read-shaped ops
``store.write``     inside the store failover wrapper, on write-shaped ops
``member.crash``    in a pool member's work loop (process: ``os._exit``;
                    thread: an exception the isolation contract absorbs)
``member.hang``     in a pool member's work loop: sleep ``delay`` seconds
``socket.slow``     in :class:`repro.client.VerifyClient` before each send
``pool.fork``       in ``SessionPool._new_member`` when forking a worker
==================  =========================================================

Determinism
-----------

Each plan owns a :class:`random.Random` seeded at construction, and
every decision (probabilistic or not) consumes the stream in hit order,
so the same seed + the same request sequence reproduces the same fault
schedule bit for bit.  Counters are per-plan and thread-safe.

Zero cost when disabled
-----------------------

The serving stack calls :func:`fault_hit` (or :func:`maybe_fail`) at
each point; with no plan installed that is one module-global ``None``
check — no locks, no allocation.  Plans installed before a
``SessionPool`` forks its members travel into the workers by
copy-on-write, so process members honor the same plan (with their own
counter state past the fork point).

Activation
----------

Programmatic (:func:`install_fault_plan`) for the in-process suites, or
via ``udp-prove serve --faults SPEC --fault-seed N`` for subprocess
chaos tests.  The spec grammar is intentionally tiny::

    point[:key=value[,key=value...]][;point...]

with keys ``p`` (probability per hit, default 1.0), ``after`` (skip the
first N hits), ``count`` (fire at most N times), ``delay`` (seconds,
for hang/slow points), e.g.::

    store.write:after=5;member.crash:after=3,count=1;member.hang:count=1,delay=2
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: Every injection point compiled into the stack.  ``FaultPlan`` refuses
#: unknown names so a typo'd spec fails loudly instead of silently
#: injecting nothing.
KNOWN_POINTS = (
    "store.read",
    "store.write",
    "member.crash",
    "member.hang",
    "socket.slow",
    "pool.fork",
)


class FaultError(RuntimeError):
    """An injected failure (never raised by real code paths)."""


@dataclass(frozen=True)
class FaultRule:
    """One point's firing schedule inside a plan."""

    point: str
    probability: float = 1.0  # chance per eligible hit
    after: int = 0  # skip the first `after` hits entirely
    count: Optional[int] = None  # fire at most `count` times (None = forever)
    delay: float = 0.0  # seconds, for hang/slow-shaped points

    def __post_init__(self) -> None:
        if self.point not in KNOWN_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; "
                f"expected one of {KNOWN_POINTS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.count is not None and self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")


class FaultPlan:
    """A seeded set of fault rules with per-point hit/fire accounting."""

    def __init__(self, rules: Sequence[FaultRule], *, seed: int = 0) -> None:
        self._rules: Dict[str, FaultRule] = {}
        for rule in rules:
            if rule.point in self._rules:
                raise ValueError(f"duplicate rule for point {rule.point!r}")
            self._rules[rule.point] = rule
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {point: 0 for point in self._rules}
        self._fired: Dict[str, int] = {point: 0 for point in self._rules}

    # -- the decision ------------------------------------------------------

    def check(self, point: str) -> Optional[FaultRule]:
        """Count one hit at ``point``; the rule iff it fires this time."""
        rule = self._rules.get(point)
        if rule is None:
            return None
        with self._lock:
            hit = self._hits[point]
            self._hits[point] = hit + 1
            if hit < rule.after:
                return None
            if rule.count is not None and self._fired[point] >= rule.count:
                return None
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                return None
            self._fired[point] += 1
            return rule

    # -- observability -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "seed": self.seed,
                "points": {
                    point: {
                        "hits": self._hits[point],
                        "fired": self._fired[point],
                        "after": rule.after,
                        "count": rule.count,
                        "probability": rule.probability,
                        "delay": rule.delay,
                    }
                    for point, rule in self._rules.items()
                },
            }

    # -- the spec grammar --------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str, *, seed: int = 0) -> "FaultPlan":
        """Parse ``point[:k=v[,k=v...]][;point...]`` into a plan."""
        rules: List[FaultRule] = []
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            point, _, params = part.partition(":")
            point = point.strip()
            kwargs: Dict[str, object] = {}
            for pair in params.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                key, sep, value = pair.partition("=")
                if not sep:
                    raise ValueError(
                        f"malformed fault parameter {pair!r} (expected key=value)"
                    )
                key = key.strip()
                try:
                    if key in ("p", "probability"):
                        kwargs["probability"] = float(value)
                    elif key == "after":
                        kwargs["after"] = int(value)
                    elif key == "count":
                        kwargs["count"] = int(value)
                    elif key == "delay":
                        kwargs["delay"] = float(value)
                    else:
                        raise ValueError(
                            f"unknown fault parameter {key!r} "
                            "(expected p/after/count/delay)"
                        )
                except ValueError:
                    raise
                except Exception as err:  # pragma: no cover - defensive
                    raise ValueError(f"bad fault parameter {pair!r}: {err}")
            rules.append(FaultRule(point, **kwargs))  # type: ignore[arg-type]
        if not rules:
            raise ValueError(f"fault spec {spec!r} names no points")
        return cls(rules, seed=seed)


# ---------------------------------------------------------------------------
# The module-global hook the serving stack calls
# ---------------------------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None


def install_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` process-wide; the previously installed plan."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    return previous


def active_fault_plan() -> Optional[FaultPlan]:
    return _ACTIVE


def fault_hit(point: str) -> Optional[FaultRule]:
    """The rule iff a fault fires at ``point`` now; the stack's hook.

    With no plan installed this is a single ``None`` check — the
    zero-cost-when-disabled contract.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.check(point)


def maybe_fail(point: str, detail: str = "") -> None:
    """Raise :class:`FaultError` iff a fault fires at ``point`` now."""
    rule = fault_hit(point)
    if rule is not None:
        raise FaultError(
            f"injected fault at {point}" + (f" ({detail})" if detail else "")
        )


__all__ = [
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "KNOWN_POINTS",
    "active_fault_plan",
    "fault_hit",
    "install_fault_plan",
    "maybe_fail",
]
